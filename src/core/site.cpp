#include "core/site.h"

#include <cassert>

namespace fir {

SiteRegistry::~SiteRegistry() {
  for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
}

SiteId SiteRegistry::intern(std::string_view function,
                            std::string_view location) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = size_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    Site& site = (*this)[static_cast<SiteId>(i)];
    if (site.function == function && site.location == location)
      return site.id;
  }
  assert(n < kMaxChunks * kChunkSize && "site table full");
  const std::size_t chunk = n >> kChunkShift;
  if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr)
    chunks_[chunk].store(new Site[kChunkSize], std::memory_order_release);
  Site& site = (*this)[static_cast<SiteId>(n)];
  site.id = static_cast<SiteId>(n);
  site.function = std::string(function);
  site.location = std::string(location);
  site.spec = LibraryCatalog::instance().find(function);
  // Fields above are published to other threads by whatever hands them the
  // SiteId (SiteCache release-store or the size_ release below).
  size_.store(n + 1, std::memory_order_release);
  return site.id;
}

void SiteRegistry::reset_runtime_state() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Site& site : all_mutable()) {
    site.gate = GateState{};
    site.stats = SiteStats{};
  }
}

}  // namespace fir
