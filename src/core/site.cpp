#include "core/site.h"

namespace fir {

SiteId SiteRegistry::intern(std::string_view function,
                            std::string_view location) {
  for (const Site& site : sites_) {
    if (site.function == function && site.location == location)
      return site.id;
  }
  Site site;
  site.id = static_cast<SiteId>(sites_.size());
  site.function = std::string(function);
  site.location = std::string(location);
  site.spec = LibraryCatalog::instance().find(function);
  sites_.push_back(std::move(site));
  return sites_.back().id;
}

void SiteRegistry::reset_runtime_state() {
  for (Site& site : sites_) {
    site.gate = GateState{};
    site.stats = SiteStats{};
  }
}

}  // namespace fir
