#include "core/tx_manager.h"

#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <csignal>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "mem/store_gate.h"

// glibc < 2.36 spells the SIGEV_THREAD_ID target field through the union
// member only; newer headers provide the POSIX-ish alias.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace fir {

namespace {
std::atomic<std::uint64_t> g_next_generation{1};

bool env_u64(const char* name, unsigned long long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return false;
  *out = parsed;
  return true;
}

/// FIR_* environment overrides, mirroring the obs::ObsConfig::from_env
/// operator-first convention. Runs before any sub-object is constructed so
/// the policy and engines see the resolved configuration.
TxManagerConfig apply_runtime_env(TxManagerConfig config) {
  unsigned long long v = 0;
  if (env_u64(kEnvUndoRetainBytes, &v))
    config.undo_retain_bytes = static_cast<std::size_t>(v);
  if (const char* s = std::getenv(kEnvStmFilter)) {
    config.stm_write_filter = !(s[0] == '0' && s[1] == '\0');
  }
  if (signal_channel_env_enabled()) config.real_signals = true;
  if (env_u64(kEnvTxDeadlineMs, &v))
    config.tx_deadline_ms = static_cast<std::uint32_t>(v);
  if (env_u64(kEnvRecoveryLogCap, &v))
    config.recovery_log_cap = static_cast<std::size_t>(v);
  if (env_u64(kEnvStormThreshold, &v))
    config.policy.storm_divert_threshold = static_cast<std::uint32_t>(v);
  if (env_u64(kEnvCoalesceMax, &v))
    config.coalesce_max = static_cast<std::uint32_t>(v);
  if (const char* s = std::getenv(kEnvCoalesce)) {
    // Kill-switch wins over FIR_COALESCE_MAX: "0" restores the seed's
    // one-transaction-per-call semantics bit-for-bit.
    if (s[0] == '0' && s[1] == '\0') config.coalesce_max = 1;
  }
  // A run must contain at least the opening call; cap the span so the run
  // buffer reservation stays bounded.
  if (config.coalesce_max < 1) config.coalesce_max = 1;
  if (config.coalesce_max > 4096) config.coalesce_max = 4096;
  return config;
}

const char* tx_mode_name(TxMode mode) {
  switch (mode) {
    case TxMode::kNone: return "none";
    case TxMode::kHtm: return "htm";
    case TxMode::kStm: return "stm";
  }
  return "?";
}

pid_t current_tid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

/// Context index 0 keeps the configured seed exactly (single-threaded runs
/// and campaign replays see the historical abort sequence); later contexts
/// split an independent stream so concurrent workers stay reproducible
/// per-worker instead of racing for one rng.
HtmConfig split_htm_config(HtmConfig config, std::size_t index) {
  config.seed = split_seed(config.seed, static_cast<std::uint64_t>(index));
  return config;
}

/// Single-writer tally update (see detail::tally_bump, which the inline
/// gate fast path in the header uses directly).
inline void bump(std::atomic<std::uint64_t>& tally, std::uint64_t n = 1) {
  detail::tally_bump(tally, n);
}

inline void stat_inc(std::atomic<std::uint64_t>& stat) {
  stat.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TxManager::RecoveryCounters::RecoveryCounters(obs::MetricsRegistry& reg)
    : crashes(reg.counter("recovery.crashes")),
      rollbacks(reg.counter("recovery.rollbacks")),
      retries(reg.counter("recovery.retries")),
      compensations(reg.counter("recovery.compensations")),
      diversions(reg.counter("recovery.diversions")),
      fatal(reg.counter("recovery.fatal")),
      signals_caught(reg.counter("recovery.signals_caught")),
      double_faults(reg.counter("recovery.double_faults")),
      watchdog_fires(reg.counter("recovery.watchdog_fires")),
      storm_diverts(reg.counter("recovery.storm_diverts")),
      log_dropped(reg.counter("recovery.log_dropped")) {}

TxManager::TxContext::TxContext(const TxManagerConfig& config,
                                std::size_t context_index, TxManager* manager)
    : mgr(manager),
      index(context_index),
      owner(std::this_thread::get_id()),
      tid(current_tid()),
      htm(split_htm_config(config.htm, context_index)) {
  stm.set_retention(config.undo_retain_bytes);
  stm.set_filter_enabled(config.stm_write_filter);
  embedded_reverts.reserve(16);
  embedded_deferred.reserve(16);
  comp_arena.reserve(4096);
  // One slot per possible extension: extend_run never allocates.
  run.reserve(config.coalesce_max > 1 ? config.coalesce_max - 1 : 0);
}

TxManager::TxManager(Env& env, TxManagerConfig config)
    : env_(env),
      config_(apply_runtime_env(std::move(config))),
      obs_(obs::ObsConfig::from_env(config_.obs)),
      policy_(config_.policy),
      rc_(obs_.metrics()),
      recovery_latency_(obs_.metrics().histogram("recovery.latency_seconds")),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {
  previous_handler_ = set_crash_handler(this);
  StoreGate::set_abort_hook(&TxManager::htm_store_abort_hook, this);
  // Reserve the full episode cap up front: log_recovery_event may run on
  // the recovery stack after a real signal, where growing a vector
  // (malloc under a possibly-interrupted allocator lock) would deadlock.
  recovery_log_.reserve(config_.recovery_log_cap);
  if (config_.real_signals) signals_installed_ = install_signal_channel();

  // Event timestamps follow the simulation's virtual time, so traces line
  // up with the Env's syscall accounting.
  obs_.set_clock(&env_.clock());
  policy_.set_observability(&obs_);
  obs_.metrics().add_collector([this](obs::MetricsRegistry& reg) {
    // Aggregate every thread context's tallies and engine stats into the
    // registry only when a snapshot is taken: the gate fast path does no
    // atomic RMW and no locking. Lock order is metrics → contexts (the
    // snapshot holds the registry lock while this runs); nothing in the
    // runtime takes them in the opposite order.
    std::uint64_t gate_calls = 0, tx_htm = 0, tx_stm = 0, tx_none = 0;
    std::uint64_t tx_commits = 0, tx_deferred = 0;
    std::uint64_t tx_coalesced = 0, tx_runs = 0, tx_oversize = 0;
    std::uint64_t snap_copied = 0, snap_elided = 0, snap_realloc = 0;
    std::uint64_t snap_incremental = 0;
    std::size_t threads = 0;
    {
      std::lock_guard<std::mutex> lock(contexts_mu_);
      threads = contexts_.size();
      for (const TxContext& ctx : contexts_) {
        gate_calls += ctx.gate_calls.load(std::memory_order_relaxed);
        tx_htm += ctx.tx_htm.load(std::memory_order_relaxed);
        tx_stm += ctx.tx_stm.load(std::memory_order_relaxed);
        tx_none += ctx.tx_none.load(std::memory_order_relaxed);
        tx_commits += ctx.tx_commits.load(std::memory_order_relaxed);
        tx_deferred += ctx.tx_deferred.load(std::memory_order_relaxed);
        tx_coalesced += ctx.tx_coalesced.load(std::memory_order_relaxed);
        tx_runs += ctx.tx_runs.load(std::memory_order_relaxed);
        tx_oversize += ctx.tx_oversize.load(std::memory_order_relaxed);
        snap_copied += ctx.snapshot.bytes_copied();
        snap_elided += ctx.snapshot.bytes_elided();
        snap_realloc += ctx.snapshot.reallocs();
        snap_incremental += ctx.snapshot.captures_incremental();
      }
    }
    reg.counter("gate.calls").set(gate_calls);
    reg.counter("tx.htm").set(tx_htm);
    reg.counter("tx.stm").set(tx_stm);
    reg.counter("tx.unprotected").set(tx_none);
    reg.counter("tx.commits").set(tx_commits);
    reg.counter("tx.deferred_flushed").set(tx_deferred);
    reg.counter("tx.coalesced").set(tx_coalesced);
    reg.counter("tx.runs").set(tx_runs);
    reg.counter("tx.unprotected_oversize").set(tx_oversize);
    reg.counter("snapshot.bytes_copied").set(snap_copied);
    reg.counter("snapshot.bytes_elided").set(snap_elided);
    reg.counter("snapshot.realloc").set(snap_realloc);
    reg.counter("snapshot.captures_incremental").set(snap_incremental);
    reg.gauge("tx.threads").set(static_cast<double>(threads));
    // Engine stats, summed across the per-thread engines under the same
    // names the engines published when they were process-global.
    const HtmStats h = htm_stats();
    reg.gauge("htm.begun").set(static_cast<double>(h.begun));
    reg.gauge("htm.committed").set(static_cast<double>(h.committed));
    reg.gauge("htm.aborts.capacity")
        .set(static_cast<double>(h.aborted_capacity));
    reg.gauge("htm.aborts.conflict")
        .set(static_cast<double>(h.aborted_conflict));
    reg.gauge("htm.aborts.interrupt")
        .set(static_cast<double>(h.aborted_interrupt));
    reg.gauge("htm.aborts.explicit")
        .set(static_cast<double>(h.aborted_explicit));
    reg.gauge("htm.stores").set(static_cast<double>(h.stores));
    reg.gauge("htm.lines_dirtied").set(static_cast<double>(h.lines_dirtied));
    const StmStats s = stm_stats();
    reg.gauge("stm.begun").set(static_cast<double>(s.begun));
    reg.gauge("stm.committed").set(static_cast<double>(s.committed));
    reg.gauge("stm.rolled_back").set(static_cast<double>(s.rolled_back));
    reg.gauge("stm.stores").set(static_cast<double>(s.stores));
    reg.gauge("stm.stores_elided").set(static_cast<double>(s.stores_elided));
    reg.gauge("stm.filter_hits").set(static_cast<double>(s.filter_hits));
    reg.gauge("stm.bytes_logged").set(static_cast<double>(s.bytes_logged));
    reg.gauge("stm.peak_log_bytes")
        .set(static_cast<double>(s.peak_log_bytes));
    reg.gauge("gate.sites").set(static_cast<double>(sites_.size()));
    reg.gauge("mem.instrumentation_bytes")
        .set(static_cast<double>(instrumentation_bytes()));
    reg.gauge("trace.emitted")
        .set(static_cast<double>(obs_.trace().total_emitted()));
    reg.gauge("trace.dropped")
        .set(static_cast<double>(obs_.trace().dropped()));
  });
}

TxManager::~TxManager() {
  // Destruction requires worker threads to be quiescent (quiesced + joined,
  // or at least between transactions): commit the destroying thread's open
  // transaction and tear down every context's watchdog timer.
  if (TxContext* ctx = try_context(); ctx != nullptr && ctx->active.open) {
    commit_open_tx(*ctx);
  }
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    for (TxContext& ctx : contexts_) {
      if (ctx.wd_created) {
        timer_delete(ctx.wd_timer);
        ctx.wd_created = false;
      }
    }
  }
  if (watchdog_enabled()) {
    itimerval timer{};  // zero it_value disarms the fallback wall-clock timer
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
  obs_.flush_outputs(trace_symbolizer());
  if (signals_installed_) {
    uninstall_signal_channel();
    signals_installed_ = false;
  }
  // Only release the process globals if this manager currently owns them
  // (another live instance may have claimed them since).
  if (crash_handler() == this) {
    StoreGate::set_abort_hook(nullptr, nullptr);
    StoreGate::set_recorder(nullptr);
    set_crash_handler(previous_handler_ == this ? nullptr
                                                : previous_handler_);
  }
}

// --- thread contexts --------------------------------------------------------

TxManager::TxContext& TxManager::context() {
  if (detail::t_tx_tls.mgr == this && detail::t_tx_tls.gen == generation_)
    return *static_cast<TxContext*>(detail::t_tx_tls.ctx);
  return context_slow();
}

TxManager::TxContext& TxManager::context_slow() {
  TxContext* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    const std::thread::id self = std::this_thread::get_id();
    for (TxContext& existing : contexts_) {
      if (existing.owner == self) {
        ctx = &existing;
        // A recycled std::thread::id adopts the old context; refresh the
        // kernel tid so the per-thread watchdog retargets (arm_watchdog
        // recreates the timer when it changed).
        ctx->tid = current_tid();
        break;
      }
    }
    if (ctx == nullptr) {
      contexts_.emplace_back(config_, contexts_.size(), this);
      ctx = &contexts_.back();
    }
  }
  // Every thread that runs transactions under the signal channel needs its
  // own sigaltstack: SIGSEGV from a blown stack is delivered on the faulting
  // thread, and only an alternate stack makes the handler runnable there.
  if (signals_installed_) ensure_thread_signal_stack();
  detail::t_tx_tls.mgr = this;
  detail::t_tx_tls.gen = generation_;
  detail::t_tx_tls.ctx = ctx;
  return *ctx;
}

TxManager::TxContext* TxManager::try_context() const {
  if (detail::t_tx_tls.mgr == this && detail::t_tx_tls.gen == generation_)
    return static_cast<TxContext*>(detail::t_tx_tls.ctx);
  return nullptr;
}

TxManager::TxContext* TxManager::find_context() const {
  if (TxContext* cached = try_context()) return cached;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  const std::thread::id self = std::this_thread::get_id();
  for (const TxContext& ctx : contexts_) {
    if (ctx.owner == self) {
      auto* found = const_cast<TxContext*>(&ctx);
      detail::t_tx_tls.mgr = this;
      detail::t_tx_tls.gen = generation_;
      detail::t_tx_tls.ctx = found;
      return found;
    }
  }
  return nullptr;
}

// --- per-thread accessors ---------------------------------------------------

void TxManager::set_anchor(const void* anchor_sp) {
  context().anchor = anchor_sp;
}

void TxManager::clear_anchor() {
  if (TxContext* ctx = find_context()) ctx->anchor = nullptr;
}

std::jmp_buf* TxManager::gate_buf() {
  TxContext& ctx = context();
  // An armed coalesced extension must not clobber the run-opening gate's
  // jmp_buf — rollback lands there. Its setjmp goes to a scratch buffer
  // that is never longjmp'd to.
  return ctx.coalesce_armed ? &ctx.coalesce_buf : &ctx.gate_buf;
}

bool TxManager::in_transaction() const {
  const TxContext* ctx = find_context();
  return ctx != nullptr && ctx->active.open;
}

TxMode TxManager::current_mode() const {
  const TxContext* ctx = find_context();
  return ctx != nullptr ? ctx->active.mode : TxMode::kNone;
}

bool TxManager::diverted() const {
  const TxContext* ctx = find_context();
  return ctx != nullptr && ctx->active.diverted;
}

bool TxManager::crash_recoverable() const {
  // Async-signal-safe: cache-only lookup, no lock. A thread inside a
  // transaction always hits — begin() warmed the cache on this thread, and
  // no other manager's gate can have run since (one manager claims the
  // crash channel at a time).
  const TxContext* ctx = try_context();
  return ctx != nullptr && ctx->active.open &&
         ctx->active.mode != TxMode::kNone && !ctx->active.diverted &&
         !ctx->in_recovery;
}

bool TxManager::in_recovery() const {
  const TxContext* ctx = try_context();
  return ctx != nullptr && ctx->in_recovery;
}

const std::uint8_t* TxManager::comp_data(std::uint32_t off) const {
  const TxContext* ctx = find_context();
  assert(ctx != nullptr && "comp_data() before any gate ran on this thread");
  return ctx->comp_arena.data() + off;
}

obs::SiteSymbolizer TxManager::trace_symbolizer() const {
  const SiteRegistry* sites = &sites_;
  return [sites](std::uint32_t id, std::string* function,
                 std::string* location) {
    if (id >= sites->size()) return false;
    const Site& site = (*sites)[static_cast<SiteId>(id)];
    *function = site.function;
    *location = site.location;
    return true;
  };
}

SiteId TxManager::register_site(std::string_view function,
                                std::string_view location) {
  return sites_.intern(function, location);
}

void TxManager::start_recording(TxContext& ctx, TxMode mode) {
  // begin() bumps the engine's filter epoch (O(1) reset); bind_gate()
  // installs the devirtualized StoreGate fast path for that engine. The
  // gate routing is thread_local, so this binds only the calling thread.
  if (mode == TxMode::kHtm) {
    ctx.htm.begin();
    ctx.htm.bind_gate();
  } else if (mode == TxMode::kStm) {
    ctx.stm.begin();
    ctx.stm.bind_gate();
  } else {
    StoreGate::set_recorder(nullptr);
  }
}

void TxManager::stop_recording() { StoreGate::set_recorder(nullptr); }

void TxManager::reset_active(TxContext& ctx) {
  ctx.active = ActiveTx{};
  ctx.embedded_reverts.clear();
  ctx.embedded_deferred.clear();
  ctx.comp_arena.clear();
  ctx.run.clear();
  ctx.coalesce_armed = false;
  ctx.last_begin_coalesced = false;
  ctx.snapshot.invalidate();
  ctx.resume_action = ResumeAction::kNone;
}

void TxManager::commit_open_tx(TxContext& ctx) {
  assert(ctx.active.open);
  disarm_watchdog(ctx);
  if (ctx.active.mode == TxMode::kHtm) {
    ctx.htm.commit();
  } else if (ctx.active.mode == TxMode::kStm) {
    ctx.stm.commit();
  }
  stop_recording();

  // Deferrable effects become real only now (§V-A class 3).
  const std::size_t deferred =
      (ctx.active.has_opening_deferred ? 1u : 0u) +
      ctx.embedded_deferred.size();
  if (ctx.active.has_opening_deferred) {
    ctx.active.opening_deferred.fn(env_, ctx.active.opening_deferred);
  }
  for (const DeferredOp& op : ctx.embedded_deferred) op.fn(env_, op);
  if (deferred > 0) {
    obs_.emit(obs::EventKind::kDeferredFlush, ctx.active.site, nullptr,
              static_cast<std::int64_t>(deferred));
    bump(ctx.tx_deferred, deferred);
  }

  if (ctx.active.site != kInvalidSite)
    stat_inc(sites_[ctx.active.site].stats.commits);
  // Every coalesced call in the run commits with this one transaction.
  for (const RunEntry& entry : ctx.run)
    stat_inc(sites_[entry.site].stats.commits);
  if (!ctx.run.empty()) bump(ctx.tx_runs);
  obs_.emit(obs::EventKind::kTxCommit, ctx.active.site,
            tx_mode_name(ctx.active.mode),
            static_cast<std::int64_t>(1 + ctx.run.size()));
  bump(ctx.tx_commits);
  reset_active(ctx);
}

void TxManager::pre_call_slow(SiteId next_site) {
  // First gate on this (manager, thread) pair since the cache last moved:
  // create/refresh the context, then re-enter the inline fast path (which
  // now hits).
  context();
  pre_call(next_site);
}

void TxManager::begin(SiteId site_id, std::intptr_t rv, Compensation comp) {
  TxContext& ctx = context();
  if (ctx.coalesce_armed) {
    // pre_call() kept the transaction open for this call: absorb it into the
    // run instead of paying commit + checkpoint.
    extend_run(ctx, site_id, rv, comp);
    return;
  }
  ctx.last_begin_coalesced = false;
  assert(!ctx.active.open && "pre_call() must commit before begin()");
  // Multiple protected instances can coexist in one process (prefork
  // deployments, SVII): the crash channel and the store-gate abort hook
  // are process globals, so the manager opening a transaction claims them.
  if (crash_handler() != this) {
    set_crash_handler(this);
    StoreGate::set_abort_hook(&TxManager::htm_store_abort_hook, this);
  }
  Site& site = sites_[site_id];
  stat_inc(site.stats.transactions);

  ctx.active.open = true;
  ctx.active.site = site_id;
  ctx.active.rv = rv;
  ctx.active.comp = comp;
  ctx.active.crash_count = 0;
  ctx.active.diverted = false;
  ctx.active.extendable = false;
  ctx.active.open_gate_sp = ctx.last_gate_sp;

  if (!config_.enabled || ctx.anchor == nullptr) {
    ctx.active.mode = TxMode::kNone;
    bump(ctx.tx_none);
    return;
  }
  const TxMode mode = policy_.choose_mode(site);
  if (mode == TxMode::kNone) {
    ctx.active.mode = TxMode::kNone;
    bump(ctx.tx_none);
    return;
  }
  // Snapshot from this frame's base: begin()'s own locals are dead after a
  // longjmp resume, so [frame base, anchor) covers exactly the caller
  // frames that must be restored.
  if (!ctx.snapshot.capture(__builtin_frame_address(0), ctx.anchor)) {
    const auto lo =
        reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
    const auto hi = reinterpret_cast<std::uintptr_t>(ctx.anchor);
    const std::uintptr_t span = hi > lo ? hi - lo : 0;
    if (span > StackSnapshot::kMaxBytes) {
      // The call runs unprotected because the stack region exceeds the
      // snapshot cap — almost always a misplaced anchor. Surface it: a
      // silently shrinking recovery surface is the worst failure mode.
      bump(ctx.tx_oversize);
      obs_.emit(obs::EventKind::kSnapshotOversize, site_id, nullptr,
                static_cast<std::int64_t>(span));
    }
    FIR_LOG(kWarn) << "stack snapshot failed at " << site.function << " ("
                   << site.location << "); running unprotected";
    ctx.active.mode = TxMode::kNone;
    bump(ctx.tx_none);
    return;
  }
  ctx.active.mode = mode;
  // Only a run whose OPENING call can be diverted may coalesce follow-on
  // calls: a crash anywhere in the run diverts the opening site, so an
  // unrecoverable opener would turn a divertible crash into a fatal one.
  ctx.active.extendable = site.recoverable();
  if (mode == TxMode::kHtm) {
    bump(ctx.tx_htm);
  } else {
    bump(ctx.tx_stm);
  }
  obs_.emit(obs::EventKind::kTxBegin, site_id, tx_mode_name(mode));
  start_recording(ctx, mode);
  arm_watchdog(ctx);
}

void TxManager::extend_run(TxContext& ctx, SiteId site_id, std::intptr_t rv,
                           const Compensation& comp) {
  // Checkpoint fast path: the open transaction absorbs this call. No commit,
  // no policy consult, no snapshot — rollback replays from the run's FIRST
  // call on the already-captured checkpoint. Per-call state is one RunEntry
  // (retry/commit bookkeeping) plus, when the call has a compensation, one
  // RevertRecord carrying the call's own return value.
  ctx.coalesce_armed = false;
  ctx.last_begin_coalesced = true;
  Site& site = sites_[site_id];
  stat_inc(site.stats.transactions);
  ctx.run.push_back(RunEntry{site_id, rv});
  if (comp.fn != nullptr)
    ctx.embedded_reverts.push_back(RevertRecord{comp, rv});
  // Mode tallies keep their per-call meaning (a coalesced call still ran
  // under that engine); tx_coalesced counts how many of them skipped a
  // checkpoint.
  if (ctx.active.mode == TxMode::kHtm) {
    detail::tally_bump(ctx.tx_htm);
  } else {
    detail::tally_bump(ctx.tx_stm);
  }
  detail::tally_bump(ctx.tx_coalesced);
  obs_.emit(obs::EventKind::kTxCoalesce, site_id,
            tx_mode_name(ctx.active.mode),
            static_cast<std::int64_t>(1 + ctx.run.size()));
}

void TxManager::embed_revert(SiteId embedded_site, Compensation revert) {
  stat_inc(sites_[embedded_site].stats.embedded_calls);
  TxContext& ctx = context();
  if (ctx.active.open && ctx.active.mode != TxMode::kNone)
    ctx.embedded_reverts.push_back(RevertRecord{revert, ctx.active.rv});
}

void TxManager::embed_idempotent(SiteId embedded_site) {
  stat_inc(sites_[embedded_site].stats.embedded_calls);
}

void TxManager::set_opening_deferred(DeferredOp op) {
  TxContext& ctx = context();
  assert(ctx.active.open);
  if (ctx.last_begin_coalesced) {
    // The "opening" call was coalesced into an existing run: its deferrable
    // effect rides in the embedded list — dropped on rollback (the replay
    // re-issues it), applied at the run's single commit.
    ctx.embedded_deferred.push_back(std::move(op));
    return;
  }
  ctx.active.opening_deferred = std::move(op);
  ctx.active.has_opening_deferred = true;
}

void TxManager::defer_embedded(SiteId embedded_site, DeferredOp op) {
  stat_inc(sites_[embedded_site].stats.embedded_calls);
  TxContext& ctx = context();
  if (ctx.active.open && ctx.active.mode != TxMode::kNone) {
    ctx.embedded_deferred.push_back(std::move(op));
  } else {
    // No transaction to defer into: apply immediately.
    op.fn(env_, op);
  }
}

std::uint32_t TxManager::stash_comp_data(const void* data, std::size_t len) {
  TxContext& ctx = context();
  const auto off = static_cast<std::uint32_t>(ctx.comp_arena.size());
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  ctx.comp_arena.insert(ctx.comp_arena.end(), bytes, bytes + len);
  return off;
}

void TxManager::run_compensation(TxContext& ctx, const Compensation& comp,
                                 std::intptr_t rv) {
  if (comp.fn == nullptr) return;
  comp.fn(env_, comp.a, comp.b, rv,
          ctx.comp_arena.data() + comp.data_off, comp.data_len);
}

// --- crash handling ---------------------------------------------------------

void TxManager::htm_store_abort_hook(void* self) {
  auto* mgr = static_cast<TxManager*>(self);
  // The HTM model rejected a store on the calling thread (capacity or
  // simulated async event); the cache is warm — begin() ran here.
  TxContext* ctx = mgr->try_context();
  assert(ctx != nullptr && ctx->active.open &&
         ctx->active.mode == TxMode::kHtm);
  ctx->crash_is_htm_abort = true;
  ctx->htm_abort_code = ctx->htm.pending_abort();
  ctx->crash_watch.restart();
  ctx->in_recovery = true;
  ctx->recovery_stack.run(&TxManager::recovery_trampoline, ctx);
}

void TxManager::handle_crash(CrashKind kind) {
  // Route to the faulting thread's context. Signal channel: cache-only
  // (async-signal-safe), and a recoverable fault always hits because the
  // channel pre-checked crash_recoverable() — same cache — before entering.
  // Sync channel: a locked lookup is fine (no interrupted allocator).
  TxContext* pctx = in_signal_dispatch() ? try_context() : find_context();
  if (pctx != nullptr && pctx->in_recovery)
    handle_double_fault(kind);  // both channels also pre-check
  if (pctx != nullptr) disarm_watchdog(*pctx);
  const bool via_signal = in_signal_dispatch();
  const bool open = pctx != nullptr && pctx->active.open;
  const SiteId crash_site = open ? pctx->active.site : obs::kNoSite;
  if (pctx != nullptr) {
    pctx->crash_kind = kind;
    pctx->crash_via_signal = via_signal;
    pctx->crash_watch.restart();
  }
  if (via_signal) {
    // Real fault delivered by the kernel: record the channel and the fault
    // address before anything else touches state. Trace emission is
    // async-signal-safe (lock-free ring slots, no allocation) and the
    // counters are pre-bound relaxed increments.
    const SignalCrashInfo& sig = last_signal_crash();
    obs_.emit(obs::EventKind::kSignalCaught, crash_site,
              crash_kind_name(kind),
              static_cast<std::int64_t>(
                  reinterpret_cast<std::uintptr_t>(sig.fault_addr)),
              sig.signo);
    rc_.signals_caught.inc();
  }
  if (kind == CrashKind::kHang) {
    obs_.emit(obs::EventKind::kWatchdogFire, crash_site,
              crash_kind_name(kind), config_.tx_deadline_ms);
    rc_.watchdog_fires.inc();
  }
  obs_.emit(obs::EventKind::kCrash, crash_site, crash_kind_name(kind));

  if (!open || pctx->active.mode == TxMode::kNone) {
    // No recoverable transaction covers this code on this thread: the
    // process would die. (Only reachable through the synchronous channel —
    // the signal handler pre-checks crash_recoverable() and passes
    // unrecoverable faults through to the default disposition — so
    // throwing is safe here.)
    rc_.fatal.inc();
    if (open) {
      TxContext& ctx = *pctx;
      Site& site = sites_[ctx.active.site];
      stat_inc(site.stats.crashes);
      stat_inc(site.stats.fatal);
      rc_.crashes.inc();
      log_recovery_event(RecoveryEvent{
          ctx.active.site, kind, RecoveryEvent::Action::kFatal, 0.0});
      reset_active(ctx);
    }
    stop_recording();
    throw FatalCrashError(kind, std::string("unprotected crash: ") +
                                    crash_kind_name(kind));
  }
  TxContext& ctx = *pctx;

  if (ctx.active.diverted) {
    // Crash inside the injected-error handler: "there will typically not be
    // an error handler for the error handler" (§VII). Sync channel only,
    // same as above.
    Site& site = sites_[ctx.active.site];
    stat_inc(site.stats.crashes);
    stat_inc(site.stats.fatal);
    rc_.crashes.inc();
    rc_.fatal.inc();
    log_recovery_event(RecoveryEvent{
        ctx.active.site, kind, RecoveryEvent::Action::kFatal, 0.0});
    if (ctx.active.mode == TxMode::kStm) {
      ctx.stm.rollback();
    } else if (ctx.active.mode == TxMode::kHtm) {
      ctx.htm.abort(HtmAbortCode::kExplicit);
    }
    stop_recording();
    reset_active(ctx);
    throw FatalCrashError(kind, "crash inside error-handling code");
  }

  if (ctx.active.mode == TxMode::kHtm) {
    // A fault inside a hardware transaction first surfaces as a TSX abort;
    // the runtime re-executes under STM to distinguish a resource abort
    // from a real crash (§IV-C). Model that exactly. (True for the signal
    // channel too: delivering a signal aborts a real TSX transaction.)
    ctx.crash_is_htm_abort = true;
    ctx.htm_abort_code = HtmAbortCode::kExplicit;
  } else {
    ctx.crash_is_htm_abort = false;
  }
  // From here until resume() any further crash on this thread is a double
  // fault. Sibling threads' transactions are untouched: their contexts,
  // undo logs and snapshots are their own.
  ctx.in_recovery = true;
  ctx.recovery_stack.run(&TxManager::recovery_trampoline, &ctx);
}

void TxManager::handle_double_fault(CrashKind kind) {
  // A crash while recovery itself was running on this thread: rollback
  // state is half applied, so re-entering recovery would corrupt it. Record
  // what we can without locks or allocation, then terminate with the
  // diagnostic exit code. The trace ring is lost (process exits), but
  // exporters wired to stderr flushed-on-emit still show the event in
  // practice.
  TxContext* ctx = try_context();
  if (ctx != nullptr) disarm_watchdog(*ctx);
  obs_.emit(obs::EventKind::kDoubleFault,
            ctx != nullptr && ctx->active.open ? ctx->active.site
                                               : obs::kNoSite,
            crash_kind_name(kind));
  rc_.double_faults.inc();
  // Structured diagnostic for whoever reaps the _exit(70): the site whose
  // recovery was in flight and the transaction depth (opening call +
  // coalesced extensions). All plain reads — site strings live in the
  // registry's stable storage, so c_str() allocates nothing.
  DoubleFaultDiag diag;
  if (ctx != nullptr && ctx->active.open) {
    diag.site = ctx->active.site;
    const Site& site = sites_[ctx->active.site];
    diag.site_function = site.function.c_str();
    diag.site_location = site.location.c_str();
    diag.tx_depth = 1 + static_cast<std::uint32_t>(ctx->run.size());
  }
  die_double_fault(kind, in_signal_dispatch() ? "signal" : "sync", &diag);
}

void TxManager::recovery_trampoline(void* arg) {
  auto* ctx = static_cast<TxContext*>(arg);
  ctx->mgr->recovery_step(*ctx);
}

void TxManager::recovery_step(TxContext& ctx) {
  Site& site = sites_[ctx.active.site];
  // A crash in the window between an armed pre_call() and the next begin()
  // is absorbed by the open run: rollback replays from the run's first call
  // either way, and the would-be extension re-executes after resume.
  ctx.coalesce_armed = false;

  // 1. Roll back memory operations performed after the library call: the
  //    tracked-store log (HTM write-set discard / STM undo walk) and the
  //    native stack image. Safe to restore the stack here: we are executing
  //    on this thread's detached recovery stack, and compensations below
  //    must observe — and may overwrite — the checkpoint-time buffer
  //    contents (§V-B: "after rolling back memory operations that occurred
  //    after the library call and running its compensation action, we also
  //    restore the library call-affected memory areas").
  if (ctx.crash_is_htm_abort) {
    obs_.emit(obs::EventKind::kHtmAbort, ctx.active.site,
              htm_abort_code_name(ctx.htm_abort_code));
    ctx.htm.abort(ctx.htm_abort_code);
  } else {
    ctx.stm.rollback();
  }
  stop_recording();
  ctx.snapshot.restore();
  obs_.emit(obs::EventKind::kRollback, ctx.active.site,
            ctx.crash_is_htm_abort ? "htm" : "stm");
  rc_.rollbacks.inc();

  // 2. Revert embedded library calls, newest first; drop their deferred
  //    effects (re-execution will re-issue them).
  for (auto it = ctx.embedded_reverts.rbegin();
       it != ctx.embedded_reverts.rend(); ++it) {
    run_compensation(ctx, it->comp, it->rv);
  }
  ctx.embedded_reverts.clear();
  ctx.embedded_deferred.clear();

  // De-coalesce: every site in an aborted run loses coalescing eligibility
  // for good (policy flag is sticky). The replay after resume re-executes
  // each coalesced call under its OWN transaction, restoring per-call
  // isolation exactly where coalescing proved unsafe.
  if (!ctx.run.empty()) {
    policy_.on_run_abort(site);
    for (const RunEntry& entry : ctx.run)
      policy_.on_run_abort(sites_[entry.site]);
    ctx.run.clear();
  }

  // 3. Decide how to resume.
  if (ctx.crash_is_htm_abort) {
    ctx.crash_is_htm_abort = false;
    const TxMode next = policy_.on_htm_abort(site);
    if (next != TxMode::kNone) {
      obs_.emit(obs::EventKind::kStmFallback, ctx.active.site,
                htm_abort_code_name(ctx.htm_abort_code));
    }
    ctx.resume_action = next == TxMode::kNone
                            ? ResumeAction::kRetryUnprotected
                            : ResumeAction::kRetryStm;
  } else {
    ++ctx.active.crash_count;
    stat_inc(site.stats.crashes);
    rc_.crashes.inc();
    const double latency = ctx.crash_watch.elapsed_seconds();
    const auto latency_ns = static_cast<std::int64_t>(latency * 1e9);
    // Crash-storm backstop: a site that keeps proving its faults persistent
    // (>= storm_divert_threshold past diversions) skips the transient-retry
    // attempt — each skipped retry would re-execute the faulty region only
    // to crash again.
    const bool storm_skip = policy_.storm_skip_retry(site);
    if (ctx.active.crash_count <= config_.max_crash_retries && !storm_skip) {
      stat_inc(site.stats.retries);
      ctx.resume_action = ResumeAction::kRetryStm;
      add_recovery_latency(latency);
      obs_.emit(obs::EventKind::kRetry, ctx.active.site,
                crash_kind_name(ctx.crash_kind), ctx.active.crash_count,
                latency_ns);
      rc_.retries.inc();
      log_recovery_event(RecoveryEvent{ctx.active.site, ctx.crash_kind,
                                       RecoveryEvent::Action::kRetry,
                                       latency});
    } else if (site.recoverable() ||
               (site.divertible() && ctx.active.comp.fn != nullptr)) {
      // Persistent fault: compensate the opening call and inject its error.
      // The second disjunct is the dynamic durability refinement
      // (docs/DURABILITY.md): a statically irrecoverable opener (write,
      // pwrite) whose wrapper proved THIS call touched only unsynced page
      // cache — and supplied the truncate-back compensation — can divert
      // after all. Writes that reached durable media arrive with a null
      // compensation and still fall through to fatal.
      const bool storm_divert =
          storm_skip && ctx.active.crash_count <= config_.max_crash_retries;
      obs_.emit(obs::EventKind::kCompensation, ctx.active.site,
                ctx.active.comp.fn != nullptr ? "revert" : "none");
      rc_.compensations.inc();
      run_compensation(ctx, ctx.active.comp, ctx.active.rv);
      ctx.active.has_opening_deferred = false;
      stat_inc(site.stats.diversions);
      policy_.on_diversion(site);
      ctx.resume_action = ResumeAction::kDivert;
      add_recovery_latency(latency);
      obs_.emit(obs::EventKind::kFaultInjection, ctx.active.site,
                storm_divert ? "storm" : crash_kind_name(ctx.crash_kind),
                site.spec->error.return_value, site.spec->error.errno_value);
      rc_.diversions.inc();
      if (storm_divert) rc_.storm_diverts.inc();
      log_recovery_event(RecoveryEvent{ctx.active.site, ctx.crash_kind,
                                       RecoveryEvent::Action::kDivert,
                                       latency});
      if (!ctx.crash_via_signal) {
        // stdio is off-limits when the crash arrived through the signal
        // channel (the fault may have interrupted code holding the stdio or
        // allocator locks); the kFaultInjection trace event carries the
        // same information either way.
        FIR_LOG(kInfo) << "diverting persistent crash at " << site.function
                       << " (" << site.location << "): injecting retval="
                       << site.spec->error.return_value
                       << " errno=" << site.spec->error.errno_value;
      }
    } else {
      stat_inc(site.stats.fatal);
      ctx.resume_action = ResumeAction::kFatal;
      rc_.fatal.inc();
      log_recovery_event(RecoveryEvent{ctx.active.site, ctx.crash_kind,
                                       RecoveryEvent::Action::kFatal,
                                       latency});
    }
  }

  // 4. Resume at the entry gate on the restored stack.
  std::longjmp(ctx.gate_buf, 1);
}

std::intptr_t TxManager::resume() {
  // Back on the application stack with rollback complete: the recovery
  // window (double-fault escalation) and the signal-dispatch latch close
  // here, whichever action follows.
  TxContext& ctx = context();
  ctx.in_recovery = false;
  ctx.crash_via_signal = false;
  clear_signal_dispatch();
  const ResumeAction action = ctx.resume_action;
  ctx.resume_action = ResumeAction::kNone;
  switch (action) {
    case ResumeAction::kRetryStm:
      ctx.active.mode = TxMode::kStm;
      bump(ctx.tx_stm);
      start_recording(ctx, TxMode::kStm);
      arm_watchdog(ctx);
      return ctx.active.rv;
    case ResumeAction::kRetryUnprotected:
      ctx.active.mode = TxMode::kNone;
      bump(ctx.tx_none);
      stop_recording();
      return ctx.active.rv;
    case ResumeAction::kDivert: {
      const Site& site = sites_[ctx.active.site];
      ctx.active.diverted = true;
      ctx.active.mode = TxMode::kStm;
      bump(ctx.tx_stm);
      start_recording(ctx, TxMode::kStm);
      // No watchdog over the diverted region: a crash inside the injected
      // error handler is fatal by design (§VII), and crash_recoverable() is
      // already false here, so a SIGALRM would pass through and kill the
      // process with a timer signal instead of a diagnosable exit.
      env_.set_errno(site.spec->error.errno_value);
      return site.spec->error.return_value;
    }
    case ResumeAction::kFatal: {
      // Copy the strings out before reset: the message outlives the frame,
      // and the Site itself (atomics) is no longer copyable as a whole.
      const Site& site = sites_[ctx.active.site];
      const std::string function = site.function;
      const std::string location = site.location;
      const CrashKind kind = ctx.crash_kind;
      reset_active(ctx);
      stop_recording();
      throw FatalCrashError(
          kind, "unrecoverable crash in transaction at " + function + " (" +
                    location + "): opening call is not divertible/compensable");
    }
    case ResumeAction::kNone:
      break;
  }
  assert(false && "resume() without a pending resume action");
  return ctx.active.rv;
}

void TxManager::log_recovery_event(const RecoveryEvent& event) {
  // Stays within the construction-time reservation: push_back never grows
  // the vector (the recovery step can be running after a real signal, where
  // malloc is off-limits). Beyond the cap, drop and count. The spinlock
  // (allocation-free, async-signal-safe on this thread: recovery cannot be
  // interrupted by itself — a crash here is a double fault) serializes
  // concurrent recoveries on sibling threads.
  while (recovery_log_lock_.test_and_set(std::memory_order_acquire)) {
  }
  const bool dropped = recovery_log_.size() >= config_.recovery_log_cap;
  if (!dropped) recovery_log_.push_back(event);
  recovery_log_lock_.clear(std::memory_order_release);
  if (dropped) rc_.log_dropped.inc();
}

void TxManager::add_recovery_latency(double seconds) {
  while (recovery_log_lock_.test_and_set(std::memory_order_acquire)) {
  }
  recovery_latency_.add(seconds);
  recovery_log_lock_.clear(std::memory_order_release);
}

void TxManager::arm_watchdog(TxContext& ctx) {
  if (!watchdog_enabled()) return;
  // Per-thread one-shot timer on the transaction thread's CPU clock,
  // delivered as SIGALRM to that thread (SIGEV_THREAD_ID): a worker that
  // spins past the deadline gets its own hang episode, and a sibling's
  // long-but-live transaction cannot be misfired at. The CPU clock also
  // keeps a descheduled (merely slow) thread from being declared hung.
  if (ctx.wd_created && ctx.wd_tid != ctx.tid) {
    // Context adopted by a recycled thread id: retarget the timer.
    timer_delete(ctx.wd_timer);
    ctx.wd_created = false;
  }
  if (!ctx.wd_created && !ctx.wd_fallback_itimer) {
    sigevent sev{};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGALRM;
    sev.sigev_notify_thread_id = ctx.tid;
    if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &ctx.wd_timer) == 0) {
      ctx.wd_created = true;
      ctx.wd_tid = ctx.tid;
    } else {
      // No per-thread timer support: fall back to the historical
      // process-wide wall-clock timer (single-threaded semantics).
      ctx.wd_fallback_itimer = true;
    }
  }
  if (ctx.wd_created) {
    itimerspec its{};
    its.it_value.tv_sec = config_.tx_deadline_ms / 1000;
    its.it_value.tv_nsec =
        static_cast<long>((config_.tx_deadline_ms % 1000) * 1000000L);
    timer_settime(ctx.wd_timer, 0, &its, nullptr);
  } else {
    itimerval timer{};
    timer.it_value.tv_sec = config_.tx_deadline_ms / 1000;
    timer.it_value.tv_usec =
        static_cast<suseconds_t>((config_.tx_deadline_ms % 1000) * 1000);
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
}

void TxManager::disarm_watchdog(TxContext& ctx) {
  if (!watchdog_enabled()) return;
  if (ctx.wd_created) {
    itimerspec its{};  // zero it_value disarms
    timer_settime(ctx.wd_timer, 0, &its, nullptr);
  } else if (ctx.wd_fallback_itimer) {
    itimerval timer{};
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
}

// --- aggregation ------------------------------------------------------------

HtmStats TxManager::htm_stats() const {
  HtmStats total{};
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_) {
    const HtmStats& s = ctx.htm.stats();
    total.begun += s.begun;
    total.committed += s.committed;
    total.aborted_capacity += s.aborted_capacity;
    total.aborted_conflict += s.aborted_conflict;
    total.aborted_interrupt += s.aborted_interrupt;
    total.aborted_explicit += s.aborted_explicit;
    total.stores += s.stores;
    total.lines_dirtied += s.lines_dirtied;
  }
  return total;
}

StmStats TxManager::stm_stats() const {
  StmStats total{};
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_) {
    const StmStats s = ctx.stm.stats();
    total.begun += s.begun;
    total.committed += s.committed;
    total.rolled_back += s.rolled_back;
    total.stores += s.stores;
    total.stores_elided += s.stores_elided;
    total.filter_hits += s.filter_hits;
    total.bytes_logged += s.bytes_logged;
    // Peak is a high-water mark, not a flow: the process-wide peak is the
    // largest any one thread's log grew.
    if (s.peak_log_bytes > total.peak_log_bytes)
      total.peak_log_bytes = s.peak_log_bytes;
  }
  return total;
}

std::uint64_t TxManager::transactions_htm() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_)
    total += ctx.tx_htm.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t TxManager::transactions_stm() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_)
    total += ctx.tx_stm.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t TxManager::transactions_coalesced() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_)
    total += ctx.tx_coalesced.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t TxManager::coalesced_runs() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_)
    total += ctx.tx_runs.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t TxManager::transactions_unprotected() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (const TxContext& ctx : contexts_)
    total += ctx.tx_none.load(std::memory_order_relaxed);
  return total;
}

std::size_t TxManager::thread_count() const {
  std::lock_guard<std::mutex> lock(contexts_mu_);
  return contexts_.size();
}

std::size_t TxManager::instrumentation_bytes() const {
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    for (const TxContext& ctx : contexts_) {
      total += ctx.snapshot.footprint_bytes();
      // STM undo log + first-write filter (actual reserved capacity; bounded
      // across transactions by config_.undo_retain_bytes).
      total += ctx.stm.footprint_bytes();
      total += ctx.comp_arena.capacity();
      total += ctx.embedded_reverts.capacity() * sizeof(RevertRecord);
      total += ctx.embedded_deferred.capacity() * sizeof(DeferredOp);
      total += ctx.run.capacity() * sizeof(RunEntry);
      // HTM write-set bookkeeping: line filter + saved images + occupancy.
      total += ctx.htm.footprint_bytes();
    }
  }
  // Per-site gate state (the tx_gate[] array and counters).
  total += sites_.size() * (sizeof(GateState) + sizeof(SiteStats));
  // Trace ring slots (token 2-slot ring when tracing is disabled).
  total += obs_.trace().capacity() * sizeof(obs::TraceEvent);
  return total;
}

void TxManager::reset_stats() {
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    for (TxContext& ctx : contexts_) {
      ctx.htm.reset_stats();
      ctx.stm.reset_stats();
      ctx.gate_calls.store(0, std::memory_order_relaxed);
      ctx.tx_htm.store(0, std::memory_order_relaxed);
      ctx.tx_stm.store(0, std::memory_order_relaxed);
      ctx.tx_none.store(0, std::memory_order_relaxed);
      ctx.tx_commits.store(0, std::memory_order_relaxed);
      ctx.tx_deferred.store(0, std::memory_order_relaxed);
      ctx.tx_coalesced.store(0, std::memory_order_relaxed);
      ctx.tx_runs.store(0, std::memory_order_relaxed);
      ctx.tx_oversize.store(0, std::memory_order_relaxed);
      ctx.snapshot.reset_tallies();
    }
  }
  while (recovery_log_lock_.test_and_set(std::memory_order_acquire)) {
  }
  recovery_log_.clear();
  recovery_log_lock_.clear(std::memory_order_release);
  // Zeroes every registry metric (recovery_latency_ among them); the next
  // snapshot's collectors re-publish from the freshly zeroed tallies. Never
  // called holding contexts_mu_ — snapshot collectors lock metrics →
  // contexts, and inverting that order here would deadlock.
  obs_.metrics().reset();
  obs_.trace().clear();
  for (Site& site : sites_.all_mutable()) site.stats = SiteStats{};
}

}  // namespace fir
