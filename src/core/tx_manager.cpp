#include "core/tx_manager.h"

#include <sys/time.h>

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace fir {

namespace {
std::uint64_t g_next_generation = 1;

bool env_u64(const char* name, unsigned long long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return false;
  *out = parsed;
  return true;
}

/// FIR_* environment overrides, mirroring the obs::ObsConfig::from_env
/// operator-first convention. Runs before any sub-object is constructed so
/// the policy and engines see the resolved configuration.
TxManagerConfig apply_runtime_env(TxManagerConfig config) {
  unsigned long long v = 0;
  if (env_u64(kEnvUndoRetainBytes, &v))
    config.undo_retain_bytes = static_cast<std::size_t>(v);
  if (const char* s = std::getenv(kEnvStmFilter)) {
    config.stm_write_filter = !(s[0] == '0' && s[1] == '\0');
  }
  if (signal_channel_env_enabled()) config.real_signals = true;
  if (env_u64(kEnvTxDeadlineMs, &v))
    config.tx_deadline_ms = static_cast<std::uint32_t>(v);
  if (env_u64(kEnvRecoveryLogCap, &v))
    config.recovery_log_cap = static_cast<std::size_t>(v);
  if (env_u64(kEnvStormThreshold, &v))
    config.policy.storm_divert_threshold = static_cast<std::uint32_t>(v);
  return config;
}

const char* tx_mode_name(TxMode mode) {
  switch (mode) {
    case TxMode::kNone: return "none";
    case TxMode::kHtm: return "htm";
    case TxMode::kStm: return "stm";
  }
  return "?";
}
}  // namespace

TxManager::RecoveryCounters::RecoveryCounters(obs::MetricsRegistry& reg)
    : crashes(reg.counter("recovery.crashes")),
      rollbacks(reg.counter("recovery.rollbacks")),
      retries(reg.counter("recovery.retries")),
      compensations(reg.counter("recovery.compensations")),
      diversions(reg.counter("recovery.diversions")),
      fatal(reg.counter("recovery.fatal")),
      signals_caught(reg.counter("recovery.signals_caught")),
      double_faults(reg.counter("recovery.double_faults")),
      watchdog_fires(reg.counter("recovery.watchdog_fires")),
      storm_diverts(reg.counter("recovery.storm_diverts")),
      log_dropped(reg.counter("recovery.log_dropped")) {}

TxManager::TxManager(Env& env, TxManagerConfig config)
    : env_(env),
      config_(apply_runtime_env(std::move(config))),
      obs_(obs::ObsConfig::from_env(config_.obs)),
      policy_(config_.policy),
      htm_(config_.htm),
      rc_(obs_.metrics()),
      recovery_latency_(obs_.metrics().histogram("recovery.latency_seconds")),
      generation_(g_next_generation++) {
  previous_handler_ = set_crash_handler(this);
  StoreGate::set_abort_hook(&TxManager::htm_store_abort_hook, this);
  stm_.set_retention(config_.undo_retain_bytes);
  stm_.set_filter_enabled(config_.stm_write_filter);
  embedded_reverts_.reserve(16);
  embedded_deferred_.reserve(16);
  comp_arena_.reserve(4096);
  // Reserve the full episode cap up front: log_recovery_event may run on
  // the recovery stack after a real signal, where growing a vector
  // (malloc under a possibly-interrupted allocator lock) would deadlock.
  recovery_log_.reserve(config_.recovery_log_cap);
  if (config_.real_signals) signals_installed_ = install_signal_channel();

  // Event timestamps follow the simulation's virtual time, so traces line
  // up with the Env's syscall accounting.
  obs_.set_clock(&env_.clock());
  policy_.set_observability(&obs_);
  htm_.register_metrics(obs_.metrics());
  stm_.register_metrics(obs_.metrics());
  obs_.metrics().add_collector([this](obs::MetricsRegistry& reg) {
    // Gate-path tallies are plain members (no atomic RMW per gate call);
    // copy them into the registry only when a snapshot is taken.
    reg.counter("gate.calls").set(gate_calls_);
    reg.counter("tx.htm").set(tx_htm_);
    reg.counter("tx.stm").set(tx_stm_);
    reg.counter("tx.unprotected").set(tx_none_);
    reg.counter("tx.commits").set(tx_commits_);
    reg.counter("tx.deferred_flushed").set(tx_deferred_);
    reg.gauge("gate.sites").set(static_cast<double>(sites_.size()));
    reg.gauge("mem.instrumentation_bytes")
        .set(static_cast<double>(instrumentation_bytes()));
    reg.gauge("trace.emitted")
        .set(static_cast<double>(obs_.trace().total_emitted()));
    reg.gauge("trace.dropped")
        .set(static_cast<double>(obs_.trace().dropped()));
  });
}

TxManager::~TxManager() {
  disarm_watchdog();
  quiesce();
  obs_.flush_outputs(trace_symbolizer());
  if (signals_installed_) {
    uninstall_signal_channel();
    signals_installed_ = false;
  }
  // Only release the process globals if this manager currently owns them
  // (another live instance may have claimed them since).
  if (crash_handler() == this) {
    StoreGate::set_abort_hook(nullptr, nullptr);
    StoreGate::set_recorder(nullptr);
    set_crash_handler(previous_handler_ == this ? nullptr
                                                : previous_handler_);
  }
}

obs::SiteSymbolizer TxManager::trace_symbolizer() const {
  const SiteRegistry* sites = &sites_;
  return [sites](std::uint32_t id, std::string* function,
                 std::string* location) {
    if (id >= sites->size()) return false;
    const Site& site = (*sites)[static_cast<SiteId>(id)];
    *function = site.function;
    *location = site.location;
    return true;
  };
}

SiteId TxManager::register_site(std::string_view function,
                                std::string_view location) {
  return sites_.intern(function, location);
}

void TxManager::start_recording(TxMode mode) {
  // begin() bumps the engine's filter epoch (O(1) reset); bind_gate()
  // installs the devirtualized StoreGate fast path for that engine.
  if (mode == TxMode::kHtm) {
    htm_.begin();
    htm_.bind_gate();
  } else if (mode == TxMode::kStm) {
    stm_.begin();
    stm_.bind_gate();
  } else {
    StoreGate::set_recorder(nullptr);
  }
}

void TxManager::stop_recording() { StoreGate::set_recorder(nullptr); }

void TxManager::reset_active() {
  active_ = ActiveTx{};
  embedded_reverts_.clear();
  embedded_deferred_.clear();
  comp_arena_.clear();
  snapshot_.invalidate();
  resume_action_ = ResumeAction::kNone;
}

void TxManager::commit_open_tx() {
  assert(active_.open);
  disarm_watchdog();
  if (active_.mode == TxMode::kHtm) {
    htm_.commit();
  } else if (active_.mode == TxMode::kStm) {
    stm_.commit();
  }
  stop_recording();

  // Deferrable effects become real only now (§V-A class 3).
  const std::size_t deferred =
      (active_.has_opening_deferred ? 1u : 0u) + embedded_deferred_.size();
  if (active_.has_opening_deferred) {
    active_.opening_deferred.fn(env_, active_.opening_deferred.a,
                                active_.opening_deferred.b);
  }
  for (const DeferredOp& op : embedded_deferred_) op.fn(env_, op.a, op.b);
  if (deferred > 0) {
    obs_.emit(obs::EventKind::kDeferredFlush, active_.site, nullptr,
              static_cast<std::int64_t>(deferred));
    tx_deferred_ += deferred;
  }

  if (active_.site != kInvalidSite) ++sites_[active_.site].stats.commits;
  obs_.emit(obs::EventKind::kTxCommit, active_.site,
            tx_mode_name(active_.mode));
  ++tx_commits_;
  reset_active();
}

void TxManager::pre_call() {
  ++gate_calls_;
  if (active_.open) commit_open_tx();
  comp_arena_.clear();
}

void TxManager::begin(SiteId site_id, std::intptr_t rv, Compensation comp) {
  assert(!active_.open && "pre_call() must commit before begin()");
  // Multiple protected instances can coexist in one process (prefork
  // deployments, SVII): the crash channel and the store-gate abort hook
  // are process globals, so the manager opening a transaction claims them.
  if (crash_handler() != this) {
    set_crash_handler(this);
    StoreGate::set_abort_hook(&TxManager::htm_store_abort_hook, this);
  }
  Site& site = sites_[site_id];
  ++site.stats.transactions;

  active_.open = true;
  active_.site = site_id;
  active_.rv = rv;
  active_.comp = comp;
  active_.crash_count = 0;
  active_.diverted = false;

  if (!config_.enabled || anchor_ == nullptr) {
    active_.mode = TxMode::kNone;
    ++tx_none_;
    return;
  }
  const TxMode mode = policy_.choose_mode(site);
  if (mode == TxMode::kNone) {
    active_.mode = TxMode::kNone;
    ++tx_none_;
    return;
  }
  // Snapshot from this frame's base: begin()'s own locals are dead after a
  // longjmp resume, so [frame base, anchor) covers exactly the caller
  // frames that must be restored.
  if (!snapshot_.capture(__builtin_frame_address(0), anchor_)) {
    FIR_LOG(kWarn) << "stack snapshot failed at " << site.function << " ("
                   << site.location << "); running unprotected";
    active_.mode = TxMode::kNone;
    ++tx_none_;
    return;
  }
  active_.mode = mode;
  if (mode == TxMode::kHtm) {
    ++tx_htm_;
  } else {
    ++tx_stm_;
  }
  obs_.emit(obs::EventKind::kTxBegin, site_id, tx_mode_name(mode));
  start_recording(mode);
  arm_watchdog();
}

void TxManager::embed_revert(SiteId embedded_site, Compensation revert) {
  ++sites_[embedded_site].stats.embedded_calls;
  if (active_.open && active_.mode != TxMode::kNone)
    embedded_reverts_.push_back(revert);
}

void TxManager::embed_idempotent(SiteId embedded_site) {
  ++sites_[embedded_site].stats.embedded_calls;
}

void TxManager::set_opening_deferred(DeferredOp op) {
  assert(active_.open);
  active_.opening_deferred = op;
  active_.has_opening_deferred = true;
}

void TxManager::defer_embedded(SiteId embedded_site, DeferredOp op) {
  ++sites_[embedded_site].stats.embedded_calls;
  if (active_.open && active_.mode != TxMode::kNone) {
    embedded_deferred_.push_back(op);
  } else {
    // No transaction to defer into: apply immediately.
    op.fn(env_, op.a, op.b);
  }
}

std::uint32_t TxManager::stash_comp_data(const void* data, std::size_t len) {
  const auto off = static_cast<std::uint32_t>(comp_arena_.size());
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  comp_arena_.insert(comp_arena_.end(), bytes, bytes + len);
  return off;
}

void TxManager::run_compensation(const Compensation& comp) {
  if (comp.fn == nullptr) return;
  comp.fn(env_, comp.a, comp.b, active_.rv,
          comp_arena_.data() + comp.data_off, comp.data_len);
}

// --- crash handling ---------------------------------------------------------

void TxManager::htm_store_abort_hook(void* self) {
  auto* mgr = static_cast<TxManager*>(self);
  // The HTM model rejected a store (capacity or simulated async event).
  assert(mgr->active_.open && mgr->active_.mode == TxMode::kHtm);
  mgr->crash_is_htm_abort_ = true;
  mgr->htm_abort_code_ = mgr->htm_.pending_abort();
  mgr->crash_watch_.restart();
  mgr->in_recovery_ = true;
  mgr->recovery_stack_.run(&TxManager::recovery_trampoline, mgr);
}

void TxManager::handle_crash(CrashKind kind) {
  if (in_recovery_) handle_double_fault(kind);  // both channels also pre-check
  disarm_watchdog();
  crash_kind_ = kind;
  crash_via_signal_ = in_signal_dispatch();
  crash_watch_.restart();
  if (crash_via_signal_) {
    // Real fault delivered by the kernel: record the channel and the fault
    // address before anything else touches state. Trace emission is
    // async-signal-safe (lock-free ring slots, no allocation) and the
    // counters are pre-bound plain increments.
    const SignalCrashInfo& sig = last_signal_crash();
    obs_.emit(obs::EventKind::kSignalCaught,
              active_.open ? active_.site : obs::kNoSite,
              crash_kind_name(kind),
              static_cast<std::int64_t>(
                  reinterpret_cast<std::uintptr_t>(sig.fault_addr)),
              sig.signo);
    rc_.signals_caught.inc();
  }
  if (kind == CrashKind::kHang) {
    obs_.emit(obs::EventKind::kWatchdogFire,
              active_.open ? active_.site : obs::kNoSite,
              crash_kind_name(kind), config_.tx_deadline_ms);
    rc_.watchdog_fires.inc();
  }
  obs_.emit(obs::EventKind::kCrash,
            active_.open ? active_.site : obs::kNoSite,
            crash_kind_name(kind));

  if (!active_.open || active_.mode == TxMode::kNone) {
    // No recoverable transaction covers this code: the process would die.
    // (Only reachable through the synchronous channel — the signal handler
    // pre-checks crash_recoverable() and passes unrecoverable faults
    // through to the default disposition — so throwing is safe here.)
    rc_.fatal.inc();
    if (active_.open) {
      Site& site = sites_[active_.site];
      ++site.stats.crashes;
      ++site.stats.fatal;
      rc_.crashes.inc();
      log_recovery_event(RecoveryEvent{
          active_.site, kind, RecoveryEvent::Action::kFatal, 0.0});
      reset_active();
    }
    stop_recording();
    throw FatalCrashError(kind, std::string("unprotected crash: ") +
                                    crash_kind_name(kind));
  }

  if (active_.diverted) {
    // Crash inside the injected-error handler: "there will typically not be
    // an error handler for the error handler" (§VII). Sync channel only,
    // same as above.
    Site& site = sites_[active_.site];
    ++site.stats.crashes;
    ++site.stats.fatal;
    rc_.crashes.inc();
    rc_.fatal.inc();
    log_recovery_event(RecoveryEvent{
        active_.site, kind, RecoveryEvent::Action::kFatal, 0.0});
    if (active_.mode == TxMode::kStm) {
      stm_.rollback();
    } else if (active_.mode == TxMode::kHtm) {
      htm_.abort(HtmAbortCode::kExplicit);
    }
    stop_recording();
    reset_active();
    throw FatalCrashError(kind, "crash inside error-handling code");
  }

  if (active_.mode == TxMode::kHtm) {
    // A fault inside a hardware transaction first surfaces as a TSX abort;
    // the runtime re-executes under STM to distinguish a resource abort
    // from a real crash (§IV-C). Model that exactly. (True for the signal
    // channel too: delivering a signal aborts a real TSX transaction.)
    crash_is_htm_abort_ = true;
    htm_abort_code_ = HtmAbortCode::kExplicit;
  } else {
    crash_is_htm_abort_ = false;
  }
  // From here until resume() any further crash is a double fault.
  in_recovery_ = true;
  recovery_stack_.run(&TxManager::recovery_trampoline, this);
}

void TxManager::handle_double_fault(CrashKind kind) {
  // A crash while recovery itself was running: rollback state is half
  // applied, so re-entering recovery would corrupt it. Record what we can
  // without locks or allocation, then terminate with the diagnostic exit
  // code. The trace ring is lost (process exits), but exporters wired to
  // stderr flushed-on-emit still show the event in practice.
  disarm_watchdog();
  obs_.emit(obs::EventKind::kDoubleFault,
            active_.open ? active_.site : obs::kNoSite,
            crash_kind_name(kind));
  rc_.double_faults.inc();
  die_double_fault(kind, in_signal_dispatch() ? "signal" : "sync");
}

void TxManager::recovery_trampoline(void* self) {
  static_cast<TxManager*>(self)->recovery_step();
}

void TxManager::recovery_step() {
  Site& site = sites_[active_.site];

  // 1. Roll back memory operations performed after the library call: the
  //    tracked-store log (HTM write-set discard / STM undo walk) and the
  //    native stack image. Safe to restore the stack here: we are executing
  //    on the detached recovery stack, and compensations below must observe
  //    — and may overwrite — the checkpoint-time buffer contents (§V-B:
  //    "after rolling back memory operations that occurred after the
  //    library call and running its compensation action, we also restore
  //    the library call-affected memory areas").
  if (crash_is_htm_abort_) {
    obs_.emit(obs::EventKind::kHtmAbort, active_.site,
              htm_abort_code_name(htm_abort_code_));
    htm_.abort(htm_abort_code_);
  } else {
    stm_.rollback();
  }
  stop_recording();
  snapshot_.restore();
  obs_.emit(obs::EventKind::kRollback, active_.site,
            crash_is_htm_abort_ ? "htm" : "stm");
  rc_.rollbacks.inc();

  // 2. Revert embedded library calls, newest first; drop their deferred
  //    effects (re-execution will re-issue them).
  for (auto it = embedded_reverts_.rbegin(); it != embedded_reverts_.rend();
       ++it) {
    run_compensation(*it);
  }
  embedded_reverts_.clear();
  embedded_deferred_.clear();

  // 3. Decide how to resume.
  if (crash_is_htm_abort_) {
    crash_is_htm_abort_ = false;
    const TxMode next = policy_.on_htm_abort(site);
    if (next != TxMode::kNone) {
      obs_.emit(obs::EventKind::kStmFallback, active_.site,
                htm_abort_code_name(htm_abort_code_));
    }
    resume_action_ = next == TxMode::kNone ? ResumeAction::kRetryUnprotected
                                           : ResumeAction::kRetryStm;
  } else {
    ++active_.crash_count;
    ++site.stats.crashes;
    rc_.crashes.inc();
    const double latency = crash_watch_.elapsed_seconds();
    const auto latency_ns = static_cast<std::int64_t>(latency * 1e9);
    // Crash-storm backstop: a site that keeps proving its faults persistent
    // (>= storm_divert_threshold past diversions) skips the transient-retry
    // attempt — each skipped retry would re-execute the faulty region only
    // to crash again.
    const bool storm_skip = policy_.storm_skip_retry(site);
    if (active_.crash_count <= config_.max_crash_retries && !storm_skip) {
      ++site.stats.retries;
      resume_action_ = ResumeAction::kRetryStm;
      recovery_latency_.add(latency);
      obs_.emit(obs::EventKind::kRetry, active_.site,
                crash_kind_name(crash_kind_), active_.crash_count, latency_ns);
      rc_.retries.inc();
      log_recovery_event(RecoveryEvent{active_.site, crash_kind_,
                                       RecoveryEvent::Action::kRetry,
                                       latency});
    } else if (site.recoverable()) {
      // Persistent fault: compensate the opening call and inject its error.
      const bool storm_divert =
          storm_skip && active_.crash_count <= config_.max_crash_retries;
      obs_.emit(obs::EventKind::kCompensation, active_.site,
                active_.comp.fn != nullptr ? "revert" : "none");
      rc_.compensations.inc();
      run_compensation(active_.comp);
      active_.has_opening_deferred = false;
      ++site.stats.diversions;
      policy_.on_diversion(site);
      resume_action_ = ResumeAction::kDivert;
      recovery_latency_.add(latency);
      obs_.emit(obs::EventKind::kFaultInjection, active_.site,
                storm_divert ? "storm" : crash_kind_name(crash_kind_),
                site.spec->error.return_value, site.spec->error.errno_value);
      rc_.diversions.inc();
      if (storm_divert) rc_.storm_diverts.inc();
      log_recovery_event(RecoveryEvent{active_.site, crash_kind_,
                                       RecoveryEvent::Action::kDivert,
                                       latency});
      if (!crash_via_signal_) {
        // stdio is off-limits when the crash arrived through the signal
        // channel (the fault may have interrupted code holding the stdio or
        // allocator locks); the kFaultInjection trace event carries the
        // same information either way.
        FIR_LOG(kInfo) << "diverting persistent crash at " << site.function
                       << " (" << site.location << "): injecting retval="
                       << site.spec->error.return_value
                       << " errno=" << site.spec->error.errno_value;
      }
    } else {
      ++site.stats.fatal;
      resume_action_ = ResumeAction::kFatal;
      rc_.fatal.inc();
      log_recovery_event(RecoveryEvent{active_.site, crash_kind_,
                                       RecoveryEvent::Action::kFatal,
                                       latency});
    }
  }

  // 4. Resume at the entry gate on the restored stack.
  std::longjmp(gate_buf_, 1);
}

std::intptr_t TxManager::resume() {
  // Back on the application stack with rollback complete: the recovery
  // window (double-fault escalation) and the signal-dispatch latch close
  // here, whichever action follows.
  in_recovery_ = false;
  crash_via_signal_ = false;
  clear_signal_dispatch();
  const ResumeAction action = resume_action_;
  resume_action_ = ResumeAction::kNone;
  switch (action) {
    case ResumeAction::kRetryStm:
      active_.mode = TxMode::kStm;
      ++tx_stm_;
      start_recording(TxMode::kStm);
      arm_watchdog();
      return active_.rv;
    case ResumeAction::kRetryUnprotected:
      active_.mode = TxMode::kNone;
      ++tx_none_;
      stop_recording();
      return active_.rv;
    case ResumeAction::kDivert: {
      const Site& site = sites_[active_.site];
      active_.diverted = true;
      active_.mode = TxMode::kStm;
      ++tx_stm_;
      start_recording(TxMode::kStm);
      // No watchdog over the diverted region: a crash inside the injected
      // error handler is fatal by design (§VII), and crash_recoverable() is
      // already false here, so a SIGALRM would pass through and kill the
      // process with a timer signal instead of a diagnosable exit.
      env_.set_errno(site.spec->error.errno_value);
      return site.spec->error.return_value;
    }
    case ResumeAction::kFatal: {
      const Site site_copy = sites_[active_.site];
      reset_active();
      stop_recording();
      throw FatalCrashError(
          crash_kind_, "unrecoverable crash in transaction at " +
                           site_copy.function + " (" + site_copy.location +
                           "): opening call is not divertible/compensable");
    }
    case ResumeAction::kNone:
      break;
  }
  assert(false && "resume() without a pending resume action");
  return active_.rv;
}

void TxManager::log_recovery_event(const RecoveryEvent& event) {
  // Stays within the construction-time reservation: push_back never grows
  // the vector (the recovery step can be running after a real signal, where
  // malloc is off-limits). Beyond the cap, drop and count.
  if (recovery_log_.size() >= config_.recovery_log_cap) {
    rc_.log_dropped.inc();
    return;
  }
  recovery_log_.push_back(event);
}

void TxManager::arm_watchdog() {
  if (!watchdog_enabled()) return;
  // One-shot ITIMER_REAL: fires SIGALRM once at the deadline, which the
  // signal channel converts into a CrashKind::kHang episode. setitimer
  // (not timer_create) keeps the runtime free of the -lrt dependency.
  itimerval timer{};
  timer.it_value.tv_sec = config_.tx_deadline_ms / 1000;
  timer.it_value.tv_usec =
      static_cast<suseconds_t>((config_.tx_deadline_ms % 1000) * 1000);
  setitimer(ITIMER_REAL, &timer, nullptr);
}

void TxManager::disarm_watchdog() {
  if (!watchdog_enabled()) return;
  itimerval timer{};  // zero it_value disarms
  setitimer(ITIMER_REAL, &timer, nullptr);
}

std::size_t TxManager::instrumentation_bytes() const {
  std::size_t total = 0;
  total += snapshot_.footprint_bytes();
  // STM undo log + first-write filter (actual reserved capacity; bounded
  // across transactions by config_.undo_retain_bytes).
  total += stm_.footprint_bytes();
  total += comp_arena_.capacity();
  total += embedded_reverts_.capacity() * sizeof(Compensation);
  total += embedded_deferred_.capacity() * sizeof(DeferredOp);
  // HTM write-set bookkeeping: line filter + saved line images + occupancy.
  total += htm_.footprint_bytes();
  // Per-site gate state (the tx_gate[] array and counters).
  total += sites_.size() * (sizeof(GateState) + sizeof(SiteStats));
  // Trace ring slots (token 2-slot ring when tracing is disabled).
  total += obs_.trace().capacity() * sizeof(obs::TraceEvent);
  return total;
}

void TxManager::reset_stats() {
  htm_.reset_stats();
  stm_.reset_stats();
  recovery_log_.clear();
  gate_calls_ = tx_htm_ = tx_stm_ = tx_none_ = tx_commits_ = tx_deferred_ = 0;
  // Zeroes every registry metric (recovery_latency_ among them); the next
  // snapshot's collectors re-publish from the freshly zeroed tallies.
  obs_.metrics().reset();
  obs_.trace().clear();
  for (Site& site : sites_.all_mutable()) site.stats = SiteStats{};
}

}  // namespace fir
