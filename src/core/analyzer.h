// Recoverable-surface analysis (§VI-A, Table III).
//
// After a workload has driven a protected application, the site registry
// holds which transaction sites actually executed. The analyzer condenses
// that into the paper's recoverable-surface metrics: how many unique
// transactions ran, how many library calls were folded into enclosing
// transactions, and what fraction of the executed transactions could both
// restore state and divert execution on a persistent crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/site.h"

namespace fir {

/// One Table III column.
struct SurfaceReport {
  /// Unique transaction sites that began at least one transaction.
  std::uint64_t unique_transactions = 0;
  /// Unique non-divertible call sites embedded within transactions.
  std::uint64_t embedded_libcall_sites = 0;
  /// Executed transaction sites whose opening call cannot support
  /// fault-injection recovery (irrecoverable or error-ignored).
  std::uint64_t irrecoverable_transactions = 0;

  double recoverable_fraction() const {
    return unique_transactions == 0
               ? 0.0
               : 1.0 - static_cast<double>(irrecoverable_transactions) /
                           static_cast<double>(unique_transactions);
  }
};

/// Computes the surface over every site that executed under the workload.
SurfaceReport analyze_surface(const SiteRegistry& sites);

/// Per-site detail row for diagnostics and the bench binaries.
struct SiteReportRow {
  std::string function;
  std::string location;
  bool recoverable = false;
  SiteStats stats;
};

/// All executed sites, most-active first.
std::vector<SiteReportRow> site_report(const SiteRegistry& sites);

}  // namespace fir
