// Crash channel: how fatal faults reach the recovery runtime.
//
// Two channels coexist (DESIGN.md §2):
//
//   * SYNCHRONOUS (default): injected faults (src/hsfi) and application
//     invariant checks call raise_crash(), which transfers control to the
//     active TxManager — the same rollback → compensate → inject → resume
//     sequence a signal handler would start, minus the asynchronous hop.
//     Deterministic, so tests and campaigns reproduce exactly.
//
//   * SIGNAL (FIR_SIGNALS=1 / TxManagerConfig::real_signals): sigaction
//     handlers for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT (and SIGALRM for
//     the hang watchdog) run on a dedicated sigaltstack and proxy real
//     hardware faults into the same handler — the paper's actual
//     deployment. The handler is async-signal-safe: it records the crash
//     kind + fault address in preallocated storage, checks recoverability
//     through plain-field virtual queries, unblocks the signal and hands
//     off to CrashHandler::handle_crash, which longjmps into the entry
//     gate. Unrecoverable signals re-raise with the default disposition so
//     the process dies exactly as an unprotected one would; a fault raised
//     while recovery itself is running (double fault) writes a diagnostic
//     with write(2) and terminates via _exit(kDoubleFaultExitCode).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fir {

/// What kind of fatal event occurred (maps onto the fatal signals the
/// paper's handler proxies). kHang is the watchdog extension beyond the
/// fail-stop model: a transaction exceeding its deadline is converted into
/// a recovery episode via SIGALRM.
enum class CrashKind : std::uint8_t {
  kSegv = 0,    // invalid memory access (SIGSEGV)
  kAbort,       // failed assertion / abort() (SIGABRT)
  kIllegal,     // corrupted control flow (SIGILL)
  kBus,         // misaligned/unbacked access (SIGBUS)
  kFpe,         // divide by zero etc. (SIGFPE)
  kHang,        // transaction deadline exceeded (SIGALRM watchdog)
};

const char* crash_kind_name(CrashKind kind);

/// Process exit status used when a crash occurs while recovery is already
/// running (a compensation action faulted, the watchdog fired mid-rollback,
/// …). Recovery must not recurse; the handler prints a diagnostic via
/// write(2) and calls _exit with this code.
inline constexpr int kDoubleFaultExitCode = 70;  // EX_SOFTWARE

/// Thrown (on the normal application stack, after state rollback) when a
/// crash cannot be recovered: no active transaction, a crash inside an
/// already-diverted error handler, or a transaction whose opening call is
/// irrecoverable. The process hosting a real FIRestarter would terminate
/// here; the simulation unwinds to the harness instead so campaigns can
/// continue. (The signal channel never throws: it re-raises the signal
/// with the default disposition instead, see file comment.)
class FatalCrashError : public std::runtime_error {
 public:
  FatalCrashError(CrashKind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}
  CrashKind kind() const { return kind_; }

 private:
  CrashKind kind_;
};

/// Handler interface the TxManager registers with the crash channel. The
/// const queries are called from the signal handler and must stay
/// async-signal-safe: plain field reads, no allocation, no locks.
class CrashHandler {
 public:
  virtual ~CrashHandler() = default;
  /// Either longjmps back into the active transaction's entry gate (and
  /// therefore does not return), or throws FatalCrashError.
  [[noreturn]] virtual void handle_crash(CrashKind kind) = 0;
  /// True when a crash right now would be absorbed (open, protected,
  /// not-yet-diverted transaction). The signal channel consults this before
  /// the handoff; when false it re-raises with the default disposition.
  virtual bool crash_recoverable() const { return false; }
  /// True while the recovery step itself is executing. A crash in that
  /// window is a double fault and must escalate, never recurse.
  virtual bool in_recovery() const { return false; }
  /// Double-fault escalation hook. The default writes a diagnostic and
  /// _exits; overrides may add observability but must still terminate.
  [[noreturn]] virtual void handle_double_fault(CrashKind kind);
};

/// Installs the process-wide crash handler (nullptr to uninstall).
/// Returns the previously installed handler.
CrashHandler* set_crash_handler(CrashHandler* handler);
CrashHandler* crash_handler();

/// Raises a fatal fault synchronously. Control flow does not continue past
/// this call: either the handler longjmps into a recovery gate, or
/// FatalCrashError is thrown (or, during recovery, the process exits —
/// double faults escalate on this channel too).
[[noreturn]] void raise_crash(CrashKind kind);

// --- real signal channel ----------------------------------------------------

/// What the last caught signal recorded. `count == 0` means the channel has
/// not caught anything yet this process.
struct SignalCrashInfo {
  int signo = 0;
  CrashKind kind = CrashKind::kSegv;
  const void* fault_addr = nullptr;  // siginfo si_addr (SIGSEGV/SIGBUS)
  std::uint64_t count = 0;           // signals caught since process start
};

/// Installs the sigaltstack + sigaction handlers (SIGSEGV, SIGBUS, SIGILL,
/// SIGFPE, SIGABRT, SIGALRM). Reference-counted: the first call installs,
/// later calls just bump the count; returns false if sigaction/sigaltstack
/// failed. Each successful install must be paired with one uninstall.
/// Registers the calling thread's signal stack as a side effect; other
/// threads that want their faults caught on a dedicated stack call
/// ensure_thread_signal_stack() themselves (the TxManager does this when a
/// new thread first enters a gate).
bool install_signal_channel();
void uninstall_signal_channel();
bool signal_channel_installed();

/// Registers a dedicated 64 KiB signal stack for the calling thread
/// (sigaltstack is a per-thread attribute; sigaction handlers are
/// process-wide). Idempotent per thread; the stack is intentionally leaked
/// at thread exit — the kernel may still reference it while the thread
/// winds down, and worker threads are few and long-lived. Returns false if
/// the kernel rejected the registration.
bool ensure_thread_signal_stack();

/// True when the FIR_SIGNALS environment variable requests the real
/// channel ("1"/anything but "0").
bool signal_channel_env_enabled();

/// Most recent signal the calling thread caught (kind, fault address,
/// signo). Thread-local: signals land on the faulting thread, so each
/// thread sees its own crash history.
const SignalCrashInfo& last_signal_crash();

/// True between signal entry and the recovery resume on this thread: tells
/// the handler that this crash arrived asynchronously (skip stdio, record
/// the fault address). Thread-local; cleared by the TxManager when the gate
/// resumes.
bool in_signal_dispatch();
void clear_signal_dispatch();

/// Forensic payload for the double-fault diagnostic line: which site's
/// transaction recovery was running and how deep the coalesced run was
/// when the second fault struck. Every field is plain data the TxManager
/// already holds — filling it allocates nothing, so it is safe to build
/// inside the signal handler.
struct DoubleFaultDiag {
  std::uint32_t site = static_cast<std::uint32_t>(-1);  // kInvalidSite
  const char* site_function = nullptr;  // library function ("open")
  const char* site_location = nullptr;  // app location ("miniginx.cpp:42")
  std::uint32_t tx_depth = 0;  // opening call + coalesced extensions
};

/// Async-signal-safe double-fault termination: writes one structured
/// diagnostic line to stderr with write(2) — no allocation, no stdio —
/// then _exit(kDoubleFaultExitCode). `channel` names the entry path
/// ("signal", "sync"); `diag`, when non-null, appends the crash site and
/// transaction depth so a supervising process reaping exit code 70 can log
/// WHERE recovery was when it died, not just that it died:
///
///   fir: double fault (SIGSEGV) during recovery via signal channel;
///   site=3:open@miniginx.cpp:117 depth=2; terminating
///
/// (one line; shown wrapped). Supervisors parse the `site=`/`depth=`
/// fields; `site=none` means no transaction was open on the faulting
/// thread.
[[noreturn]] void die_double_fault(CrashKind kind, const char* channel,
                                   const DoubleFaultDiag* diag = nullptr);

/// The signal number a CrashKind maps to (SIGSEGV for kSegv, ...).
int crash_kind_signo(CrashKind kind);

/// Defensive dereference guard: modeling what the MMU does to a NULL (or
/// corrupted-to-NULL) pointer access. Applications call this where the real
/// server would dereference.
inline void check_ptr(const void* p) {
  if (p == nullptr) raise_crash(CrashKind::kSegv);
}

/// Bounds guard: modeling a sanitizer/assert tripping on a corrupted index
/// (the fail-stop conversion of fail-silent faults, §II).
inline void check_bounds(std::size_t index, std::size_t size) {
  if (index >= size) raise_crash(CrashKind::kAbort);
}

}  // namespace fir
