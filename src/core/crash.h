// Crash channel: how fatal faults reach the recovery runtime.
//
// The paper deploys signal handlers that proxy fatal signals (SIGSEGV, ...)
// into crash recovery. In this reproduction faults are raised synchronously:
// injected faults (src/hsfi) and application invariant checks call
// raise_crash(), which transfers control to the active TxManager — the same
// rollback → compensate → inject → resume sequence a signal handler would
// start, minus the asynchronous hop (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fir {

/// What kind of fatal event occurred (maps onto the fatal signals the
/// paper's handler proxies).
enum class CrashKind : std::uint8_t {
  kSegv = 0,    // invalid memory access (SIGSEGV)
  kAbort,       // failed assertion / abort() (SIGABRT)
  kIllegal,     // corrupted control flow (SIGILL)
  kBus,         // misaligned/unbacked access (SIGBUS)
  kFpe,         // divide by zero etc. (SIGFPE)
};

const char* crash_kind_name(CrashKind kind);

/// Thrown (on the normal application stack, after state rollback) when a
/// crash cannot be recovered: no active transaction, a crash inside an
/// already-diverted error handler, or a transaction whose opening call is
/// irrecoverable. The process hosting a real FIRestarter would terminate
/// here; the simulation unwinds to the harness instead so campaigns can
/// continue.
class FatalCrashError : public std::runtime_error {
 public:
  FatalCrashError(CrashKind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}
  CrashKind kind() const { return kind_; }

 private:
  CrashKind kind_;
};

/// Handler interface the TxManager registers with the crash channel.
class CrashHandler {
 public:
  virtual ~CrashHandler() = default;
  /// Either longjmps back into the active transaction's entry gate (and
  /// therefore does not return), or throws FatalCrashError.
  [[noreturn]] virtual void handle_crash(CrashKind kind) = 0;
};

/// Installs the process-wide crash handler (nullptr to uninstall).
/// Returns the previously installed handler.
CrashHandler* set_crash_handler(CrashHandler* handler);
CrashHandler* crash_handler();

/// Raises a fatal fault. Control flow does not continue past this call:
/// either the handler longjmps into a recovery gate, or FatalCrashError is
/// thrown.
[[noreturn]] void raise_crash(CrashKind kind);

/// Defensive dereference guard: modeling what the MMU does to a NULL (or
/// corrupted-to-NULL) pointer access. Applications call this where the real
/// server would dereference.
inline void check_ptr(const void* p) {
  if (p == nullptr) raise_crash(CrashKind::kSegv);
}

/// Bounds guard: modeling a sanitizer/assert tripping on a corrupted index
/// (the fail-stop conversion of fail-silent faults, §II).
inline void check_bounds(std::size_t index, std::size_t size) {
  if (index >= size) raise_crash(CrashKind::kAbort);
}

}  // namespace fir
