// TxManager: FIRestarter's recovery runtime.
//
// One instance protects one application. It implements, in one place, the
// roles the paper splits across its compiler passes' runtime halves:
//   * Checkpoint Manager   — begins/commits HTM or STM transactions at
//     library-call boundaries, snapshots the native stack, restores
//     registers via the entry gate's setjmp/longjmp;
//   * Adaptive Transaction Shaper — folds non-divertible library calls into
//     the open transaction (embedded reverts / deferred effects);
//   * dynamic adaptation policy   — per-site HTM/STM selection (core/policy);
//   * Fault Injector       — on a persistent crash, runs the opening call's
//     compensation action and forces its documented error return + errno,
//     diverting execution into the application's own error handler.
//
// The gate protocol (driven by the FIR_* macros in src/interpose/fir.h):
//
//   mgr.pre_call(site);                   // commit the open transaction —
//                                         // or arm a coalesced extension
//   if (setjmp(*mgr.gate_buf()) == 0) {   // the checkpoint's register save
//     rv = <perform environment call>;
//     mgr.begin(site, rv, compensation);  // snapshot stack, start HTM/STM
//   } else {
//     rv = mgr.resume();                  // retry value or injected error
//   }
//
// Checkpoint fast path (docs/ARCHITECTURE.md "Checkpoint fast path"): when
// the open transaction is quiescent and the next site is policy-approved
// (AdaptivePolicy::allow_coalesce), pre_call() EXTENDS the open transaction
// instead of committing it: the next call's (site, rv, compensation) tuple
// is recorded in a per-thread run buffer, its setjmp is routed into a
// scratch buffer that is never longjmp'd to, and the run keeps the opening
// call's checkpoint — one stack snapshot and one engine begin amortized
// over up to `coalesce_max` consecutive library calls. On a crash anywhere
// in the run, rollback replays to the run's FIRST call (coalesced entries
// are reverted newest-first along with embedded calls) and diversion
// targets the opening site; any abort inside a run de-coalesces every site
// it spanned. FIR_COALESCE=0 restores one-transaction-per-call semantics.
//
// Threading model (docs/ARCHITECTURE.md "Threading model"): crash
// transactions are inherently per-thread — a transaction lives on the
// thread that opened it, and a fault rolls back only that thread's state
// while siblings keep serving. Everything a transaction touches (jmp_buf,
// stack snapshot, undo log, write filter, compensation list, deferred ops,
// watchdog timer, the HTM/STM engines themselves) lives in a per-thread
// TxContext owned by the manager and found through a thread-local cache.
// The site table and AdaptivePolicy are shared across threads behind
// relaxed atomics, so abort-ratio demotion aggregates process-wide without
// a lock on the gate fast path; the recovery log/latency histogram are
// shared behind an allocation-free spinlock.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <csetjmp>
#include <cstdint>
#include <ctime>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "core/crash.h"
#include "core/policy.h"
#include "core/site.h"
#include "core/stack_snapshot.h"
#include "env/env.h"
#include "htm/htm.h"
#include "obs/obs.h"
#include "stm/stm.h"

namespace fir {

namespace detail {
/// Thread-local context cache: one (manager, generation) → context slot per
/// thread. The generation tag keeps a reincarnated manager at a recycled
/// address from hitting a stale pointer; the slot is refreshed by every
/// slow-path lookup, so the thread's most recently used manager always
/// answers async-signal-safe queries without locks. Lives in the header so
/// the gate fast path (TxManager::pre_call's coalesce check) inlines the
/// lookup into the call site.
struct TxTlsCache {
  const void* mgr = nullptr;
  std::uint64_t gen = 0;
  void* ctx = nullptr;
};
inline thread_local TxTlsCache t_tx_tls;

/// Single-writer tally update: per-variable coherence without an atomic RMW
/// on the gate fast path (the owning thread is the only writer; aggregators
/// read relaxed from other threads).
inline void tally_bump(std::atomic<std::uint64_t>& tally,
                       std::uint64_t n = 1) {
  tally.store(tally.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
}
}  // namespace detail

/// Reverts the effect of a library call during recovery. Plain function
/// pointer + two scalar args + optional stashed bytes: no allocation on the
/// gate fast path.
struct Compensation {
  /// (env, a, b, rv, stashed data) — rv is the call's original return value.
  using Fn = void (*)(Env& env, std::intptr_t a, std::intptr_t b,
                      std::intptr_t rv, const std::uint8_t* data,
                      std::size_t len);
  Fn fn = nullptr;
  std::intptr_t a = 0;
  std::intptr_t b = 0;
  std::uint32_t data_off = 0;
  std::uint32_t data_len = 0;
};

/// A library-call effect postponed until its transaction commits
/// ("operation deferrable" class: close, free, unlink, ...). The op OWNS
/// everything it needs to run later: callers with a path argument copy it
/// into `path` instead of stashing a raw pointer whose storage may be gone
/// (or stack-rolled-back) by commit time.
struct DeferredOp {
  using Fn = void (*)(Env& env, const DeferredOp& op);
  Fn fn = nullptr;
  std::intptr_t a = 0;
  std::intptr_t b = 0;
  std::string path;
};

/// One recovery episode, for the experiment harness (Table IV, Fig. 5).
struct RecoveryEvent {
  SiteId site = kInvalidSite;
  CrashKind kind = CrashKind::kSegv;
  enum class Action : std::uint8_t { kRetry, kDivert, kFatal } action =
      Action::kRetry;
  double latency_seconds = 0.0;
};

/// Environment overrides applied at TxManager construction (the same
/// operator-first pattern as the FIR_TRACE_* knobs, docs/OBSERVABILITY.md).
inline constexpr const char* kEnvUndoRetainBytes = "FIR_UNDO_RETAIN_BYTES";
inline constexpr const char* kEnvStmFilter = "FIR_STM_FILTER";
inline constexpr const char* kEnvSignals = "FIR_SIGNALS";
inline constexpr const char* kEnvTxDeadlineMs = "FIR_TX_DEADLINE_MS";
inline constexpr const char* kEnvRecoveryLogCap = "FIR_RECOVERY_LOG_CAP";
inline constexpr const char* kEnvStormThreshold = "FIR_STORM_THRESHOLD";
inline constexpr const char* kEnvCoalesce = "FIR_COALESCE";
inline constexpr const char* kEnvCoalesceMax = "FIR_COALESCE_MAX";

struct TxManagerConfig {
  PolicyConfig policy;
  HtmConfig htm;
  /// Observability defaults; the FIR_TRACE_* environment overrides them at
  /// manager construction (obs::ObsConfig::from_env).
  obs::ObsConfig obs;
  /// Rollback + re-execution attempts before a crash is declared persistent
  /// and diverted (transient faults survive the retry).
  int max_crash_retries = 1;
  /// Capacity the undo log and first-write filter retain across
  /// transactions: buffers grown by one outlier transaction shrink back
  /// under this cap at commit/rollback, bounding the steady-state memory
  /// overhead (Fig. 9). FIR_UNDO_RETAIN_BYTES overrides.
  std::size_t undo_retain_bytes = UndoLog::kDefaultRetainBytes;
  /// First-write filtering in the STM store path: only the first store to
  /// each (line, byte-range) pays an undo-log append. FIR_STM_FILTER=0
  /// restores the log-every-store behaviour for A/B measurement.
  bool stm_write_filter = true;
  /// Real POSIX signal crash channel (FIR_SIGNALS=1 overrides): install
  /// sigaltstack + sigaction handlers that proxy SIGSEGV/SIGBUS/SIGILL/
  /// SIGFPE/SIGABRT (and the watchdog's SIGALRM) into this manager, so
  /// actual MMU faults enter the same rollback → compensate → inject
  /// sequence as raise_crash(). Off by default: the synchronous channel
  /// keeps tests and campaigns deterministic. Signals land on the faulting
  /// thread; each thread entering a gate registers its own sigaltstack.
  bool real_signals = false;
  /// Hang watchdog (needs real_signals): a transaction open longer than
  /// this deadline receives SIGALRM on its own thread, which the channel
  /// converts into a CrashKind::kHang recovery episode — rollback, one
  /// retry, then diversion, extending the fault model beyond fail-stop.
  /// Per-thread: a POSIX timer on the transaction thread's CPU clock
  /// (timer_create(CLOCK_THREAD_CPUTIME_ID, SIGEV_THREAD_ID)), so one
  /// worker's spin cannot fire a sibling's watchdog; falls back to a
  /// process-wide wall-clock setitimer if per-thread timers are
  /// unavailable. 0 disables. FIR_TX_DEADLINE_MS overrides.
  std::uint32_t tx_deadline_ms = 0;
  /// Upper bound on recovery_log() entries. The capacity is reserved at
  /// construction, so recording an episode never allocates (the recovery
  /// step can run in signal context); episodes beyond the cap are dropped
  /// and counted in "recovery.log_dropped". FIR_RECOVERY_LOG_CAP overrides.
  std::size_t recovery_log_cap = 65536;
  /// Checkpoint fast path: maximum consecutive library calls one crash
  /// transaction may span through coalescing (the opening call plus up to
  /// coalesce_max-1 quiescent extensions). 1 disables coalescing — every
  /// call gets its own checkpoint, the seed behaviour. FIR_COALESCE=0
  /// forces 1; FIR_COALESCE_MAX overrides the span.
  std::uint32_t coalesce_max = 8;
  /// Master switch: false turns every gate into a plain call (vanilla).
  bool enabled = true;
};

/// See file comment.
class TxManager final : public CrashHandler {
 public:
  TxManager(Env& env, TxManagerConfig config = {});
  ~TxManager() override;

  TxManager(const TxManager&) = delete;
  TxManager& operator=(const TxManager&) = delete;

  // --- site registry ----------------------------------------------------
  /// Process-unique instance number. The wrapper macros cache SiteIds in
  /// function-local statics; the generation tag invalidates those caches
  /// when a new TxManager (with a fresh registry) takes over.
  std::uint64_t generation() const { return generation_; }

  SiteId register_site(std::string_view function, std::string_view location);
  SiteRegistry& sites() { return sites_; }
  const SiteRegistry& sites() const { return sites_; }

  // --- gate protocol ----------------------------------------------------
  /// Marks the calling thread's protected event-loop frame: transactions
  /// opened on this thread snapshot the stack up to this address. Pass the
  /// address of a local in the loop function. Per-thread — each worker
  /// anchors its own loop.
  void set_anchor(const void* anchor_sp);
  void clear_anchor();

  /// The calling thread's entry-gate jump buffer. When pre_call() armed a
  /// coalesced extension, this is a scratch buffer instead: the run keeps
  /// the OPENING gate's jmp_buf as its rollback target, and the extension's
  /// setjmp must not clobber it (the scratch is never longjmp'd to).
  std::jmp_buf* gate_buf();

  /// Commits the calling thread's open transaction (runs deferred effects)
  /// — unless the transaction can be COALESCED over the next call at
  /// `next_site` (checkpoint fast path), in which case the transaction
  /// stays open and the following begin() records a run entry instead of
  /// re-checkpointing. Called before every library call. Defined inline
  /// below the class: the coalesce check is the gate fast path.
  void pre_call(SiteId next_site);

  /// Site-less variant (quiesce, shutdown): always commits.
  void pre_call() { pre_call(kInvalidSite); }

  /// Opens a transaction at `site` on the calling thread; `rv` is the
  /// opening call's return value, `comp` reverts its effect if the
  /// transaction later diverts.
  void begin(SiteId site, std::intptr_t rv, Compensation comp = {});

  /// Gate re-entry after a rollback longjmp: yields the value the opening
  /// library call should now return (original `rv` on retry, the injected
  /// error on diversion). Throws FatalCrashError when the crash cannot be
  /// absorbed.
  std::intptr_t resume();

  /// Ends the calling thread's open transaction (shutdown / loop quiesce
  /// point). Worker threads quiesce themselves before exiting.
  void quiesce() { pre_call(); }

  // --- Adaptive Transaction Shaper hooks ---------------------------------
  /// Registers the revert for a non-divertible call embedded in the open
  /// transaction. `embedded_site` identifies the call for Table III stats.
  void embed_revert(SiteId embedded_site, Compensation revert);
  /// Marks an embedded call with no revert needed (idempotent class).
  void embed_idempotent(SiteId embedded_site);
  /// Deferred effect of the OPENING deferrable call (kept across retries,
  /// dropped on diversion, run at commit).
  void set_opening_deferred(DeferredOp op);
  /// Deferred effect of an EMBEDDED deferrable call (dropped on rollback —
  /// re-execution re-issues it — and run at commit).
  void defer_embedded(SiteId embedded_site, DeferredOp op);
  /// Copies pre-call state (e.g. a recv destination buffer) into the
  /// calling thread's per-transaction stash; returns its offset for
  /// Compensation::data_off. Call between pre_call() and begin().
  std::uint32_t stash_comp_data(const void* data, std::size_t len);
  const std::uint8_t* comp_data(std::uint32_t off) const;

  // --- CrashHandler -------------------------------------------------------
  [[noreturn]] void handle_crash(CrashKind kind) override;
  /// Async-signal-safe queries for the signal channel. Scoped to the
  /// calling (faulting) thread: one worker's open transaction never makes a
  /// sibling's fault look recoverable. Lock-free — the thread-local context
  /// cache is the only lookup.
  bool crash_recoverable() const override;
  bool in_recovery() const override;
  /// Crash during the recovery step: emit kDoubleFault into the trace ring
  /// (lock-free, allocation-free), then terminate via
  /// die_double_fault(kDoubleFaultExitCode). Never recurses into recovery.
  [[noreturn]] void handle_double_fault(CrashKind kind) override;

  // --- introspection ------------------------------------------------------
  // Per-thread queries answer for the calling thread's context.
  bool in_transaction() const;
  TxMode current_mode() const;
  bool diverted() const;
  const TxManagerConfig& config() const { return config_; }
  Env& env() { return env_; }

  /// Engine statistics aggregated across every thread context. Accurate
  /// when the involved threads are quiescent (between transactions or
  /// joined); concurrent readers see per-counter-coherent but possibly
  /// torn-across-counters values.
  HtmStats htm_stats() const;
  StmStats stm_stats() const;
  const Histogram& recovery_latency() const { return recovery_latency_; }
  const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }
  /// Lifetime count of transactions run under each mode (Fig. 7/8 inputs),
  /// summed across threads. The same numbers appear as "tx.htm" / "tx.stm"
  /// / "tx.unprotected" in metrics snapshots (published by this manager's
  /// collector).
  std::uint64_t transactions_htm() const;
  std::uint64_t transactions_stm() const;
  std::uint64_t transactions_unprotected() const;
  /// Calls that rode an open transaction through coalescing ("tx.coalesced")
  /// and committed transactions that spanned >1 call ("tx.runs").
  std::uint64_t transactions_coalesced() const;
  std::uint64_t coalesced_runs() const;
  /// Number of threads that have entered this manager's gates.
  std::size_t thread_count() const;

  // --- observability ------------------------------------------------------
  /// Event trace + metrics registry of this runtime (docs/OBSERVABILITY.md).
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }
  obs::MetricsRegistry& metrics() { return obs_.metrics(); }
  /// Resolves site ids to (function, location) for the trace exporters.
  /// The returned callback borrows this manager's site registry.
  obs::SiteSymbolizer trace_symbolizer() const;

  /// Bytes of instrumentation state currently reserved (Fig. 9 input):
  /// stack-snapshot buffers, undo logs, HTM write-set bookkeeping, stashes
  /// — summed over every thread context.
  std::size_t instrumentation_bytes() const;

  /// Clears stats/logs between experiment phases (sites persist). Call with
  /// all worker threads quiescent.
  void reset_stats();

 private:
  enum class ResumeAction : std::uint8_t {
    kNone = 0,
    kRetryStm,          // rollback done; re-execute under STM
    kRetryUnprotected,  // HTM-only policy: re-execute without protection
    kDivert,            // compensation done; return the injected error
    kFatal,             // unrecoverable: resume() throws
  };

  struct ActiveTx {
    bool open = false;
    bool diverted = false;
    /// The opening call can absorb a persistent crash (recoverable()): only
    /// such transactions may be extended by coalescing — a crash anywhere
    /// in a run must remain divertible at the run's opening site, so
    /// coalescing never shrinks the recovery surface.
    bool extendable = false;
    SiteId site = kInvalidSite;
    TxMode mode = TxMode::kNone;
    std::intptr_t rv = 0;
    int crash_count = 0;
    Compensation comp;
    bool has_opening_deferred = false;
    DeferredOp opening_deferred;
    /// Stack frame of the gate that opened this transaction (recorded by
    /// pre_call, measured identically at every gate). Extension requires
    /// the candidate gate to sit at the same depth or DEEPER: a shallower
    /// gate means the opening frame may already have returned, and a
    /// setjmp there would let longjmp-frame bookkeeping (TSan's jmp_buf
    /// GC, glibc's fortified longjmp) discard the opening gate_buf that
    /// rollback must land on. The seed never jumps to a discarded buffer
    /// — an open transaction always commits at the next gate's setjmp —
    /// and this check keeps that invariant under coalescing.
    std::uintptr_t open_gate_sp = 0;
  };

  /// One coalesced extension of the open transaction: which site ran and
  /// what it returned (per-site stats, de-coalescing, commit accounting).
  struct RunEntry {
    SiteId site = kInvalidSite;
    std::intptr_t rv = 0;
  };

  /// A revert queued for rollback: embedded calls and coalesced extensions
  /// share one chronologically ordered list, so recovery unwinds them
  /// newest-first regardless of which mechanism folded them in. `rv` is the
  /// value run_compensation hands the Compensation::Fn — captured at push
  /// time (a coalesced close must revert ITS fd, not the opening call's).
  struct RevertRecord {
    Compensation comp;
    std::intptr_t rv = 0;
  };

  /// Everything one thread's transactions touch, owned by the manager and
  /// reached through a thread-local cache (one pointer compare per gate
  /// call). Contexts are created on a thread's first gate entry and live
  /// until the manager is destroyed; a reused thread id adopts the old
  /// context.
  struct TxContext {
    TxContext(const TxManagerConfig& config, std::size_t index,
              TxManager* mgr);

    TxManager* mgr = nullptr;
    std::size_t index = 0;
    std::thread::id owner;
    pid_t tid = 0;  // kernel thread id, for SIGEV_THREAD_ID watchdog routing

    const void* anchor = nullptr;
    std::jmp_buf gate_buf;
    StackSnapshot snapshot;
    RecoveryStack recovery_stack;
    /// Per-thread engines: concurrent STM transactions never share an undo
    /// log or filter; the HTM rng seed is split per context index so
    /// concurrent campaigns stay reproducible per worker.
    HtmContext htm;
    StmContext stm;

    ActiveTx active;
    std::vector<RevertRecord> embedded_reverts;
    std::vector<DeferredOp> embedded_deferred;
    std::vector<std::uint8_t> comp_arena;

    // Checkpoint fast path (coalescing) state, all owned by this thread.
    /// Coalesced extensions of the open transaction, oldest first.
    std::vector<RunEntry> run;
    /// setjmp target for an armed extension's gate; never longjmp'd to —
    /// rollback always lands on the run-opening gate_buf.
    std::jmp_buf coalesce_buf;
    /// pre_call approved extending the open transaction over the next call;
    /// consumed by the next begin() (or cleared by crash entry).
    bool coalesce_armed = false;
    /// Frame of the most recent gate's pre_call; begin() copies it into
    /// ActiveTx::open_gate_sp when it opens a transaction.
    std::uintptr_t last_gate_sp = 0;
    /// The most recent begin() was a coalesced extension: routes the
    /// opening-deferred effect of a coalesced deferrable call (close,
    /// unlink) into embedded_deferred, where rollback drops it and replay
    /// re-issues it.
    bool last_begin_coalesced = false;

    // Crash-in-flight state (set by handle_crash, consumed by
    // recovery_step, all on the faulting thread).
    CrashKind crash_kind = CrashKind::kSegv;
    bool crash_is_htm_abort = false;
    HtmAbortCode htm_abort_code = HtmAbortCode::kNone;
    ResumeAction resume_action = ResumeAction::kNone;
    StopWatch crash_watch;
    /// True from crash entry until resume() on this thread: a second crash
    /// in this window is a double fault and escalates to process exit.
    bool in_recovery = false;
    /// The in-flight crash arrived through the signal channel.
    bool crash_via_signal = false;

    // Per-thread hang-watchdog timer (created lazily on first arm).
    timer_t wd_timer{};
    bool wd_created = false;
    pid_t wd_tid = 0;
    bool wd_fallback_itimer = false;

    // Gate-path tallies. Single-writer (the owning thread): updated with
    // relaxed load+store pairs — per-variable coherence without an atomic
    // RMW on the gate fast path — and read by the aggregation getters /
    // the metrics collector from other threads.
    std::atomic<std::uint64_t> gate_calls{0};
    std::atomic<std::uint64_t> tx_htm{0};
    std::atomic<std::uint64_t> tx_stm{0};
    std::atomic<std::uint64_t> tx_none{0};
    std::atomic<std::uint64_t> tx_commits{0};
    std::atomic<std::uint64_t> tx_deferred{0};
    /// Calls that extended an open transaction instead of opening their own
    /// (each also counts under the run's mode tally above, so tx.htm/tx.stm
    /// keep their per-call meaning).
    std::atomic<std::uint64_t> tx_coalesced{0};
    /// Committed transactions that spanned more than one call.
    std::atomic<std::uint64_t> tx_runs{0};
    /// Transactions left unprotected because the stack span exceeded
    /// StackSnapshot::kMaxBytes (distinct from tx_none's other causes).
    std::atomic<std::uint64_t> tx_oversize{0};
  };

  static void htm_store_abort_hook(void* self);
  static void recovery_trampoline(void* arg);

  /// The calling thread's context, created on first use (never call from
  /// signal context — creation allocates).
  TxContext& context();
  TxContext& context_slow();
  /// Cache-only lookup: no lock, no allocation — async-signal-safe. Returns
  /// nullptr when this thread has no (cached) context; a thread inside a
  /// transaction always hits, because begin() warmed the cache.
  TxContext* try_context() const;
  /// Cache lookup with a locked fallback scan (handles a cache slot evicted
  /// by another manager's gate); never creates. Not async-signal-safe.
  TxContext* find_context() const;

  /// Runs on the detached recovery stack; ends in longjmp into the gate.
  [[noreturn]] void recovery_step(TxContext& ctx);
  /// `rv` is the reverted call's own return value (RevertRecord::rv for
  /// embedded/coalesced entries, active.rv for the opening call).
  void run_compensation(TxContext& ctx, const Compensation& comp,
                        std::intptr_t rv);
  void commit_open_tx(TxContext& ctx);
  /// Cold half of pre_call(): locked context lookup, then the inline logic.
  void pre_call_slow(SiteId next_site);
  /// Coalesce eligibility for extending ctx's open transaction over a call
  /// at `next_site` (defined inline below the class — gate fast path).
  bool can_extend(TxContext& ctx, SiteId next_site,
                  std::uintptr_t gate_sp) const;
  /// begin() tail for an armed extension: records the run entry, queues the
  /// revert, bumps per-site and per-mode tallies.
  void extend_run(TxContext& ctx, SiteId site_id, std::intptr_t rv,
                  const Compensation& comp);
  void start_recording(TxContext& ctx, TxMode mode);
  void stop_recording();
  void reset_active(TxContext& ctx);
  /// Appends to recovery_log_ within the construction-time reservation;
  /// beyond the cap the episode is dropped and counted (allocation-free —
  /// the recovery step may be running in signal context). Spinlock-guarded:
  /// concurrent recoveries on sibling threads serialize here only.
  void log_recovery_event(const RecoveryEvent& event);
  void add_recovery_latency(double seconds);
  /// Hang-watchdog (per-thread POSIX timer → SIGALRM on the transaction's
  /// own thread). Armed per protected transaction, disarmed at commit and
  /// at crash entry.
  bool watchdog_enabled() const {
    return signals_installed_ && config_.tx_deadline_ms > 0;
  }
  void arm_watchdog(TxContext& ctx);
  void disarm_watchdog(TxContext& ctx);

  Env& env_;
  TxManagerConfig config_;
  /// Declared before the registry-backed references below: they bind to
  /// metrics owned by obs_ in the constructor's init list.
  obs::Observability obs_;
  AdaptivePolicy policy_;
  SiteRegistry sites_;

  /// Thread contexts: deque for stable addresses (the thread-local cache
  /// and in-flight recoveries hold pointers across later registrations).
  mutable std::mutex contexts_mu_;
  std::deque<TxContext> contexts_;

  /// This manager holds one install_signal_channel() reference.
  bool signals_installed_ = false;

  /// Recovery counters pre-bound at construction so the crash path never
  /// performs a registry lookup (std::map + std::string — allocates); the
  /// whole signal-entry recovery path must be allocation-free.
  struct RecoveryCounters {
    explicit RecoveryCounters(obs::MetricsRegistry& reg);
    obs::Counter& crashes;
    obs::Counter& rollbacks;
    obs::Counter& retries;
    obs::Counter& compensations;
    obs::Counter& diversions;
    obs::Counter& fatal;
    obs::Counter& signals_caught;
    obs::Counter& double_faults;
    obs::Counter& watchdog_fires;
    obs::Counter& storm_diverts;
    obs::Counter& log_dropped;
  };
  RecoveryCounters rc_;

  /// Registry-owned ("recovery.latency_seconds"); updates are cold-path and
  /// run under recovery_log_lock_ (the registry histogram allocates on
  /// growth, so cross-thread recoveries must serialize; same-thread
  /// re-entry is impossible — a crash during recovery double-faults).
  Histogram& recovery_latency_;
  /// Allocation-free spinlock over recovery_log_ + recovery_latency_.
  mutable std::atomic_flag recovery_log_lock_ = ATOMIC_FLAG_INIT;
  std::vector<RecoveryEvent> recovery_log_;

  CrashHandler* previous_handler_ = nullptr;
  std::uint64_t generation_ = 0;
};

// --- gate fast path (inline) ------------------------------------------------

inline bool TxManager::can_extend(TxContext& ctx, SiteId next_site,
                                  std::uintptr_t gate_sp) const {
  const ActiveTx& a = ctx.active;
  // Quiescent open transaction only: protected, never crashed or diverted
  // in this run, and opened at a site that can absorb a persistent crash.
  if (!a.extendable || a.diverted || a.mode == TxMode::kNone ||
      a.crash_count != 0 || next_site == kInvalidSite) {
    return false;
  }
  // Same-or-deeper frames only (see ActiveTx::open_gate_sp): a gate above
  // the opening gate means the opening frame may have returned, and a
  // setjmp up there invalidates the run's rollback target.
  if (gate_sp > a.open_gate_sp) return false;
  // A pending deferred effect bars extension: deferrable calls (close,
  // unlink) flush their real effect at commit, and commit has always meant
  // "the next gate". Coalescing past one would delay an externally visible
  // effect (an fd release a peer is watching for) by up to a whole run.
  if (a.has_opening_deferred || !ctx.embedded_deferred.empty()) return false;
  // Run budget: opening call + extensions so far + this candidate.
  if (ctx.run.size() + 2 > config_.coalesce_max) return false;
  return policy_.allow_coalesce(sites_[next_site]);
}

inline void TxManager::pre_call(SiteId next_site) {
  detail::TxTlsCache& tls = detail::t_tx_tls;
  if (tls.mgr != this || tls.gen != generation_) {
    pre_call_slow(next_site);
    return;
  }
  TxContext& ctx = *static_cast<TxContext*>(tls.ctx);
  detail::tally_bump(ctx.gate_calls);
  // Frame of this gate, measured the same way at every gate (recording and
  // comparison both live in this function, so inlining depth cancels).
  const auto gate_sp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  ctx.last_gate_sp = gate_sp;
  if (ctx.active.open) {
    if (can_extend(ctx, next_site, gate_sp)) {
      // Checkpoint fast path: keep the transaction (and its snapshot, undo
      // log, filter epoch and watchdog deadline) open; the next begin()
      // records a run entry instead of re-checkpointing.
      ctx.coalesce_armed = true;
      return;
    }
    commit_open_tx(ctx);
  }
  ctx.comp_arena.clear();
}

}  // namespace fir
