// TxManager: FIRestarter's recovery runtime.
//
// One instance protects one application. It implements, in one place, the
// roles the paper splits across its compiler passes' runtime halves:
//   * Checkpoint Manager   — begins/commits HTM or STM transactions at
//     library-call boundaries, snapshots the native stack, restores
//     registers via the entry gate's setjmp/longjmp;
//   * Adaptive Transaction Shaper — folds non-divertible library calls into
//     the open transaction (embedded reverts / deferred effects);
//   * dynamic adaptation policy   — per-site HTM/STM selection (core/policy);
//   * Fault Injector       — on a persistent crash, runs the opening call's
//     compensation action and forces its documented error return + errno,
//     diverting execution into the application's own error handler.
//
// The gate protocol (driven by the FIR_* macros in src/interpose/fir.h):
//
//   mgr.pre_call();                       // commit the open transaction
//   if (setjmp(*mgr.gate_buf()) == 0) {   // the checkpoint's register save
//     rv = <perform environment call>;
//     mgr.begin(site, rv, compensation);  // snapshot stack, start HTM/STM
//   } else {
//     rv = mgr.resume();                  // retry value or injected error
//   }
#pragma once

#include <csetjmp>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "core/crash.h"
#include "core/policy.h"
#include "core/site.h"
#include "core/stack_snapshot.h"
#include "env/env.h"
#include "htm/htm.h"
#include "obs/obs.h"
#include "stm/stm.h"

namespace fir {

/// Reverts the effect of a library call during recovery. Plain function
/// pointer + two scalar args + optional stashed bytes: no allocation on the
/// gate fast path.
struct Compensation {
  /// (env, a, b, rv, stashed data) — rv is the call's original return value.
  using Fn = void (*)(Env& env, std::intptr_t a, std::intptr_t b,
                      std::intptr_t rv, const std::uint8_t* data,
                      std::size_t len);
  Fn fn = nullptr;
  std::intptr_t a = 0;
  std::intptr_t b = 0;
  std::uint32_t data_off = 0;
  std::uint32_t data_len = 0;
};

/// A library-call effect postponed until its transaction commits
/// ("operation deferrable" class: close, free, unlink, ...).
struct DeferredOp {
  using Fn = void (*)(Env& env, std::intptr_t a, std::intptr_t b);
  Fn fn = nullptr;
  std::intptr_t a = 0;
  std::intptr_t b = 0;
};

/// One recovery episode, for the experiment harness (Table IV, Fig. 5).
struct RecoveryEvent {
  SiteId site = kInvalidSite;
  CrashKind kind = CrashKind::kSegv;
  enum class Action : std::uint8_t { kRetry, kDivert, kFatal } action =
      Action::kRetry;
  double latency_seconds = 0.0;
};

/// Environment overrides applied at TxManager construction (the same
/// operator-first pattern as the FIR_TRACE_* knobs, docs/OBSERVABILITY.md).
inline constexpr const char* kEnvUndoRetainBytes = "FIR_UNDO_RETAIN_BYTES";
inline constexpr const char* kEnvStmFilter = "FIR_STM_FILTER";
inline constexpr const char* kEnvSignals = "FIR_SIGNALS";
inline constexpr const char* kEnvTxDeadlineMs = "FIR_TX_DEADLINE_MS";
inline constexpr const char* kEnvRecoveryLogCap = "FIR_RECOVERY_LOG_CAP";
inline constexpr const char* kEnvStormThreshold = "FIR_STORM_THRESHOLD";

struct TxManagerConfig {
  PolicyConfig policy;
  HtmConfig htm;
  /// Observability defaults; the FIR_TRACE_* environment overrides them at
  /// manager construction (obs::ObsConfig::from_env).
  obs::ObsConfig obs;
  /// Rollback + re-execution attempts before a crash is declared persistent
  /// and diverted (transient faults survive the retry).
  int max_crash_retries = 1;
  /// Capacity the undo log and first-write filter retain across
  /// transactions: buffers grown by one outlier transaction shrink back
  /// under this cap at commit/rollback, bounding the steady-state memory
  /// overhead (Fig. 9). FIR_UNDO_RETAIN_BYTES overrides.
  std::size_t undo_retain_bytes = UndoLog::kDefaultRetainBytes;
  /// First-write filtering in the STM store path: only the first store to
  /// each (line, byte-range) pays an undo-log append. FIR_STM_FILTER=0
  /// restores the log-every-store behaviour for A/B measurement.
  bool stm_write_filter = true;
  /// Real POSIX signal crash channel (FIR_SIGNALS=1 overrides): install
  /// sigaltstack + sigaction handlers that proxy SIGSEGV/SIGBUS/SIGILL/
  /// SIGFPE/SIGABRT (and the watchdog's SIGALRM) into this manager, so
  /// actual MMU faults enter the same rollback → compensate → inject
  /// sequence as raise_crash(). Off by default: the synchronous channel
  /// keeps tests and campaigns deterministic.
  bool real_signals = false;
  /// Hang watchdog (needs real_signals): a transaction open longer than
  /// this wall-clock deadline receives SIGALRM, which the channel converts
  /// into a CrashKind::kHang recovery episode — rollback, one retry, then
  /// diversion, extending the fault model beyond fail-stop. 0 disables.
  /// FIR_TX_DEADLINE_MS overrides.
  std::uint32_t tx_deadline_ms = 0;
  /// Upper bound on recovery_log() entries. The capacity is reserved at
  /// construction, so recording an episode never allocates (the recovery
  /// step can run in signal context); episodes beyond the cap are dropped
  /// and counted in "recovery.log_dropped". FIR_RECOVERY_LOG_CAP overrides.
  std::size_t recovery_log_cap = 65536;
  /// Master switch: false turns every gate into a plain call (vanilla).
  bool enabled = true;
};

/// See file comment.
class TxManager final : public CrashHandler {
 public:
  TxManager(Env& env, TxManagerConfig config = {});
  ~TxManager() override;

  TxManager(const TxManager&) = delete;
  TxManager& operator=(const TxManager&) = delete;

  // --- site registry ----------------------------------------------------
  /// Process-unique instance number. The wrapper macros cache SiteIds in
  /// function-local statics; the generation tag invalidates those caches
  /// when a new TxManager (with a fresh registry) takes over.
  std::uint64_t generation() const { return generation_; }

  SiteId register_site(std::string_view function, std::string_view location);
  SiteRegistry& sites() { return sites_; }
  const SiteRegistry& sites() const { return sites_; }

  // --- gate protocol ----------------------------------------------------
  /// Marks the protected event loop's frame: transactions snapshot the stack
  /// up to this address. Pass the address of a local in the loop function.
  void set_anchor(const void* anchor_sp) { anchor_ = anchor_sp; }
  void clear_anchor() { anchor_ = nullptr; }

  std::jmp_buf* gate_buf() { return &gate_buf_; }

  /// Commits the open transaction (runs deferred effects). Called before
  /// every library call, and by quiesce().
  void pre_call();

  /// Opens a transaction at `site`; `rv` is the opening call's return value,
  /// `comp` reverts its effect if the transaction later diverts.
  void begin(SiteId site, std::intptr_t rv, Compensation comp = {});

  /// Gate re-entry after a rollback longjmp: yields the value the opening
  /// library call should now return (original `rv` on retry, the injected
  /// error on diversion). Throws FatalCrashError when the crash cannot be
  /// absorbed.
  std::intptr_t resume();

  /// Ends any open transaction (shutdown / loop quiesce point).
  void quiesce() { pre_call(); }

  // --- Adaptive Transaction Shaper hooks ---------------------------------
  /// Registers the revert for a non-divertible call embedded in the open
  /// transaction. `embedded_site` identifies the call for Table III stats.
  void embed_revert(SiteId embedded_site, Compensation revert);
  /// Marks an embedded call with no revert needed (idempotent class).
  void embed_idempotent(SiteId embedded_site);
  /// Deferred effect of the OPENING deferrable call (kept across retries,
  /// dropped on diversion, run at commit).
  void set_opening_deferred(DeferredOp op);
  /// Deferred effect of an EMBEDDED deferrable call (dropped on rollback —
  /// re-execution re-issues it — and run at commit).
  void defer_embedded(SiteId embedded_site, DeferredOp op);
  /// Copies pre-call state (e.g. a recv destination buffer) into the
  /// per-transaction stash; returns its offset for Compensation::data_off.
  /// Call between pre_call() and begin().
  std::uint32_t stash_comp_data(const void* data, std::size_t len);
  const std::uint8_t* comp_data(std::uint32_t off) const {
    return comp_arena_.data() + off;
  }

  // --- CrashHandler -------------------------------------------------------
  [[noreturn]] void handle_crash(CrashKind kind) override;
  /// Async-signal-safe queries for the signal channel (plain field reads).
  bool crash_recoverable() const override {
    return active_.open && active_.mode != TxMode::kNone &&
           !active_.diverted && !in_recovery_;
  }
  bool in_recovery() const override { return in_recovery_; }
  /// Crash during the recovery step: emit kDoubleFault into the trace ring
  /// (lock-free, allocation-free), then terminate via
  /// die_double_fault(kDoubleFaultExitCode). Never recurses into recovery.
  [[noreturn]] void handle_double_fault(CrashKind kind) override;

  // --- introspection ------------------------------------------------------
  bool in_transaction() const { return active_.open; }
  TxMode current_mode() const { return active_.mode; }
  bool diverted() const { return active_.diverted; }
  const TxManagerConfig& config() const { return config_; }
  Env& env() { return env_; }

  const HtmStats& htm_stats() const { return htm_.stats(); }
  StmStats stm_stats() const { return stm_.stats(); }
  const Histogram& recovery_latency() const { return recovery_latency_; }
  const std::vector<RecoveryEvent>& recovery_log() const {
    return recovery_log_;
  }
  /// Lifetime count of transactions run under each mode (Fig. 7/8 inputs).
  /// The same numbers appear as "tx.htm" / "tx.stm" / "tx.unprotected" in
  /// metrics snapshots (published by this manager's collector).
  std::uint64_t transactions_htm() const { return tx_htm_; }
  std::uint64_t transactions_stm() const { return tx_stm_; }
  std::uint64_t transactions_unprotected() const { return tx_none_; }

  // --- observability ------------------------------------------------------
  /// Event trace + metrics registry of this runtime (docs/OBSERVABILITY.md).
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }
  obs::MetricsRegistry& metrics() { return obs_.metrics(); }
  /// Resolves site ids to (function, location) for the trace exporters.
  /// The returned callback borrows this manager's site registry.
  obs::SiteSymbolizer trace_symbolizer() const;

  /// Bytes of instrumentation state currently reserved (Fig. 9 input):
  /// stack-snapshot buffer, undo log, HTM write-set bookkeeping, stash.
  std::size_t instrumentation_bytes() const;

  /// Clears stats/logs between experiment phases (sites persist).
  void reset_stats();

 private:
  enum class ResumeAction : std::uint8_t {
    kNone = 0,
    kRetryStm,          // rollback done; re-execute under STM
    kRetryUnprotected,  // HTM-only policy: re-execute without protection
    kDivert,            // compensation done; return the injected error
    kFatal,             // unrecoverable: resume() throws
  };

  struct ActiveTx {
    bool open = false;
    bool diverted = false;
    SiteId site = kInvalidSite;
    TxMode mode = TxMode::kNone;
    std::intptr_t rv = 0;
    int crash_count = 0;
    Compensation comp;
    bool has_opening_deferred = false;
    DeferredOp opening_deferred;
  };

  static void htm_store_abort_hook(void* self);
  static void recovery_trampoline(void* self);

  /// Runs on the detached recovery stack; ends in longjmp into the gate.
  [[noreturn]] void recovery_step();
  void run_compensation(const Compensation& comp);
  void commit_open_tx();
  void start_recording(TxMode mode);
  void stop_recording();
  void reset_active();
  /// Appends to recovery_log_ within the construction-time reservation;
  /// beyond the cap the episode is dropped and counted (allocation-free —
  /// the recovery step may be running in signal context).
  void log_recovery_event(const RecoveryEvent& event);
  /// Hang-watchdog timer (one-shot ITIMER_REAL → SIGALRM). Armed per
  /// protected transaction, disarmed at commit and at crash entry.
  bool watchdog_enabled() const {
    return signals_installed_ && config_.tx_deadline_ms > 0;
  }
  void arm_watchdog();
  void disarm_watchdog();

  Env& env_;
  TxManagerConfig config_;
  /// Declared before the registry-backed references below: they bind to
  /// metrics owned by obs_ in the constructor's init list.
  obs::Observability obs_;
  AdaptivePolicy policy_;
  SiteRegistry sites_;
  HtmContext htm_;
  StmContext stm_;

  const void* anchor_ = nullptr;
  std::jmp_buf gate_buf_;
  StackSnapshot snapshot_;
  RecoveryStack recovery_stack_;

  ActiveTx active_;
  std::vector<Compensation> embedded_reverts_;
  std::vector<DeferredOp> embedded_deferred_;
  std::vector<std::uint8_t> comp_arena_;

  // Crash-in-flight state (set by handle_crash, consumed by recovery_step).
  CrashKind crash_kind_ = CrashKind::kSegv;
  bool crash_is_htm_abort_ = false;
  HtmAbortCode htm_abort_code_ = HtmAbortCode::kNone;
  ResumeAction resume_action_ = ResumeAction::kNone;
  StopWatch crash_watch_;
  /// True from crash entry until resume(): a second crash in this window is
  /// a double fault and escalates to process exit instead of recursing.
  bool in_recovery_ = false;
  /// The in-flight crash arrived through the signal channel: the recovery
  /// step must stay async-signal-safe (no stdio) and stamps the episode
  /// with the recorded fault address.
  bool crash_via_signal_ = false;
  /// This manager holds one install_signal_channel() reference.
  bool signals_installed_ = false;

  /// Recovery counters pre-bound at construction so the crash path never
  /// performs a registry lookup (std::map + std::string — allocates); the
  /// whole signal-entry recovery path must be allocation-free.
  struct RecoveryCounters {
    explicit RecoveryCounters(obs::MetricsRegistry& reg);
    obs::Counter& crashes;
    obs::Counter& rollbacks;
    obs::Counter& retries;
    obs::Counter& compensations;
    obs::Counter& diversions;
    obs::Counter& fatal;
    obs::Counter& signals_caught;
    obs::Counter& double_faults;
    obs::Counter& watchdog_fires;
    obs::Counter& storm_diverts;
    obs::Counter& log_dropped;
  };
  RecoveryCounters rc_;

  // Gate-path tallies. Plain (non-atomic) on purpose: the gate fast path
  // must not pay an atomic RMW per call, so these publish into the metrics
  // registry through a snapshot-time collector ("gate.calls", "tx.htm",
  // "tx.stm", "tx.unprotected", "tx.commits", "tx.deferred_flushed" — the
  // registry's second publishing style, like the HTM/STM engine stats).
  std::uint64_t gate_calls_ = 0;
  std::uint64_t tx_htm_ = 0;
  std::uint64_t tx_stm_ = 0;
  std::uint64_t tx_none_ = 0;
  std::uint64_t tx_commits_ = 0;
  std::uint64_t tx_deferred_ = 0;
  /// Registry-owned ("recovery.latency_seconds"); updates are cold-path.
  Histogram& recovery_latency_;
  std::vector<RecoveryEvent> recovery_log_;

  CrashHandler* previous_handler_ = nullptr;
  std::uint64_t generation_ = 0;
};

}  // namespace fir
