// Native-stack checkpointing.
//
// The paper's Checkpoint Manager saves "the contents of all registers in
// memory, using a method akin to glibc's setjmp() and longjmp()" and its STM
// instrumentation logs stack stores so the stack can be restored. We achieve
// the same end state differently (DESIGN.md §2): at transaction begin we copy
// the stack region between the current stack pointer and an application-set
// anchor (the event-loop frame) into a side buffer; on rollback we copy it
// back and longjmp into the entry gate. setjmp/longjmp covers the registers,
// the wholesale copy covers the stack stores.
//
// The restore MUST NOT run on the stack it is about to overwrite: a crash can
// occur in a frame shallower than the checkpointed gate frame (the function
// holding the gate returned before the crash), in which case the restoring
// code's own frames would lie inside the restore region. RecoveryStack
// provides a detached scratch stack (ucontext) on which the recovery step
// runs before longjmp-ing back.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fir {

/// Saves/restores the [sp, anchor) stack region (stacks grow down: sp is the
/// numerically smaller bound).
class StackSnapshot {
 public:
  /// Largest stack region a snapshot may cover. Event-driven servers sit a
  /// few KiB below their loop anchor; exceeding this indicates a misplaced
  /// anchor.
  static constexpr std::size_t kMaxBytes = 1 << 20;

  /// Captures [sp, anchor). Requires sp < anchor and size within kMaxBytes.
  /// Returns false (leaving the snapshot empty) when bounds are implausible.
  bool capture(const void* sp, const void* anchor);

  /// Copies the captured bytes back to their original location. Caller must
  /// be executing on a different stack (see RecoveryStack).
  void restore() const;

  bool valid() const { return base_ != 0; }
  void invalidate() { base_ = 0; }
  std::size_t size_bytes() const { return buffer_.size(); }
  /// Capacity of the side buffer (memory-overhead accounting, Fig. 9).
  std::size_t footprint_bytes() const { return buffer_.capacity(); }

 private:
  std::uintptr_t base_ = 0;  // original address of buffer_[0]
  std::vector<std::uint8_t> buffer_;
};

/// A detached execution stack for the recovery step.
///
/// run() switches to the scratch stack, invokes fn(arg), and — because the
/// recovery step always ends in a longjmp into the application's entry gate —
/// never returns through the context switch. fn must not return.
class RecoveryStack {
 public:
  RecoveryStack();

  using Fn = void (*)(void* arg);

  /// Executes fn(arg) on the scratch stack. fn must longjmp away; if it
  /// returns, the process aborts (there is nowhere sane to continue).
  [[noreturn]] void run(Fn fn, void* arg);

 private:
  static void trampoline();

  std::vector<std::uint8_t> stack_;
  ucontext_t recovery_ctx_;
  ucontext_t abandoned_ctx_;  // never resumed; required by swapcontext
  Fn fn_ = nullptr;
  void* arg_ = nullptr;
};

}  // namespace fir
