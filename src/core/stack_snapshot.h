// Native-stack checkpointing.
//
// The paper's Checkpoint Manager saves "the contents of all registers in
// memory, using a method akin to glibc's setjmp() and longjmp()" and its STM
// instrumentation logs stack stores so the stack can be restored. We achieve
// the same end state differently (DESIGN.md §2): at transaction begin we copy
// the stack region between the current stack pointer and an application-set
// anchor (the event-loop frame) into a side buffer; on rollback we copy it
// back and longjmp into the entry gate. setjmp/longjmp covers the registers,
// the wholesale copy covers the stack stores.
//
// Checkpoint fast path (docs/ARCHITECTURE.md "Checkpoint fast path"): the
// side buffer is grow-only and survives across transactions, so steady-state
// captures never allocate, and a capture whose [sp, anchor) extent matches
// the previous one runs INCREMENTALLY — it verifies, top-down in cache-line
// blocks, how deep the previously captured image still matches the live
// stack (the high-watermark of the deepest extent touched since the last
// capture) and re-copies only the dirty prefix below that watermark. The
// elided suffix is sound by construction: every elided byte was just
// compared equal, so buffer contents == live contents there.
//
// The restore MUST NOT run on the stack it is about to overwrite: a crash can
// occur in a frame shallower than the checkpointed gate frame (the function
// holding the gate returned before the crash), in which case the restoring
// code's own frames would lie inside the restore region. RecoveryStack
// provides a detached scratch stack (ucontext) on which the recovery step
// runs before longjmp-ing back.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fir {

/// Saves/restores the [sp, anchor) stack region (stacks grow down: sp is the
/// numerically smaller bound).
class StackSnapshot {
 public:
  /// Largest stack region a snapshot may cover. Event-driven servers sit a
  /// few KiB below their loop anchor; exceeding this indicates a misplaced
  /// anchor.
  static constexpr std::size_t kMaxBytes = 1 << 20;
  /// Comparison granule of the incremental capture: the dirty watermark is
  /// tracked in cache-line-sized blocks.
  static constexpr std::size_t kBlockBytes = 64;

  /// Captures [sp, anchor). Requires sp < anchor and size within kMaxBytes.
  /// Returns false (leaving the snapshot invalid) when bounds are
  /// implausible. When the extent matches the previous capture the copy is
  /// incremental (see file comment); the buffer never shrinks and a capture
  /// that fits the retained capacity performs no allocation.
  bool capture(const void* sp, const void* anchor);

  /// Copies the captured bytes back to their original location. Caller must
  /// be executing on a different stack (see RecoveryStack).
  void restore() const;

  bool valid() const { return valid_; }
  /// Marks the snapshot unusable for restore. The buffer, its capacity and
  /// the captured image are retained so the next capture of the same extent
  /// stays incremental and allocation-free.
  void invalidate() { valid_ = false; }
  std::size_t size_bytes() const { return size_; }
  /// Capacity of the side buffer (memory-overhead accounting, Fig. 9).
  std::size_t footprint_bytes() const { return capacity_; }

  // Observability tallies ("snapshot.*" counters, docs/OBSERVABILITY.md).
  // Single-writer: the owning thread updates with relaxed load+store pairs;
  // metrics collectors read relaxed from other threads.
  std::uint64_t bytes_copied() const {
    return bytes_copied_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_elided() const {
    return bytes_elided_.load(std::memory_order_relaxed);
  }
  std::uint64_t reallocs() const {
    return reallocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t captures_incremental() const {
    return captures_incremental_.load(std::memory_order_relaxed);
  }
  void reset_tallies() {
    bytes_copied_.store(0, std::memory_order_relaxed);
    bytes_elided_.store(0, std::memory_order_relaxed);
    reallocs_.store(0, std::memory_order_relaxed);
    captures_incremental_.store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& tally, std::uint64_t n) {
    tally.store(tally.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }

  bool valid_ = false;
  std::uintptr_t base_ = 0;   // original address of buffer_[0]
  std::size_t size_ = 0;      // bytes captured by the last capture()
  std::size_t capacity_ = 0;  // grow-only buffer capacity
  std::unique_ptr<std::uint8_t[]> buffer_;

  std::atomic<std::uint64_t> bytes_copied_{0};
  std::atomic<std::uint64_t> bytes_elided_{0};
  std::atomic<std::uint64_t> reallocs_{0};
  std::atomic<std::uint64_t> captures_incremental_{0};
};

/// A detached execution stack for the recovery step.
///
/// run() switches to the scratch stack, invokes fn(arg), and — because the
/// recovery step always ends in a longjmp into the application's entry gate —
/// never returns through the context switch. fn must not return.
class RecoveryStack {
 public:
  RecoveryStack();

  using Fn = void (*)(void* arg);

  /// Executes fn(arg) on the scratch stack. fn must longjmp away; if it
  /// returns, the process aborts (there is nowhere sane to continue).
  [[noreturn]] void run(Fn fn, void* arg);

 private:
  static void trampoline();

  std::vector<std::uint8_t> stack_;
  ucontext_t recovery_ctx_;
  ucontext_t abandoned_ctx_;  // never resumed; required by swapcontext
  Fn fn_ = nullptr;
  void* arg_ = nullptr;
};

}  // namespace fir
