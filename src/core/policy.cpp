#include "core/policy.h"

#include <algorithm>

#include "obs/obs.h"

namespace fir {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAdaptive: return "adaptive";
    case PolicyKind::kNaiveHtm: return "naive-htm";
    case PolicyKind::kStmOnly: return "stm-only";
    case PolicyKind::kHtmOnly: return "htm-only";
    case PolicyKind::kManual: return "manual";
    case PolicyKind::kUnprotected: return "unprotected";
  }
  return "?";
}

AdaptivePolicy::AdaptivePolicy(PolicyConfig config)
    : config_(std::move(config)) {}

void AdaptivePolicy::set_observability(obs::Observability* obs) {
  obs_ = obs;
  decoalesced_ =
      obs != nullptr ? &obs->metrics().counter("policy.decoalesced") : nullptr;
}

bool AdaptivePolicy::manual_stm(const Site& site) const {
  return std::find(config_.manual_stm_functions.begin(),
                   config_.manual_stm_functions.end(),
                   site.function) != config_.manual_stm_functions.end();
}

TxMode AdaptivePolicy::choose_mode(Site& site) {
  // Gate fast path: lock-free. Counters are relaxed atomics — threads
  // executing the same site concurrently aggregate into one abort-ratio
  // account; nothing here orders other memory.
  GateState& gate = site.gate;
  const std::uint64_t executions =
      gate.executions.fetch_add(1, std::memory_order_relaxed) + 1;

  switch (config_.kind) {
    case PolicyKind::kUnprotected:
      return TxMode::kNone;
    case PolicyKind::kStmOnly:
      return TxMode::kStm;
    case PolicyKind::kHtmOnly:
    case PolicyKind::kNaiveHtm:
      return TxMode::kHtm;
    case PolicyKind::kManual:
      return manual_stm(site) ? TxMode::kStm : TxMode::kHtm;
    case PolicyKind::kAdaptive: {
      if (gate.sticky_stm.load(std::memory_order_relaxed)) return TxMode::kStm;
      // Periodic threshold check: every sample_size executions, compare the
      // lifetime abort ratio against the tolerance (§IV-C / §VI-D). The
      // window counter is a shared tally, so under concurrency "every
      // sample_size executions" is across all threads combined.
      if (gate.window_executions.fetch_add(1, std::memory_order_relaxed) + 1 >=
          config_.sample_size) {
        gate.window_executions.store(0, std::memory_order_relaxed);
        const std::uint64_t aborts =
            gate.htm_aborts.load(std::memory_order_relaxed);
        const double ratio = static_cast<double>(aborts) /
                             static_cast<double>(executions);
        if (ratio > config_.abort_threshold && aborts > 0) {
          // CAS so exactly one thread wins the demotion and publishes it:
          // concurrent losers still return kStm, but the kSiteDemotion
          // event and "policy.demotions" increment happen once per site.
          bool expected = false;
          if (gate.sticky_stm.compare_exchange_strong(
                  expected, true, std::memory_order_relaxed)) {
            publish_demotion(site);
          }
          return TxMode::kStm;
        }
      }
      return TxMode::kHtm;
    }
  }
  return TxMode::kStm;
}

void AdaptivePolicy::publish_demotion(const Site& site) {
  if (obs_ == nullptr) return;
  obs_->emit(obs::EventKind::kSiteDemotion, site.id, nullptr,
             static_cast<std::int64_t>(site.gate.htm_aborts),
             static_cast<std::int64_t>(site.gate.executions));
  obs_->metrics().counter("policy.demotions").inc();
}

void AdaptivePolicy::on_run_abort(Site& site) {
  // CAS so exactly one thread per site publishes the de-coalescing; the
  // flag itself is what the gate fast path (allow_coalesce) reads.
  bool expected = false;
  if (site.gate.no_coalesce.compare_exchange_strong(
          expected, true, std::memory_order_relaxed) &&
      decoalesced_ != nullptr) {
    decoalesced_->inc();
  }
}

TxMode AdaptivePolicy::on_htm_abort(Site& site) {
  site.gate.htm_aborts.fetch_add(1, std::memory_order_relaxed);
  site.stats.htm_aborts.fetch_add(1, std::memory_order_relaxed);
  if (config_.kind == PolicyKind::kHtmOnly) return TxMode::kNone;
  return TxMode::kStm;
}

}  // namespace fir
