#include "core/policy.h"

#include <algorithm>

#include "obs/obs.h"

namespace fir {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAdaptive: return "adaptive";
    case PolicyKind::kNaiveHtm: return "naive-htm";
    case PolicyKind::kStmOnly: return "stm-only";
    case PolicyKind::kHtmOnly: return "htm-only";
    case PolicyKind::kManual: return "manual";
    case PolicyKind::kUnprotected: return "unprotected";
  }
  return "?";
}

AdaptivePolicy::AdaptivePolicy(PolicyConfig config)
    : config_(std::move(config)) {}

bool AdaptivePolicy::manual_stm(const Site& site) const {
  return std::find(config_.manual_stm_functions.begin(),
                   config_.manual_stm_functions.end(),
                   site.function) != config_.manual_stm_functions.end();
}

TxMode AdaptivePolicy::choose_mode(Site& site) {
  GateState& gate = site.gate;
  ++gate.executions;

  switch (config_.kind) {
    case PolicyKind::kUnprotected:
      return TxMode::kNone;
    case PolicyKind::kStmOnly:
      return TxMode::kStm;
    case PolicyKind::kHtmOnly:
    case PolicyKind::kNaiveHtm:
      return TxMode::kHtm;
    case PolicyKind::kManual:
      return manual_stm(site) ? TxMode::kStm : TxMode::kHtm;
    case PolicyKind::kAdaptive: {
      if (gate.sticky_stm) return TxMode::kStm;
      // Periodic threshold check: every sample_size executions, compare the
      // lifetime abort ratio against the tolerance (§IV-C / §VI-D).
      if (++gate.window_executions >= config_.sample_size) {
        gate.window_executions = 0;
        const double ratio =
            gate.executions == 0
                ? 0.0
                : static_cast<double>(gate.htm_aborts) /
                      static_cast<double>(gate.executions);
        if (ratio > config_.abort_threshold && gate.htm_aborts > 0) {
          gate.sticky_stm = true;
          publish_demotion(site);
          return TxMode::kStm;
        }
      }
      return TxMode::kHtm;
    }
  }
  return TxMode::kStm;
}

void AdaptivePolicy::publish_demotion(const Site& site) {
  if (obs_ == nullptr) return;
  obs_->emit(obs::EventKind::kSiteDemotion, site.id, nullptr,
             static_cast<std::int64_t>(site.gate.htm_aborts),
             static_cast<std::int64_t>(site.gate.executions));
  obs_->metrics().counter("policy.demotions").inc();
}

TxMode AdaptivePolicy::on_htm_abort(Site& site) {
  ++site.gate.htm_aborts;
  ++site.stats.htm_aborts;
  if (config_.kind == PolicyKind::kHtmOnly) return TxMode::kNone;
  return TxMode::kStm;
}

}  // namespace fir
