#include "core/analyzer.h"

#include <algorithm>

namespace fir {

SurfaceReport analyze_surface(const SiteRegistry& sites) {
  SurfaceReport report;
  for (const Site& site : sites.all()) {
    if (site.stats.transactions > 0) {
      ++report.unique_transactions;
      if (!site.recoverable()) ++report.irrecoverable_transactions;
    }
    if (site.stats.embedded_calls > 0) ++report.embedded_libcall_sites;
  }
  return report;
}

std::vector<SiteReportRow> site_report(const SiteRegistry& sites) {
  std::vector<SiteReportRow> rows;
  for (const Site& site : sites.all()) {
    if (site.stats.transactions == 0 && site.stats.embedded_calls == 0)
      continue;
    rows.push_back(SiteReportRow{site.function, site.location,
                                 site.recoverable(), site.stats});
  }
  std::sort(rows.begin(), rows.end(),
            [](const SiteReportRow& a, const SiteReportRow& b) {
              return a.stats.transactions > b.stats.transactions;
            });
  return rows;
}

}  // namespace fir
