// Checkpoint-mechanism selection policies (§IV-C, Fig. 3, Fig. 6).
//
// The policy answers one question per transaction begin: HTM or STM? and one
// per HTM abort: keep trying HTM at this site, or demote it permanently?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/site.h"

namespace fir {

namespace obs {
class Observability;
class Counter;
}  // namespace obs

/// The policy variants evaluated in the paper.
enum class PolicyKind : std::uint8_t {
  /// Dynamic transaction adaptivity: per-site abort accounting with an
  /// abort-ratio threshold checked every `sample_size` executions; sites
  /// exceeding the threshold switch to STM permanently. The paper's default
  /// (threshold 1%, sample size 4-128).
  kAdaptive = 0,
  /// Always attempt HTM first; fall back to STM per-invocation after an
  /// abort, but never demote a site. (Fig. 3 "naive".)
  kNaiveHtm,
  /// Every transaction uses STM. Full protection, maximum overhead.
  kStmOnly,
  /// Every transaction uses HTM; on abort, fall back to UNPROTECTED
  /// re-execution (the HAFT-style comparator — no recovery guarantee).
  kHtmOnly,
  /// Like kNaiveHtm but sites on a hand-written list go straight to STM
  /// (Fig. 3 "manual marking").
  kManual,
  /// No transactions at all (vanilla baseline).
  kUnprotected,
};

const char* policy_kind_name(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kAdaptive;
  /// Maximum tolerated HTM-abort ratio before a site is demoted (kAdaptive).
  double abort_threshold = 0.01;
  /// Executions between threshold checks (kAdaptive).
  std::uint32_t sample_size = 4;
  /// Library functions whose sites are hand-marked STM (kManual). The
  /// paper's manual experiment marks the sites following malloc(),
  /// posix_memalign() and fcntl64().
  std::vector<std::string> manual_stm_functions;
  /// Crash-storm backstop: once a site has been diverted this many times,
  /// further persistent crashes there skip the transient-retry attempt and
  /// divert immediately (each skipped retry re-executes the whole faulty
  /// region for nothing). 0 disables the backstop — the seed behaviour and
  /// the default, so deterministic experiments keep their retry counts.
  /// FIR_STORM_THRESHOLD overrides at TxManager construction.
  std::uint32_t storm_divert_threshold = 0;
};

/// Stateless decision logic over per-site GateState.
class AdaptivePolicy {
 public:
  explicit AdaptivePolicy(PolicyConfig config = {});

  const PolicyConfig& config() const { return config_; }

  /// Publishes demotion decisions (kSiteDemotion events, the
  /// "policy.demotions" counter) into `obs`; nullptr disables publishing.
  /// The TxManager owning this policy wires its own Observability here.
  /// Pre-binds the "policy.decoalesced" counter: on_run_abort runs on the
  /// recovery path, where a registry name lookup (allocates) is off-limits.
  void set_observability(obs::Observability* obs);

  /// Mode for a transaction about to begin at `site`. Updates execution
  /// accounting and (kAdaptive) runs the periodic threshold check.
  TxMode choose_mode(Site& site);

  /// Records an HTM abort at `site`. Returns the mode to re-execute under:
  /// kStm for recovering policies, kNone for kHtmOnly (unprotected fallback).
  TxMode on_htm_abort(Site& site);

  /// Crash-storm backstop: true when `site` has already been diverted
  /// `storm_divert_threshold` times, so the recovery step should skip the
  /// transient-retry attempt and divert immediately.
  bool storm_skip_retry(const Site& site) const {
    return config_.storm_divert_threshold > 0 &&
           site.gate.diversions >= config_.storm_divert_threshold;
  }

  /// Records a diversion at `site` (feeds the storm backstop's memory).
  void on_diversion(Site& site) { ++site.gate.diversions; }

  /// Checkpoint fast path: may a call at `site` EXTEND the open transaction
  /// instead of committing it and re-checkpointing? Yes only when the site
  /// is quiescent (it has never crashed, HTM-aborted, been diverted, or
  /// been de-coalesced) and its library function is replay-safe — reverting
  /// it and re-executing it inside a rolled-back run is semantically sound,
  /// which excludes the irrecoverable class (send/write: externally visible
  /// effects cannot be replayed). Gate fast path: relaxed atomic loads only.
  bool allow_coalesce(const Site& site) const {
    const GateState& gate = site.gate;
    if (gate.no_coalesce.load(std::memory_order_relaxed)) return false;
    if (gate.htm_aborts.load(std::memory_order_relaxed) != 0) return false;
    if (gate.diversions.load(std::memory_order_relaxed) != 0) return false;
    if (site.stats.crashes.load(std::memory_order_relaxed) != 0) return false;
    // An extension is rolled back (compensated) and RE-EXECUTED when the
    // run aborts, so the call's effects must be exactly revert-then-replay
    // equivalent: irrecoverable calls (send, write) have no revert at all,
    // and replay_unsafe calls (accept) have a revert the peer can see.
    return site.spec != nullptr &&
           site.spec->recoverability != Recoverability::kIrrecoverable &&
           !site.spec->replay_unsafe;
  }

  /// De-coalesces `site`: a crash or HTM abort struck inside a coalesced
  /// run it belonged to. Sticky — the site pays for its own checkpoint from
  /// now on. Publishes "policy.decoalesced" once per site.
  void on_run_abort(Site& site);

 private:
  bool manual_stm(const Site& site) const;
  void publish_demotion(const Site& site);

  PolicyConfig config_;
  obs::Observability* obs_ = nullptr;
  obs::Counter* decoalesced_ = nullptr;
};

}  // namespace fir
