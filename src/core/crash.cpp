#include "core/crash.h"

namespace fir {
namespace {
CrashHandler* g_handler = nullptr;
}  // namespace

const char* crash_kind_name(CrashKind kind) {
  switch (kind) {
    case CrashKind::kSegv: return "SIGSEGV";
    case CrashKind::kAbort: return "SIGABRT";
    case CrashKind::kIllegal: return "SIGILL";
    case CrashKind::kBus: return "SIGBUS";
    case CrashKind::kFpe: return "SIGFPE";
  }
  return "?";
}

CrashHandler* set_crash_handler(CrashHandler* handler) {
  CrashHandler* prev = g_handler;
  g_handler = handler;
  return prev;
}

CrashHandler* crash_handler() { return g_handler; }

void raise_crash(CrashKind kind) {
  if (g_handler != nullptr) g_handler->handle_crash(kind);
  throw FatalCrashError(
      kind, std::string("fatal ") + crash_kind_name(kind) +
                " with no recovery runtime installed");
}

}  // namespace fir
