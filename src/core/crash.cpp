#include "core/crash.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fir {
namespace {
/// The process-wide handler pointer is the one piece of crash-channel state
/// every thread shares: signals land on whichever thread faulted, so the
/// read in the handler must be race-free against a manager claiming or
/// releasing the slot on another thread. Relaxed is enough — the handler
/// object itself is made visible by the happens-before edge of whatever
/// started the faulting thread after the manager was constructed.
std::atomic<CrashHandler*> g_handler{nullptr};

// --- signal channel state ---------------------------------------------------
// Signals are delivered to the faulting thread, so everything describing
// "the crash in flight" is thread-local: concurrent faults on different
// threads each see their own dispatch latch and SignalCrashInfo. Only the
// installation bookkeeping is shared, and that is guarded by a mutex (it
// runs at manager construction, never on a fault path).

/// Signals the channel proxies, in CrashKind order plus SIGALRM (watchdog).
constexpr int kChannelSignals[] = {SIGSEGV, SIGABRT, SIGILL,
                                   SIGBUS,  SIGFPE,  SIGALRM};
constexpr int kChannelSignalCount =
    static_cast<int>(sizeof(kChannelSignals) / sizeof(kChannelSignals[0]));

std::mutex g_install_mu;
int g_install_count = 0;
struct sigaction g_previous[kChannelSignalCount];
stack_t g_previous_altstack;

constexpr std::size_t kAltStackBytes = 64 * 1024;  // clears MINSIGSTKSZ

/// Per-thread sigaltstack registration. sigaltstack is a per-thread kernel
/// attribute: every thread that may fault needs its own stack or SA_ONSTACK
/// silently falls back to the (possibly trashed) thread stack. The buffer
/// is heap-allocated once per thread and deliberately leaked — freeing it
/// from a thread_local destructor would leave the kernel pointing at freed
/// memory for any signal delivered during thread teardown.
thread_local std::uint8_t* t_altstack = nullptr;
thread_local bool t_altstack_registered = false;

thread_local SignalCrashInfo t_last_signal;
thread_local bool t_in_dispatch = false;

CrashKind kind_from_signo(int signo) {
  switch (signo) {
    case SIGSEGV: return CrashKind::kSegv;
    case SIGABRT: return CrashKind::kAbort;
    case SIGILL: return CrashKind::kIllegal;
    case SIGBUS: return CrashKind::kBus;
    case SIGFPE: return CrashKind::kFpe;
    case SIGALRM: return CrashKind::kHang;
    default: return CrashKind::kSegv;
  }
}

/// Restores the default disposition for `signo` and lets it kill the
/// process the way it would have without the channel: synchronous faults
/// (SEGV/BUS/ILL/FPE) re-execute the faulting instruction on handler
/// return, asynchronous ones (ABRT/ALRM) are re-raised explicitly.
void pass_through(int signo) {
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(signo, &dfl, nullptr);
  if (signo == SIGABRT || signo == SIGALRM) raise(signo);
}

/// The channel's signal handler. Runs on the sigaltstack. Everything up to
/// the handle_crash handoff is async-signal-safe: static-storage writes,
/// sigaction/sigprocmask, plain-field virtual queries.
void channel_handler(int signo, siginfo_t* info, void* /*ucontext*/) {
  t_last_signal.signo = signo;
  t_last_signal.kind = kind_from_signo(signo);
  t_last_signal.fault_addr = info != nullptr ? info->si_addr : nullptr;
  ++t_last_signal.count;
  // Latched before any query: whatever happens next (double fault included)
  // arrived through this channel.
  t_in_dispatch = true;

  CrashHandler* handler = g_handler.load(std::memory_order_relaxed);
  if (handler != nullptr && handler->in_recovery()) {
    // A fault while the recovery step itself was running on THIS thread
    // (compensation action crashed, watchdog fired mid-rollback): recursing
    // would corrupt the half-restored state, so escalate and terminate.
    // in_recovery()/crash_recoverable() consult per-thread state, so a
    // sibling thread mid-recovery does not make this thread's fault fatal.
    handler->handle_double_fault(t_last_signal.kind);
  }
  if (handler == nullptr || !handler->crash_recoverable()) {
    // No transaction covers the fault (or it hit an already-diverted error
    // handler): the honest outcome is the vanilla one — die with the
    // original signal so the parent sees the real termination status.
    t_in_dispatch = false;
    pass_through(signo);
    return;
  }

  // Recoverable: unblock the signal (the kernel blocked it for the handler
  // duration; recovery longjmps out instead of returning through
  // sigreturn, and a later fault of the same kind must stay deliverable),
  // then hand off. handle_crash switches to the detached recovery stack
  // and ends in longjmp into the entry gate — it never returns here.
  sigset_t unblock;
  sigemptyset(&unblock);
  sigaddset(&unblock, signo);
  pthread_sigmask(SIG_UNBLOCK, &unblock, nullptr);
  handler->handle_crash(t_last_signal.kind);
}

}  // namespace

const char* crash_kind_name(CrashKind kind) {
  switch (kind) {
    case CrashKind::kSegv: return "SIGSEGV";
    case CrashKind::kAbort: return "SIGABRT";
    case CrashKind::kIllegal: return "SIGILL";
    case CrashKind::kBus: return "SIGBUS";
    case CrashKind::kFpe: return "SIGFPE";
    case CrashKind::kHang: return "HANG";
  }
  return "?";
}

int crash_kind_signo(CrashKind kind) {
  switch (kind) {
    case CrashKind::kSegv: return SIGSEGV;
    case CrashKind::kAbort: return SIGABRT;
    case CrashKind::kIllegal: return SIGILL;
    case CrashKind::kBus: return SIGBUS;
    case CrashKind::kFpe: return SIGFPE;
    case CrashKind::kHang: return SIGALRM;
  }
  return SIGSEGV;
}

void die_double_fault(CrashKind kind, const char* channel,
                      const DoubleFaultDiag* diag) {
  // write(2) only: the fault may have interrupted code holding stdio or
  // allocator locks, so compose the line into a stack buffer.
  char line[320];
  std::size_t n = 0;
  auto append = [&line, &n](const char* s) {
    while (s != nullptr && *s != '\0' && n < sizeof(line) - 1)
      line[n++] = *s++;
  };
  auto append_u32 = [&append](std::uint32_t v) {
    char digits[12];
    int i = 0;
    do {
      digits[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    char out[12];
    int o = 0;
    while (i > 0) out[o++] = digits[--i];
    out[o] = '\0';
    append(out);
  };
  append("fir: double fault (");
  append(crash_kind_name(kind));
  append(") during recovery via ");
  append(channel);
  append(" channel; site=");
  if (diag == nullptr || diag->site == static_cast<std::uint32_t>(-1)) {
    append("none");
  } else {
    append_u32(diag->site);
    if (diag->site_function != nullptr) {
      append(":");
      append(diag->site_function);
    }
    if (diag->site_location != nullptr) {
      append("@");
      append(diag->site_location);
    }
  }
  append(" depth=");
  append_u32(diag != nullptr ? diag->tx_depth : 0);
  append("; terminating\n");
  ssize_t ignored = ::write(STDERR_FILENO, line, n);
  (void)ignored;
  ::_exit(kDoubleFaultExitCode);
}

void CrashHandler::handle_double_fault(CrashKind kind) {
  die_double_fault(kind, in_signal_dispatch() ? "signal" : "sync");
}

CrashHandler* set_crash_handler(CrashHandler* handler) {
  return g_handler.exchange(handler, std::memory_order_relaxed);
}

CrashHandler* crash_handler() {
  return g_handler.load(std::memory_order_relaxed);
}

void raise_crash(CrashKind kind) {
  CrashHandler* handler = g_handler.load(std::memory_order_relaxed);
  if (handler != nullptr && handler->in_recovery()) {
    // Same double-fault contract as the signal channel: a compensation
    // action (or any recovery code) that crashes must not re-enter
    // recovery.
    handler->handle_double_fault(kind);
  }
  if (handler != nullptr) handler->handle_crash(kind);
  throw FatalCrashError(
      kind, std::string("fatal ") + crash_kind_name(kind) +
                " with no recovery runtime installed");
}

bool ensure_thread_signal_stack() {
  if (t_altstack_registered) return true;
  if (t_altstack == nullptr) t_altstack = new std::uint8_t[kAltStackBytes];
  stack_t altstack;
  std::memset(&altstack, 0, sizeof(altstack));
  altstack.ss_sp = t_altstack;
  altstack.ss_size = kAltStackBytes;
  altstack.ss_flags = 0;
  if (sigaltstack(&altstack, nullptr) != 0) return false;
  t_altstack_registered = true;
  return true;
}

bool install_signal_channel() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_install_count > 0) {
    ++g_install_count;
    ensure_thread_signal_stack();
    return true;
  }
  // Remember the installing thread's previous stack so uninstall can
  // restore it (the count drops to zero on the same thread in practice);
  // other threads register theirs via ensure_thread_signal_stack and keep
  // them — a registered-but-unused altstack is harmless.
  if (sigaltstack(nullptr, &g_previous_altstack) != 0) return false;
  if (!ensure_thread_signal_stack()) return false;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &channel_handler;
  sigemptyset(&action.sa_mask);
  // SA_ONSTACK: the handler must run even when the fault trashed the stack
  // pointer. SA_SIGINFO: the fault address comes from siginfo. No
  // SA_NODEFER/SA_RESETHAND: the handler unblocks explicitly on the
  // recovery path and resets explicitly on pass-through.
  action.sa_flags = SA_SIGINFO | SA_ONSTACK;
  for (int i = 0; i < kChannelSignalCount; ++i) {
    if (sigaction(kChannelSignals[i], &action, &g_previous[i]) != 0) {
      for (int j = 0; j < i; ++j)
        sigaction(kChannelSignals[j], &g_previous[j], nullptr);
      if (sigaltstack(&g_previous_altstack, nullptr) == 0)
        t_altstack_registered = false;
      return false;
    }
  }
  g_install_count = 1;
  return true;
}

void uninstall_signal_channel() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_install_count == 0) return;
  if (--g_install_count > 0) return;
  for (int i = 0; i < kChannelSignalCount; ++i)
    sigaction(kChannelSignals[i], &g_previous[i], nullptr);
  if (sigaltstack(&g_previous_altstack, nullptr) == 0)
    t_altstack_registered = false;
}

bool signal_channel_installed() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  return g_install_count > 0;
}

bool signal_channel_env_enabled() {
  const char* v = std::getenv("FIR_SIGNALS");
  return v != nullptr && !(v[0] == '0' && v[1] == '\0');
}

const SignalCrashInfo& last_signal_crash() { return t_last_signal; }

bool in_signal_dispatch() { return t_in_dispatch; }

void clear_signal_dispatch() { t_in_dispatch = false; }

}  // namespace fir
