// Transaction sites: one per static library-call location in the protected
// application.
//
// A site is where a crash transaction can begin (paper Fig. 2's "transaction
// entry gate" + the per-site tx_gate[] slot). It carries the library
// function's catalog entry, the adaptive-policy state for this location, and
// the counters behind Tables III/IV and Figures 3/6/8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "libmodel/catalog.h"

namespace fir {

using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

/// The checkpointing mechanism a transaction runs under.
enum class TxMode : std::uint8_t {
  kNone = 0,  // unprotected (vanilla baseline / post-irrecoverable region)
  kHtm,
  kStm,
};

/// Per-site adaptive-policy state: the runtime value of the paper's
/// tx_gate[] entry plus the abort-accounting window (§IV-C) and the
/// persistent-crash memory behind the crash-storm backstop.
struct GateState {
  /// Permanently demoted to STM by the dynamic adaptation policy.
  bool sticky_stm = false;
  /// Lifetime counters.
  std::uint64_t executions = 0;
  std::uint64_t htm_aborts = 0;
  /// Executions since the last threshold check (window of `sample_size`).
  std::uint32_t window_executions = 0;
  /// Times this site's persistent crashes were diverted. Once it reaches
  /// the policy's storm threshold, the transient-retry attempt is skipped
  /// and the site diverts immediately (crash-storm backstop): a site that
  /// keeps proving its faults persistent should not pay a wasted
  /// re-execution per request.
  std::uint32_t diversions = 0;
};

/// Per-site outcome counters.
struct SiteStats {
  std::uint64_t transactions = 0;   // times a transaction began here
  std::uint64_t commits = 0;
  std::uint64_t htm_aborts = 0;     // capacity/interrupt/conflict aborts
  std::uint64_t crashes = 0;        // fatal faults inside this site's txns
  std::uint64_t retries = 0;        // rollback + re-execution attempts
  std::uint64_t diversions = 0;     // fault injections performed
  std::uint64_t fatal = 0;          // crashes this site could not absorb
  std::uint64_t embedded_calls = 0; // non-divertible calls folded in
};

/// One static library-call site.
struct Site {
  SiteId id = kInvalidSite;
  std::string function;   // library function name ("setsockopt")
  std::string location;   // application source location ("miniginx.cpp:42")
  const LibFunctionSpec* spec = nullptr;  // nullptr: unmodeled function
  GateState gate;
  SiteStats stats;

  /// A transaction beginning here can divert execution on a persistent
  /// crash: the call reports errors AND its effect is compensable.
  bool recoverable() const {
    return spec != nullptr && LibraryCatalog::usable_for_recovery(*spec);
  }
  /// The call has an error channel that callers check (fault injection can
  /// change the execution path), regardless of compensability.
  bool divertible() const { return spec != nullptr && spec->divertible; }
};

/// Registry of all sites in one protected application. SiteIds are dense
/// indices; registration is idempotent per (function, location).
class SiteRegistry {
 public:
  /// Returns the existing site for (function, location) or creates one.
  SiteId intern(std::string_view function, std::string_view location);

  Site& operator[](SiteId id) { return sites_[id]; }
  const Site& operator[](SiteId id) const { return sites_[id]; }
  std::size_t size() const { return sites_.size(); }

  const std::vector<Site>& all() const { return sites_; }
  std::vector<Site>& all_mutable() { return sites_; }

  /// Zeroes every site's stats and gate state (fresh experiment run).
  void reset_runtime_state();

 private:
  std::vector<Site> sites_;
};

}  // namespace fir
