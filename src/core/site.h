// Transaction sites: one per static library-call location in the protected
// application.
//
// A site is where a crash transaction can begin (paper Fig. 2's "transaction
// entry gate" + the per-site tx_gate[] slot). It carries the library
// function's catalog entry, the adaptive-policy state for this location, and
// the counters behind Tables III/IV and Figures 3/6/8.
//
// The site table is the piece of runtime state every worker thread shares:
// a gate expansion in thread A and thread B can hit the same Site
// concurrently. All mutable per-site state is therefore atomic (relaxed —
// each counter only needs per-variable coherence, see docs/ARCHITECTURE.md
// "Threading model"), and the registry hands out stable addresses so a
// cached SiteId/pointer never dangles across later registrations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "libmodel/catalog.h"

namespace fir {

using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

/// The checkpointing mechanism a transaction runs under.
enum class TxMode : std::uint8_t {
  kNone = 0,  // unprotected (vanilla baseline / post-irrecoverable region)
  kHtm,
  kStm,
};

/// Per-site adaptive-policy state: the runtime value of the paper's
/// tx_gate[] entry plus the abort-accounting window (§IV-C) and the
/// persistent-crash memory behind the crash-storm backstop. Updated from
/// every thread that executes the site; copyable so reporting code can
/// still take value snapshots.
struct GateState {
  /// Permanently demoted to STM by the dynamic adaptation policy.
  std::atomic<bool> sticky_stm{false};
  /// Lifetime counters.
  std::atomic<std::uint64_t> executions{0};
  std::atomic<std::uint64_t> htm_aborts{0};
  /// Executions since the last threshold check (window of `sample_size`).
  std::atomic<std::uint32_t> window_executions{0};
  /// Times this site's persistent crashes were diverted. Once it reaches
  /// the policy's storm threshold, the transient-retry attempt is skipped
  /// and the site diverts immediately (crash-storm backstop): a site that
  /// keeps proving its faults persistent should not pay a wasted
  /// re-execution per request.
  std::atomic<std::uint32_t> diversions{0};
  /// Sticky coalescing opt-out: set by AdaptivePolicy::on_run_abort when
  /// any crash or HTM abort strikes inside a coalesced run this site was
  /// part of. A de-coalesced site always gets its own checkpoint again —
  /// the amortization gamble is only taken at sites that have never lost
  /// it (docs/ARCHITECTURE.md "Checkpoint fast path").
  std::atomic<bool> no_coalesce{false};

  GateState() = default;
  GateState(const GateState& o) { *this = o; }
  GateState& operator=(const GateState& o) {
    sticky_stm.store(o.sticky_stm.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    executions.store(o.executions.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    htm_aborts.store(o.htm_aborts.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    window_executions.store(
        o.window_executions.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    diversions.store(o.diversions.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    no_coalesce.store(o.no_coalesce.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }
};

/// Per-site outcome counters. Same concurrency contract as GateState.
struct SiteStats {
  std::atomic<std::uint64_t> transactions{0};  // times a txn began here
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> htm_aborts{0};  // capacity/interrupt/conflict
  std::atomic<std::uint64_t> crashes{0};  // fatal faults inside these txns
  std::atomic<std::uint64_t> retries{0};  // rollback + re-execution attempts
  std::atomic<std::uint64_t> diversions{0};  // fault injections performed
  std::atomic<std::uint64_t> fatal{0};  // crashes this site could not absorb
  std::atomic<std::uint64_t> embedded_calls{0};  // non-divertible folded in

  SiteStats() = default;
  SiteStats(const SiteStats& o) { *this = o; }
  SiteStats& operator=(const SiteStats& o) {
    auto cp = [](std::atomic<std::uint64_t>& dst,
                 const std::atomic<std::uint64_t>& src) {
      dst.store(src.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    };
    cp(transactions, o.transactions);
    cp(commits, o.commits);
    cp(htm_aborts, o.htm_aborts);
    cp(crashes, o.crashes);
    cp(retries, o.retries);
    cp(diversions, o.diversions);
    cp(fatal, o.fatal);
    cp(embedded_calls, o.embedded_calls);
    return *this;
  }
};

/// One static library-call site.
struct Site {
  SiteId id = kInvalidSite;
  std::string function;   // library function name ("setsockopt")
  std::string location;   // application source location ("miniginx.cpp:42")
  const LibFunctionSpec* spec = nullptr;  // nullptr: unmodeled function
  GateState gate;
  SiteStats stats;

  /// A transaction beginning here can divert execution on a persistent
  /// crash: the call reports errors AND its effect is compensable.
  bool recoverable() const {
    return spec != nullptr && LibraryCatalog::usable_for_recovery(*spec);
  }
  /// The call has an error channel that callers check (fault injection can
  /// change the execution path), regardless of compensability.
  bool divertible() const { return spec != nullptr && spec->divertible; }
};

/// Registry of all sites in one protected application. SiteIds are dense
/// indices; registration is idempotent per (function, location) and
/// mutex-guarded (gate SiteCaches make it a once-per-site cold path).
///
/// Storage is a fixed array of atomically published chunk pointers, not a
/// deque: a deque keeps element ADDRESSES stable across growth but
/// reallocates its internal node map, so an unlocked operator[] racing a
/// concurrent intern() is a data race on that map. Here growth only
/// allocates a fresh chunk and release-stores its pointer — nothing a
/// lock-free reader dereferences is ever moved or freed while the registry
/// lives. operator[] stays lock-free on the gate fast path.
class SiteRegistry {
 public:
  SiteRegistry() {
    for (auto& chunk : chunks_) chunk.store(nullptr, std::memory_order_relaxed);
  }
  ~SiteRegistry();
  SiteRegistry(const SiteRegistry&) = delete;
  SiteRegistry& operator=(const SiteRegistry&) = delete;

  /// Returns the existing site for (function, location) or creates one.
  SiteId intern(std::string_view function, std::string_view location);

  /// Lock-free. `id` must come from intern() (directly or via a SiteCache):
  /// that hand-off is the release/acquire pair that makes the Site's
  /// non-atomic fields visible; the acquire here covers the chunk pointer
  /// itself when another thread allocated the chunk.
  Site& operator[](SiteId id) {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }
  const Site& operator[](SiteId id) const {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Iterable snapshot view: sites [0, n) where n is the registry size at
  /// the moment the view is taken. Sites interned later are not visited;
  /// the view stays valid across concurrent registration.
  template <typename RegT, typename SiteT>
  class ViewT {
   public:
    class iterator {
     public:
      iterator(RegT* reg, SiteId i) : reg_(reg), i_(i) {}
      SiteT& operator*() const { return (*reg_)[i_]; }
      SiteT* operator->() const { return &(*reg_)[i_]; }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator==(const iterator& o) const { return i_ == o.i_; }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      RegT* reg_;
      SiteId i_;
    };
    ViewT(RegT* reg, std::size_t n) : reg_(reg), n_(n) {}
    iterator begin() const { return iterator(reg_, 0); }
    iterator end() const { return iterator(reg_, static_cast<SiteId>(n_)); }
    std::size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

   private:
    RegT* reg_;
    std::size_t n_;
  };
  using View = ViewT<SiteRegistry, Site>;
  using ConstView = ViewT<const SiteRegistry, const Site>;

  ConstView all() const { return ConstView(this, size()); }
  View all_mutable() { return View(this, size()); }

  /// Zeroes every site's stats and gate state (fresh experiment run).
  void reset_runtime_state();

 private:
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr SiteId kChunkMask = static_cast<SiteId>(kChunkSize - 1);
  // 256 chunks x 64 sites: static call sites are bounded by program text,
  // and 16384 is far beyond any app this runtime protects.
  static constexpr std::size_t kMaxChunks = 256;

  mutable std::mutex mu_;
  std::atomic<std::size_t> size_{0};
  std::atomic<Site*> chunks_[kMaxChunks];
};

}  // namespace fir
