#include "core/stack_snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fir {

bool StackSnapshot::capture(const void* sp, const void* anchor) {
  const auto lo = reinterpret_cast<std::uintptr_t>(sp);
  const auto hi = reinterpret_cast<std::uintptr_t>(anchor);
  if (lo >= hi || hi - lo > kMaxBytes) {
    valid_ = false;
    return false;
  }
  const std::size_t size = hi - lo;
  const auto* live = reinterpret_cast<const std::uint8_t*>(lo);

  if (base_ == lo && size_ == size && buffer_ != nullptr) {
    // Same extent as the previous capture: the retained buffer is a
    // byte-accurate image of this region at the previous capture time.
    // Verify, top-down in blocks, how deep that image still matches the
    // live stack; everything below the first mismatch (toward sp) is the
    // dirty prefix — the high-watermark of the deepest extent touched
    // since the last capture — and only it is re-copied. The verified
    // suffix is left in place: buffer == live there.
    std::size_t clean = 0;
    while (clean + kBlockBytes <= size &&
           std::memcmp(buffer_.get() + (size - clean - kBlockBytes),
                       live + (size - clean - kBlockBytes),
                       kBlockBytes) == 0) {
      clean += kBlockBytes;
    }
    const std::size_t dirty = size - clean;
    std::memcpy(buffer_.get(), live, dirty);
    bump(bytes_copied_, dirty);
    bump(bytes_elided_, clean);
    bump(captures_incremental_, 1);
    valid_ = true;
    return true;
  }

  if (size > capacity_) {
    // Grow-only storage: double until the extent fits, never shrink.
    // Steady-state captures (extent within the retained capacity) are
    // allocation-free; every growth is counted so regressions are visible
    // ("snapshot.realloc").
    std::size_t cap = capacity_ == 0 ? 4096 : capacity_;
    while (cap < size) cap *= 2;
    // new[] without value-init: the bytes are overwritten by the memcpy
    // below, and zeroing a fresh megabyte would double the growth cost.
    buffer_.reset(new std::uint8_t[cap]);
    capacity_ = cap;
    bump(reallocs_, 1);
  }
  std::memcpy(buffer_.get(), live, size);
  base_ = lo;
  size_ = size;
  bump(bytes_copied_, size);
  valid_ = true;
  return true;
}

void StackSnapshot::restore() const {
  if (!valid()) return;
  std::memcpy(reinterpret_cast<void*>(base_), buffer_.get(), size_);
}

namespace {
// makecontext's entry function cannot carry pointer arguments portably;
// route through the thread's single in-flight RecoveryStack instead.
// thread_local: each worker thread recovers on its own RecoveryStack, and
// recovery is non-reentrant per thread (a crash during recovery is fatal),
// so one slot per thread suffices.
thread_local RecoveryStack* t_running = nullptr;
}  // namespace

RecoveryStack::RecoveryStack() : stack_(256 * 1024) {}

void RecoveryStack::trampoline() {
  RecoveryStack* self = t_running;
  t_running = nullptr;
  self->fn_(self->arg_);
  std::fprintf(stderr, "fir: recovery step returned instead of resuming\n");
  std::abort();
}

void RecoveryStack::run(Fn fn, void* arg) {
  if (t_running != nullptr) {
    std::fprintf(stderr, "fir: re-entrant recovery (crash during recovery)\n");
    std::abort();
  }
  fn_ = fn;
  arg_ = arg;
  if (getcontext(&recovery_ctx_) != 0) {
    std::perror("fir: getcontext");
    std::abort();
  }
  recovery_ctx_.uc_stack.ss_sp = stack_.data();
  recovery_ctx_.uc_stack.ss_size = stack_.size();
  recovery_ctx_.uc_link = nullptr;
  makecontext(&recovery_ctx_, &RecoveryStack::trampoline, 0);
  t_running = this;
  swapcontext(&abandoned_ctx_, &recovery_ctx_);
  // The recovery step longjmps into the entry gate; control never flows back
  // through the abandoned context.
  std::fprintf(stderr, "fir: abandoned recovery context was resumed\n");
  std::abort();
}

}  // namespace fir
