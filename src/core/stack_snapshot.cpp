#include "core/stack_snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fir {

bool StackSnapshot::capture(const void* sp, const void* anchor) {
  const auto lo = reinterpret_cast<std::uintptr_t>(sp);
  const auto hi = reinterpret_cast<std::uintptr_t>(anchor);
  if (lo >= hi || hi - lo > kMaxBytes) {
    base_ = 0;
    return false;
  }
  const std::size_t size = hi - lo;
  buffer_.resize(size);
  std::memcpy(buffer_.data(), reinterpret_cast<const void*>(lo), size);
  base_ = lo;
  return true;
}

void StackSnapshot::restore() const {
  if (!valid()) return;
  std::memcpy(reinterpret_cast<void*>(base_), buffer_.data(), buffer_.size());
}

namespace {
// makecontext's entry function cannot carry pointer arguments portably;
// route through the thread's single in-flight RecoveryStack instead.
// thread_local: each worker thread recovers on its own RecoveryStack, and
// recovery is non-reentrant per thread (a crash during recovery is fatal),
// so one slot per thread suffices.
thread_local RecoveryStack* t_running = nullptr;
}  // namespace

RecoveryStack::RecoveryStack() : stack_(256 * 1024) {}

void RecoveryStack::trampoline() {
  RecoveryStack* self = t_running;
  t_running = nullptr;
  self->fn_(self->arg_);
  std::fprintf(stderr, "fir: recovery step returned instead of resuming\n");
  std::abort();
}

void RecoveryStack::run(Fn fn, void* arg) {
  if (t_running != nullptr) {
    std::fprintf(stderr, "fir: re-entrant recovery (crash during recovery)\n");
    std::abort();
  }
  fn_ = fn;
  arg_ = arg;
  if (getcontext(&recovery_ctx_) != 0) {
    std::perror("fir: getcontext");
    std::abort();
  }
  recovery_ctx_.uc_stack.ss_sp = stack_.data();
  recovery_ctx_.uc_stack.ss_size = stack_.size();
  recovery_ctx_.uc_link = nullptr;
  makecontext(&recovery_ctx_, &RecoveryStack::trampoline, 0);
  t_running = this;
  swapcontext(&abandoned_ctx_, &recovery_ctx_);
  // The recovery step longjmps into the entry gate; control never flows back
  // through the abandoned context.
  std::fprintf(stderr, "fir: abandoned recovery context was resumed\n");
  std::abort();
}

}  // namespace fir
