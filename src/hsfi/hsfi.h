// HSFI-style fault injection (van der Kouwe & Tanenbaum, DSN'16), rebuilt
// for this reproduction's needs (§VI-B):
//
//   * applications carry static FAULT MARKERS (basic-block-level points,
//     annotated critical/non-critical per the paper's §VI-B definition);
//   * a PROFILING run records which markers a workload executes;
//   * a CAMPAIGN arms exactly one fault per experiment run at one executed
//     marker: a persistent fatal fault (fires on every execution — the
//     deterministic-bug model), a transient fatal fault (fires once), or a
//     latent fault (silently corrupts data: bit flips, off-by-one indices,
//     pointer corruption — the "beyond the fault model" experiment).
//
// Threading: marker visits may come from many worker threads at once.
// Execution counters are relaxed atomics, marker registration is
// mutex-guarded (markers_ is a deque so visiting threads keep stable
// references across registrations), and a transient fault fires exactly
// once even when several threads hit the armed marker simultaneously
// (armed_.exchange picks the winner). arm()/disarm()/reset_profile() are
// campaign-control operations: call them while workers are quiescent —
// plan_ itself is not atomic. Latent corruption draws from per-thread Rng
// streams so concurrent campaigns stay reproducible: the first thread to
// corrupt after arm() gets exactly the stream Rng(plan.seed) (bit-for-bit
// the historical single-threaded sequence), subsequent threads get
// independent split-seeded streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/source_location.h"
#include "core/crash.h"

namespace fir {

enum class FaultType : std::uint8_t {
  kPersistentCrash = 0,  // deterministic fatal bug: fires at every execution
  kTransientCrash,       // fires exactly once (race-condition model)
  kLatentCorruption,     // corrupts marked data, does not crash directly
  /// Performs an ACTUAL invalid operation (null store, divide by zero,
  /// __builtin_trap, abort) instead of calling raise_crash(): the fault
  /// reaches the runtime as a genuine hardware signal. Persistent (fires
  /// at every execution). Requires the real signal channel (FIR_SIGNALS=1)
  /// — without it the process dies exactly as an uninstrumented one would.
  kRealCrash,
};

const char* fault_type_name(FaultType type);

/// Inverse of fault_type_name (campaign configs name faults as strings).
/// Returns false for unknown names.
bool fault_type_from_name(std::string_view name, FaultType* out);

/// True when `type` models a fail-stop fault (the run is expected to crash);
/// latent corruption is the fail-silent class.
inline bool is_fail_stop(FaultType type) {
  return type != FaultType::kLatentCorruption;
}

using MarkerId = std::uint32_t;
inline constexpr MarkerId kInvalidMarker = static_cast<MarkerId>(-1);

/// A static fault-injection point in the application.
struct Marker {
  MarkerId id = kInvalidMarker;
  std::string name;      // logical block name ("parse_request_line")
  std::string location;  // source location
  /// True when this block lies on a critical path (event loop core):
  /// Table IV's campaign injects only into non-critical blocks.
  bool critical_path = false;
  /// True when this block IS error-handling code. Faults here are outside
  /// FIRestarter's recovery scope ("there will typically not be an error
  /// handler for the error handler", §VII), so campaigns exclude them from
  /// the target set — as the paper's feature-block selection does.
  bool error_handler = false;
  /// Profiling counter; relaxed multi-writer (workers bump concurrently).
  std::atomic<std::uint64_t> executions{0};

  Marker() = default;
  Marker(const Marker& o)
      : id(o.id),
        name(o.name),
        location(o.location),
        critical_path(o.critical_path),
        error_handler(o.error_handler) {
    executions.store(o.executions.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  Marker& operator=(const Marker& o) {
    id = o.id;
    name = o.name;
    location = o.location;
    critical_path = o.critical_path;
    error_handler = o.error_handler;
    executions.store(o.executions.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
};

/// Config-driven selection of campaign target markers. Historically the
/// target set was baked into each bench loop (executed non-critical feature
/// blocks); campaign configs (src/campaign, docs/CAMPAIGNS.md) express the
/// same choice — and narrowings of it — as data.
struct TargetSelection {
  /// Exclude critical-path blocks (Table IV's protocol). See Marker.
  bool non_critical_only = true;
  /// Exclude error-handler blocks (§VII: no error handler for the error
  /// handler).
  bool exclude_error_handlers = true;
  /// When non-empty, keep only markers whose name contains one of these
  /// substrings.
  std::vector<std::string> include;
  /// Drop markers whose name contains one of these substrings. Applied
  /// after `include`.
  std::vector<std::string> exclude;
  /// 0 = every selected marker; otherwise a deterministic sample of this
  /// size, drawn with Rng(split_seed(sample_seed, 0)) and re-sorted into
  /// registration order so the plan stays stable.
  std::size_t max_sites = 0;
  std::uint64_t sample_seed = 1;
};

/// Applies `sel` to an executed-marker list (campaign planning is
/// quiescent; no locking concerns). Order of the result follows the input
/// (marker registration order) even when sampling.
std::vector<Marker> select_targets(const std::vector<Marker>& markers,
                                   const TargetSelection& sel);

/// What to inject in one experiment run.
struct FaultPlan {
  MarkerId marker = kInvalidMarker;
  FaultType type = FaultType::kPersistentCrash;
  CrashKind kind = CrashKind::kSegv;
  std::uint64_t seed = 1;  // drives latent-corruption randomness
};

/// Per-application fault injector. One instance per Fx; markers re-intern
/// per generation exactly like transaction sites.
class Hsfi {
 public:
  Hsfi();

  std::uint64_t generation() const { return generation_; }

  MarkerId register_marker(std::string_view name, std::string_view location,
                           bool critical_path, bool error_handler = false);

  /// Profiling control: when on, marker executions are counted.
  void set_profiling(bool on) {
    profiling_.store(on, std::memory_order_relaxed);
  }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  /// Arms one fault; disarm() or a fired transient fault clears it.
  /// Campaign control: call while worker threads are quiescent.
  void arm(FaultPlan plan);
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  /// True when the armed fault has triggered at least once this run.
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Marker visit without corruptible data. May not return (fatal faults
  /// enter the crash channel).
  void visit(MarkerId id);

  /// Marker visit exposing `len` bytes the fault may corrupt (latent
  /// faults). Fatal faults behave as in visit().
  void visit_data(MarkerId id, void* data, std::size_t len);

  /// Quiescent-accurate: iterating while another thread registers markers
  /// races with the deque's growth (like SiteRegistry::all); read between
  /// campaign runs.
  const std::deque<Marker>& markers() const { return markers_; }
  Marker& marker(MarkerId id) { return marker_at(id); }

  /// Markers executed at least once during profiling. With
  /// `targets_only`, filters to the Table IV target set: non-critical
  /// feature blocks (error-handler blocks excluded per §VII).
  std::vector<MarkerId> executed_markers(bool targets_only) const;

  void reset_profile();

 private:
  [[noreturn]] void trigger_fatal();
  [[noreturn]] void trigger_real();
  void corrupt(void* data, std::size_t len);
  Marker& marker_at(MarkerId id);
  Rng& corruption_stream();

  mutable std::mutex mu_;  // guards markers_ growth
  std::deque<Marker> markers_;
  std::atomic<bool> profiling_{false};
  std::atomic<bool> armed_{false};
  std::atomic<bool> fired_{false};
  FaultPlan plan_;
  /// Bumped by arm(): invalidates every thread's cached corruption stream.
  std::atomic<std::uint64_t> arm_epoch_{0};
  /// Next per-thread corruption-stream index for the current epoch.
  std::atomic<std::uint32_t> next_stream_{0};
  std::uint64_t generation_ = 0;
};

namespace detail {
/// Per-expansion marker cache. Threads race to fill it; all racers intern
/// the same (name, location) and the registry dedupes, so any interleaving
/// publishes the same id. id is written before gen (release) and read
/// after it (acquire), so a reader that sees the current generation sees
/// the matching id.
struct MarkerCache {
  std::atomic<std::uint64_t> gen{0};
  std::atomic<MarkerId> id{kInvalidMarker};
};

inline MarkerId marker(MarkerCache& cache, Hsfi& hsfi, const char* name,
                       const char* location, bool critical,
                       bool handler = false) {
  const std::uint64_t want = hsfi.generation();
  if (cache.gen.load(std::memory_order_acquire) != want) {
    const MarkerId id =
        hsfi.register_marker(name, location, critical, handler);
    cache.id.store(id, std::memory_order_relaxed);
    cache.gen.store(want, std::memory_order_release);
    return id;
  }
  return cache.id.load(std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace fir

/// Fault-injection point. `critical` follows the paper's classification:
/// blocks whose error handling retries/continues rather than diverts.
#define HSFI_POINT(hsfi_ref, name, critical)                            \
  do {                                                                  \
    static ::fir::detail::MarkerCache fir_mc_;                          \
    (hsfi_ref).visit(::fir::detail::marker(fir_mc_, (hsfi_ref), name,   \
                                           FIR_HERE, (critical)));      \
  } while (0)

/// Fault-injection point inside error-handling code: profiled, but never a
/// campaign target (§VII — faults in error handlers are unrecoverable by
/// design and excluded from the paper's feature-block selection).
#define HSFI_HANDLER_POINT(hsfi_ref, name)                                \
  do {                                                                    \
    static ::fir::detail::MarkerCache fir_mc_;                            \
    (hsfi_ref).visit(::fir::detail::marker(fir_mc_, (hsfi_ref), name,     \
                                           FIR_HERE, false, true));       \
  } while (0)

/// Fault-injection point with corruptible data (latent-fault campaigns).
#define HSFI_POINT_DATA(hsfi_ref, name, critical, ptr, len)               \
  do {                                                                    \
    static ::fir::detail::MarkerCache fir_mc_;                            \
    (hsfi_ref).visit_data(::fir::detail::marker(fir_mc_, (hsfi_ref),      \
                                                name, FIR_HERE,           \
                                                (critical)),              \
                          (ptr), (len));                                  \
  } while (0)
