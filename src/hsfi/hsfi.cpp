#include "hsfi/hsfi.h"

#include <csignal>
#include <cstdlib>

namespace fir {
namespace {
std::atomic<std::uint64_t> g_next_hsfi_generation{1};

/// Read through a volatile global so the compiler cannot constant-fold the
/// null pointer below (and -Wnull-dereference stays quiet): the store must
/// survive to runtime and take the actual MMU fault.
volatile std::uintptr_t g_real_fault_addr = 0;

/// One cached latent-corruption stream per thread, keyed by the injector
/// instance and its arm epoch. Single-slot: a thread interleaving latent
/// campaigns on two injectors would re-key on every switch, but campaigns
/// arm one injector at a time.
struct TlsCorruption {
  const void* hsfi = nullptr;
  std::uint64_t epoch = 0;
  Rng rng{1};
};
thread_local TlsCorruption t_corruption;
}  // namespace

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kPersistentCrash: return "persistent-crash";
    case FaultType::kTransientCrash: return "transient-crash";
    case FaultType::kLatentCorruption: return "latent-corruption";
    case FaultType::kRealCrash: return "real-crash";
  }
  return "?";
}

Hsfi::Hsfi()
    : generation_(
          g_next_hsfi_generation.fetch_add(1, std::memory_order_relaxed)) {}

MarkerId Hsfi::register_marker(std::string_view name,
                               std::string_view location, bool critical_path,
                               bool error_handler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Marker& m : markers_) {
    if (m.name == name && m.location == location) return m.id;
  }
  Marker m;
  m.id = static_cast<MarkerId>(markers_.size());
  m.name = std::string(name);
  m.location = std::string(location);
  m.critical_path = critical_path;
  m.error_handler = error_handler;
  markers_.push_back(std::move(m));
  return markers_.back().id;
}

Marker& Hsfi::marker_at(MarkerId id) {
  // The lock orders the index against a concurrent registration growing the
  // deque; the returned reference stays valid afterwards (deque growth does
  // not move existing elements).
  std::lock_guard<std::mutex> lock(mu_);
  return markers_[id];
}

void Hsfi::arm(FaultPlan plan) {
  plan_ = plan;
  fired_.store(false, std::memory_order_relaxed);
  arm_epoch_.fetch_add(1, std::memory_order_relaxed);
  next_stream_.store(0, std::memory_order_relaxed);
  armed_.store(plan.marker != kInvalidMarker, std::memory_order_relaxed);
}

Rng& Hsfi::corruption_stream() {
  TlsCorruption& t = t_corruption;
  const std::uint64_t epoch = arm_epoch_.load(std::memory_order_relaxed);
  if (t.hsfi != this || t.epoch != epoch) {
    t.hsfi = this;
    t.epoch = epoch;
    const std::uint32_t stream =
        next_stream_.fetch_add(1, std::memory_order_relaxed);
    // Stream 0 is seeded with the plan seed itself so a single-threaded
    // campaign replays the exact historical corruption sequence; later
    // streams are split off with the SplitMix64 increment.
    t.rng = stream == 0
                ? Rng(plan_.seed)
                : Rng(plan_.seed + stream * 0x9E3779B97F4A7C15ull);
  }
  return t.rng;
}

void Hsfi::trigger_fatal() {
  fired_.store(true, std::memory_order_relaxed);
  if (plan_.type == FaultType::kRealCrash) trigger_real();
  raise_crash(plan_.kind);
}

void Hsfi::trigger_real() {
  // Perform the invalid operation itself instead of reporting it: the fault
  // reaches the runtime as a genuine kernel-delivered signal (or kills the
  // process when the signal channel is not installed — the honest
  // uninstrumented outcome).
  switch (plan_.kind) {
    case CrashKind::kSegv:
    case CrashKind::kBus: {
      auto* p = reinterpret_cast<volatile int*>(g_real_fault_addr);
      *p = 1;  // null store: actual SIGSEGV
      break;
    }
    case CrashKind::kFpe: {
      volatile int zero = 0;
      volatile int q = 1 / zero;  // actual SIGFPE
      (void)q;
      break;
    }
    case CrashKind::kIllegal:
      __builtin_trap();  // ud2: SIGILL
    case CrashKind::kAbort:
      std::abort();
    case CrashKind::kHang:
      break;  // hangs come from the watchdog, not an instruction
  }
  // Reachable when the invalid operation did not trap (some virtualized
  // hosts emulate integer #DE without faulting) or the kind has no real
  // trigger instruction: deliver the mapped signal through the kernel if
  // the channel is up, else fall back to the synchronous channel.
  if (signal_channel_installed()) std::raise(crash_kind_signo(plan_.kind));
  raise_crash(plan_.kind);
}

void Hsfi::corrupt(void* data, std::size_t len) {
  fired_.store(true, std::memory_order_relaxed);
  if (len == 0) return;
  auto* bytes = static_cast<std::uint8_t*>(data);
  Rng& rng = corruption_stream();
  // One of the HSFI latent-fault flavors, chosen by the plan seed:
  // bit flip, byte overwrite, or off-by-one on a byte (covers corrupted
  // integers, indices and truncated pointers at this granularity).
  const std::uint64_t which = rng.next_below(3);
  const std::size_t at = rng.index(len);
  switch (which) {
    case 0: bytes[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      break;
    case 1: bytes[at] = static_cast<std::uint8_t>(rng.next());
      break;
    default: bytes[at] = static_cast<std::uint8_t>(bytes[at] + 1);
      break;
  }
}

void Hsfi::visit(MarkerId id) {
  Marker& m = marker_at(id);
  if (profiling_.load(std::memory_order_relaxed))
    m.executions.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed) || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) return;  // needs data
  if (plan_.type == FaultType::kTransientCrash &&
      !armed_.exchange(false, std::memory_order_relaxed))
    return;  // another thread already consumed the one transient firing
  trigger_fatal();
}

void Hsfi::visit_data(MarkerId id, void* data, std::size_t len) {
  Marker& m = marker_at(id);
  if (profiling_.load(std::memory_order_relaxed))
    m.executions.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed) || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) {
    corrupt(data, len);
    return;
  }
  if (plan_.type == FaultType::kTransientCrash &&
      !armed_.exchange(false, std::memory_order_relaxed))
    return;  // another thread already consumed the one transient firing
  trigger_fatal();
}

std::vector<MarkerId> Hsfi::executed_markers(bool targets_only) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MarkerId> out;
  for (const Marker& m : markers_) {
    if (m.executions.load(std::memory_order_relaxed) == 0) continue;
    if (targets_only && (m.critical_path || m.error_handler)) continue;
    out.push_back(m.id);
  }
  return out;
}

void Hsfi::reset_profile() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Marker& m : markers_) m.executions.store(0, std::memory_order_relaxed);
}

}  // namespace fir
