#include "hsfi/hsfi.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>

namespace fir {
namespace {
std::atomic<std::uint64_t> g_next_hsfi_generation{1};

/// Read through a volatile global so the compiler cannot constant-fold the
/// null pointer below (and -Wnull-dereference stays quiet): the store must
/// survive to runtime and take the actual MMU fault.
volatile std::uintptr_t g_real_fault_addr = 0;

/// One cached latent-corruption stream per thread, keyed by the injector
/// instance and its arm epoch. Single-slot: a thread interleaving latent
/// campaigns on two injectors would re-key on every switch, but campaigns
/// arm one injector at a time.
struct TlsCorruption {
  const void* hsfi = nullptr;
  std::uint64_t epoch = 0;
  Rng rng{1};
};
thread_local TlsCorruption t_corruption;
}  // namespace

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kPersistentCrash: return "persistent-crash";
    case FaultType::kTransientCrash: return "transient-crash";
    case FaultType::kLatentCorruption: return "latent-corruption";
    case FaultType::kRealCrash: return "real-crash";
  }
  return "?";
}

bool fault_type_from_name(std::string_view name, FaultType* out) {
  for (const FaultType type :
       {FaultType::kPersistentCrash, FaultType::kTransientCrash,
        FaultType::kLatentCorruption, FaultType::kRealCrash}) {
    if (name == fault_type_name(type)) {
      *out = type;
      return true;
    }
  }
  return false;
}

std::vector<Marker> select_targets(const std::vector<Marker>& markers,
                                   const TargetSelection& sel) {
  auto contains_any = [](const std::string& name,
                         const std::vector<std::string>& needles) {
    for (const std::string& needle : needles) {
      if (name.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  std::vector<Marker> selected;
  for (const Marker& m : markers) {
    if (sel.non_critical_only && m.critical_path) continue;
    if (sel.exclude_error_handlers && m.error_handler) continue;
    if (!sel.include.empty() && !contains_any(m.name, sel.include)) continue;
    if (contains_any(m.name, sel.exclude)) continue;
    selected.push_back(m);
  }
  if (sel.max_sites == 0 || selected.size() <= sel.max_sites) return selected;
  // Partial Fisher-Yates: pick max_sites positions, then restore input
  // order so the sampled plan reads like the full one.
  Rng rng(split_seed(sel.sample_seed, 0));
  std::vector<std::size_t> order(selected.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = 0; i < sel.max_sites; ++i) {
    const std::size_t j = i + rng.index(order.size() - i);
    std::swap(order[i], order[j]);
  }
  order.resize(sel.max_sites);
  std::sort(order.begin(), order.end());
  std::vector<Marker> sampled;
  sampled.reserve(order.size());
  for (const std::size_t i : order) sampled.push_back(selected[i]);
  return sampled;
}

Hsfi::Hsfi()
    : generation_(
          g_next_hsfi_generation.fetch_add(1, std::memory_order_relaxed)) {}

MarkerId Hsfi::register_marker(std::string_view name,
                               std::string_view location, bool critical_path,
                               bool error_handler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Marker& m : markers_) {
    if (m.name == name && m.location == location) return m.id;
  }
  Marker m;
  m.id = static_cast<MarkerId>(markers_.size());
  m.name = std::string(name);
  m.location = std::string(location);
  m.critical_path = critical_path;
  m.error_handler = error_handler;
  markers_.push_back(std::move(m));
  return markers_.back().id;
}

Marker& Hsfi::marker_at(MarkerId id) {
  // The lock orders the index against a concurrent registration growing the
  // deque; the returned reference stays valid afterwards (deque growth does
  // not move existing elements).
  std::lock_guard<std::mutex> lock(mu_);
  return markers_[id];
}

void Hsfi::arm(FaultPlan plan) {
  plan_ = plan;
  fired_.store(false, std::memory_order_relaxed);
  arm_epoch_.fetch_add(1, std::memory_order_relaxed);
  next_stream_.store(0, std::memory_order_relaxed);
  armed_.store(plan.marker != kInvalidMarker, std::memory_order_relaxed);
}

Rng& Hsfi::corruption_stream() {
  TlsCorruption& t = t_corruption;
  const std::uint64_t epoch = arm_epoch_.load(std::memory_order_relaxed);
  if (t.hsfi != this || t.epoch != epoch) {
    t.hsfi = this;
    t.epoch = epoch;
    const std::uint32_t stream =
        next_stream_.fetch_add(1, std::memory_order_relaxed);
    // Stream 0 is seeded with the plan seed itself so a single-threaded
    // campaign replays the exact historical corruption sequence; later
    // streams split off via split_seed. Campaign-level reproducibility
    // rests on this chain: the orchestrator derives each run's plan seed
    // as split_seed(campaign_seed, run_index) — a function of the plan
    // position only, never of worker count or scheduling — and a
    // single-threaded run consumes only stream 0, so the corruption
    // sequence is bit-identical under --workers 1 and --workers 8.
    t.rng = stream == 0 ? Rng(plan_.seed) : Rng(split_seed(plan_.seed, stream));
  }
  return t.rng;
}

void Hsfi::trigger_fatal() {
  fired_.store(true, std::memory_order_relaxed);
  if (plan_.type == FaultType::kRealCrash) trigger_real();
  raise_crash(plan_.kind);
}

void Hsfi::trigger_real() {
  // Perform the invalid operation itself instead of reporting it: the fault
  // reaches the runtime as a genuine kernel-delivered signal (or kills the
  // process when the signal channel is not installed — the honest
  // uninstrumented outcome).
  switch (plan_.kind) {
    case CrashKind::kSegv:
    case CrashKind::kBus: {
      auto* p = reinterpret_cast<volatile int*>(g_real_fault_addr);
      *p = 1;  // null store: actual SIGSEGV
      break;
    }
    case CrashKind::kFpe: {
      volatile int zero = 0;
      volatile int q = 1 / zero;  // actual SIGFPE
      (void)q;
      break;
    }
    case CrashKind::kIllegal:
      __builtin_trap();  // ud2: SIGILL
    case CrashKind::kAbort:
      std::abort();
    case CrashKind::kHang:
      break;  // hangs come from the watchdog, not an instruction
  }
  // Reachable when the invalid operation did not trap (some virtualized
  // hosts emulate integer #DE without faulting) or the kind has no real
  // trigger instruction: deliver the mapped signal through the kernel if
  // the channel is up, else fall back to the synchronous channel.
  if (signal_channel_installed()) std::raise(crash_kind_signo(plan_.kind));
  raise_crash(plan_.kind);
}

void Hsfi::corrupt(void* data, std::size_t len) {
  fired_.store(true, std::memory_order_relaxed);
  if (len == 0) return;
  auto* bytes = static_cast<std::uint8_t*>(data);
  Rng& rng = corruption_stream();
  // One of the HSFI latent-fault flavors, chosen by the plan seed:
  // bit flip, byte overwrite, or off-by-one on a byte (covers corrupted
  // integers, indices and truncated pointers at this granularity).
  const std::uint64_t which = rng.next_below(3);
  const std::size_t at = rng.index(len);
  switch (which) {
    case 0: bytes[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      break;
    case 1: bytes[at] = static_cast<std::uint8_t>(rng.next());
      break;
    default: bytes[at] = static_cast<std::uint8_t>(bytes[at] + 1);
      break;
  }
}

void Hsfi::visit(MarkerId id) {
  Marker& m = marker_at(id);
  if (profiling_.load(std::memory_order_relaxed))
    m.executions.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed) || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) return;  // needs data
  if (plan_.type == FaultType::kTransientCrash &&
      !armed_.exchange(false, std::memory_order_relaxed))
    return;  // another thread already consumed the one transient firing
  trigger_fatal();
}

void Hsfi::visit_data(MarkerId id, void* data, std::size_t len) {
  Marker& m = marker_at(id);
  if (profiling_.load(std::memory_order_relaxed))
    m.executions.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed) || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) {
    corrupt(data, len);
    return;
  }
  if (plan_.type == FaultType::kTransientCrash &&
      !armed_.exchange(false, std::memory_order_relaxed))
    return;  // another thread already consumed the one transient firing
  trigger_fatal();
}

std::vector<MarkerId> Hsfi::executed_markers(bool targets_only) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MarkerId> out;
  for (const Marker& m : markers_) {
    if (m.executions.load(std::memory_order_relaxed) == 0) continue;
    if (targets_only && (m.critical_path || m.error_handler)) continue;
    out.push_back(m.id);
  }
  return out;
}

void Hsfi::reset_profile() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Marker& m : markers_) m.executions.store(0, std::memory_order_relaxed);
}

}  // namespace fir
