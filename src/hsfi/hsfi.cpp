#include "hsfi/hsfi.h"

namespace fir {
namespace {
std::uint64_t g_next_hsfi_generation = 1;
}  // namespace

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kPersistentCrash: return "persistent-crash";
    case FaultType::kTransientCrash: return "transient-crash";
    case FaultType::kLatentCorruption: return "latent-corruption";
  }
  return "?";
}

Hsfi::Hsfi() : generation_(g_next_hsfi_generation++) {}

MarkerId Hsfi::register_marker(std::string_view name,
                               std::string_view location, bool critical_path,
                               bool error_handler) {
  for (const Marker& m : markers_) {
    if (m.name == name && m.location == location) return m.id;
  }
  Marker m;
  m.id = static_cast<MarkerId>(markers_.size());
  m.name = std::string(name);
  m.location = std::string(location);
  m.critical_path = critical_path;
  m.error_handler = error_handler;
  markers_.push_back(std::move(m));
  return markers_.back().id;
}

void Hsfi::trigger_fatal() {
  fired_ = true;
  if (plan_.type == FaultType::kTransientCrash) armed_ = false;
  raise_crash(plan_.kind);
}

void Hsfi::corrupt(void* data, std::size_t len) {
  fired_ = true;
  if (len == 0) return;
  auto* bytes = static_cast<std::uint8_t*>(data);
  // One of the HSFI latent-fault flavors, chosen by the plan seed:
  // bit flip, byte overwrite, or off-by-one on a byte (covers corrupted
  // integers, indices and truncated pointers at this granularity).
  const std::uint64_t which = corruption_rng_.next_below(3);
  const std::size_t at = corruption_rng_.index(len);
  switch (which) {
    case 0: bytes[at] ^= static_cast<std::uint8_t>(
        1u << corruption_rng_.next_below(8));
      break;
    case 1: bytes[at] = static_cast<std::uint8_t>(corruption_rng_.next());
      break;
    default: bytes[at] = static_cast<std::uint8_t>(bytes[at] + 1);
      break;
  }
}

void Hsfi::visit(MarkerId id) {
  Marker& m = markers_[id];
  if (profiling_) ++m.executions;
  if (!armed_ || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) return;  // needs data
  trigger_fatal();
}

void Hsfi::visit_data(MarkerId id, void* data, std::size_t len) {
  Marker& m = markers_[id];
  if (profiling_) ++m.executions;
  if (!armed_ || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) {
    corrupt(data, len);
    return;
  }
  trigger_fatal();
}

std::vector<MarkerId> Hsfi::executed_markers(bool targets_only) const {
  std::vector<MarkerId> out;
  for (const Marker& m : markers_) {
    if (m.executions == 0) continue;
    if (targets_only && (m.critical_path || m.error_handler)) continue;
    out.push_back(m.id);
  }
  return out;
}

void Hsfi::reset_profile() {
  for (Marker& m : markers_) m.executions = 0;
}

}  // namespace fir
