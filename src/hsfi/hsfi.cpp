#include "hsfi/hsfi.h"

#include <csignal>
#include <cstdlib>

namespace fir {
namespace {
std::uint64_t g_next_hsfi_generation = 1;

/// Read through a volatile global so the compiler cannot constant-fold the
/// null pointer below (and -Wnull-dereference stays quiet): the store must
/// survive to runtime and take the actual MMU fault.
volatile std::uintptr_t g_real_fault_addr = 0;
}  // namespace

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kPersistentCrash: return "persistent-crash";
    case FaultType::kTransientCrash: return "transient-crash";
    case FaultType::kLatentCorruption: return "latent-corruption";
    case FaultType::kRealCrash: return "real-crash";
  }
  return "?";
}

Hsfi::Hsfi() : generation_(g_next_hsfi_generation++) {}

MarkerId Hsfi::register_marker(std::string_view name,
                               std::string_view location, bool critical_path,
                               bool error_handler) {
  for (const Marker& m : markers_) {
    if (m.name == name && m.location == location) return m.id;
  }
  Marker m;
  m.id = static_cast<MarkerId>(markers_.size());
  m.name = std::string(name);
  m.location = std::string(location);
  m.critical_path = critical_path;
  m.error_handler = error_handler;
  markers_.push_back(std::move(m));
  return markers_.back().id;
}

void Hsfi::trigger_fatal() {
  fired_ = true;
  if (plan_.type == FaultType::kRealCrash) trigger_real();
  if (plan_.type == FaultType::kTransientCrash) armed_ = false;
  raise_crash(plan_.kind);
}

void Hsfi::trigger_real() {
  // Perform the invalid operation itself instead of reporting it: the fault
  // reaches the runtime as a genuine kernel-delivered signal (or kills the
  // process when the signal channel is not installed — the honest
  // uninstrumented outcome).
  switch (plan_.kind) {
    case CrashKind::kSegv:
    case CrashKind::kBus: {
      auto* p = reinterpret_cast<volatile int*>(g_real_fault_addr);
      *p = 1;  // null store: actual SIGSEGV
      break;
    }
    case CrashKind::kFpe: {
      volatile int zero = 0;
      volatile int q = 1 / zero;  // actual SIGFPE
      (void)q;
      break;
    }
    case CrashKind::kIllegal:
      __builtin_trap();  // ud2: SIGILL
    case CrashKind::kAbort:
      std::abort();
    case CrashKind::kHang:
      break;  // hangs come from the watchdog, not an instruction
  }
  // Reachable when the invalid operation did not trap (some virtualized
  // hosts emulate integer #DE without faulting) or the kind has no real
  // trigger instruction: deliver the mapped signal through the kernel if
  // the channel is up, else fall back to the synchronous channel.
  if (signal_channel_installed()) std::raise(crash_kind_signo(plan_.kind));
  raise_crash(plan_.kind);
}

void Hsfi::corrupt(void* data, std::size_t len) {
  fired_ = true;
  if (len == 0) return;
  auto* bytes = static_cast<std::uint8_t*>(data);
  // One of the HSFI latent-fault flavors, chosen by the plan seed:
  // bit flip, byte overwrite, or off-by-one on a byte (covers corrupted
  // integers, indices and truncated pointers at this granularity).
  const std::uint64_t which = corruption_rng_.next_below(3);
  const std::size_t at = corruption_rng_.index(len);
  switch (which) {
    case 0: bytes[at] ^= static_cast<std::uint8_t>(
        1u << corruption_rng_.next_below(8));
      break;
    case 1: bytes[at] = static_cast<std::uint8_t>(corruption_rng_.next());
      break;
    default: bytes[at] = static_cast<std::uint8_t>(bytes[at] + 1);
      break;
  }
}

void Hsfi::visit(MarkerId id) {
  Marker& m = markers_[id];
  if (profiling_) ++m.executions;
  if (!armed_ || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) return;  // needs data
  trigger_fatal();
}

void Hsfi::visit_data(MarkerId id, void* data, std::size_t len) {
  Marker& m = markers_[id];
  if (profiling_) ++m.executions;
  if (!armed_ || plan_.marker != id) return;
  if (plan_.type == FaultType::kLatentCorruption) {
    corrupt(data, len);
    return;
  }
  trigger_fatal();
}

std::vector<MarkerId> Hsfi::executed_markers(bool targets_only) const {
  std::vector<MarkerId> out;
  for (const Marker& m : markers_) {
    if (m.executions == 0) continue;
    if (targets_only && (m.critical_path || m.error_handler)) continue;
    out.push_back(m.id);
  }
  return out;
}

void Hsfi::reset_profile() {
  for (Marker& m : markers_) m.executions = 0;
}

}  // namespace fir
