#include "workload/fleet.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace fir {

FleetLoadResult run_fleet_http_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec) {
  const std::vector<std::string> targets =
      !spec.targets.empty()
          ? spec.targets
          : std::vector<std::string>{"/index.html", "/about.txt",
                                     "/api.json", "/style.css"};
  FleetLoadResult total;
  std::mutex mu;
  std::vector<std::thread> threads;
  const int n_threads = spec.threads > 0 ? spec.threads : 1;
  const int shards = fleet.worker_count();
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      FleetLoadResult local;
      std::size_t cursor = static_cast<std::size_t>(t);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(spec.duration_ms);
      for (int b = 0;; ++b) {
        if (spec.duration_ms > 0) {
          if (std::chrono::steady_clock::now() >= deadline) break;
        } else if (b >= spec.batches_per_thread) {
          break;
        }
        const int shard = (t + b) % (shards > 0 ? shards : 1);
        std::vector<std::string> batch;
        batch.reserve(static_cast<std::size_t>(spec.batch_size));
        for (int i = 0; i < spec.batch_size; ++i)
          batch.push_back(targets[cursor++ % targets.size()]);
        const fleet::BatchResult r = fleet.submit(shard, batch);
        local.requests += batch.size();
        ++local.batches;
        local.lost += static_cast<std::uint64_t>(r.lost);
        for (const int status : r.statuses) {
          if (status >= 200 && status < 300)
            ++local.responses_2xx;
          else if (status >= 400 && status < 500)
            ++local.responses_4xx;
          else if (status >= 500 && status < 600)
            ++local.responses_5xx;
          else
            ++local.responses_other;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      total.requests += local.requests;
      total.responses_2xx += local.responses_2xx;
      total.responses_4xx += local.responses_4xx;
      total.responses_5xx += local.responses_5xx;
      total.responses_other += local.responses_other;
      total.lost += local.lost;
      total.batches += local.batches;
    });
  }
  for (std::thread& th : threads) th.join();
  return total;
}

}  // namespace fir
