#include "workload/fleet.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "apps/minikv.h"
#include "workload/kv_client.h"

namespace fir {

FleetLoadResult run_fleet_http_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec) {
  const std::vector<std::string> targets =
      !spec.targets.empty()
          ? spec.targets
          : std::vector<std::string>{"/index.html", "/about.txt",
                                     "/api.json", "/style.css"};
  FleetLoadResult total;
  std::mutex mu;
  std::vector<std::thread> threads;
  const int n_threads = spec.threads > 0 ? spec.threads : 1;
  const int shards = fleet.worker_count();
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      FleetLoadResult local;
      std::size_t cursor = static_cast<std::size_t>(t);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(spec.duration_ms);
      for (int b = 0;; ++b) {
        if (spec.duration_ms > 0) {
          if (std::chrono::steady_clock::now() >= deadline) break;
        } else if (b >= spec.batches_per_thread) {
          break;
        }
        const int shard = (t + b) % (shards > 0 ? shards : 1);
        std::vector<std::string> batch;
        batch.reserve(static_cast<std::size_t>(spec.batch_size));
        for (int i = 0; i < spec.batch_size; ++i)
          batch.push_back(targets[cursor++ % targets.size()]);
        const fleet::BatchResult r = fleet.submit(shard, batch);
        local.requests += batch.size();
        ++local.batches;
        local.lost += static_cast<std::uint64_t>(r.lost);
        for (const int status : r.statuses) {
          if (status >= 200 && status < 300)
            ++local.responses_2xx;
          else if (status >= 400 && status < 500)
            ++local.responses_4xx;
          else if (status >= 500 && status < 600)
            ++local.responses_5xx;
          else
            ++local.responses_other;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      total.requests += local.requests;
      total.responses_2xx += local.responses_2xx;
      total.responses_4xx += local.responses_4xx;
      total.responses_5xx += local.responses_5xx;
      total.responses_other += local.responses_other;
      total.lost += local.lost;
      total.batches += local.batches;
    });
  }
  for (std::thread& th : threads) th.join();
  return total;
}

FleetKvLoadResult run_fleet_kv_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec) {
  FleetKvLoadResult total;
  const int shards = fleet.worker_count() > 0 ? fleet.worker_count() : 1;
  total.acked_sets.resize(static_cast<std::size_t>(shards));
  std::mutex mu;
  std::vector<std::thread> threads;
  const int n_threads = spec.threads > 0 ? spec.threads : 1;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(spec.duration_ms);
      for (int b = 0;; ++b) {
        if (spec.duration_ms > 0) {
          if (std::chrono::steady_clock::now() >= deadline) break;
        } else if (b >= spec.batches_per_thread) {
          break;
        }
        const int shard = (t + b) % shards;
        // Globally-unique keys: requeue-and-replay after a worker death
        // makes delivery at-least-once, and unique SETs keep the replays
        // idempotent — exactly what the ledger needs.
        std::vector<std::string> batch;
        std::vector<std::pair<std::string, std::string>> kvs;
        batch.reserve(static_cast<std::size_t>(spec.batch_size));
        for (int i = 0; i < spec.batch_size; ++i) {
          std::string key = "t" + std::to_string(t) + "-b" +
                            std::to_string(b) + "-i" + std::to_string(i);
          std::string value = "v" + key;
          batch.push_back("SET " + key + " " + value);
          kvs.emplace_back(std::move(key), std::move(value));
        }
        const fleet::BatchResult r = fleet.submit(shard, batch);
        std::lock_guard<std::mutex> lock(mu);
        total.requests += batch.size();
        ++total.batches;
        total.lost += static_cast<std::uint64_t>(r.lost);
        for (std::size_t i = 0; i < r.statuses.size(); ++i) {
          if (r.statuses[i] == 200) {
            ++total.acked;
            total.acked_sets[static_cast<std::size_t>(shard)].insert(kvs[i]);
          } else if (r.statuses[i] == 0) {
            ++total.unanswered;
          } else {
            ++total.errors;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return total;
}

FleetDurabilityAudit audit_fleet_durability(
    const std::string& durable_dir,
    const std::vector<std::map<std::string, std::string>>& acked_sets) {
  FleetDurabilityAudit audit;
  for (std::size_t shard = 0; shard < acked_sets.size(); ++shard) {
    if (acked_sets[shard].empty()) continue;
    // Recover exactly the way a restarted worker does: fresh instance,
    // same host directory, AOF replay at start().
    Minikv kv;
    kv.fx().env().vfs().attach_backing(durable_dir + "/shard-" +
                                       std::to_string(shard));
    kv.enable_aof(true);
    if (!kv.start(0).is_ok()) {
      audit.checked += acked_sets[shard].size();
      audit.missing += acked_sets[shard].size();
      audit.examples.push_back("shard-" + std::to_string(shard) +
                               "/<failed to recover>");
      continue;
    }
    KvClient client(kv.fx().env(), kv.port());
    for (const auto& [key, value] : acked_sets[shard]) {
      ++audit.checked;
      std::string reply = "<no-reply>";
      if (client.connected() || client.connect()) {
        if (client.send_command("GET " + key)) {
          for (int i = 0; i < 8; ++i) {
            kv.run_once();
            if (client.try_read_reply(reply) == 1) break;
          }
        }
      }
      if (reply != value) {
        ++audit.missing;
        if (audit.examples.size() < 8) {
          audit.examples.push_back("shard-" + std::to_string(shard) + "/" +
                                   key + " = \"" + reply + "\"");
        }
      }
    }
    client.close();
    kv.stop();
  }
  return audit;
}

}  // namespace fir
