// Workload drivers: the paper's "standard test suite" workloads and the
// ApacheBench / wrk / redis-benchmark saturation loads, rebuilt over the
// cooperative virtual network.
//
// Drivers step a server and its clients in lockstep: clients enqueue
// request bytes, the server's run_once() drains everything ready, clients
// drain replies. A FatalCrashError from the server ends the run and is
// reported in the result (the fault-injection campaigns read it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/minikv.h"
#include "apps/minipg.h"
#include "apps/server.h"
#include "common/rng.h"

namespace fir {

struct WorkloadResult {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t transport_failures = 0;  // broken/reset connections
  bool server_died = false;              // FatalCrashError escaped run_once
  std::string death_reason;
  double wall_seconds = 0.0;

  std::uint64_t responses_total() const {
    return responses_2xx + responses_4xx + responses_5xx;
  }
  double throughput_rps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(responses_total()) / wall_seconds
               : 0.0;
  }
};

/// One scripted request of a test suite.
struct HttpRequestSpec {
  std::string method;
  std::string target;
  std::string body;
  bool fresh_connection = false;  // tear down keep-alive before this one
  /// Additional raw header lines, each "Name: value\r\n".
  std::string extra_headers;
};

/// The per-server "standard test suite": a fixed script covering the
/// server's features (static files, error paths, SSI / CGI / WebDAV, ...).
std::vector<HttpRequestSpec> standard_http_suite(std::string_view server);

/// Runs the scripted suite `iterations` times over keep-alive connections.
WorkloadResult run_http_suite(Server& server, int iterations);

/// wrk-style saturation: `concurrency` keep-alive clients issue
/// `total_requests` requests drawn from the suite's GET mix.
WorkloadResult run_http_load(Server& server, int total_requests,
                             int concurrency, Rng& rng);

/// minikv: SET/GET-heavy script (the paper's Redis SET/GET workload).
WorkloadResult run_kv_suite(Minikv& server, int iterations);
WorkloadResult run_kv_load(Minikv& server, int total_ops, int concurrency,
                           Rng& rng);

/// minipg: DDL + DML script and a pgbench-ish load.
WorkloadResult run_pg_suite(Minipg& server, int iterations);
WorkloadResult run_pg_load(Minipg& server, int total_ops, int concurrency,
                           Rng& rng);

/// Dispatches to the right suite/load by server name (bench convenience).
WorkloadResult run_suite_for(Server& server, int iterations);
WorkloadResult run_load_for(Server& server, int total_ops, int concurrency,
                            Rng& rng);

}  // namespace fir
