#include "workload/drivers.h"

#include "common/clock.h"
#include "core/crash.h"
#include "workload/http_client.h"
#include "workload/kv_client.h"
#include "workload/pg_client.h"

namespace fir {
namespace {

/// Runs one server pass, translating an escaped FatalCrashError into the
/// result. Returns false when the server died.
bool step_server(Server& server, WorkloadResult& result) {
  try {
    server.run_once();
    return true;
  } catch (const FatalCrashError& e) {
    result.server_died = true;
    result.death_reason = e.what();
    return false;
  }
}

void count_status(int status, WorkloadResult& result) {
  if (status >= 200 && status < 400) {
    ++result.responses_2xx;
  } else if (status >= 400 && status < 500) {
    ++result.responses_4xx;
  } else {
    ++result.responses_5xx;
  }
}

/// Sends one scripted request and pumps the server until the response
/// arrives (bounded by a step budget so a dead connection cannot hang the
/// driver). Returns false when the server died.
bool exchange(Server& server, HttpClient& client, const HttpRequestSpec& spec,
              WorkloadResult& result) {
  if (spec.fresh_connection) client.close();
  if (!client.connected() && !client.connect()) {
    ++result.transport_failures;
    // The listener may need a pass to drain the backlog.
    return step_server(server, result);
  }
  if (!client.send_request(spec.method, spec.target, spec.body,
                           /*keep_alive=*/true, spec.extra_headers)) {
    ++result.transport_failures;
    client.close();
    return true;
  }
  ++result.requests_sent;
  HttpClient::Response response;
  for (int steps = 0; steps < 16; ++steps) {
    if (!step_server(server, result)) return false;
    const int got = client.try_read_response(response);
    if (got == 1) {
      count_status(response.status, result);
      return true;
    }
    if (got == -1) {
      ++result.transport_failures;
      client.close();
      return true;
    }
  }
  ++result.transport_failures;  // no response within budget
  client.close();
  return true;
}

}  // namespace

std::vector<HttpRequestSpec> standard_http_suite(std::string_view server) {
  std::vector<HttpRequestSpec> suite = {
      {"GET", "/", "", false, ""},
      {"GET", "/index.html", "", false, ""},
      {"HEAD", "/index.html", "", false, ""},
      {"GET", "/no/such/file.html", "", false, ""},
      {"GET", "/../etc/passwd", "", false, ""},
      {"POST", "/index.html", "payload", false, ""},
      {"GET", "/%69ndex.html", "", false, ""},
  };
  if (server == "miniginx") {
    suite.push_back({"GET", "/about.txt", "", false, ""});
    suite.push_back({"GET", "/large.bin", "", false, ""});
    suite.push_back({"GET", "/page.shtml", "", false, ""});
    suite.push_back({"GET", "/style.css", "", true, ""});
    suite.push_back({"GET", "/api.json", "", false, ""});
    HttpRequestSpec range;
    range.method = "GET";
    range.target = "/large.bin";
    range.extra_headers = "Range: bytes=0-127\r\n";
    suite.push_back(range);
    range.target = "/about.txt";
    range.extra_headers = "Range: bytes=99999-\r\n";  // 416 probe
    suite.push_back(range);
  } else if (server == "apachette") {
    suite.push_back({"GET", "/manual.txt", "", false, ""});
    suite.push_back({"GET", "/data.bin", "", false, ""});
    suite.push_back({"GET", "/private/secret.txt", "", false, ""});  // denied
    suite.push_back({"GET", "/index.html?cgi=hello+world", "", false, ""});
    suite.push_back({"GET", "/index.html?cgi=%41%42", "", true, ""});
    suite.push_back({"GET", "/server-status", "", false, ""});
  } else if (server == "littlehttpd") {
    suite.push_back({"GET", "/readme.txt", "", false, ""});
    suite.push_back({"GET", "/blob.bin", "", false, ""});
    suite.push_back({"PROPFIND", "/dav/notes.txt", "", false, ""});
    suite.push_back({"PUT", "/dav/upload.txt", "uploaded-content", false, ""});
    suite.push_back({"GET", "/dav/upload.txt", "", false, ""});
    suite.push_back({"DELETE", "/dav/upload.txt", "", false, ""});
    suite.push_back({"PROPFIND", "/dav/gone.txt", "", true, ""});
    suite.push_back({"OPTIONS", "/", "", false, ""});
    suite.push_back({"MKCOL", "/dav/col-a", "", false, ""});
    suite.push_back({"MKCOL", "/dav/col-a", "", false, ""});  // 405 duplicate
  }
  return suite;
}

WorkloadResult run_http_suite(Server& server, int iterations) {
  WorkloadResult result;
  const auto suite = standard_http_suite(server.name());
  CpuStopWatch watch;
  HttpClient client(server.fx().env(), server.port());
  for (int it = 0; it < iterations && !result.server_died; ++it) {
    for (const HttpRequestSpec& spec : suite) {
      if (!exchange(server, client, spec, result)) break;
    }
  }
  client.close();
  if (!result.server_died) step_server(server, result);  // drain closes
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

WorkloadResult run_http_load(Server& server, int total_requests,
                             int concurrency, Rng& rng) {
  WorkloadResult result;
  // The GET mix of the suite (load generators do not send error probes).
  // Like ApacheBench/wrk runs, the load is dominated by small hot pages;
  // large objects appear but are a small fraction of requests.
  std::vector<HttpRequestSpec> mix;
  for (const auto& spec : standard_http_suite(server.name())) {
    if (spec.method == "GET" && spec.target.find("..") == std::string::npos &&
        spec.target.find("no/such") == std::string::npos &&
        spec.target.find("private") == std::string::npos) {
      const bool large = spec.target.find(".bin") != std::string::npos;
      const int copies = large ? 1 : 6;
      for (int c = 0; c < copies; ++c) mix.push_back(spec);
    }
  }
  std::vector<HttpClient> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) {
    clients.emplace_back(server.fx().env(), server.port());
    clients.back().connect();
  }
  if (!step_server(server, result)) return result;  // drain accept backlog

  CpuStopWatch watch;
  std::vector<int> in_flight(static_cast<std::size_t>(concurrency), 0);
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  int stall_passes = 0;
  while (completed < static_cast<std::uint64_t>(total_requests) &&
         !result.server_died && stall_passes < 64) {
    bool progressed = false;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      HttpClient& client = clients[c];
      if (!client.connected()) {
        if (!client.connect()) continue;
        in_flight[c] = 0;
      }
      if (in_flight[c] == 0 &&
          issued < static_cast<std::uint64_t>(total_requests)) {
        const auto& spec = mix[rng.index(mix.size())];
        if (client.send_request(spec.method, spec.target, spec.body)) {
          in_flight[c] = 1;
          ++issued;
          ++result.requests_sent;
          progressed = true;
        } else {
          ++result.transport_failures;
          client.close();
        }
      }
    }
    if (!step_server(server, result)) break;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (in_flight[c] == 0) continue;
      HttpClient::Response response;
      const int got = clients[c].try_read_response(response);
      if (got == 1) {
        count_status(response.status, result);
        in_flight[c] = 0;
        ++completed;
        progressed = true;
      } else if (got == -1) {
        ++result.transport_failures;
        clients[c].close();
        in_flight[c] = 0;
      }
    }
    stall_passes = progressed ? 0 : stall_passes + 1;
  }
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

// --- minikv -----------------------------------------------------------------

namespace {

bool kv_exchange(Minikv& server, KvClient& client, std::string_view command,
                 WorkloadResult& result) {
  if (!client.connected() && !client.connect()) {
    ++result.transport_failures;
    return step_server(server, result);
  }
  if (!client.send_command(command)) {
    ++result.transport_failures;
    client.close();
    return true;
  }
  ++result.requests_sent;
  std::string reply;
  for (int steps = 0; steps < 16; ++steps) {
    if (!step_server(server, result)) return false;
    const int got = client.try_read_reply(reply);
    if (got == 1) {
      if (!reply.empty() && reply[0] == '-') {
        ++result.responses_5xx;
      } else {
        ++result.responses_2xx;
      }
      return true;
    }
    if (got == -1) {
      ++result.transport_failures;
      client.close();
      return true;
    }
  }
  ++result.transport_failures;
  client.close();
  return true;
}

}  // namespace

WorkloadResult run_kv_suite(Minikv& server, int iterations) {
  WorkloadResult result;
  CpuStopWatch watch;
  KvClient client(server.fx().env(), server.port());
  for (int it = 0; it < iterations && !result.server_died; ++it) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "SET key:%d value-%d", it, it);
    const char* script[] = {
        "PING", buf, "GET key:0", "EXISTS key:0", "DBSIZE",
        "INCR counter", "GET counter", "DEL key:0", "GET key:0",
        "BOGUS command", "SET toolongkey-"
        "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa v",
        "APPEND journal entry;", "MGET key:1 nosuch counter",
        "EXPIRE counter 60", "TTL counter", "PERSIST counter",
        "KEYS", "SAVE",
    };
    for (const char* cmd : script) {
      if (!kv_exchange(server, client, cmd, result)) break;
    }
  }
  client.close();
  if (!result.server_died) step_server(server, result);
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

WorkloadResult run_kv_load(Minikv& server, int total_ops, int concurrency,
                           Rng& rng) {
  WorkloadResult result;
  std::vector<KvClient> clients;
  for (int i = 0; i < concurrency; ++i) {
    clients.emplace_back(server.fx().env(), server.port());
    clients.back().connect();
  }
  if (!step_server(server, result)) return result;

  CpuStopWatch watch;
  int issued = 0;
  int stall = 0;
  std::vector<int> in_flight(static_cast<std::size_t>(concurrency), 0);
  std::uint64_t completed = 0;
  while (completed < static_cast<std::uint64_t>(total_ops) &&
         !result.server_died && stall < 64) {
    bool progressed = false;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (!clients[c].connected() && !clients[c].connect()) continue;
      if (in_flight[c] == 0 && issued < total_ops) {
        char cmd[128];
        const std::uint64_t key = rng.next_below(512);
        if (rng.chance(0.5)) {
          std::snprintf(cmd, sizeof(cmd), "SET key:%llu v%llu",
                        static_cast<unsigned long long>(key),
                        static_cast<unsigned long long>(rng.next_below(1000)));
        } else {
          std::snprintf(cmd, sizeof(cmd), "GET key:%llu",
                        static_cast<unsigned long long>(key));
        }
        if (clients[c].send_command(cmd)) {
          in_flight[c] = 1;
          ++issued;
          ++result.requests_sent;
          progressed = true;
        } else {
          clients[c].close();
          ++result.transport_failures;
        }
      }
    }
    if (!step_server(server, result)) break;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (in_flight[c] == 0) continue;
      std::string reply;
      const int got = clients[c].try_read_reply(reply);
      if (got == 1) {
        ++result.responses_2xx;
        in_flight[c] = 0;
        ++completed;
        progressed = true;
      } else if (got == -1) {
        ++result.transport_failures;
        clients[c].close();
        in_flight[c] = 0;
      }
    }
    stall = progressed ? 0 : stall + 1;
  }
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

// --- minipg -----------------------------------------------------------------

namespace {

bool pg_exchange(Minipg& server, PgClient& client, std::string_view sql,
                 WorkloadResult& result) {
  if (!client.connected() && !client.connect()) {
    ++result.transport_failures;
    return step_server(server, result);
  }
  if (!client.send_query(sql)) {
    ++result.transport_failures;
    client.close();
    return true;
  }
  ++result.requests_sent;
  std::string reply;
  for (int steps = 0; steps < 16; ++steps) {
    if (!step_server(server, result)) return false;
    const int got = client.try_read_result(reply);
    if (got == 1) {
      if (reply.rfind("ERROR", 0) == 0) {
        ++result.responses_4xx;
      } else {
        ++result.responses_2xx;
      }
      return true;
    }
    if (got == -1) {
      ++result.transport_failures;
      client.close();
      return true;
    }
  }
  ++result.transport_failures;
  client.close();
  return true;
}

}  // namespace

WorkloadResult run_pg_suite(Minipg& server, int iterations) {
  WorkloadResult result;
  CpuStopWatch watch;
  PgClient client(server.fx().env(), server.port());
  bool created = false;
  for (int it = 0; it < iterations && !result.server_died; ++it) {
    if (!created) {
      pg_exchange(server, client, "CREATE TABLE accounts", result);
      pg_exchange(server, client, "CREATE TABLE accounts", result);  // dup
      created = true;
    }
    char q1[128], q2[128], q3[128];
    std::snprintf(q1, sizeof(q1), "INSERT accounts user%d balance-%d", it, it);
    std::snprintf(q2, sizeof(q2), "SELECT accounts user%d", it);
    std::snprintf(q3, sizeof(q3), "UPDATE accounts user%d balance-%d", it,
                  it * 2);
    const char* script[] = {
        "BEGIN", q1, q2, q3, "COMMIT",
        "SELECT accounts no_such_user",
        "SELECT missing_table key",
        "DROP something",
        "DROP TABLE missing_table",
        "SCAN accounts",
        "VACUUM",
        "DELETE accounts user0",
        "CHECKPOINT",
    };
    for (const char* sql : script) {
      if (!pg_exchange(server, client, sql, result)) break;
    }
  }
  client.close();
  if (!result.server_died) step_server(server, result);
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

WorkloadResult run_pg_load(Minipg& server, int total_ops, int concurrency,
                           Rng& rng) {
  WorkloadResult result;
  std::vector<PgClient> clients;
  for (int i = 0; i < concurrency; ++i) {
    clients.emplace_back(server.fx().env(), server.port());
    clients.back().connect();
  }
  if (!step_server(server, result)) return result;
  {
    PgClient setup(server.fx().env(), server.port());
    setup.connect();
    if (!pg_exchange(server, setup, "CREATE TABLE bench", result))
      return result;
  }

  CpuStopWatch watch;
  int issued = 0;
  int stall = 0;
  std::vector<int> in_flight(static_cast<std::size_t>(concurrency), 0);
  std::uint64_t completed = 0;
  while (completed < static_cast<std::uint64_t>(total_ops) &&
         !result.server_died && stall < 64) {
    bool progressed = false;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (!clients[c].connected() && !clients[c].connect()) continue;
      if (in_flight[c] == 0 && issued < total_ops) {
        char sql[160];
        const std::uint64_t key = rng.next_below(256);
        const double dice = rng.next_double();
        if (dice < 0.4) {
          std::snprintf(sql, sizeof(sql), "UPDATE bench k%llu v%llu",
                        static_cast<unsigned long long>(key),
                        static_cast<unsigned long long>(rng.next()));
        } else if (dice < 0.6) {
          std::snprintf(sql, sizeof(sql), "INSERT bench k%llu v%llu",
                        static_cast<unsigned long long>(key),
                        static_cast<unsigned long long>(rng.next()));
        } else {
          std::snprintf(sql, sizeof(sql), "SELECT bench k%llu",
                        static_cast<unsigned long long>(key));
        }
        if (clients[c].send_query(sql)) {
          in_flight[c] = 1;
          ++issued;
          ++result.requests_sent;
          progressed = true;
        } else {
          clients[c].close();
          ++result.transport_failures;
        }
      }
    }
    if (!step_server(server, result)) break;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (in_flight[c] == 0) continue;
      std::string reply;
      const int got = clients[c].try_read_result(reply);
      if (got == 1) {
        if (reply.rfind("ERROR", 0) == 0) {
          ++result.responses_4xx;
        } else {
          ++result.responses_2xx;
        }
        in_flight[c] = 0;
        ++completed;
        progressed = true;
      } else if (got == -1) {
        ++result.transport_failures;
        clients[c].close();
        in_flight[c] = 0;
      }
    }
    stall = progressed ? 0 : stall + 1;
  }
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

// --- dispatch ---------------------------------------------------------------

WorkloadResult run_suite_for(Server& server, int iterations) {
  const std::string_view name = server.name();
  if (name == "minikv")
    return run_kv_suite(static_cast<Minikv&>(server), iterations);
  if (name == "minipg")
    return run_pg_suite(static_cast<Minipg&>(server), iterations);
  return run_http_suite(server, iterations);
}

WorkloadResult run_load_for(Server& server, int total_ops, int concurrency,
                            Rng& rng) {
  const std::string_view name = server.name();
  if (name == "minikv")
    return run_kv_load(static_cast<Minikv&>(server), total_ops, concurrency,
                       rng);
  if (name == "minipg")
    return run_pg_load(static_cast<Minipg&>(server), total_ops, concurrency,
                       rng);
  return run_http_load(server, total_ops, concurrency, rng);
}

}  // namespace fir
