// Line-protocol client for minipg (pgbench stand-in).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "env/env.h"

namespace fir {

class PgClient {
 public:
  PgClient(Env& env, std::uint16_t port) : env_(env), port_(port) {}
  ~PgClient() { close(); }

  PgClient(const PgClient&) = delete;
  PgClient& operator=(const PgClient&) = delete;
  PgClient(PgClient&& other) noexcept
      : env_(other.env_), port_(other.port_), fd_(other.fd_),
        rx_(std::move(other.rx_)) {
    other.fd_ = -1;
  }

  bool connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  bool send_query(std::string_view sql);
  /// 1 = got a complete reply line(s) in out, 0 = incomplete, -1 = gone.
  int try_read_result(std::string& out);

 private:
  Env& env_;
  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
};

}  // namespace fir
