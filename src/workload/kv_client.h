// Line-protocol client for minikv (redis-benchmark stand-in).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "env/env.h"

namespace fir {

class KvClient {
 public:
  KvClient(Env& env, std::uint16_t port) : env_(env), port_(port) {}
  ~KvClient() { close(); }

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;
  KvClient(KvClient&& other) noexcept
      : env_(other.env_), port_(other.port_), fd_(other.fd_),
        rx_(std::move(other.rx_)) {
    other.fd_ = -1;
  }

  bool connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one command line ("SET k v"); CRLF is appended.
  bool send_command(std::string_view line);

  /// Drains one reply line (or bulk reply). Same contract as
  /// HttpClient::try_read_response: 1 = got reply, 0 = incomplete,
  /// -1 = connection gone.
  int try_read_reply(std::string& out);

 private:
  Env& env_;
  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
};

}  // namespace fir
