#include "workload/pg_client.h"

#include <cerrno>

namespace fir {

bool PgClient::connect() {
  close();
  fd_ = env_.connect_to(port_);
  rx_.clear();
  return fd_ >= 0;
}

void PgClient::close() {
  if (fd_ >= 0) {
    env_.close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool PgClient::send_query(std::string_view sql) {
  if (fd_ < 0) return false;
  std::string out(sql);
  out += "\n";
  return env_.send(fd_, out.data(), out.size()) ==
         static_cast<ssize_t>(out.size());
}

int PgClient::try_read_result(std::string& out) {
  if (fd_ < 0) return -1;
  char buf[2048];
  for (;;) {
    const ssize_t r = env_.recv(fd_, buf, sizeof(buf));
    if (r > 0) {
      rx_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && env_.last_errno() == EAGAIN) break;
    if (r < 0) return -1;
    break;
  }
  // Reply framing: status replies (INSERT/UPDATE/.../ERROR) and empty
  // result sets ("(0 rows)") are one line; a data row is followed by its
  // "(1 row)" trailer line.
  const std::size_t eol = rx_.find('\n');
  if (eol == std::string::npos) return 0;
  std::size_t end = eol + 1;
  const bool single_line =
      rx_.compare(0, 6, "INSERT") == 0 || rx_.compare(0, 6, "UPDATE") == 0 ||
      rx_.compare(0, 6, "DELETE") == 0 || rx_.compare(0, 6, "CREATE") == 0 ||
      rx_.compare(0, 4, "DROP") == 0 || rx_.compare(0, 6, "VACUUM") == 0 ||
      rx_.compare(0, 5, "BEGIN") == 0 || rx_.compare(0, 6, "COMMIT") == 0 ||
      rx_.compare(0, 10, "CHECKPOINT") == 0 ||
      rx_.compare(0, 5, "ERROR") == 0 || rx_.compare(0, 1, "(") == 0;
  if (!single_line) {
    // Result-set reply: data rows terminated by the "(N rows)" trailer.
    for (;;) {
      if (end < rx_.size() && rx_[end] == '(') {
        const std::size_t trailer = rx_.find('\n', end);
        if (trailer == std::string::npos) return 0;
        end = trailer + 1;
        break;
      }
      const std::size_t next = rx_.find('\n', end);
      if (next == std::string::npos) return 0;
      end = next + 1;
    }
  }
  out = rx_.substr(0, end);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  rx_.erase(0, end);
  return 1;
}

}  // namespace fir
