#include "workload/kv_client.h"

#include <cerrno>

namespace fir {

bool KvClient::connect() {
  close();
  fd_ = env_.connect_to(port_);
  rx_.clear();
  return fd_ >= 0;
}

void KvClient::close() {
  if (fd_ >= 0) {
    env_.close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool KvClient::send_command(std::string_view line) {
  if (fd_ < 0) return false;
  std::string out(line);
  out += "\r\n";
  return env_.send(fd_, out.data(), out.size()) ==
         static_cast<ssize_t>(out.size());
}

int KvClient::try_read_reply(std::string& out) {
  if (fd_ < 0) return -1;
  char buf[2048];
  for (;;) {
    const ssize_t r = env_.recv(fd_, buf, sizeof(buf));
    if (r > 0) {
      rx_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && env_.last_errno() == EAGAIN) break;
    if (r < 0) return -1;
    break;  // orderly close
  }
  const std::size_t eol = rx_.find("\r\n");
  if (eol == std::string::npos) return 0;

  // Bulk replies ("$<n>\r\n<data>\r\n") span two lines.
  if (rx_[0] == '$' && rx_.compare(0, 3, "$-1") != 0) {
    const long long n = std::atoll(rx_.c_str() + 1);
    const std::size_t total = eol + 2 + static_cast<std::size_t>(n) + 2;
    if (rx_.size() < total) return 0;
    out = rx_.substr(eol + 2, static_cast<std::size_t>(n));
    rx_.erase(0, total);
    return 1;
  }
  // Array replies ("*<n>" followed by n bulk strings) — consume fully.
  if (rx_[0] == '*') {
    const long long n = std::atoll(rx_.c_str() + 1);
    std::size_t pos = eol + 2;
    std::string collected;
    for (long long i = 0; i < n; ++i) {
      const std::size_t le = rx_.find("\r\n", pos);
      if (le == std::string::npos) return 0;
      const long long blen = std::atoll(rx_.c_str() + pos + 1);
      if (blen < 0) {  // nil element ("$-1\r\n"): no data segment
        pos = le + 2;
        continue;
      }
      const std::size_t end = le + 2 + static_cast<std::size_t>(blen) + 2;
      if (rx_.size() < end) return 0;
      if (!collected.empty()) collected += ' ';
      collected += rx_.substr(le + 2, static_cast<std::size_t>(blen));
      pos = end;
    }
    out = collected;
    rx_.erase(0, pos);
    return 1;
  }
  out = rx_.substr(0, eol);
  rx_.erase(0, eol + 2);
  return 1;
}

}  // namespace fir
