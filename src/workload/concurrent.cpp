#include "workload/concurrent.h"

#include <thread>

#include "workload/http_client.h"

namespace fir {
namespace {

// Generous spin budgets: the virtual network never blocks, so clients
// yield between polls and rely on the scheduler to run the workers. On a
// loaded single-core machine a round trip can take many quanta.
constexpr int kConnectRetries = 1000;
constexpr int kResponseSpins = 200000;

void run_client(Env& env, const ThreadedClientSpec& spec,
                ThreadedClientResult& out) {
  out.port = spec.port;
  HttpClient client(env, spec.port);
  for (int i = 0; i < spec.requests; ++i) {
    if (!client.connected()) {
      bool connected = false;
      for (int tries = 0; tries < kConnectRetries && !connected; ++tries) {
        connected = client.connect();
        if (!connected) std::this_thread::yield();
      }
      if (!connected) {
        ++out.transport_failures;
        continue;
      }
    }
    if (!client.send_request("GET", spec.target)) {
      ++out.transport_failures;
      client.close();
      continue;
    }
    ++out.sent;
    HttpClient::Response response;
    bool settled = false;
    for (int spins = 0; spins < kResponseSpins; ++spins) {
      const int got = client.try_read_response(response);
      if (got == 1) {
        if (response.status >= 200 && response.status < 400) {
          ++out.responses_2xx;
        } else if (response.status < 500) {
          ++out.responses_4xx;
        } else {
          ++out.responses_5xx;
        }
        settled = true;
        break;
      }
      if (got == -1) {  // reset / closed without a response
        ++out.transport_failures;
        client.close();
        settled = true;
        break;
      }
      std::this_thread::yield();
    }
    if (!settled) {  // no response within the spin budget
      ++out.transport_failures;
      client.close();
    }
  }
  client.close();
}

}  // namespace

std::uint64_t ThreadedLoadResult::total_sent() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.sent;
  return n;
}

std::uint64_t ThreadedLoadResult::total_2xx() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.responses_2xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_5xx() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.responses_5xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_responses() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients)
    n += c.responses_2xx + c.responses_4xx + c.responses_5xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_transport_failures() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.transport_failures;
  return n;
}

ThreadedLoadResult run_threaded_http_load(
    Server& server, const std::vector<ThreadedClientSpec>& specs) {
  ThreadedLoadResult result;
  result.clients.resize(specs.size());
  std::vector<std::thread> threads;
  threads.reserve(specs.size());
  Env& env = server.fx().env();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.emplace_back(
        [&env, &spec = specs[i], &out = result.clients[i]] {
          run_client(env, spec, out);
        });
  }
  for (std::thread& t : threads) t.join();
  return result;
}

}  // namespace fir
