#include "workload/concurrent.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "workload/http_client.h"

namespace fir {
namespace {

// Generous spin budgets: the virtual network never blocks, so clients
// yield between polls and rely on the scheduler to run the workers. On a
// loaded single-core machine a round trip can take many quanta.
constexpr int kConnectRetries = 1000;
constexpr int kResponseSpins = 200000;

void run_client(Env& env, const ThreadedClientSpec& spec,
                ThreadedClientResult& out) {
  out.port = spec.port;
  HttpClient client(env, spec.port);
  for (int i = 0; i < spec.requests; ++i) {
    if (!client.connected()) {
      bool connected = false;
      for (int tries = 0; tries < kConnectRetries && !connected; ++tries) {
        connected = client.connect();
        if (!connected) std::this_thread::yield();
      }
      if (!connected) {
        ++out.transport_failures;
        continue;
      }
    }
    if (!client.send_request("GET", spec.target)) {
      ++out.transport_failures;
      client.close();
      continue;
    }
    ++out.sent;
    HttpClient::Response response;
    bool settled = false;
    for (int spins = 0; spins < kResponseSpins; ++spins) {
      const int got = client.try_read_response(response);
      if (got == 1) {
        if (response.status >= 200 && response.status < 400) {
          ++out.responses_2xx;
        } else if (response.status < 500) {
          ++out.responses_4xx;
        } else {
          ++out.responses_5xx;
        }
        settled = true;
        break;
      }
      if (got == -1) {  // reset / closed without a response
        ++out.transport_failures;
        client.close();
        settled = true;
        break;
      }
      std::this_thread::yield();
    }
    if (!settled) {  // no response within the spin budget
      ++out.transport_failures;
      client.close();
    }
  }
  client.close();
}

}  // namespace

std::uint64_t ThreadedLoadResult::total_sent() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.sent;
  return n;
}

std::uint64_t ThreadedLoadResult::total_2xx() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.responses_2xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_5xx() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.responses_5xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_responses() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients)
    n += c.responses_2xx + c.responses_4xx + c.responses_5xx;
  return n;
}

std::uint64_t ThreadedLoadResult::total_transport_failures() const {
  std::uint64_t n = 0;
  for (const ThreadedClientResult& c : clients) n += c.transport_failures;
  return n;
}

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's slice of a timed run; merged into TimedLoadResult at join.
struct TimedThreadTally {
  std::uint64_t completed = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t sent = 0;
  LogHistogram latency_us;
};

void run_timed_client(Env& env, const TimedLoadSpec& spec, std::uint16_t port,
                      Clock::time_point start, Clock::time_point warmup_end,
                      Clock::time_point end, TimedThreadTally& out) {
  HttpClient client(env, port);
  // Send timestamps of in-flight requests; HTTP/1.1 answers in order on a
  // connection, so the completions pair up FIFO.
  std::deque<Clock::time_point> in_flight;
  const int depth =
      spec.keep_alive ? std::max(1, spec.pipeline_depth) : 1;
  std::uint64_t scheduled = 0;  // open-loop send counter
  for (;;) {
    const Clock::time_point now = Clock::now();
    if (now >= end) break;
    const bool measuring = now >= warmup_end;
    if (!client.connected()) {
      in_flight.clear();
      bool connected = false;
      for (int tries = 0; tries < kConnectRetries && !connected; ++tries) {
        connected = client.connect();
        if (!connected) std::this_thread::yield();
      }
      if (!connected) {
        // Listener gone (worker died / shutting down): give up rather than
        // spin out the window.
        if (measuring) ++out.transport_failures;
        break;
      }
    }
    // Top up the in-flight window. Closed loop: back to `depth`
    // immediately. Open loop: only as many as the fixed schedule has made
    // due, so a slow server inflates latency instead of shrinking load.
    int want = depth - static_cast<int>(in_flight.size());
    if (spec.open_loop_rate_per_thread > 0) {
      const double elapsed =
          std::chrono::duration<double>(now - start).count();
      const std::uint64_t due = static_cast<std::uint64_t>(
          elapsed * static_cast<double>(spec.open_loop_rate_per_thread));
      const std::uint64_t backlog = due > scheduled ? due - scheduled : 0;
      want = std::min<std::int64_t>(want,
                                    static_cast<std::int64_t>(backlog));
    }
    bool broke = false;
    for (int i = 0; i < want; ++i) {
      if (!client.send_request("GET", spec.target, {}, spec.keep_alive)) {
        if (measuring) ++out.transport_failures;
        client.close();
        broke = true;
        break;
      }
      in_flight.push_back(Clock::now());
      ++scheduled;
      if (measuring) ++out.sent;
    }
    if (broke) continue;
    // Drain everything already buffered.
    HttpClient::Response response;
    int got;
    while ((got = client.try_read_response(response)) == 1) {
      const Clock::time_point done = Clock::now();
      if (!in_flight.empty()) {
        if (done >= warmup_end && done < end) {
          const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
              done - in_flight.front());
          out.latency_us.record(static_cast<std::uint64_t>(us.count()));
          ++out.completed;
          if (response.status >= 200 && response.status < 400) {
            ++out.responses_2xx;
          } else if (response.status < 500) {
            ++out.responses_4xx;
          } else {
            ++out.responses_5xx;
          }
        }
        in_flight.pop_front();
      }
      if (!response.keep_alive) {
        client.close();
        break;
      }
    }
    if (got == -1) {
      // Reset mid-flight (e.g. the worker it hit died): anything
      // outstanding is lost.
      if (measuring && !in_flight.empty()) ++out.transport_failures;
      client.close();
    }
    std::this_thread::yield();
  }
  client.close();
}

}  // namespace

TimedLoadResult run_timed_http_load(Server& server,
                                    const TimedLoadSpec& spec) {
  TimedLoadResult result;
  if (spec.ports.empty() || spec.threads <= 0) return result;
  const Clock::time_point start = Clock::now();
  const Clock::time_point warmup_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(spec.warmup_seconds));
  const Clock::time_point end =
      warmup_end + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(spec.duration_seconds));
  std::vector<TimedThreadTally> tallies(
      static_cast<std::size_t>(spec.threads));
  std::vector<std::thread> threads;
  threads.reserve(tallies.size());
  Env& env = server.fx().env();
  for (std::size_t i = 0; i < tallies.size(); ++i) {
    const std::uint16_t port = spec.ports[i % spec.ports.size()];
    threads.emplace_back([&env, &spec, port, start, warmup_end, end,
                          &out = tallies[i]] {
      run_timed_client(env, spec, port, start, warmup_end, end, out);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const TimedThreadTally& t : tallies) {
    result.completed += t.completed;
    result.responses_2xx += t.responses_2xx;
    result.responses_4xx += t.responses_4xx;
    result.responses_5xx += t.responses_5xx;
    result.transport_failures += t.transport_failures;
    result.sent += t.sent;
    result.latency_us.merge(t.latency_us);
  }
  result.elapsed_seconds = spec.duration_seconds;
  result.requests_per_second =
      spec.duration_seconds > 0.0
          ? static_cast<double>(result.completed) / spec.duration_seconds
          : 0.0;
  return result;
}

ThreadedLoadResult run_threaded_http_load(
    Server& server, const std::vector<ThreadedClientSpec>& specs) {
  ThreadedLoadResult result;
  result.clients.resize(specs.size());
  std::vector<std::thread> threads;
  threads.reserve(specs.size());
  Env& env = server.fx().env();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.emplace_back(
        [&env, &spec = specs[i], &out = result.clients[i]] {
          run_client(env, spec, out);
        });
  }
  for (std::thread& t : threads) t.join();
  return result;
}

}  // namespace fir
