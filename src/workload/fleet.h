// Fleet-aware load generator: drives a FleetSupervisor from N client
// threads while chaos (kill_worker / drain_worker) runs concurrently, and
// accounts for every single request — the zero-loss ledger the
// kill-a-worker-per-second integration test audits.
//
// Each thread walks the shards round-robin and submits fixed-size batches
// of GET targets. Because FleetSupervisor::submit blocks until the batch
// is answered (requeueing across worker deaths), the only way a request
// ends up in `lost` is a quarantined shard — exactly the one case where
// giving up is the designed behavior.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/supervisor.h"

namespace fir {

struct FleetLoadSpec {
  int threads = 4;
  /// Batches each thread submits (spread round-robin over all shards).
  /// Ignored when duration_ms > 0.
  int batches_per_thread = 32;
  /// When > 0, threads submit until this much wall-clock time has passed
  /// instead of counting batches (the fir_fleet CLI's mode).
  int duration_ms = 0;
  /// Requests per batch (the supervisor pipelines them to the worker).
  int batch_size = 8;
  /// GET targets, cycled; defaults to the standard docroot mix when empty.
  std::vector<std::string> targets;
};

struct FleetLoadResult {
  std::uint64_t requests = 0;       // submitted in total
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t responses_other = 0;  // answered, but outside 2xx-5xx
  std::uint64_t lost = 0;             // fleet gave up (quarantine only)
  std::uint64_t batches = 0;

  /// The zero-loss audit: every submitted request either got an HTTP
  /// status back or was explicitly accounted as lost.
  std::uint64_t answered() const {
    return responses_2xx + responses_4xx + responses_5xx + responses_other;
  }
};

/// Runs the load to completion (all threads joined). Thread-safe against
/// concurrent kill_worker/drain_worker on the same supervisor.
FleetLoadResult run_fleet_http_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec);

}  // namespace fir
