// Fleet-aware load generator: drives a FleetSupervisor from N client
// threads while chaos (kill_worker / drain_worker) runs concurrently, and
// accounts for every single request — the zero-loss ledger the
// kill-a-worker-per-second integration test audits.
//
// Each thread walks the shards round-robin and submits fixed-size batches
// of GET targets. Because FleetSupervisor::submit blocks until the batch
// is answered (requeueing across worker deaths), the only way a request
// ends up in `lost` is a quarantined shard — exactly the one case where
// giving up is the designed behavior.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/supervisor.h"

namespace fir {

struct FleetLoadSpec {
  int threads = 4;
  /// Batches each thread submits (spread round-robin over all shards).
  /// Ignored when duration_ms > 0.
  int batches_per_thread = 32;
  /// When > 0, threads submit until this much wall-clock time has passed
  /// instead of counting batches (the fir_fleet CLI's mode).
  int duration_ms = 0;
  /// Requests per batch (the supervisor pipelines them to the worker).
  int batch_size = 8;
  /// GET targets, cycled; defaults to the standard docroot mix when empty.
  std::vector<std::string> targets;
};

struct FleetLoadResult {
  std::uint64_t requests = 0;       // submitted in total
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t responses_other = 0;  // answered, but outside 2xx-5xx
  std::uint64_t lost = 0;             // fleet gave up (quarantine only)
  std::uint64_t batches = 0;

  /// The zero-loss audit: every submitted request either got an HTTP
  /// status back or was explicitly accounted as lost.
  std::uint64_t answered() const {
    return responses_2xx + responses_4xx + responses_5xx + responses_other;
  }
};

/// Runs the load to completion (all threads joined). Thread-safe against
/// concurrent kill_worker/drain_worker on the same supervisor.
FleetLoadResult run_fleet_http_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec);

/// Load + ledger for a durable (minikv) fleet. Every thread submits
/// batches of globally-unique "SET key value" lines; a 200 status is an
/// ack, and — because durable workers fsync before replying — an acked
/// set is a durability promise the post-run audit holds the fleet to.
struct FleetKvLoadResult {
  std::uint64_t requests = 0;
  std::uint64_t acked = 0;    // +OK answers (durable by contract)
  std::uint64_t errors = 0;   // -ERR answers
  std::uint64_t unanswered = 0;  // status 0: worker stopped mid-batch
  std::uint64_t lost = 0;     // fleet gave up (quarantine only)
  std::uint64_t batches = 0;
  /// acked_sets[shard] maps every acked key to the value it was set to.
  std::vector<std::map<std::string, std::string>> acked_sets;
};

FleetKvLoadResult run_fleet_kv_load(fleet::FleetSupervisor& fleet,
                                    const FleetLoadSpec& spec);

/// Post-mortem durability audit: recovers every shard from its host
/// backing directory (`durable_dir`/shard-N) with a fresh minikv — the
/// same path a restarted worker takes — and GETs every acked key. Run
/// after FleetSupervisor::stop(); any missing or mismatched key is an
/// acked-write loss.
struct FleetDurabilityAudit {
  std::uint64_t checked = 0;
  std::uint64_t missing = 0;
  std::vector<std::string> examples;  // first few "shard/key" losses
};

FleetDurabilityAudit audit_fleet_durability(
    const std::string& durable_dir,
    const std::vector<std::map<std::string, std::string>>& acked_sets);

}  // namespace fir
