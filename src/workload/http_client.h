// HTTP client for driving the mini web servers over the virtual network.
//
// Runs unprotected (it models the remote benchmark machine — ApacheBench /
// wrk in the paper); it talks to the same Env the server runs on and is
// stepped cooperatively by the workload drivers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "env/env.h"

namespace fir {

class HttpClient {
 public:
  HttpClient(Env& env, std::uint16_t port) : env_(env), port_(port) {}
  ~HttpClient() { close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept
      : env_(other.env_), port_(other.port_), fd_(other.fd_),
        rx_(std::move(other.rx_)) {
    other.fd_ = -1;
  }

  /// Opens a connection; false on ECONNREFUSED/EMFILE.
  bool connect();
  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one request (no body unless provided). Returns false when the
  /// connection broke. `extra_headers` is raw header lines, each ending in
  /// CRLF (e.g. "Range: bytes=0-99\r\n").
  bool send_request(std::string_view method, std::string_view target,
                    std::string_view body = {}, bool keep_alive = true,
                    std::string_view extra_headers = {});

  struct Response {
    int status = 0;
    std::string body;
    bool keep_alive = true;
  };

  /// Drains one response if fully available. Returns:
  ///   1  response parsed into `out`
  ///   0  incomplete (caller should step the server and retry)
  ///  -1  connection closed/reset without a (further) response
  int try_read_response(Response& out);

 private:
  Env& env_;
  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
};

}  // namespace fir
