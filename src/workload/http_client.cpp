#include "workload/http_client.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fir {

bool HttpClient::connect() {
  close();
  fd_ = env_.connect_to(port_);
  rx_.clear();
  return fd_ >= 0;
}

void HttpClient::close() {
  if (fd_ >= 0) {
    env_.close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool HttpClient::send_request(std::string_view method,
                              std::string_view target, std::string_view body,
                              bool keep_alive,
                              std::string_view extra_headers) {
  if (fd_ < 0) return false;
  char head[1024];
  const int n = std::snprintf(
      head, sizeof(head),
      "%.*s %.*s HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Connection: %s\r\n"
      "%.*sContent-Length: %zu\r\n"
      "\r\n",
      static_cast<int>(method.size()), method.data(),
      static_cast<int>(target.size()), target.data(),
      keep_alive ? "keep-alive" : "close",
      static_cast<int>(extra_headers.size()), extra_headers.data(),
      body.size());
  if (n < 0) return false;
  if (env_.send(fd_, head, static_cast<std::size_t>(n)) < 0) return false;
  if (!body.empty() &&
      env_.send(fd_, body.data(), body.size()) < 0)
    return false;
  return true;
}

int HttpClient::try_read_response(Response& out) {
  if (fd_ < 0) return -1;
  char buf[4096];
  bool eof = false;
  for (;;) {
    const ssize_t r = env_.recv(fd_, buf, sizeof(buf));
    if (r > 0) {
      rx_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && env_.last_errno() == EAGAIN) break;
    if (r < 0) return -1;  // reset
    eof = true;  // orderly close; parse what we have
    break;
  }

  const std::size_t head_end = rx_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // EOF without a parsable response: the connection is gone.
    return eof ? -1 : 0;
  }
  // Status line: "HTTP/1.1 200 OK".
  int status = 0;
  if (rx_.size() >= 12 && rx_.compare(0, 5, "HTTP/") == 0) {
    status = std::atoi(rx_.c_str() + 9);
  }
  // Content-Length.
  std::size_t content_length = 0;
  {
    const std::string_view head(rx_.data(), head_end);
    std::size_t pos = 0;
    while (pos < head.size()) {
      std::size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      const std::string_view line = head.substr(pos, eol - pos);
      if (line.size() > 15) {
        // case-insensitive "content-length:"
        bool match = true;
        static constexpr std::string_view kKey = "content-length:";
        for (std::size_t i = 0; i < kKey.size(); ++i) {
          const char a = line[i] >= 'A' && line[i] <= 'Z'
                             ? static_cast<char>(line[i] + 32)
                             : line[i];
          if (a != kKey[i]) {
            match = false;
            break;
          }
        }
        if (match) {
          content_length = static_cast<std::size_t>(
              std::atoll(line.data() + kKey.size()));
        }
      }
      pos = eol + 2;
    }
  }
  const std::size_t total = head_end + 4 + content_length;
  if (rx_.size() < total) return 0;

  out.status = status;
  out.body = rx_.substr(head_end + 4, content_length);
  out.keep_alive = rx_.find("Connection: close") > head_end;
  rx_.erase(0, total);
  return 1;
}

}  // namespace fir
