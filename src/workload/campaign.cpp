#include "workload/campaign.h"

#include "obs/export.h"

namespace fir {

int CampaignResult::triggered() const {
  int n = 0;
  for (const auto& e : experiments) n += e.triggered ? 1 : 0;
  return n;
}

int CampaignResult::crashes() const {
  int n = 0;
  for (const auto& e : experiments) n += e.crashed ? 1 : 0;
  return n;
}

int CampaignResult::recovered() const {
  int n = 0;
  for (const auto& e : experiments)
    n += (e.crashed && e.recovered) ? 1 : 0;
  return n;
}

int CampaignResult::fatal() const {
  int n = 0;
  for (const auto& e : experiments) n += e.fatal ? 1 : 0;
  return n;
}

std::vector<Marker> profile_markers(const ServerFactory& factory,
                                    int suite_iterations,
                                    bool non_critical_only) {
  TargetSelection selection;
  selection.non_critical_only = non_critical_only;
  selection.exclude_error_handlers = non_critical_only;
  return profile_markers(factory, suite_iterations, selection);
}

std::vector<Marker> profile_markers(const ServerFactory& factory,
                                    int suite_iterations,
                                    const TargetSelection& selection) {
  std::unique_ptr<Server> server = factory();
  server->fx().hsfi().set_profiling(true);
  run_suite_for(*server, suite_iterations);
  // executed_markers(false) applies no filtering at all; select_targets
  // owns the whole policy (criticality, handlers, include/exclude, sample).
  std::vector<Marker> executed;
  for (const MarkerId id : server->fx().hsfi().executed_markers(false)) {
    executed.push_back(server->fx().hsfi().markers()[id]);
  }
  server->stop();
  return select_targets(executed, selection);
}

namespace {

/// Finds the marker with the given identity in a fresh server instance
/// (marker ids differ between instances; name+location are stable).
MarkerId resolve_marker(Hsfi& hsfi, const Marker& wanted) {
  for (const Marker& m : hsfi.markers()) {
    if (m.name == wanted.name && m.location == wanted.location) return m.id;
  }
  return kInvalidMarker;
}

}  // namespace

ExperimentRecord run_experiment(const ServerFactory& factory,
                                const Marker& target, FaultType type,
                                int suite_iterations, std::uint64_t seed) {
  ExperimentRecord record;
  record.marker_name = target.name;
  record.marker_location = target.location;
  record.fault = type;

  std::unique_ptr<Server> server = factory();
  if (server == nullptr) {
    record.fatal = true;
    record.death_reason = "server construction failed";
    return record;
  }
  // Warm-up pass registers the markers in this instance (the paper
  // instruments statically; our markers intern lazily).
  run_suite_for(*server, 1);
  const MarkerId id = resolve_marker(server->fx().hsfi(), target);
  if (id == kInvalidMarker) {
    // Marker did not re-register (path not taken this run): skip.
    server->stop();
    return record;
  }
  server->fx().mgr().reset_stats();
  server->fx().hsfi().arm(FaultPlan{id, type, CrashKind::kSegv, seed});

  const WorkloadResult wl = run_suite_for(*server, suite_iterations);

  record.triggered = server->fx().hsfi().fired();
  record.fatal = wl.server_died;
  record.death_reason = wl.death_reason;
  record.responses_2xx = wl.responses_2xx;
  record.responses_5xx = wl.responses_5xx;
  for (const RecoveryEvent& event : server->fx().mgr().recovery_log()) {
    record.crashed = true;
    if (event.action == RecoveryEvent::Action::kDivert) ++record.diversions;
    if (event.action == RecoveryEvent::Action::kRetry) ++record.retries;
  }
  if (wl.server_died) record.crashed = true;
  // Recovered (paper §VI-B: "retaining both the runtime state and
  // availability"): the fault crashed, the server survived the faulty
  // workload, and — with the fault gone — it still serves successes.
  server->fx().hsfi().disarm();
  bool healthy = false;
  if (!wl.server_died) {
    const WorkloadResult health = run_suite_for(*server, 1);
    healthy = !health.server_died && health.responses_2xx > 0;
  }
  record.recovered = record.crashed && !wl.server_died && healthy;
  record.recovery_metrics_json =
      obs::metrics_json_object(server->fx().mgr().metrics(), "recovery.");
  server->stop();
  return record;
}

CampaignResult run_campaign(const ServerFactory& factory, FaultType type,
                            int suite_iterations, std::uint64_t seed) {
  CampaignResult result;
  const std::vector<Marker> targets =
      profile_markers(factory, suite_iterations);
  for (const Marker& target : targets) {
    result.experiments.push_back(
        run_experiment(factory, target, type, suite_iterations, seed));
  }
  return result;
}

}  // namespace fir
