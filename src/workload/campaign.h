// Fault-injection campaigns (§VI-B, Table IV).
//
// Protocol, mirroring the paper's use of HSFI:
//   1. PROFILE: run the server's standard test suite with marker profiling
//      on, recording which fault markers the workload executes.
//   2. For every executed non-critical marker, run ONE EXPERIMENT: a fresh
//      server instance, the same workload, and exactly one fault armed at
//      that marker (persistent fatal, transient fatal, or latent).
//   3. Classify the outcome: did the fault trigger, did it crash, did
//      FIRestarter recover (server alive AND still serving successes), or
//      did the run end in the intended abort (irrecoverable transaction).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/server.h"
#include "hsfi/hsfi.h"
#include "workload/drivers.h"

namespace fir {

/// One experiment's outcome.
struct ExperimentRecord {
  std::string marker_name;
  std::string marker_location;
  FaultType fault = FaultType::kPersistentCrash;
  bool triggered = false;  // the armed fault fired at least once
  bool crashed = false;    // a crash reached the recovery runtime
  bool recovered = false;  // server survived and kept serving successes
  bool fatal = false;      // FatalCrashError ended the run
  std::uint64_t diversions = 0;
  std::uint64_t retries = 0;
  /// Workload accounting of the faulty pass (deterministic under the
  /// virtual OS; campaign run records embed it).
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_5xx = 0;
  std::string death_reason;  // FatalCrashError text when fatal
  /// Final `recovery.*` counter snapshot of the run, rendered by
  /// obs::metrics_json_object — the per-run metrics emission reused as the
  /// campaign run record.
  std::string recovery_metrics_json;
};

/// Aggregate Table IV cell values.
struct CampaignResult {
  std::vector<ExperimentRecord> experiments;

  int injected() const { return static_cast<int>(experiments.size()); }
  int triggered() const;
  int crashes() const;
  int recovered() const;
  int fatal() const;
};

/// Builds a fresh protected server ready to serve (start() already called).
using ServerFactory = std::function<std::unique_ptr<Server>()>;

/// Identifies the workload-executed non-critical markers of `factory`'s
/// server under its standard suite (the campaign's target set).
std::vector<Marker> profile_markers(const ServerFactory& factory,
                                    int suite_iterations = 1,
                                    bool non_critical_only = true);

/// Config-driven variant: the executed markers that pass `selection`
/// (filters + deterministic sampling; see hsfi::TargetSelection).
std::vector<Marker> profile_markers(const ServerFactory& factory,
                                    int suite_iterations,
                                    const TargetSelection& selection);

/// Runs ONE experiment: fresh server, one warm-up suite pass to re-intern
/// markers, exactly one fault of `type` armed at `target`, the suite under
/// fault, then the post-fault health probe. This is the unit the campaign
/// engine (src/campaign) fans out across worker processes; run_campaign is
/// a loop over it.
ExperimentRecord run_experiment(const ServerFactory& factory,
                                const Marker& target, FaultType type,
                                int suite_iterations = 1,
                                std::uint64_t seed = 1);

/// Runs one experiment per target marker with faults of `type`.
/// `suite_iterations` controls workload length per run.
CampaignResult run_campaign(const ServerFactory& factory, FaultType type,
                            int suite_iterations = 1,
                            std::uint64_t seed = 1);

}  // namespace fir
