// Threaded workload driver: real client threads against a worker-pool
// server.
//
// The cooperative drivers (drivers.h) step the server themselves; this
// driver does not — it targets servers whose event loops already run on
// their own threads (Miniginx::start_workers). One client thread is
// spawned per spec, each hammering one listener port with keep-alive GETs
// over the shared Env (whose public surface is serialized by its big
// lock). The per-client tallies let tests assert crash containment: a
// client aimed at a crashing worker records diverted 5xx responses while
// clients on sibling workers record zero transport failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/server.h"

namespace fir {

/// One client thread's assignment.
struct ThreadedClientSpec {
  std::uint16_t port = 0;  // which listener this client drives
  std::string target = "/index.html";
  int requests = 50;
};

/// One client thread's outcome. A request is counted in exactly one
/// bucket: a 2xx/4xx/5xx response, or a transport failure (connect
/// failure, broken connection, or response timeout).
struct ThreadedClientResult {
  std::uint16_t port = 0;
  std::uint64_t sent = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t transport_failures = 0;
};

struct ThreadedLoadResult {
  std::vector<ThreadedClientResult> clients;

  std::uint64_t total_sent() const;
  std::uint64_t total_2xx() const;
  std::uint64_t total_5xx() const;
  std::uint64_t total_responses() const;
  std::uint64_t total_transport_failures() const;
};

/// Runs one client thread per spec concurrently; returns when every client
/// finished its request budget. The server's workers must already be
/// running (this function never steps the server).
ThreadedLoadResult run_threaded_http_load(
    Server& server, const std::vector<ThreadedClientSpec>& specs);

}  // namespace fir
