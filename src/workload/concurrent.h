// Threaded workload driver: real client threads against a worker-pool
// server.
//
// The cooperative drivers (drivers.h) step the server themselves; this
// driver does not — it targets servers whose event loops already run on
// their own threads (Miniginx::start_workers). One client thread is
// spawned per spec, each hammering one listener port with keep-alive GETs
// over the shared Env (whose public surface is serialized by its big
// lock). The per-client tallies let tests assert crash containment: a
// client aimed at a crashing worker records diverted 5xx responses while
// clients on sibling workers record zero transport failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/server.h"
#include "common/histogram.h"

namespace fir {

/// One client thread's assignment.
struct ThreadedClientSpec {
  std::uint16_t port = 0;  // which listener this client drives
  std::string target = "/index.html";
  int requests = 50;
};

/// One client thread's outcome. A request is counted in exactly one
/// bucket: a 2xx/4xx/5xx response, or a transport failure (connect
/// failure, broken connection, or response timeout).
struct ThreadedClientResult {
  std::uint16_t port = 0;
  std::uint64_t sent = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t transport_failures = 0;
};

struct ThreadedLoadResult {
  std::vector<ThreadedClientResult> clients;

  std::uint64_t total_sent() const;
  std::uint64_t total_2xx() const;
  std::uint64_t total_5xx() const;
  std::uint64_t total_responses() const;
  std::uint64_t total_transport_failures() const;
};

/// Runs one client thread per spec concurrently; returns when every client
/// finished its request budget. The server's workers must already be
/// running (this function never steps the server).
ThreadedLoadResult run_threaded_http_load(
    Server& server, const std::vector<ThreadedClientSpec>& specs);

// --- timed load generator ---------------------------------------------------
// wrk-shaped driver for the serving throughput benchmark: a fixed warmup,
// then a fixed-duration measurement window during which every completed
// response is tallied and its latency recorded into a per-thread
// LogHistogram (merged at the end). Closed-loop by default — each thread
// keeps `pipeline_depth` requests in flight per connection and tops up as
// responses land; setting `open_loop_rate_per_thread` paces sends on a
// fixed schedule instead, so queueing delay shows up as latency rather
// than reduced offered load.

struct TimedLoadSpec {
  /// Listener ports; client thread i drives ports[i % ports.size()].
  std::vector<std::uint16_t> ports;
  std::string target = "/index.html";
  int threads = 4;
  /// Requests kept in flight per connection (HTTP/1.1 pipelining depth).
  /// Forced to 1 when keep_alive is false — a closing server never answers
  /// the rest of a pipelined burst.
  int pipeline_depth = 1;
  /// `Connection:` header the clients send. false exercises the legacy
  /// close-per-request arm (reconnect for every request).
  bool keep_alive = true;
  double warmup_seconds = 0.1;
  double duration_seconds = 0.5;
  /// 0: closed loop. Otherwise each thread sends on this fixed schedule
  /// (requests/second), still bounded by pipeline_depth in flight.
  std::uint64_t open_loop_rate_per_thread = 0;
};

struct TimedLoadResult {
  /// Responses completed inside the measurement window, by status bucket.
  std::uint64_t completed = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t transport_failures = 0;
  /// Requests sent inside the window (offered load; differs from
  /// `completed` when responses straddle the window edges).
  std::uint64_t sent = 0;
  double elapsed_seconds = 0.0;
  double requests_per_second = 0.0;
  /// Wall-clock request latency in microseconds (send to full response),
  /// merged across threads.
  LogHistogram latency_us;

  std::uint64_t p50_us() const { return latency_us.value_at_percentile(50); }
  std::uint64_t p90_us() const { return latency_us.value_at_percentile(90); }
  std::uint64_t p99_us() const { return latency_us.value_at_percentile(99); }
  std::uint64_t p999_us() const {
    return latency_us.value_at_percentile(99.9);
  }
};

/// Runs `spec.threads` client threads against an already-running worker
/// pool for warmup + duration seconds, then returns the merged window
/// tallies. Never steps the server.
TimedLoadResult run_timed_http_load(Server& server, const TimedLoadSpec& spec);

}  // namespace fir
