#include "apps/minipg.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/walrec.h"

namespace fir {
namespace {
constexpr std::uint32_t kOptReuseAddr = 0x1;
constexpr int kMaxEvents = 32;
constexpr std::int32_t kNone = -1;

std::string_view next_token(std::string_view& input) {
  while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
  const std::size_t sp = input.find(' ');
  std::string_view token =
      sp == std::string_view::npos ? input : input.substr(0, sp);
  input.remove_prefix(token.size());
  return token;
}

}  // namespace

Minipg::Minipg(TxManagerConfig config)
    : Server(config), fd_conn_(1024, kNone) {
  tables_.reserve(kMaxTables);
  for (std::size_t i = 0; i < kMaxTables; ++i) tables_.emplace_back(1024);
  table_names_.resize(kMaxTables);
}

Minipg::~Minipg() { stop(); }

std::size_t Minipg::total_rows() const {
  std::size_t total = 0;
  for (const Table& t : tables_) total += t.size();
  return total;
}

Status Minipg::start(std::uint16_t port) {
  if (running_) return Status(ErrorCode::kFailedPrecondition, "running");
  port_ = port != 0 ? port : kDefaultPort;

  const int s = FIR_SOCKET(fx_);
  if (s < 0) return Status(ErrorCode::kResourceExhausted, "socket");
  if (FIR_SETSOCKOPT(fx_, s, kOptReuseAddr) == -1 ||
      FIR_BIND(fx_, s, port_) == -1 || FIR_LISTEN(fx_, s, 32) == -1 ||
      FIR_FCNTL_NONBLOCK(fx_, s, true) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "listener setup");
  }
  const int ep = FIR_EPOLL_CREATE1(fx_);
  if (ep < 0 || FIR_EPOLL_CTL(fx_, ep, kEpollAdd, s, kPollIn) == -1) {
    if (ep >= 0) FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "epoll setup");
  }
  // Crash-restart recovery: a surviving WAL (imported data directory)
  // is replayed before the server accepts connections.
  replay_wal();
  const int wal = FIR_OPEN(fx_, "/pg/pg_wal/000000010000000000000001",
                           kCreat | kWrOnly | kAppend);
  if (wal < 0) {
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "wal open");
  }
  const int shm = FIR_OPEN(fx_, "/pg/shm/stats", kCreat | kRdWr);
  if (shm < 0) {
    FIR_CLOSE(fx_, wal);
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "shm open");
  }
  if (FIR_FTRUNCATE(fx_, shm, 4096) == -1) {
    FIR_CLOSE(fx_, shm);
    FIR_CLOSE(fx_, wal);
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "shm size");
  }
  FIR_QUIESCE(fx_);
  listen_fd_ = s;
  epfd_ = ep;
  wal_fd_ = wal;
  shm_fd_ = shm;
  running_ = true;
  return Status::ok();
}

void Minipg::stop() {
  if (!running_) return;
  // Shutdown must not strand queued acks: retire any pending group so the
  // last batch's statements hit the WAL before the fds close.
  if (gc_pending_ > 0) retire_group();
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
  for (std::size_t fd = 0; fd < fd_conn_.size(); ++fd) {
    if (fd_conn_[fd] != kNone) {
      fx_.env().close(static_cast<int>(fd));
      fd_conn_[fd] = kNone;
    }
  }
  fx_.env().close(shm_fd_);
  fx_.env().close(wal_fd_);
  fx_.env().close(epfd_);
  fx_.env().close(listen_fd_);
  shm_fd_ = wal_fd_ = epfd_ = listen_fd_ = -1;
  running_ = false;
}

Minipg::Conn* Minipg::conn_of(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fd_conn_.size())
    return nullptr;
  const std::int32_t idx = fd_conn_[fd];
  return idx == kNone ? nullptr : conns_.at(static_cast<std::size_t>(idx));
}

void Minipg::run_once() {
  if (!running_) return;
  FIR_ANCHOR(fx_);
  PollEvent events[kMaxEvents];
  const int n = FIR_EPOLL_WAIT(fx_, epfd_, events, kMaxEvents);
  if (n < 0) {
    HSFI_POINT(fx_.hsfi(), "postmaster_retry", /*critical=*/true);
    maybe_retire_group();
    FIR_QUIESCE(fx_);
    fx_.mgr().clear_anchor();
    return;
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].fd == listen_fd_) {
      accept_clients();
      continue;
    }
    Conn* conn = conn_of(events[i].fd);
    if (conn == nullptr) {
      FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, events[i].fd, 0);
      FIR_CLOSE(fx_, events[i].fd);
      continue;
    }
    client_readable(events[i].fd, conn);
  }
  maybe_retire_group();
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

void Minipg::accept_clients() {
  for (;;) {
    const int c = FIR_ACCEPT(fx_, listen_fd_);
    if (c < 0) {
      if (fx_.err() != EAGAIN) {
        HSFI_HANDLER_POINT(fx_.hsfi(), "accept_error");
        FIR_LOG(kWarn) << "minipg: accept failed";
      }
      return;
    }
    if (FIR_FCNTL_NONBLOCK(fx_, c, true) == -1) {
      FIR_CLOSE(fx_, c);
      continue;
    }
    Conn* conn = conns_.alloc();
    if (conn == nullptr) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "max_connections");
      FIR_CLOSE(fx_, c);
      continue;
    }
    tx_store(conn->fd, c);
    tx_store(fd_conn_[c], static_cast<std::int32_t>(conns_.index_of(conn)));
    if (FIR_EPOLL_CTL(fx_, epfd_, kEpollAdd, c, kPollIn) == -1) {
      close_conn(c, conn);
      continue;
    }
    counters_.connections_accepted += 1;
  }
}

void Minipg::close_conn(int fd, Conn* conn) {
  FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, fd, 0);
  FIR_CLOSE(fx_, fd);
  tx_store(fd_conn_[fd], kNone);
  conns_.release(conn);
  counters_.connections_closed += 1;
}

void Minipg::client_readable(int fd, Conn* conn) {
  const std::uint32_t space =
      static_cast<std::uint32_t>(sizeof(conn->rx)) - conn->rx_len;
  if (space == 0) {
    counters_.protocol_errors += 1;
    close_conn(fd, conn);
    return;
  }
  const ssize_t r = FIR_RECV(fx_, fd, conn->rx + conn->rx_len, space);
  if (r < 0) {
    if (fx_.err() == EAGAIN) return;
    HSFI_HANDLER_POINT(fx_.hsfi(), "backend_recv_error");
    close_conn(fd, conn);
    return;
  }
  if (r == 0) {
    close_conn(fd, conn);
    return;
  }
  tx_store(conn->rx_len, conn->rx_len + static_cast<std::uint32_t>(r));

  for (;;) {
    const std::string_view view(conn->rx, conn->rx_len);
    const std::size_t eol = view.find('\n');
    if (eol == std::string_view::npos) return;
    char line[2048];
    std::size_t len = eol;
    if (len > 0 && view[len - 1] == '\r') --len;
    std::memcpy(line, conn->rx, len);
    line[len] = '\0';
    const std::uint32_t rest =
        conn->rx_len - static_cast<std::uint32_t>(eol + 1);
    if (rest > 0) {
      StoreGate::record(conn->rx, rest);
      std::memmove(conn->rx, conn->rx + eol + 1, rest);
    }
    tx_store(conn->rx_len, rest);
    tx_store(conn->queries, conn->queries + 1);
    if (len > 0) execute_sql(fd, conn, line, len);
    if (conn_of(fd) != conn) return;
  }
}

Minipg::Table* Minipg::create_table_slot(std::string_view name) {
  if (name.empty() || name.size() >= 48) return nullptr;
  for (std::size_t i = 0; i < kMaxTables; ++i) {
    if (table_names_[i].used != 0) continue;
    char name_buf[48] = {};
    std::memcpy(name_buf, name.data(), name.size());
    tx_memcpy(table_names_[i].name, name_buf, sizeof(name_buf));
    tx_store(table_names_[i].used, static_cast<std::uint8_t>(1));
    return &tables_[i];
  }
  return nullptr;
}

void Minipg::replay_wal() {
  wal_replayed_ = 0;
  wal_torn_bytes_ = 0;
  auto wal = fx_.env().vfs().lookup("/pg/pg_wal/000000010000000000000001");
  if (wal == nullptr || wal->data.empty()) return;
  // Framed records; each payload is "xid=N op=<op> rel=<t> key=<k> val=<v>".
  WalrecScanner scan({wal->data.data(), wal->data.size()});
  std::string_view line;
  while (scan.next(line)) {
    auto field = [&line](std::string_view tag) -> std::string_view {
      const std::size_t at = line.find(tag);
      if (at == std::string_view::npos) return {};
      std::string_view v = line.substr(at + tag.size());
      // `val=` runs to end of line; other fields end at the next space.
      if (tag != "val=") {
        const std::size_t sp = v.find(' ');
        if (sp != std::string_view::npos) v = v.substr(0, sp);
      }
      return v;
    };
    const std::string_view op = field("op=");
    const std::string_view rel = field("rel=");
    const std::string_view key = field("key=");
    const std::string_view value = field("val=");
    if (op.empty() || rel.empty()) continue;

    if (op == "create") {
      if (find_table(rel) == nullptr) create_table_slot(rel);
    } else if (op == "drop") {
      for (std::size_t i = 0; i < kMaxTables; ++i) {
        if (table_names_[i].used != 0 &&
            std::string_view(table_names_[i].name) == rel) {
          std::vector<Key> keys;
          tables_[i].for_each(
              [&keys](const Key& k, const Value&) { keys.push_back(k); });
          for (const Key& k : keys) tables_[i].erase(k.view());
          tx_store(table_names_[i].used, static_cast<std::uint8_t>(0));
        }
      }
    } else if (op == "insert" || op == "update") {
      Table* table = find_table(rel);
      const auto k = Key::make(key);
      const auto v = Value::make(value);
      if (table != nullptr && k && v) table->put(key, *k, *v);
    } else if (op == "delete") {
      Table* table = find_table(rel);
      if (table != nullptr) table->erase(key);
    } else {
      continue;
    }
    ++wal_replayed_;
  }
  // Torn tail (partial final append or bit rot): truncate back to the last
  // record whose checksum verified — pg_resetwal-style tail repair.
  if (scan.valid_bytes() < wal->data.size()) {
    wal_torn_bytes_ = wal->data.size() - scan.valid_bytes();
    const int fd =
        fx_.env().open("/pg/pg_wal/000000010000000000000001", kWrOnly);
    if (fd >= 0) {
      fx_.env().ftruncate(fd, static_cast<std::int64_t>(scan.valid_bytes()));
      fx_.env().close(fd);
    }
    FIR_LOG(kWarn) << "minipg: dropped " << wal_torn_bytes_
                   << " torn WAL tail bytes";
  }
  FIR_LOG(kInfo) << "minipg: replayed " << wal_replayed_
                 << " WAL records on startup";
}

Minipg::Table* Minipg::find_table(std::string_view name) {
  for (std::size_t i = 0; i < kMaxTables; ++i) {
    if (table_names_[i].used != 0 &&
        std::string_view(table_names_[i].name) == name) {
      return &tables_[i];
    }
  }
  return nullptr;
}

bool Minipg::wal_append(const char* op, std::string_view table,
                        std::string_view key, std::string_view value) {
  char payload[320];
  const int n = std::snprintf(
      payload, sizeof(payload), "xid=%llu op=%s rel=%.*s key=%.*s val=%.*s",
      static_cast<unsigned long long>(xid_.get()), op,
      static_cast<int>(table.size()), table.data(),
      static_cast<int>(key.size()), key.data(),
      static_cast<int>(value.size()), value.data());
  char record[320 + kWalrecHeaderBytes];
  const std::size_t total = walrec_encode(
      record, sizeof(record), {payload, static_cast<std::size_t>(n)});
  if (total == 0) return false;
  // WAL append: write() — compensable while the bytes sit past the sync
  // barrier, irrecoverable once flushed.
  const ssize_t w = FIR_WRITE(fx_, wal_fd_, record, total);
  if (w < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "wal_write_failed");
    FIR_LOG(kWarn) << "minipg: WAL write failed errno=" << fx_.err();
    return false;
  }
  if (fsync_policy_ == FsyncPolicy::kAlways &&
      FIR_FSYNC(fx_, wal_fd_) == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "wal_fsync_failed");
    return false;
  }
  return true;
}

void Minipg::shm_stats_bump(std::uint32_t counter_index) {
  // Shared-memory statistics: visible to other backends immediately —
  // irrecoverable (§VII). Modeled as a pwrite into the stats region.
  std::uint64_t bump = 1;
  const ssize_t w = FIR_PWRITE(fx_, shm_fd_, &bump, sizeof(bump),
                               static_cast<std::int64_t>(counter_index) * 8);
  if (w < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "shm_update_failed");
  }
}

void Minipg::execute_sql(int fd, Conn* conn, const char* line,
                         std::size_t len) {
  std::string_view input(line, len);
  const std::string_view verb = next_token(input);
  HSFI_POINT(fx_.hsfi(), "sql_dispatch", /*critical=*/false);

  if (verb == "CREATE") {
    const std::string_view kw = next_token(input);    // TABLE
    const std::string_view name = next_token(input);
    HSFI_POINT(fx_.hsfi(), "ddl_create", /*critical=*/false);
    if (kw != "TABLE" || name.empty() || name.size() >= 48) {
      counters_.protocol_errors += 1;
      reply(fd, "ERROR: syntax error\n", 20);
      return;
    }
    if (find_table(name) != nullptr) {
      reply(fd, "ERROR: relation exists\n", 23);
      counters_.responses_4xx += 1;
      return;
    }
    if (!wal_append("create", name, "", "")) {
      reply(fd, "ERROR: wal failure\n", 19);
      counters_.responses_5xx += 1;
      return;
    }
    if (create_table_slot(name) == nullptr) {
      reply(fd, "ERROR: too many relations\n", 26);
      counters_.responses_5xx += 1;
      return;
    }
    shm_stats_bump(0);
    counters_.requests_ok += 1;
    defer_or_reply(fd, "CREATE TABLE\n", 13);
    return;
  }

  if (verb == "BEGIN") {
    tx_store(conn->in_txn, static_cast<std::uint8_t>(1));
    xid_ += 1;
    reply(fd, "BEGIN\n", 6);
    counters_.requests_ok += 1;
    return;
  }
  if (verb == "COMMIT") {
    HSFI_POINT(fx_.hsfi(), "commit_fsync", /*critical=*/false);
    // Commit durability: fsync the WAL (irrecoverable transaction). Under
    // policy "no" the flush is skipped and the commit rides the page cache.
    // Group commit retires the queued acks with the same barrier (and skips
    // it entirely when nothing is pending — everything already retired).
    if (gc_active()) {
      if (!retire_group()) {
        reply(fd, "ERROR: fsync failed\n", 20);
        counters_.responses_5xx += 1;
        return;
      }
    } else if (fsync_policy_ != FsyncPolicy::kNo &&
               FIR_FSYNC(fx_, wal_fd_) == -1) {
      reply(fd, "ERROR: fsync failed\n", 20);
      counters_.responses_5xx += 1;
      return;
    }
    tx_store(conn->in_txn, static_cast<std::uint8_t>(0));
    reply(fd, "COMMIT\n", 7);
    counters_.requests_ok += 1;
    return;
  }
  if (verb == "CHECKPOINT") {
    HSFI_POINT(fx_.hsfi(), "checkpointer", /*critical=*/false);
    // Flush table heaps to the data directory.
    const int heap = FIR_OPEN(fx_, "/pg/base/heap.dat",
                              kCreat | kWrOnly | kTrunc);
    if (heap < 0) {
      reply(fd, "ERROR: checkpoint failed\n", 25);
      counters_.responses_5xx += 1;
      return;
    }
    char record[256];
    std::int64_t off = 0;
    bool failed = false;
    for (std::size_t i = 0; i < kMaxTables; ++i) {
      if (table_names_[i].used == 0) continue;
      tables_[i].for_each([&](const Key& k, const Value& v) {
        if (failed) return;
        const int n = std::snprintf(record, sizeof(record), "%s:%.*s=%.*s\n",
                                    table_names_[i].name,
                                    static_cast<int>(k.len), k.data,
                                    static_cast<int>(v.len), v.data);
        if (FIR_PWRITE(fx_, heap, record, static_cast<std::size_t>(n), off) <
            0) {
          failed = true;
          return;
        }
        off += n;
      });
    }
    if (failed || FIR_FSYNC(fx_, heap) == -1) {
      FIR_CLOSE(fx_, heap);
      reply(fd, "ERROR: checkpoint failed\n", 25);
      counters_.responses_5xx += 1;
      return;
    }
    FIR_CLOSE(fx_, heap);
    counters_.requests_ok += 1;
    reply(fd, "CHECKPOINT\n", 11);
    return;
  }

  if (verb == "DROP") {
    const std::string_view kw = next_token(input);  // TABLE
    const std::string_view name = next_token(input);
    HSFI_POINT(fx_.hsfi(), "ddl_drop", /*critical=*/false);
    if (kw != "TABLE" || name.empty()) {
      counters_.protocol_errors += 1;
      reply(fd, "ERROR: syntax error\n", 20);
      return;
    }
    for (std::size_t i = 0; i < kMaxTables; ++i) {
      if (table_names_[i].used == 0 ||
          std::string_view(table_names_[i].name) != name)
        continue;
      if (!wal_append("drop", name, "", "")) {
        reply(fd, "ERROR: wal failure\n", 19);
        counters_.responses_5xx += 1;
        return;
      }
      // Truncate the relation (tracked, rollback-safe) and free the slot.
      std::vector<Key> keys;
      tables_[i].for_each(
          [&keys](const Key& k, const Value&) { keys.push_back(k); });
      for (const Key& k : keys) tables_[i].erase(k.view());
      tx_store(table_names_[i].used, static_cast<std::uint8_t>(0));
      shm_stats_bump(4);
      counters_.requests_ok += 1;
      defer_or_reply(fd, "DROP TABLE\n", 11);
      return;
    }
    counters_.responses_4xx += 1;
    reply(fd, "ERROR: relation does not exist\n", 31);
    return;
  }

  if (verb == "VACUUM") {
    // Compacts tombstones by rewriting every relation's live rows — the
    // autovacuum worker's bulk-write pattern (a long transaction full of
    // tracked stores).
    HSFI_POINT(fx_.hsfi(), "vacuum", /*critical=*/false);
    std::size_t rewritten = 0;
    for (std::size_t i = 0; i < kMaxTables; ++i) {
      if (table_names_[i].used == 0) continue;
      std::vector<std::pair<Key, Value>> rows;
      tables_[i].for_each([&rows](const Key& k, const Value& v) {
        rows.emplace_back(k, v);
      });
      for (const auto& [k, v] : rows) {
        tables_[i].erase(k.view());
        tables_[i].put(k.view(), k, v);
        ++rewritten;
      }
    }
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "VACUUM %zu\n", rewritten);
    counters_.requests_ok += 1;
    reply(fd, buf, static_cast<std::size_t>(n));
    return;
  }

  if (verb == "SCAN") {
    const std::string_view name = next_token(input);
    Table* scan_table = find_table(name);
    HSFI_POINT(fx_.hsfi(), "executor_seqscan", /*critical=*/false);
    if (scan_table == nullptr) {
      counters_.responses_4xx += 1;
      reply(fd, "ERROR: relation does not exist\n", 31);
      return;
    }
    char buf[4096];
    int n = 0;
    std::size_t rows = 0;
    bool overflow = false;
    scan_table->for_each([&](const Key& k, const Value& v) {
      if (overflow) return;
      const int m = std::snprintf(
          buf + n, sizeof(buf) - static_cast<std::size_t>(n),
          "%.*s=%.*s\n", static_cast<int>(k.len), k.data,
          static_cast<int>(v.len), v.data);
      if (m < 0 || static_cast<std::size_t>(n + m) >= sizeof(buf) - 32) {
        overflow = true;
        return;
      }
      n += m;
      ++rows;
    });
    shm_stats_bump(1);
    if (overflow) {
      counters_.responses_5xx += 1;
      reply(fd, "ERROR: result too large\n", 24);
      return;
    }
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       "(%zu rows)\n", rows);
    counters_.requests_ok += 1;
    reply(fd, buf, static_cast<std::size_t>(n));
    return;
  }

  // DML verbs all address "<verb> <table> <key> [value...]".
  const std::string_view table_name = next_token(input);
  Table* table = find_table(table_name);
  if (verb == "INSERT" || verb == "UPDATE" || verb == "SELECT" ||
      verb == "DELETE") {
    if (table == nullptr) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "missing_relation");
      counters_.responses_4xx += 1;
      reply(fd, "ERROR: relation does not exist\n", 31);
      return;
    }
  } else {
    HSFI_HANDLER_POINT(fx_.hsfi(), "parser_reject");
    counters_.protocol_errors += 1;
    reply(fd, "ERROR: syntax error\n", 20);
    return;
  }

  const std::string_view key = next_token(input);
  while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
  const std::string_view value = input;

  if (verb == "SELECT") {
    HSFI_POINT(fx_.hsfi(), "executor_select", /*critical=*/false);
    const Value* v = table->get(key);
    shm_stats_bump(1);
    // After the shared-memory stats update (pwrite): irrecoverable.
    HSFI_POINT(fx_.hsfi(), "select_row_format", /*critical=*/false);
    if (v == nullptr) {
      reply(fd, "(0 rows)\n", 9);
    } else {
      char buf[192];
      const int n = std::snprintf(buf, sizeof(buf), "%.*s\n(1 row)\n",
                                  static_cast<int>(v->len), v->data);
      reply(fd, buf, static_cast<std::size_t>(n));
    }
    counters_.requests_ok += 1;
    return;
  }

  if (verb == "DELETE") {
    HSFI_POINT(fx_.hsfi(), "executor_delete", /*critical=*/false);
    if (!wal_append("delete", table_name, key, "")) {
      reply(fd, "ERROR: wal failure\n", 19);
      counters_.responses_5xx += 1;
      return;
    }
    // Past the WAL write: this transaction opened at write() and cannot
    // divert — minipg's irrecoverable share (paper: 22/27 recovered).
    HSFI_POINT(fx_.hsfi(), "heap_delete_apply", /*critical=*/false);
    const bool erased = table->erase(key);
    shm_stats_bump(2);
    // DELETE always wal-logs (even a miss), so both acks defer.
    defer_or_reply(fd, erased ? "DELETE 1\n" : "DELETE 0\n", 9);
    counters_.requests_ok += 1;
    return;
  }

  // INSERT / UPDATE.
  HSFI_POINT(fx_.hsfi(), "executor_write", /*critical=*/false);
  const auto k = Key::make(key);
  const auto v = Value::make(value);
  if (!k || !v || key.empty()) {
    counters_.protocol_errors += 1;
    reply(fd, "ERROR: value too long\n", 22);
    return;
  }
  if (verb == "INSERT" && table->contains(key)) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "unique_violation");
    counters_.responses_4xx += 1;
    reply(fd, "ERROR: duplicate key\n", 21);
    return;
  }
  if (verb == "UPDATE" && !table->contains(key)) {
    reply(fd, "UPDATE 0\n", 9);
    counters_.requests_ok += 1;
    return;
  }
  if (!wal_append(verb == "INSERT" ? "insert" : "update", table_name, key,
                  value)) {
    reply(fd, "ERROR: wal failure\n", 19);
    counters_.responses_5xx += 1;
    return;
  }
  // Past the WAL write: irrecoverable transaction (see heap_delete_apply).
  HSFI_POINT(fx_.hsfi(), "heap_write_apply", /*critical=*/false);
  if (!table->put(key, *k, *v)) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "relation_full");
    counters_.responses_5xx += 1;
    reply(fd, "ERROR: relation full\n", 21);
    return;
  }
  shm_stats_bump(3);
  counters_.requests_ok += 1;
  defer_or_reply(fd, verb == "INSERT" ? "INSERT 0 1\n" : "UPDATE 1\n",
                 verb == "INSERT" ? 11 : 9);
}

void Minipg::reply(int fd, const char* data, std::size_t len) {
  // A direct reply must never overtake queued acks (a SELECT answered
  // before the INSERT preceding it was acked would reorder the client's
  // view), so any pending group retires first.
  if (gc_pending_ > 0) retire_group();
  send_all(fd, data, len);
}

void Minipg::send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = FIR_SEND(fx_, fd, data + off, len - off);
    if (w < 0) {
      if (fx_.err() == EAGAIN) continue;
      HSFI_HANDLER_POINT(fx_.hsfi(), "send_failed");
      Conn* conn = conn_of(fd);
      if (conn != nullptr) close_conn(fd, conn);
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

void Minipg::defer_or_reply(int fd, const char* data, std::size_t len) {
  if (!gc_active() || len > sizeof(GcAck{}.buf)) {
    reply(fd, data, len);
    return;
  }
  // Slot bytes land before the tracked count bump: a rollback mid-statement
  // restores the count and the half-written slot is dead.
  GcAck& slot = gc_acks_[gc_pending_];
  slot.fd = fd;
  slot.len = static_cast<std::uint32_t>(len);
  std::memcpy(slot.buf, data, len);
  if (gc_pending_ == 0) gc_since_ns_ = fx_.env().clock().now_ns();
  tx_store(gc_pending_, gc_pending_ + 1);
  acks_deferred_ += 1;
  if (gc_pending_ >= group_commit_.max_acks) retire_group();
}

bool Minipg::retire_group() {
  if (gc_pending_ == 0) return true;
  HSFI_POINT(fx_.hsfi(), "group_commit", /*critical=*/false);
  // One barrier covers the whole group; only then do the acks flush.
  const bool ok = FIR_FSYNC(fx_, wal_fd_) != -1;
  if (ok) {
    group_commits_ += 1;
  } else {
    HSFI_HANDLER_POINT(fx_.hsfi(), "group_fsync_failed");
    FIR_LOG(kWarn) << "minipg: group-commit fsync failed";
  }
  const std::uint32_t n = gc_pending_;
  tx_store(gc_pending_, 0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    const GcAck& ack = gc_acks_[i];
    if (ok) {
      send_all(ack.fd, ack.buf, ack.len);
    } else {
      // The statements may not be durable: acked-implies-durable demands
      // the queued positive acks become errors.
      send_all(ack.fd, "ERROR: fsync failed\n", 20);
    }
  }
  return ok;
}

void Minipg::maybe_retire_group() {
  if (gc_pending_ == 0) return;
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(group_commit_.window_us) * 1000;
  if (window_ns == 0 ||
      fx_.env().clock().now_ns() - gc_since_ns_ >= window_ns) {
    retire_group();
  }
}


std::size_t Minipg::resident_state_bytes() const {
  std::size_t tables = 0;
  for (const Table& t : tables_) tables += t.footprint_bytes();
  return tables + conns_.footprint_bytes() +
         table_names_.capacity() * sizeof(TableSlot) +
         fd_conn_.capacity() * sizeof(std::int32_t) + sizeof(*this);
}

}  // namespace fir
