// Fsync policy knob shared by the durable servers (FIR_FSYNC_POLICY).
//
// Controls when a server places a durability barrier after appending to its
// WAL/AOF. "always" gives acked-implies-durable (every acknowledged mutation
// survives any crash image); "batch" barriers at natural batch points
// (minipg: COMMIT, minikv: every few records); "no" leaves the log in the
// page cache, so a crash can lose the whole unsynced tail.
//
// Group commit (FIR_GROUP_COMMIT_MAX / FIR_GROUP_COMMIT_US) upgrades the
// "batch" policy: instead of acking before the barrier, the server defers
// the acks of consecutive mutations, retires the whole group with ONE
// barrier, and only then flushes the replies. Acked-implies-durable at a
// fraction of always-policy's barrier count (docs/DURABILITY.md §"Group
// commit").
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fir {

enum class FsyncPolicy {
  kAlways,  // barrier after every log append
  kBatch,   // barrier at batch points (COMMIT / every N records)
  kNo,      // never barrier: page cache only
};

inline const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kNo: return "no";
  }
  return "?";
}

inline FsyncPolicy fsync_policy_from_env(FsyncPolicy fallback) {
  const char* v = std::getenv("FIR_FSYNC_POLICY");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "always") == 0) return FsyncPolicy::kAlways;
  if (std::strcmp(v, "batch") == 0) return FsyncPolicy::kBatch;
  if (std::strcmp(v, "no") == 0) return FsyncPolicy::kNo;
  std::fprintf(stderr,
               "fir: unrecognized FIR_FSYNC_POLICY '%s' "
               "(want always|batch|no), using '%s'\n",
               v, fsync_policy_name(fallback));
  return fallback;
}

/// Group-commit configuration (active only under FsyncPolicy::kBatch).
struct GroupCommitConfig {
  /// Deferred-ack budget: a barrier retires the group as soon as this many
  /// acks are queued. 0 disables group commit (legacy batch semantics);
  /// servers clamp to kMaxAcks.
  std::uint32_t max_acks = 0;
  /// Upper bound (virtual-clock microseconds) an ack may sit queued across
  /// event-loop passes. 0 retires any pending group at the end of every
  /// pass — the lowest-latency setting, and still one barrier per
  /// pipelined batch.
  std::uint32_t window_us = 0;

  static constexpr std::uint32_t kMaxAcks = 64;

  bool enabled() const { return max_acks > 0; }
};

/// Reads FIR_GROUP_COMMIT_MAX / FIR_GROUP_COMMIT_US over `fallback`,
/// warning (one line each) about unparseable or out-of-range values the
/// same way fsync_policy_from_env does.
inline GroupCommitConfig group_commit_from_env(GroupCommitConfig fallback) {
  GroupCommitConfig c = fallback;
  if (const char* v = std::getenv("FIR_GROUP_COMMIT_MAX")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0) {
      std::fprintf(stderr,
                   "fir: unrecognized FIR_GROUP_COMMIT_MAX '%s' "
                   "(want 0..%u), using %u\n",
                   v, GroupCommitConfig::kMaxAcks, c.max_acks);
    } else if (n > static_cast<long>(GroupCommitConfig::kMaxAcks)) {
      std::fprintf(stderr,
                   "fir: FIR_GROUP_COMMIT_MAX %ld exceeds the ack-queue "
                   "capacity, clamping to %u\n",
                   n, GroupCommitConfig::kMaxAcks);
      c.max_acks = GroupCommitConfig::kMaxAcks;
    } else {
      c.max_acks = static_cast<std::uint32_t>(n);
    }
  }
  if (const char* v = std::getenv("FIR_GROUP_COMMIT_US")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0) {
      std::fprintf(stderr,
                   "fir: unrecognized FIR_GROUP_COMMIT_US '%s' "
                   "(want microseconds >= 0), using %u\n",
                   v, c.window_us);
    } else {
      c.window_us = static_cast<std::uint32_t>(n);
    }
  }
  return c;
}

}  // namespace fir
