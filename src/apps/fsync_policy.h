// Fsync policy knob shared by the durable servers (FIR_FSYNC_POLICY).
//
// Controls when a server places a durability barrier after appending to its
// WAL/AOF. "always" gives acked-implies-durable (every acknowledged mutation
// survives any crash image); "batch" barriers at natural batch points
// (minipg: COMMIT, minikv: every few records); "no" leaves the log in the
// page cache, so a crash can lose the whole unsynced tail.
#pragma once

#include <cstdlib>
#include <cstring>

namespace fir {

enum class FsyncPolicy {
  kAlways,  // barrier after every log append
  kBatch,   // barrier at batch points (COMMIT / every N records)
  kNo,      // never barrier: page cache only
};

inline FsyncPolicy fsync_policy_from_env(FsyncPolicy fallback) {
  const char* v = std::getenv("FIR_FSYNC_POLICY");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "always") == 0) return FsyncPolicy::kAlways;
  if (std::strcmp(v, "batch") == 0) return FsyncPolicy::kBatch;
  if (std::strcmp(v, "no") == 0) return FsyncPolicy::kNo;
  return fallback;
}

inline const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kNo: return "no";
  }
  return "?";
}

}  // namespace fir
