#include "apps/miniginx.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/http.h"
#include "common/log.h"
#include "core/crash.h"
#include "env/env.h"

namespace fir {
namespace {
constexpr std::uint32_t kOptReuseAddr = 0x1;
constexpr std::uint32_t kOptNodelay = 0x2;
constexpr int kMaxEvents = 64;
constexpr std::int32_t kNoConn = -1;
/// Idle workers park in the env's epoll for at most this long per pass, so
/// stop_workers() stays responsive while idle loops burn no CPU.
constexpr int kWorkerEpollTimeoutMs = 2;
}  // namespace

ServingConfig ServingConfig::from_env() {
  ServingConfig c;
  if (const char* v = std::getenv("FIR_KEEPALIVE")) {
    c.keep_alive = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("FIR_PIPELINE_MAX")) {
    c.pipeline_max = std::clamp(std::atoi(v), 1, kMaxPipeline);
  }
  if (const char* v = std::getenv("FIR_WRITEV")) {
    c.use_writev = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("FIR_REUSEPORT")) {
    c.reuse_port = std::atoi(v) != 0;
  }
  return c;
}

Miniginx::Miniginx(TxManagerConfig config) : Server(config) {
  loop_.counters = &counters_;
}

Miniginx::~Miniginx() { stop(); }

void Miniginx::install_default_docroot() {
  Vfs& vfs = fx_.env().vfs();
  vfs.put_file("/www/index.html",
               "<html><body><h1>miniginx</h1><p>it works</p></body></html>");
  vfs.put_file("/www/about.txt", "miniginx: an nginx-shaped mini server\n");
  std::string big(16000, 'x');
  vfs.put_file("/www/large.bin", big);
  vfs.put_file("/www/page.shtml",
               "<html><body>host=<!--#echo var=\"HOST\" --> "
               "date=<!--#echo var=\"DATE\" --></body></html>");
  vfs.put_file("/www/broken.shtml",
               "<html><body>oops=<!--#echo var=\"NO_SUCH_VAR\" -->"
               "</body></html>");
  vfs.put_file("/www/style.css", "body { color: #222; }\n");
  vfs.put_file("/www/api.json", "{\"server\":\"miniginx\",\"ok\":true}\n");
}

Status Miniginx::open_listener(WorkerState& ws) {
  // Init phase: unprotected (no anchor), mirroring the paper's protocol of
  // injecting faults only after startup. The calls still register sites.
  const int s = FIR_SOCKET(fx_);
  if (s < 0) return Status(ErrorCode::kResourceExhausted, "socket");
  // The paper's Listing 1 interval: setsockopt -> error handler closes the
  // socket -> bind with EADDRINUSE special case.
  const int ret_s = FIR_SETSOCKOPT(fx_, s, kOptReuseAddr);
  if (ret_s == -1) {
    FIR_LOG(kError) << "miniginx: setsockopt() failed";
    if (FIR_CLOSE(fx_, s) == -1)
      FIR_LOG(kError) << "miniginx: close_socket failed";
    return Status(ErrorCode::kInternal, "setsockopt");
  }
  // FIR_REUSEPORT: join the port's listener group before bind (the option
  // must be set pre-bind, like the kernel's).
  if (serving_.reuse_port &&
      FIR_SETSOCKOPT(fx_, s, kSockOptReusePort) == -1) {
    FIR_LOG(kError) << "miniginx: setsockopt(SO_REUSEPORT) failed";
    if (FIR_CLOSE(fx_, s) == -1)
      FIR_LOG(kError) << "miniginx: close_socket failed";
    return Status(ErrorCode::kInternal, "setsockopt");
  }
  const int ret_b = FIR_BIND(fx_, s, ws.port);
  if (ret_b == -1) {
    const int err = fx_.err();
    FIR_LOG(kError) << "miniginx: bind() failed";
    if (FIR_CLOSE(fx_, s) == -1)
      FIR_LOG(kError) << "miniginx: close_socket failed";
    return err == EADDRINUSE
               ? Status(ErrorCode::kAddressInUse, "bind")
               : Status(ErrorCode::kInternal, "bind");
  }
  if (FIR_LISTEN(fx_, s, 64) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "listen");
  }
  if (FIR_FCNTL_NONBLOCK(fx_, s, true) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "fcntl");
  }
  const int ep = FIR_EPOLL_CREATE1(fx_);
  if (ep < 0) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kResourceExhausted, "epoll_create1");
  }
  if (FIR_EPOLL_CTL(fx_, ep, kEpollAdd, s, kPollIn) == -1) {
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "epoll_ctl");
  }
  ws.listen_fd = s;
  ws.epfd = ep;
  return Status::ok();
}

Status Miniginx::start(std::uint16_t port) {
  if (running_) return Status(ErrorCode::kFailedPrecondition, "running");
  port_ = port != 0 ? port : kDefaultPort;
  install_default_docroot();

  loop_.port = port_;
  const Status listener = open_listener(loop_);
  if (!listener.is_ok()) return listener;
  const int alog =
      FIR_OPEN(fx_, "/logs/miniginx.access.log", kCreat | kWrOnly | kAppend);
  if (alog < 0) {
    FIR_CLOSE(fx_, loop_.epfd);
    FIR_CLOSE(fx_, loop_.listen_fd);
    loop_.epfd = loop_.listen_fd = -1;
    return Status(ErrorCode::kInternal, "access log");
  }
  FIR_QUIESCE(fx_);
  access_log_fd_ = alog;
  running_ = true;
  return Status::ok();
}

Status Miniginx::start_workers(int n) {
  if (!running_)
    return Status(ErrorCode::kFailedPrecondition, "start() first");
  if (!workers_.empty())
    return Status(ErrorCode::kFailedPrecondition, "workers running");
  if (n <= 0) return Status(ErrorCode::kInvalidArgument, "n");
  // Listeners are created on the calling thread (gated init calls), so a
  // setup failure surfaces here, not inside a detached worker.
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back();
    WorkerState& ws = workers_.back();
    ws.index = i;
    ws.port = serving_.reuse_port
                  ? port_
                  : static_cast<std::uint16_t>(port_ + 1 + i);
    ws.counters = &ws.own_counters;
    const Status st = open_listener(ws);
    if (!st.is_ok()) {
      FIR_QUIESCE(fx_);
      stop_workers();
      return st;
    }
  }
  FIR_QUIESCE(fx_);
  workers_running_.store(true, std::memory_order_relaxed);
  for (WorkerState& ws : workers_) {
    ws.alive.store(true, std::memory_order_relaxed);
    ws.thread = std::thread([this, &ws] { worker_main(ws); });
  }
  return Status::ok();
}

void Miniginx::stop_workers() {
  if (workers_.empty()) return;
  workers_running_.store(false, std::memory_order_relaxed);
  for (WorkerState& ws : workers_)
    if (ws.thread.joinable()) ws.thread.join();
  for (WorkerState& ws : workers_) {
    release_loop_resources(ws);
    // Fold the worker's single-writer counters into the server-wide
    // aggregate (untracked: shutdown path, no transaction open).
    counters_.requests_ok.init(counters_.requests_ok.get() +
                               ws.own_counters.requests_ok.get());
    counters_.responses_4xx.init(counters_.responses_4xx.get() +
                                 ws.own_counters.responses_4xx.get());
    counters_.responses_5xx.init(counters_.responses_5xx.get() +
                                 ws.own_counters.responses_5xx.get());
    counters_.connections_accepted.init(
        counters_.connections_accepted.get() +
        ws.own_counters.connections_accepted.get());
    counters_.connections_closed.init(
        counters_.connections_closed.get() +
        ws.own_counters.connections_closed.get());
    counters_.protocol_errors.init(counters_.protocol_errors.get() +
                                   ws.own_counters.protocol_errors.get());
  }
  workers_.clear();
}

ServerCounters Miniginx::aggregated_counters() const {
  ServerCounters out;
  auto fold = [&out](const ServerCounters& c) {
    out.requests_ok.init(out.requests_ok.get() + c.requests_ok.get());
    out.responses_4xx.init(out.responses_4xx.get() + c.responses_4xx.get());
    out.responses_5xx.init(out.responses_5xx.get() + c.responses_5xx.get());
    out.connections_accepted.init(out.connections_accepted.get() +
                                  c.connections_accepted.get());
    out.connections_closed.init(out.connections_closed.get() +
                                c.connections_closed.get());
    out.protocol_errors.init(out.protocol_errors.get() +
                             c.protocol_errors.get());
  };
  fold(counters_);
  for (const WorkerState& ws : workers_) fold(ws.own_counters);
  return out;
}

void Miniginx::release_loop_resources(WorkerState& ws) {
  for (std::size_t fd = 0; fd < ws.fd_conn.size(); ++fd) {
    if (ws.fd_conn[fd] != kNoConn) {
      // Shutdown path, no transaction open: untracked teardown, including
      // any arena chunks the connection still holds.
      if (Conn* conn = conn_of(ws, static_cast<int>(fd))) {
        for (int i = 0; i < kArenaChunkSlots; ++i) {
          if (conn->arena_chunks[i] != nullptr) {
            fx_.env().mem_free(conn->arena_chunks[i]);
            conn->arena_chunks[i] = nullptr;
          }
        }
      }
      fx_.env().close(static_cast<int>(fd));
      ws.fd_conn[fd] = kNoConn;
    }
  }
  if (ws.epfd >= 0) fx_.env().close(ws.epfd);
  if (ws.listen_fd >= 0) fx_.env().close(ws.listen_fd);
  ws.epfd = ws.listen_fd = -1;
}

void Miniginx::stop_accepting() {
  if (!running_ || loop_.listen_fd < 0) return;
  // Untracked teardown (drain is a planned shutdown step, not a protected
  // handler): deregister from epoll, then close the listener. Connections
  // already accepted stay in the fd map and keep being served.
  fx_.env().epoll_ctl(loop_.epfd, kEpollDel, loop_.listen_fd, 0);
  fx_.env().close(loop_.listen_fd);
  loop_.listen_fd = -1;
}

void Miniginx::stop() {
  if (!running_) return;
  stop_workers();
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
  release_loop_resources(loop_);
  fx_.env().close(access_log_fd_);
  access_log_fd_ = -1;
  running_ = false;
}

Miniginx::Conn* Miniginx::conn_of(WorkerState& ws, int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= ws.fd_conn.size())
    return nullptr;
  const std::int32_t idx = ws.fd_conn[fd];
  return idx == kNoConn ? nullptr
                        : ws.conns.at(static_cast<std::size_t>(idx));
}

void Miniginx::run_once() {
  if (!running_) return;
  FIR_ANCHOR(fx_);
  event_pass(loop_);
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

void Miniginx::worker_main(WorkerState& ws) {
  while (workers_running_.load(std::memory_order_relaxed)) {
    try {
      FIR_ANCHOR(fx_);
      // A real epoll timeout: an idle worker parks inside the env (the
      // wait releases the env lock, and any readiness change wakes it)
      // instead of spin-yielding through empty passes — idle workers no
      // longer steal cycles from the loaded ones during throughput runs.
      event_pass(ws, kWorkerEpollTimeoutMs);
      FIR_QUIESCE(fx_);
      fx_.mgr().clear_anchor();
    } catch (const FatalCrashError&) {
      // Crash containment: an unrecoverable fault kills THIS worker only.
      // Its connections die with it; siblings keep serving theirs.
      fx_.mgr().clear_anchor();
      ws.alive.store(false, std::memory_order_relaxed);
      return;
    }
  }
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

bool Miniginx::event_pass(WorkerState& ws, int timeout_ms) {
  PollEvent events[kMaxEvents];
  const int n =
      FIR_EPOLL_WAIT_TIMED(fx_, ws.epfd, events, kMaxEvents, timeout_ms);
  if (n < 0) {
    // Critical path: nothing to do but try again next iteration — the
    // paper's epoll_wait example of a retrying error handler (§V-B).
    HSFI_POINT(fx_.hsfi(), "event_loop_retry", /*critical=*/true);
    return false;
  }
  for (int i = 0; i < n; ++i) {
    HSFI_POINT(fx_.hsfi(), "event_dispatch", /*critical=*/true);
    if (events[i].fd == ws.listen_fd) {
      accept_new_connections(ws);
      continue;
    }
    Conn* conn = conn_of(ws, events[i].fd);
    if (conn == nullptr) {
      // Stale event for an fd we already tore down.
      FIR_EPOLL_CTL(fx_, ws.epfd, kEpollDel, events[i].fd, 0);
      FIR_CLOSE(fx_, events[i].fd);
      continue;
    }
    if (conn->state == kWriting || (events[i].events & kPollOut) != 0) {
      handle_writable(ws, events[i].fd, conn);
      conn = conn_of(ws, events[i].fd);  // may have been closed
    }
    if (conn != nullptr && conn->state == kReading &&
        (events[i].events & (kPollIn | kPollHup)) != 0) {
      handle_readable(ws, events[i].fd, conn);
    }
  }
  return n > 0;
}

void Miniginx::accept_new_connections(WorkerState& ws) {
  for (;;) {
    const int c = FIR_ACCEPT(fx_, ws.listen_fd);
    if (c < 0) {
      if (fx_.err() == EAGAIN) break;
      // Non-critical error handler: log and move on (divert target).
      FIR_LOG(kWarn) << "miniginx: accept() failed errno=" << fx_.err();
      HSFI_HANDLER_POINT(fx_.hsfi(), "accept_error_path");
      break;
    }
    HSFI_POINT(fx_.hsfi(), "accept_setup", /*critical=*/false);
    if (FIR_FCNTL_NONBLOCK(fx_, c, true) == -1) {
      FIR_LOG(kWarn) << "miniginx: fcntl(O_NONBLOCK) failed";
      FIR_CLOSE(fx_, c);
      continue;
    }
    if (FIR_SETSOCKOPT(fx_, c, kOptNodelay) == -1) {
      FIR_LOG(kWarn) << "miniginx: setsockopt(TCP_NODELAY) failed";
      FIR_CLOSE(fx_, c);
      continue;
    }
    Conn* conn = ws.conns.alloc();
    if (conn == nullptr) {
      // Connection table exhausted: shed load.
      HSFI_POINT(fx_.hsfi(), "overload_shed", /*critical=*/false);
      FIR_CLOSE(fx_, c);
      continue;
    }
    tx_store(conn->fd, c);
    tx_store(conn->state, static_cast<std::uint8_t>(kReading));
    tx_store(conn->keep_alive, static_cast<std::uint8_t>(1));
    tx_store(ws.fd_conn[c],
             static_cast<std::int32_t>(ws.conns.index_of(conn)));
    if (FIR_EPOLL_CTL(fx_, ws.epfd, kEpollAdd, c, kPollIn) == -1) {
      FIR_LOG(kWarn) << "miniginx: epoll_ctl(ADD) failed";
      close_conn(ws, c, conn);
      continue;
    }
    ws.counters->connections_accepted += 1;
  }
}

void Miniginx::close_conn(WorkerState& ws, int fd, Conn* conn) {
  FIR_EPOLL_CTL(fx_, ws.epfd, kEpollDel, fd, 0);
  FIR_CLOSE(fx_, fd);
  // Release the connection's arena chunks (deferred frees: dropped and
  // re-issued by re-execution if the enclosing transaction rolls back).
  for (int i = 0; i < kArenaChunkSlots; ++i) {
    if (conn->arena_chunks[i] != nullptr) {
      FIR_FREE(fx_, conn->arena_chunks[i]);
      tx_store(conn->arena_chunks[i], static_cast<char*>(nullptr));
    }
  }
  tx_store(ws.fd_conn[fd], kNoConn);
  ws.conns.release(conn);
  ws.counters->connections_closed += 1;
}

void Miniginx::handle_readable(WorkerState& ws, int fd, Conn* conn) {
  const std::uint32_t space =
      static_cast<std::uint32_t>(sizeof(conn->rx)) - conn->rx_len;
  if (space == 0) {
    // Request larger than the buffer: protocol error.
    ws.counters->protocol_errors += 1;
    close_conn(ws, fd, conn);
    return;
  }
  const ssize_t r = FIR_RECV(fx_, fd, conn->rx + conn->rx_len, space);
  if (r < 0) {
    if (fx_.err() == EAGAIN) return;
    // recv failure (incl. an injected ECONNRESET): drop the connection —
    // the non-critical error-handling path the fault injector exploits.
    HSFI_HANDLER_POINT(fx_.hsfi(), "recv_error_path");
    FIR_LOG(kInfo) << "miniginx: recv failed errno=" << fx_.err();
    close_conn(ws, fd, conn);
    return;
  }
  if (r == 0) {  // orderly client close
    close_conn(ws, fd, conn);
    return;
  }
  tx_store(conn->rx_len, conn->rx_len + static_cast<std::uint32_t>(r));
  process_request(ws, fd, conn);
}

void Miniginx::process_request(WorkerState& ws, int fd, Conn* conn) {
  // Batched HTTP/1.1 pipelining: parse back-to-back requests straight out
  // of the buffered bytes — no epoll round-trip between them — queue every
  // response on the slice table, compact the leftovers once, then flush
  // the whole batch through one vectored write. A crash while handling
  // request k rolls back to its transaction's checkpoint and retries or
  // diverts there; the requests before and after it in the batch are
  // untouched (the crash-at-pipeline-position tests).
  std::uint32_t used = 0;
  int handled = 0;
  while (handled < serving_.pipeline_max && batch_has_room(conn)) {
    http::Request req;
    const auto result =
        http::parse_request({conn->rx + used, conn->rx_len - used}, req);
    HSFI_POINT(fx_.hsfi(), "parse_request", /*critical=*/false);
    if (result == http::ParseResult::kIncomplete) break;
    if (result == http::ParseResult::kBad) {
      ws.counters->responses_4xx += 1;
      ws.counters->protocol_errors += 1;
      queue_response(ws, conn, 400, "text/html", "<h1>400 Bad Request</h1>",
                     24, false);
      // The byte stream is poisoned: drop whatever else is buffered and
      // close once the 400 has flushed.
      used = conn->rx_len;
      ++handled;
      tx_store(conn->keep_alive, static_cast<std::uint8_t>(0));
      break;
    }

    // Method dispatch index: the kind of small table index HSFI's latent
    // faults corrupt. The bounds check converts a corrupted index into a
    // fail-stop crash (defensive coding, paper SSII) that the enclosing
    // transaction absorbs.
    static constexpr const char* kMethodTag[6] = {"GET",  "HEAD", "POST",
                                                  "PUT",  "DEL",  "PFND"};
    std::uint8_t method_idx = static_cast<std::uint8_t>(req.method);
    if (method_idx > 5) method_idx = 0;
    HSFI_POINT_DATA(fx_.hsfi(), "method_dispatch_index", /*critical=*/false,
                    &method_idx, sizeof(method_idx));
    check_bounds(method_idx, 6);
    (void)kMethodTag[method_idx];

    // Decode the URL (non-critical feature path).
    char decoded[1024];
    const std::size_t dlen =
        http::url_decode(req.path, decoded, sizeof(decoded));
    HSFI_POINT_DATA(fx_.hsfi(), "url_decode", /*critical=*/false, decoded,
                    dlen < 16 ? dlen : 16);
    if (dlen == 0) {
      ws.counters->responses_4xx += 1;
      queue_response(ws, conn, 400, "text/html", "<h1>400 Bad Request</h1>",
                     24, req.keep_alive);
    } else if (http::path_is_unsafe({decoded, dlen})) {
      HSFI_POINT(fx_.hsfi(), "reject_unsafe_path", /*critical=*/false);
      ws.counters->responses_4xx += 1;
      queue_response(ws, conn, 403, "text/html", "<h1>403 Forbidden</h1>", 22,
                     req.keep_alive);
    } else if (req.method != http::Method::kGet &&
               req.method != http::Method::kHead) {
      ws.counters->responses_4xx += 1;
      queue_response(ws, conn, 405, "text/html",
                     "<h1>405 Method Not Allowed</h1>", 31, req.keep_alive);
    } else {
      char full_path[1100];
      const int len = std::snprintf(full_path, sizeof(full_path), "/www%.*s%s",
                                    static_cast<int>(dlen), decoded,
                                    (dlen > 0 && decoded[dlen - 1] == '/')
                                        ? "index.html"
                                        : "");
      (void)len;
      serve_file(ws, conn, full_path, req.keep_alive,
                 req.method == http::Method::kHead, req.range);
    }

    // nginx-style buffered access log: one write() per request (its own —
    // irrecoverable — transaction, part of Table III's irrecoverable
    // share).
    access_log(req, ws.last_status);

    const std::uint32_t consumed = static_cast<std::uint32_t>(
        req.header_bytes + req.content_length);
    used += std::min(consumed, conn->rx_len - used);
    ++handled;
    tx_store(conn->served, conn->served + 1);
    const bool ka = req.keep_alive && serving_.keep_alive;
    tx_store(conn->keep_alive, static_cast<std::uint8_t>(ka));
    // No further requests follow a close response; stop parsing.
    if (!ka || conn->close_after_flush != 0) break;
  }
  if (handled == 0) return;  // incomplete head: keep reading

  // Consume the batch's bytes with ONE compaction (the old per-request
  // path paid a tracked memmove per pipelined request).
  const std::uint32_t rest = conn->rx_len - used;
  if (rest > 0 && used > 0) {
    StoreGate::record(conn->rx, rest);
    std::memmove(conn->rx, conn->rx + used, rest);
  }
  tx_store(conn->rx_len, rest);
  tx_store(conn->state, static_cast<std::uint8_t>(kWriting));
  FIR_EPOLL_CTL(fx_, ws.epfd, kEpollMod, fd, kPollOut);
  handle_writable(ws, fd, conn);
}

const char* Miniginx::ssi_get_variable(const char* name, std::size_t len) {
  const std::string_view v(name, len);
  if (v == "HOST") return "miniginx";
  if (v == "DATE") return "2026-07-04";
  if (v == "SERVER_SOFTWARE") return "miniginx/1.0";
  // nginx 1.11.0 ticket #1263: ngx_http_ssi_get_variable() returns NULL for
  // a variable that was never initialized by the (sub)request.
  if (ssi_null_bug_) return nullptr;
  return "(none)";
}

std::size_t Miniginx::ssi_expand(const char* src, std::size_t len, char* dst,
                                 std::size_t cap) {
  static constexpr std::string_view kOpen = "<!--#echo var=\"";
  static constexpr std::string_view kClose = "\" -->";
  std::size_t out = 0;
  std::string_view rest(src, len);
  while (!rest.empty()) {
    const std::size_t at = rest.find(kOpen);
    const std::size_t copy = at == std::string_view::npos ? rest.size() : at;
    if (out + copy > cap) return 0;
    std::memcpy(dst + out, rest.data(), copy);
    out += copy;
    if (at == std::string_view::npos) break;
    rest.remove_prefix(at + kOpen.size());
    const std::size_t end = rest.find(kClose);
    if (end == std::string_view::npos) break;  // unterminated: drop directive
    const char* value = ssi_get_variable(rest.data(), end);
    if (ssi_hard_null_bug_) {
      // The unpatched bug: no defensive check, the NULL result is loaded
      // from directly and the fault arrives as a genuine SIGSEGV. Volatile
      // so the load survives to runtime and takes the actual MMU fault.
      volatile std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(value);
      (void)*reinterpret_cast<const volatile char*>(addr);
    } else {
      // The real bug dereferences the NULL result while copying the value.
      check_ptr(value);
    }
    const std::size_t vlen = std::strlen(value);
    if (out + vlen > cap) return 0;
    std::memcpy(dst + out, value, vlen);
    out += vlen;
    rest.remove_prefix(end + kClose.size());
  }
  return out;
}

void Miniginx::serve_file(WorkerState& ws, Conn* conn, const char* full_path,
                          bool keep_alive, bool head_only,
                          std::string_view range_header) {
  std::size_t fsize = 0;
  if (FIR_STAT_SIZE(fx_, full_path, &fsize) == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "build_404");
    ws.counters->responses_4xx += 1;
    queue_response(ws, conn, 404, "text/html", "<h1>404 Not Found</h1>", 22,
                   keep_alive);
    return;
  }
  // Range requests take the partial-content path (nginx: ngx_http_range
  // module), a distinct feature with its own transactions.
  if (!range_header.empty()) {
    http::ByteRange range = http::parse_range(range_header);
    serve_range(ws, conn, full_path, fsize, range, keep_alive);
    return;
  }
  if (fsize > kBigFileBytes) {
    // Large responses take their own code path (nginx's output-chain /
    // sendfile split), and therefore their own transaction sites: the
    // adaptive policy can demote exactly these without touching the small-
    // file hot path — the per-site behaviour behind Fig. 3.
    serve_big_file(ws, conn, full_path, fsize, keep_alive, head_only);
    return;
  }
  const int ffd = FIR_OPEN(fx_, full_path, kRdOnly);
  if (ffd < 0) {
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    return;
  }
  // Per-request scratch: the paper's malloc -> OOM -> internal-server-error
  // example (§V-B), now bump-allocated from the per-connection arena. The
  // body must survive until the batched flush, so nothing is freed here —
  // arena_rewind() reclaims everything once the batch is on the wire.
  const std::size_t scratch_size = fsize + 512;
  char* scratch = arena_alloc(conn, scratch_size);
  if (scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "oom_abort_request");
    FIR_LOG(kInfo) << "miniginx: out of memory serving request";
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "<h1>500</h1>", 12,
                   keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  // SSI pages need their expansion buffer up front: the expansion pass runs
  // inside the pread() transaction (the paper's §VI-F scenario — the SSI
  // NULL-dereference rolls back to the pread checkpoint).
  const std::string_view path_view(full_path);
  const bool is_ssi = path_view.ends_with(".shtml");
  char* expanded = nullptr;
  if (is_ssi) {
    expanded = arena_alloc(conn, scratch_size + 512);
    if (expanded == nullptr) {
      ws.counters->responses_5xx += 1;
      queue_response(ws, conn, 500, "text/html", "<h1>500</h1>", 12,
                     keep_alive);
      FIR_CLOSE(fx_, ffd);
      return;
    }
  }

  const ssize_t got = FIR_PREAD(fx_, ffd, scratch, fsize, 0);
  if (got < 0) {
    // §VI-F: the SSI crash diverts here — pread "fails" with EINVAL and the
    // server answers with an empty response instead of crashing.
    HSFI_HANDLER_POINT(fx_.hsfi(), "pread_error_path");
    FIR_LOG(kInfo) << "miniginx: pread failed errno=" << fx_.err();
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }

  const char* body = scratch;
  std::size_t body_len = static_cast<std::size_t>(got);
  if (is_ssi) {
    HSFI_POINT(fx_.hsfi(), "ssi_expand", /*critical=*/false);
    body_len = ssi_expand(scratch, body_len, expanded, scratch_size + 512);
    body = expanded;
  }

  HSFI_POINT(fx_.hsfi(), "build_response_headers", /*critical=*/false);
  const std::string_view mime = http::mime_type(path_view);
  ws.counters->requests_ok += 1;
  char mime_buf[64];
  const std::size_t mlen = mime.size() < sizeof(mime_buf) - 1
                               ? mime.size()
                               : sizeof(mime_buf) - 1;
  std::memcpy(mime_buf, mime.data(), mlen);
  mime_buf[mlen] = '\0';
  queue_response(ws, conn, 200, mime_buf, body, head_only ? 0 : body_len,
                 keep_alive);
  FIR_CLOSE(fx_, ffd);
}

void Miniginx::serve_big_file(WorkerState& ws, Conn* conn,
                              const char* full_path, std::size_t fsize,
                              bool keep_alive, bool head_only) {
  const int ffd = FIR_OPEN(fx_, full_path, kRdOnly);
  if (ffd < 0) {
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    return;
  }
  char* scratch = arena_alloc(conn, fsize);
  if (scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "bigfile_oom");
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "<h1>500</h1>", 12,
                   keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  const ssize_t got = FIR_PREAD(fx_, ffd, scratch, fsize, 0);
  if (got < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "bigfile_read_error");
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  HSFI_POINT(fx_.hsfi(), "bigfile_response", /*critical=*/false);
  const std::string_view mime = http::mime_type(full_path);
  char mime_buf[64];
  std::snprintf(mime_buf, sizeof(mime_buf), "%.*s",
                static_cast<int>(mime.size()), mime.data());
  ws.counters->requests_ok += 1;
  queue_response(ws, conn, 200, mime_buf, scratch,
                 head_only ? 0 : static_cast<std::size_t>(got), keep_alive);
  FIR_CLOSE(fx_, ffd);
}

void Miniginx::serve_range(WorkerState& ws, Conn* conn,
                           const char* full_path, std::size_t fsize,
                           http::ByteRange range, bool keep_alive) {
  HSFI_POINT(fx_.hsfi(), "range_request", /*critical=*/false);
  const bool ka = keep_alive && serving_.keep_alive;
  if (!http::resolve_range(range, fsize)) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "range_unsatisfiable");
    ws.counters->responses_4xx += 1;
    ws.last_status = 416;
    char head[128];
    const int hlen = std::snprintf(
        head, sizeof(head),
        "HTTP/1.1 416 Range Not Satisfiable\r\n"
        "Content-Range: bytes */%zu\r\nContent-Length: 0\r\n"
        "Connection: %s\r\n\r\n",
        fsize, ka ? "keep-alive" : "close");
    push_head(conn, head, static_cast<std::size_t>(hlen));
    if (!ka)
      tx_store(conn->close_after_flush, static_cast<std::uint8_t>(1));
    return;
  }
  const std::size_t span = range.last - range.first + 1;
  const int ffd = FIR_OPEN(fx_, full_path, kRdOnly);
  if (ffd < 0) {
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    return;
  }
  char* scratch = arena_alloc(conn, span);
  if (scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "range_oom");
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "<h1>500</h1>", 12,
                   keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  const ssize_t got = FIR_PREAD(fx_, ffd, scratch, span,
                                static_cast<std::int64_t>(range.first));
  if (got < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "range_read_error");
    ws.counters->responses_5xx += 1;
    queue_response(ws, conn, 500, "text/html", "", 0, keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  HSFI_POINT(fx_.hsfi(), "range_response", /*critical=*/false);
  ws.counters->requests_ok += 1;
  ws.last_status = 206;
  char head[256];
  const std::string_view mime = http::mime_type(full_path);
  const int hlen = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 206 Partial Content\r\nContent-Type: %.*s\r\n"
      "Content-Range: bytes %zu-%zu/%zu\r\nContent-Length: %zd\r\n"
      "Connection: %s\r\n\r\n",
      static_cast<int>(mime.size()), mime.data(), range.first, range.last,
      fsize, got, ka ? "keep-alive" : "close");
  push_head(conn, head, static_cast<std::size_t>(hlen));
  push_slice(conn, scratch, static_cast<std::uint32_t>(got));
  if (!ka)
    tx_store(conn->close_after_flush, static_cast<std::uint8_t>(1));
  FIR_CLOSE(fx_, ffd);
}

void Miniginx::access_log(const http::Request& req, int status) {
  HSFI_POINT(fx_.hsfi(), "access_log", /*critical=*/false);
  char line[512];
  const int len = std::snprintf(
      line, sizeof(line), "- \"%s %.*s %.*s\" %d\n",
      http::method_name(req.method).data(),
      static_cast<int>(req.target.size()), req.target.data(),
      static_cast<int>(req.version.size()), req.version.data(), status);
  if (len <= 0) return;
  if (FIR_WRITE(fx_, access_log_fd_, line, static_cast<std::size_t>(len)) <
      0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "access_log_failed");
    FIR_LOG(kWarn) << "miniginx: access log write failed";
  }
}

// --- per-connection arena + response slice table ----------------------------

char* Miniginx::arena_alloc(Conn* conn, std::size_t n) {
  if (n == 0) n = 1;
  if (n > kArenaChunkBytes) return nullptr;  // oversized: the OOM path
  std::uint32_t chunk = conn->arena_chunk;
  std::uint32_t used = conn->arena_used;
  if (kArenaChunkBytes - used < n) {
    if (static_cast<int>(chunk) + 1 >= kArenaChunkSlots) return nullptr;
    ++chunk;
    used = 0;
  }
  if (conn->arena_chunks[chunk] == nullptr) {
    // The gated allocation: the paper's malloc -> OOM -> 500 example keeps
    // its injection site here. On rollback the compensation frees the
    // chunk and the tracked pointer reverts with it.
    char* fresh = static_cast<char*>(FIR_MALLOC(fx_, kArenaChunkBytes));
    if (fresh == nullptr) return nullptr;
    tx_store(conn->arena_chunks[chunk], fresh);
  }
  char* out = conn->arena_chunks[chunk] + used;
  tx_store(conn->arena_chunk, chunk);
  tx_store(conn->arena_used, used + static_cast<std::uint32_t>(n));
  return out;
}

void Miniginx::arena_rewind(Conn* conn) {
  tx_store(conn->arena_chunk, 0u);
  tx_store(conn->arena_used, 0u);
}

void Miniginx::push_slice(Conn* conn, const char* data, std::uint32_t len) {
  if (len == 0 || conn->n_slices >= kMaxSlices) return;
  Slice& s = conn->slices[conn->n_slices];
  tx_store(s.data, data);
  tx_store(s.len, len);
  tx_store(conn->n_slices, conn->n_slices + 1);
  tx_store(conn->tx_len, conn->tx_len + len);
}

void Miniginx::push_head(Conn* conn, const char* head, std::size_t len) {
  if (len == 0 || conn->hdr_used + len > sizeof(conn->tx)) return;
  tx_memcpy(conn->tx + conn->hdr_used, head, len);
  push_slice(conn, conn->tx + conn->hdr_used,
             static_cast<std::uint32_t>(len));
  tx_store(conn->hdr_used,
           conn->hdr_used + static_cast<std::uint32_t>(len));
}

bool Miniginx::batch_has_room(const Conn* conn) const {
  if (conn->n_slices + 2 > kMaxSlices) return false;
  if (conn->hdr_used + kMaxHeadBytes > sizeof(conn->tx)) return false;
  // Another worst-case response body must be bump-allocatable: a fresh
  // chunk slot remains, or the current chunk is still whole.
  if (static_cast<int>(conn->arena_chunk) + 1 < kArenaChunkSlots) return true;
  return kArenaChunkBytes - conn->arena_used >= kMaxBodyScratch;
}

void Miniginx::queue_response(WorkerState& ws, Conn* conn, int status,
                              const char* content_type, const char* body,
                              std::size_t body_len, bool keep_alive) {
  const bool ka = keep_alive && serving_.keep_alive;
  char head[kMaxHeadBytes];
  const std::size_t n = http::format_response_head(
      head, sizeof(head), status, http::reason_phrase(status), content_type,
      body_len, ka);
  HSFI_HANDLER_POINT(fx_.hsfi(), "queue_response");
  ws.last_status = status;
  push_head(conn, head, n);
  if (body_len > 0)
    push_slice(conn, body, static_cast<std::uint32_t>(body_len));
  if (!ka)
    tx_store(conn->close_after_flush, static_cast<std::uint8_t>(1));
}

void Miniginx::handle_writable(WorkerState& ws, int fd, Conn* conn) {
  while (conn->tx_off < conn->tx_len) {
    // Gather the unsent tails of the batch's slices.
    Env::IoSlice iov[kMaxSlices];
    int niov = 0;
    std::uint32_t skip = conn->tx_off;
    for (std::uint32_t i = 0;
         i < conn->n_slices && niov < static_cast<int>(kMaxSlices); ++i) {
      const Slice& s = conn->slices[i];
      if (skip >= s.len) {
        skip -= s.len;
        continue;
      }
      iov[niov].data = s.data + skip;
      iov[niov].len = s.len - skip;
      skip = 0;
      ++niov;
    }
    if (niov == 0) break;  // defensive: lengths out of sync with slices
    // One gated vectored write per pass flushes the whole batch (writev is
    // catalogued irrecoverable — bytes may already be on the wire — so an
    // injected fault diverts into the close path, like send). FIR_WRITEV=0
    // falls back to one gated send per slice.
    const ssize_t w =
        serving_.use_writev
            ? FIR_WRITEV(fx_, fd, iov, niov)
            : FIR_SEND(fx_, fd, iov[0].data, iov[0].len);
    if (w < 0) {
      if (fx_.err() == EAGAIN) return;  // wait for EPOLLOUT
      HSFI_HANDLER_POINT(fx_.hsfi(), "send_error_path");
      FIR_LOG(kInfo) << "miniginx: send failed errno=" << fx_.err();
      close_conn(ws, fd, conn);
      return;
    }
    tx_store(conn->tx_off, conn->tx_off + static_cast<std::uint32_t>(w));
  }
  // Batch fully flushed.
  HSFI_POINT(fx_.hsfi(), "response_complete", /*critical=*/false);
  tx_store(conn->tx_len, 0u);
  tx_store(conn->tx_off, 0u);
  tx_store(conn->n_slices, 0u);
  tx_store(conn->hdr_used, 0u);
  arena_rewind(conn);  // bodies are on the wire; reuse the chunks
  if (conn->close_after_flush == 0 && conn->keep_alive != 0) {
    tx_store(conn->state, static_cast<std::uint8_t>(kReading));
    FIR_EPOLL_CTL(fx_, ws.epfd, kEpollMod, fd, kPollIn);
    // Pipelined requests already buffered? Serve the next batch now.
    if (conn->rx_len > 0) process_request(ws, fd, conn);
  } else {
    close_conn(ws, fd, conn);
  }
}

std::size_t Miniginx::resident_state_bytes() const {
  std::size_t total = sizeof(*this) + loop_.conns.footprint_bytes() +
                      loop_.fd_conn.capacity() * sizeof(std::int32_t);
  for (const WorkerState& ws : workers_) {
    total += sizeof(WorkerState) + ws.conns.footprint_bytes() +
             ws.fd_conn.capacity() * sizeof(std::int32_t);
  }
  return total;
}

}  // namespace fir
