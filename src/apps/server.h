// Common surface of the five mini-servers.
//
// Each server owns an Fx (virtual OS + recovery runtime) and runs
// cooperatively: the workload driver pushes client bytes into the virtual
// network, then calls run_once() to let the server process everything
// currently ready. start() is the unprotected init phase (the paper's
// campaigns inject only "after the server starts up"); run_once() is the
// protected event loop.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "interpose/fir.h"
#include "mem/tracked.h"

namespace fir {

/// Per-server service counters. Tracked: a rolled-back transaction must
/// also roll back its accounting.
struct ServerCounters {
  tracked<std::uint64_t> requests_ok;
  tracked<std::uint64_t> responses_4xx;
  tracked<std::uint64_t> responses_5xx;
  tracked<std::uint64_t> connections_accepted;
  tracked<std::uint64_t> connections_closed;
  tracked<std::uint64_t> protocol_errors;
};

class Server {
 public:
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  virtual const char* name() const = 0;

  /// Binds and initializes (unprotected phase). Port 0 uses the server's
  /// default.
  virtual Status start(std::uint16_t port) = 0;

  /// One protected event-loop pass: drains everything currently ready.
  /// May throw FatalCrashError when an injected fault is unrecoverable.
  virtual void run_once() = 0;

  /// Releases all server resources.
  virtual void stop() = 0;

  virtual std::uint16_t port() const = 0;

  /// Resident bytes of the server's own long-lived state (connection
  /// pools, fd maps, keyspaces) — the application half of the Fig. 9 RSS
  /// accounting. Excludes Env-heap scratch (counted by EnvStats) and
  /// recovery-runtime state (counted by TxManager::instrumentation_bytes).
  virtual std::size_t resident_state_bytes() const = 0;

  Fx& fx() { return fx_; }
  const ServerCounters& counters() const { return counters_; }

 protected:
  explicit Server(TxManagerConfig config) : fx_(config) {
    // Snapshot-time publication of the durable write path's cost profile
    // (docs/OBSERVABILITY.md): the VFS keeps the tallies, a collector
    // copies them out so barriers stay free of registry traffic.
    fx_.mgr().obs().metrics().add_collector([this](obs::MetricsRegistry& m) {
      const PersistStats& s = fx_.env().vfs().persist_stats();
      m.counter("persist.barriers").set(s.barriers);
      m.counter("persist.bytes_synced").set(s.bytes_synced);
      m.counter("persist.bytes_elided").set(s.bytes_elided);
      m.counter("persist.group_commits").set(group_commits_);
      m.counter("persist.acks_deferred").set(acks_deferred_);
    });
  }

  Fx fx_;
  ServerCounters counters_;
  /// Group-commit tallies (durable servers bump these; published above).
  std::uint64_t group_commits_ = 0;
  std::uint64_t acks_deferred_ = 0;
};

}  // namespace fir
