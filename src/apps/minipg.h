// minipg: a PostgreSQL-shaped relational store.
//
// Models the parts of PostgreSQL that shape its FIRestarter profile in the
// paper's evaluation:
//   * write-ahead logging — every mutation appends a WAL record (write())
//     and transaction commit fsync()s it: both irrecoverable catalog
//     classes, so a large share of minipg's transactions cannot divert
//     (matching the paper's 22/27 recovery rate and the smaller HTM-failure
//     reduction of Fig. 8);
//   * shared-memory statistics updates (§VII lists PostgreSQL's shared
//     memory interactions as irrecoverable) — modeled as pwrite()s into a
//     stats region;
//   * a tiny SQL dialect (CREATE TABLE / INSERT / SELECT / UPDATE / DELETE /
//     BEGIN / COMMIT / CHECKPOINT) over tracked heap tables.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/fsync_policy.h"
#include "apps/server.h"
#include "mem/tracked_map.h"
#include "mem/tracked_pool.h"

namespace fir {

class Minipg final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 5432;
  static constexpr std::size_t kMaxTables = 8;

  explicit Minipg(TxManagerConfig config = {});
  ~Minipg() override;

  const char* name() const override { return "minipg"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  using Key = FixedString<48>;
  using Value = FixedString<128>;
  using Table = TrackedHashMap<Key, Value>;

  /// Rows across all tables (test introspection).
  std::size_t total_rows() const;

  /// Rows recovered from the WAL during the last start() (0 on a fresh
  /// data directory).
  std::size_t wal_records_replayed() const { return wal_replayed_; }

  /// Torn/corrupt tail bytes dropped from the WAL by the last start()'s
  /// recovery scan (0 when the log ended on a whole, valid record).
  std::size_t wal_torn_bytes() const { return wal_torn_bytes_; }

  /// Durability-barrier policy for the WAL. Defaults to "batch" (fsync at
  /// COMMIT, like synchronous_commit=on with grouped flushes); overridable
  /// with FIR_FSYNC_POLICY. Call before start().
  void set_fsync_policy(FsyncPolicy p) { fsync_policy_ = p; }
  FsyncPolicy fsync_policy() const { return fsync_policy_; }

  /// Group commit (policy "batch" only): DML/DDL acks queue until one
  /// barrier retires the group (at COMMIT, a full queue, or end of pass) —
  /// acked-implies-durable without a barrier per statement. Defaults to the
  /// FIR_GROUP_COMMIT_* knobs (off unless set); call before start().
  void set_group_commit(GroupCommitConfig gc) {
    if (gc.max_acks > GroupCommitConfig::kMaxAcks)
      gc.max_acks = GroupCommitConfig::kMaxAcks;
    group_commit_ = gc;
  }
  const GroupCommitConfig& group_commit() const { return group_commit_; }

 private:
  struct Conn {
    std::int32_t fd;
    std::uint8_t in_txn;  // BEGIN..COMMIT block open
    std::uint8_t padding[3];
    std::uint32_t rx_len;
    std::uint64_t queries;
    char rx[2048];
  };

  struct TableSlot {
    char name[48];
    std::uint8_t used;
  };

  void accept_clients();
  void client_readable(int fd, Conn* conn);
  /// Crash-restart recovery: replays an existing WAL into the tables
  /// before serving (runs in the unprotected init phase).
  void replay_wal();
  Table* create_table_slot(std::string_view name);
  void execute_sql(int fd, Conn* conn, const char* line, std::size_t len);
  Table* find_table(std::string_view name);
  /// Appends one WAL record; returns false when the write failed.
  bool wal_append(const char* op, std::string_view table,
                  std::string_view key, std::string_view value);
  /// Shared-memory stats bump (irrecoverable interaction).
  void shm_stats_bump(std::uint32_t counter_index);
  void reply(int fd, const char* data, std::size_t len);
  /// Raw reply transmission (no group-commit interaction).
  void send_all(int fd, const char* data, std::size_t len);
  /// Group commit: true when deferred acks are in force.
  bool gc_active() const {
    return wal_fd_ >= 0 && fsync_policy_ == FsyncPolicy::kBatch &&
           group_commit_.enabled();
  }
  void defer_or_reply(int fd, const char* data, std::size_t len);
  /// One barrier covers every queued statement, then all acks flush (error
  /// acks on barrier failure). Returns false when the fsync failed.
  bool retire_group();
  /// End-of-pass retirement honoring the FIR_GROUP_COMMIT_US window.
  void maybe_retire_group();
  void close_conn(int fd, Conn* conn);
  Conn* conn_of(int fd);

  std::uint16_t port_ = kDefaultPort;
  int listen_fd_ = -1;
  int epfd_ = -1;
  int wal_fd_ = -1;
  int shm_fd_ = -1;
  bool running_ = false;

  std::vector<Table> tables_;
  std::vector<TableSlot> table_names_;
  TrackedPool<Conn> conns_{32};
  std::vector<std::int32_t> fd_conn_;
  tracked<std::uint64_t> xid_;
  std::size_t wal_replayed_ = 0;
  std::size_t wal_torn_bytes_ = 0;
  FsyncPolicy fsync_policy_ = fsync_policy_from_env(FsyncPolicy::kBatch);

  /// One deferred ack (see Minikv::GcAck: slots past gc_pending_ are dead,
  /// so rollbacks leave no trace).
  struct GcAck {
    std::int32_t fd;
    std::uint32_t len;
    char buf[40];
  };
  GroupCommitConfig group_commit_ = group_commit_from_env({});
  GcAck gc_acks_[GroupCommitConfig::kMaxAcks];
  std::uint32_t gc_pending_ = 0;   // mutated via tx_store (rollback-safe)
  std::uint64_t gc_since_ns_ = 0;  // virtual time the oldest ack queued at
};

}  // namespace fir
