#include "apps/registry.h"

#include <cstdio>

#include "apps/apachette.h"
#include "apps/littlehttpd.h"
#include "apps/miniginx.h"
#include "apps/minikv.h"
#include "apps/minipg.h"

namespace fir::apps {

const std::vector<std::string>& server_names() {
  static const std::vector<std::string> names = {
      "miniginx", "apachette", "littlehttpd", "minikv", "minipg"};
  return names;
}

bool is_server_name(const std::string& name) {
  for (const std::string& n : server_names()) {
    if (n == name) return true;
  }
  return false;
}

std::string paper_server_name(const std::string& name) {
  if (name == "miniginx") return "Nginx";
  if (name == "apachette") return "Apache";
  if (name == "littlehttpd") return "Lighttpd";
  if (name == "minikv") return "Redis";
  if (name == "minipg") return "PostgreSQL";
  return name;
}

std::unique_ptr<Server> make_server(const std::string& name,
                                    const TxManagerConfig& config) {
  if (name == "miniginx") return std::make_unique<Miniginx>(config);
  if (name == "apachette") return std::make_unique<Apachette>(config);
  if (name == "littlehttpd") return std::make_unique<Littlehttpd>(config);
  if (name == "minikv") return std::make_unique<Minikv>(config);
  if (name == "minipg") return std::make_unique<Minipg>(config);
  return nullptr;
}

std::unique_ptr<Server> make_started_server(const std::string& name,
                                            const TxManagerConfig& config) {
  std::unique_ptr<Server> server = make_server(name, config);
  if (server == nullptr) {
    std::fprintf(stderr, "apps: unknown server '%s'\n", name.c_str());
    return nullptr;
  }
  const Status status = server->start(0);
  if (!status.is_ok()) {
    std::fprintf(stderr, "apps: cannot start %s: %s\n", name.c_str(),
                 status.to_string().c_str());
    server.reset();
  }
  return server;
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {
      "vanilla", "htm-only", "stm-only", "naive-htm", "manual", "firestarter"};
  return names;
}

TxManagerConfig named_policy_config(const std::string& name, bool* ok) {
  if (ok != nullptr) *ok = true;
  TxManagerConfig c;
  if (name == "vanilla") {
    c.policy.kind = PolicyKind::kUnprotected;
    return c;
  }
  if (name == "htm-only") {
    c.policy.kind = PolicyKind::kHtmOnly;
    c.htm.interrupt_abort_per_store = 1e-4;
    return c;
  }
  if (name == "stm-only") {
    c.policy.kind = PolicyKind::kStmOnly;
    return c;
  }
  if (name == "naive-htm") {
    c.policy.kind = PolicyKind::kNaiveHtm;
    c.htm.interrupt_abort_per_store = 1e-4;
    return c;
  }
  if (name == "manual") {
    c.policy.kind = PolicyKind::kManual;
    c.policy.manual_stm_functions = {"malloc", "calloc", "posix_memalign",
                                     "fcntl64", "pread"};
    c.htm.interrupt_abort_per_store = 1e-4;
    return c;
  }
  // The full system (adaptive hybrid) is the default.
  if (ok != nullptr) *ok = name == "firestarter";
  c.policy.kind = PolicyKind::kAdaptive;
  c.policy.abort_threshold = 0.01;
  c.policy.sample_size = 4;
  c.htm.interrupt_abort_per_store = 1e-4;
  return c;
}

}  // namespace fir::apps
