// Campaign-addressable server registry.
//
// The fault-injection campaign engine (src/campaign) and the bench
// harnesses address the evaluated server fleet by name: a campaign config
// says `"server": "minikv"` and a worker process must be able to build and
// start exactly that server under exactly the configured policy. This
// registry is the one name → factory mapping both layers share; the bench
// helpers in bench/bench_util.h delegate here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/server.h"

namespace fir::apps {

/// The evaluated server fleet, paper order.
const std::vector<std::string>& server_names();

/// True when `name` is a registered server.
bool is_server_name(const std::string& name);

/// Paper-system name for a mini server ("miniginx" → "Nginx"); returns
/// `name` unchanged when unknown.
std::string paper_server_name(const std::string& name);

/// Constructs the named server (not started). Null for unknown names.
std::unique_ptr<Server> make_server(const std::string& name,
                                    const TxManagerConfig& config);

/// Constructs AND starts the named server on its default port. Null (with
/// a stderr diagnostic) when the name is unknown or start() fails.
std::unique_ptr<Server> make_started_server(const std::string& name,
                                            const TxManagerConfig& config);

/// The evaluation's named policy configurations (DESIGN.md §4 / Fig. 7
/// columns): "vanilla", "htm-only", "stm-only", "naive-htm", "manual",
/// "firestarter". Campaign configs select them by name; `ok` (optional)
/// reports whether the name was recognized — on failure the returned
/// config is the firestarter default.
TxManagerConfig named_policy_config(const std::string& name,
                                    bool* ok = nullptr);

const std::vector<std::string>& policy_names();

}  // namespace fir::apps
