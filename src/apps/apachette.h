// apachette: an Apache-httpd-shaped web server.
//
// Where miniginx is a lean event loop, apachette models Apache's style:
// worker-per-connection processing (one connection handled to completion per
// readiness event), a module pipeline (access check -> type map -> handler ->
// logger), and a dense sprinkling of small library helper calls (strlen /
// memcmp / getpid / time) inside each handler — the reason the paper's
// Table III measures Apache at 468 embedded library calls against Nginx's
// 102.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/http.h"
#include "apps/server.h"
#include "mem/tracked_pool.h"

namespace fir {

class Apachette final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 8081;

  explicit Apachette(TxManagerConfig config = {});
  ~Apachette() override;

  const char* name() const override { return "apachette"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  void install_default_docroot();

 private:
  struct Worker {
    std::int32_t fd;
    std::uint8_t in_use;
    std::uint8_t keep_alive;
    std::uint16_t padding;
    std::uint32_t rx_len;
    std::uint64_t requests;
    char rx[8192];
  };

  void serve_connection(int fd, Worker* worker);
  /// Module pipeline over one parsed request. Returns response bytes
  /// written into `out` (0 => connection-fatal).
  std::size_t run_modules(const http::Request& req, char* out,
                          std::size_t cap);
  bool module_access_check(const http::Request& req);
  std::size_t module_handler(const http::Request& req, char* out,
                             std::size_t cap);
  std::size_t module_cgi_echo(const http::Request& req, char* out,
                              std::size_t cap);
  /// mod_status: server introspection page at /server-status.
  std::size_t module_status(const http::Request& req, char* out,
                            std::size_t cap);
  void module_logger(const http::Request& req, int status);
  bool send_all(int fd, const char* data, std::size_t len);

  std::uint16_t port_ = kDefaultPort;
  int listen_fd_ = -1;
  int epfd_ = -1;
  bool running_ = false;
  /// Response assembly buffer (Apache's bucket-brigade storage is heap,
  /// not stack). Derived data: fully rewritten per response, so it needs
  /// neither store tracking nor stack-snapshot coverage.
  char response_buf_[16384] = {};

  TrackedPool<Worker> workers_{32};
  std::vector<std::int32_t> fd_worker_;
  int access_log_fd_ = -1;
};

}  // namespace fir
