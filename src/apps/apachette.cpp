#include "apps/apachette.h"

#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace fir {
namespace {
constexpr std::uint32_t kOptReuseAddr = 0x1;
constexpr int kMaxEvents = 32;
constexpr std::int32_t kNoWorker = -1;
}  // namespace

Apachette::Apachette(TxManagerConfig config)
    : Server(config), fd_worker_(1024, kNoWorker) {}

Apachette::~Apachette() { stop(); }

void Apachette::install_default_docroot() {
  Vfs& vfs = fx_.env().vfs();
  vfs.put_file("/htdocs/index.html",
               "<html><body><h1>apachette</h1></body></html>");
  vfs.put_file("/htdocs/manual.txt",
               "apachette reference manual (abridged)\n");
  vfs.put_file("/htdocs/private/secret.txt", "top secret\n");
  vfs.put_file("/htdocs/private/.htaccess", "Require all denied\n");
  std::string listing(4000, 'd');
  vfs.put_file("/htdocs/data.bin", listing);
}

Status Apachette::start(std::uint16_t port) {
  if (running_) return Status(ErrorCode::kFailedPrecondition, "running");
  port_ = port != 0 ? port : kDefaultPort;
  install_default_docroot();

  const int s = FIR_SOCKET(fx_);
  if (s < 0) return Status(ErrorCode::kResourceExhausted, "socket");
  if (FIR_SETSOCKOPT(fx_, s, kOptReuseAddr) == -1 ||
      FIR_BIND(fx_, s, port_) == -1 || FIR_LISTEN(fx_, s, 128) == -1 ||
      FIR_FCNTL_NONBLOCK(fx_, s, true) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "listener setup");
  }
  const int ep = FIR_EPOLL_CREATE1(fx_);
  if (ep < 0 || FIR_EPOLL_CTL(fx_, ep, kEpollAdd, s, kPollIn) == -1) {
    if (ep >= 0) FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "epoll setup");
  }
  const int log_fd =
      FIR_OPEN(fx_, "/logs/access.log", kCreat | kWrOnly | kAppend);
  if (log_fd < 0) {
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "access log");
  }
  FIR_QUIESCE(fx_);
  listen_fd_ = s;
  epfd_ = ep;
  access_log_fd_ = log_fd;
  running_ = true;
  return Status::ok();
}

void Apachette::stop() {
  if (!running_) return;
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
  for (std::size_t fd = 0; fd < fd_worker_.size(); ++fd) {
    if (fd_worker_[fd] != kNoWorker) {
      fx_.env().close(static_cast<int>(fd));
      fd_worker_[fd] = kNoWorker;
    }
  }
  fx_.env().close(access_log_fd_);
  fx_.env().close(epfd_);
  fx_.env().close(listen_fd_);
  access_log_fd_ = epfd_ = listen_fd_ = -1;
  running_ = false;
}

void Apachette::run_once() {
  if (!running_) return;
  FIR_ANCHOR(fx_);
  PollEvent events[kMaxEvents];
  const int n = FIR_EPOLL_WAIT(fx_, epfd_, events, kMaxEvents);
  if (n < 0) {
    HSFI_POINT(fx_.hsfi(), "mpm_event_retry", /*critical=*/true);
    FIR_QUIESCE(fx_);
    fx_.mgr().clear_anchor();
    return;
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].fd == listen_fd_) {
      // Worker model: accept and immediately assign a worker slot.
      for (;;) {
        const int c = FIR_ACCEPT(fx_, listen_fd_);
        if (c < 0) {
          if (fx_.err() != EAGAIN) {
            HSFI_HANDLER_POINT(fx_.hsfi(), "accept_failed");
            FIR_LOG(kWarn) << "apachette: accept failed errno=" << fx_.err();
          }
          break;
        }
        Worker* w = workers_.alloc();
        if (w == nullptr) {
          HSFI_HANDLER_POINT(fx_.hsfi(), "maxclients_reached");
          FIR_CLOSE(fx_, c);
          continue;
        }
        tx_store(w->fd, c);
        tx_store(w->in_use, static_cast<std::uint8_t>(1));
        tx_store(w->keep_alive, static_cast<std::uint8_t>(1));
        tx_store(fd_worker_[c],
                 static_cast<std::int32_t>(workers_.index_of(w)));
        if (FIR_EPOLL_CTL(fx_, epfd_, kEpollAdd, c, kPollIn) == -1) {
          FIR_CLOSE(fx_, c);
          tx_store(fd_worker_[c], kNoWorker);
          workers_.release(w);
          continue;
        }
        counters_.connections_accepted += 1;
      }
      continue;
    }
    const std::int32_t idx = fd_worker_[events[i].fd];
    if (idx == kNoWorker) {
      FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, events[i].fd, 0);
      FIR_CLOSE(fx_, events[i].fd);
      continue;
    }
    serve_connection(events[i].fd, workers_.at(static_cast<std::size_t>(idx)));
  }
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

bool Apachette::send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = FIR_SEND(fx_, fd, data + off, len - off);
    if (w < 0) {
      if (fx_.err() == EAGAIN) continue;  // blocking-worker style: spin
      HSFI_HANDLER_POINT(fx_.hsfi(), "send_failed");
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void Apachette::serve_connection(int fd, Worker* w) {
  // Blocking-worker style: read until a full request or would-block.
  const std::uint32_t space =
      static_cast<std::uint32_t>(sizeof(w->rx)) - w->rx_len;
  if (space == 0) {
    counters_.protocol_errors += 1;
    goto teardown;
  }
  {
    const ssize_t r = FIR_RECV(fx_, fd, w->rx + w->rx_len, space);
    if (r < 0) {
      if (fx_.err() == EAGAIN) return;
      HSFI_POINT(fx_.hsfi(), "recv_failed", /*critical=*/false);
      goto teardown;
    }
    if (r == 0) goto teardown;
    tx_store(w->rx_len, w->rx_len + static_cast<std::uint32_t>(r));
  }

  for (;;) {
    http::Request req;
    const auto result = http::parse_request({w->rx, w->rx_len}, req);
    if (result == http::ParseResult::kIncomplete) return;
    if (result == http::ParseResult::kBad) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "protocol_error");
      counters_.responses_4xx += 1;
      counters_.protocol_errors += 1;
      char out[256];
      const std::size_t n = http::format_response(
          out, sizeof(out), 400, "Bad Request", "text/html",
          "<h1>400</h1>", false);
      send_all(fd, out, n);
      goto teardown;
    }

    const std::size_t n =
        run_modules(req, response_buf_, sizeof(response_buf_));
    if (n == 0 || !send_all(fd, response_buf_, n)) goto teardown;
    tx_store(w->requests, w->requests + 1);

    const std::uint32_t consumed = static_cast<std::uint32_t>(
        req.header_bytes + req.content_length);
    const std::uint32_t rest = w->rx_len - consumed;
    if (rest > 0) {
      StoreGate::record(w->rx, rest);
      std::memmove(w->rx, w->rx + consumed, rest);
    }
    tx_store(w->rx_len, rest);
    if (!req.keep_alive) goto teardown;
    if (rest == 0) return;  // wait for the next request
  }

teardown:
  FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, fd, 0);
  FIR_CLOSE(fx_, fd);
  tx_store(fd_worker_[fd], kNoWorker);
  workers_.release(w);
  counters_.connections_closed += 1;
}

std::size_t Apachette::run_modules(const http::Request& req, char* out,
                                   std::size_t cap) {
  HSFI_POINT(fx_.hsfi(), "module_pipeline", /*critical=*/false);
  // Apache-style helper-call density: request fixups touch many tiny libc
  // helpers per request.
  const std::size_t target_len = FIR_STRLEN(fx_, "/htdocs");
  (void)target_len;
  (void)FIR_GETPID(fx_);
  (void)FIR_TIME_NS(fx_);

  if (!module_access_check(req)) {
    HSFI_POINT(fx_.hsfi(), "access_denied", /*critical=*/false);
    counters_.responses_4xx += 1;
    module_logger(req, 403);
    return http::format_response(out, cap, 403, "Forbidden", "text/html",
                                 "<h1>Forbidden</h1>", req.keep_alive);
  }
  std::size_t n;
  if (req.path == "/server-status") {
    n = module_status(req, out, cap);
    module_logger(req, n > 0 ? 200 : 500);
  } else if (req.query.size() >= 4 &&
             FIR_MEMCMP(fx_, req.query.data(), "cgi=", 4) == 0) {
    n = module_cgi_echo(req, out, cap);
    module_logger(req, n > 0 ? 200 : 500);
  } else {
    n = module_handler(req, out, cap);
  }
  return n;
}

bool Apachette::module_access_check(const http::Request& req) {
  (void)FIR_STRLEN(fx_, "Require all denied");
  if (http::path_is_unsafe(req.path)) return false;
  // .htaccess probe in the target directory (stat-based, Apache-style).
  char htaccess[1100];
  const std::size_t dir_end = req.path.rfind('/');
  std::snprintf(htaccess, sizeof(htaccess), "/htdocs%.*s/.htaccess",
                static_cast<int>(dir_end == std::string_view::npos
                                     ? 0
                                     : dir_end),
                req.path.data());
  std::size_t sz = 0;
  if (FIR_ACCESS(fx_, htaccess) == 0 &&
      FIR_STAT_SIZE(fx_, htaccess, &sz) == 0 && sz > 0) {
    return false;  // "Require all denied"
  }
  return true;
}

std::size_t Apachette::module_handler(const http::Request& req, char* out,
                                      std::size_t cap) {
  if (req.method != http::Method::kGet && req.method != http::Method::kHead) {
    counters_.responses_4xx += 1;
    module_logger(req, 405);
    return http::format_response(out, cap, 405, "Method Not Allowed",
                                 "text/html", "<h1>405</h1>",
                                 req.keep_alive);
  }
  char full[1100];
  std::snprintf(full, sizeof(full), "/htdocs%.*s%s",
                static_cast<int>(req.path.size()), req.path.data(),
                req.path.ends_with("/") ? "index.html" : "");
  (void)FIR_STRLEN(fx_, full);

  std::size_t fsize = 0;
  if (FIR_STAT_SIZE(fx_, full, &fsize) == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "handler_404");
    counters_.responses_4xx += 1;
    module_logger(req, 404);
    return http::format_response(out, cap, 404, "Not Found", "text/html",
                                 "<h1>Not Found</h1>", req.keep_alive);
  }
  const int ffd = FIR_OPEN(fx_, full, kRdOnly);
  if (ffd < 0) {
    counters_.responses_5xx += 1;
    module_logger(req, 500);
    return http::format_response(out, cap, 500, "Internal Server Error",
                                 "text/html", "", req.keep_alive);
  }
  char* scratch = static_cast<char*>(FIR_MALLOC(fx_, fsize + 1));
  if (scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "handler_oom");
    counters_.responses_5xx += 1;
    FIR_CLOSE(fx_, ffd);
    module_logger(req, 500);
    return http::format_response(out, cap, 500, "Internal Server Error",
                                 "text/html", "<h1>500</h1>",
                                 req.keep_alive);
  }
  const ssize_t got = FIR_PREAD(fx_, ffd, scratch, fsize, 0);
  std::size_t n = 0;
  if (got < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "handler_read_error");
    counters_.responses_5xx += 1;
    module_logger(req, 500);
    n = http::format_response(out, cap, 500, "Internal Server Error",
                              "text/html", "", req.keep_alive);
  } else {
    counters_.requests_ok += 1;
    module_logger(req, 200);
    const std::string_view mime = http::mime_type(full);
    char mime_buf[64];
    std::snprintf(mime_buf, sizeof(mime_buf), "%.*s",
                  static_cast<int>(mime.size()), mime.data());
    n = http::format_response(
        out, cap, 200, "OK", mime_buf,
        {scratch, req.method == http::Method::kHead
                      ? 0
                      : static_cast<std::size_t>(got)},
        req.keep_alive);
  }
  FIR_FREE(fx_, scratch);
  FIR_CLOSE(fx_, ffd);
  return n;
}

std::size_t Apachette::module_cgi_echo(const http::Request& req, char* out,
                                       std::size_t cap) {
  // Apache-style per-request pool allocation: the CGI bridge builds its
  // environment in request-scoped memory. This is also the handler's crash
  // transaction anchor — an OOM (real or injected) aborts just this request
  // with a 500.
  char* pool = static_cast<char*>(FIR_MALLOC(fx_, 1024));
  if (pool == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "cgi_oom");
    counters_.responses_5xx += 1;
    module_logger(req, 500);
    return http::format_response(out, cap, 500, "Internal Server Error",
                                 "text/html", "<h1>500</h1>",
                                 req.keep_alive);
  }
  HSFI_POINT(fx_.hsfi(), "cgi_echo", /*critical=*/false);
  const std::size_t dlen =
      http::url_decode(req.query.substr(4), pool, 512);
  char body[600];
  const int blen = std::snprintf(body, sizeof(body),
                                 "cgi-echo: %.*s (pid %d)\n",
                                 static_cast<int>(dlen), pool,
                                 FIR_GETPID(fx_));
  counters_.requests_ok += 1;
  const std::size_t n = http::format_response(
      out, cap, 200, "OK", "text/plain",
      {body, static_cast<std::size_t>(blen)}, req.keep_alive);
  FIR_FREE(fx_, pool);
  return n;
}

std::size_t Apachette::module_status(const http::Request& req, char* out,
                                     std::size_t cap) {
  // mod_status assembles its scoreboard in an aligned scratch buffer
  // (posix_memalign, like Apache's bucket allocator) — the paper names
  // posix_memalign among the abort-prone allocation sites.
  void* scratch = nullptr;
  const int rc = FIR_POSIX_MEMALIGN(fx_, &scratch, 4096);
  if (rc != 0 || scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "mod_status_oom");
    counters_.responses_5xx += 1;
    return http::format_response(out, cap, 503, "Service Unavailable",
                                 "text/plain", "busy\n", req.keep_alive);
  }
  // Scoreboard assembly runs inside the posix_memalign transaction; a
  // persistent crash here diverts at that gate (ENOMEM -> 503 handler).
  HSFI_POINT(fx_.hsfi(), "mod_status", /*critical=*/false);
  char* page = static_cast<char*>(scratch);
  const int len = std::snprintf(
      page, 4096,
      "apachette status\n"
      "requests-ok: %llu\n4xx: %llu\n5xx: %llu\n"
      "connections: %llu accepted, %llu closed\nworkers-live: %zu\n",
      static_cast<unsigned long long>(counters_.requests_ok.get()),
      static_cast<unsigned long long>(counters_.responses_4xx.get()),
      static_cast<unsigned long long>(counters_.responses_5xx.get()),
      static_cast<unsigned long long>(
          counters_.connections_accepted.get()),
      static_cast<unsigned long long>(counters_.connections_closed.get()),
      workers_.live());
  counters_.requests_ok += 1;
  const std::size_t n = http::format_response(
      out, cap, 200, "OK", "text/plain",
      {page, static_cast<std::size_t>(len)}, req.keep_alive);
  FIR_FREE(fx_, scratch);
  return n;
}

void Apachette::module_logger(const http::Request& req, int status) {
  // The logger serves error-reporting paths too; a fault here is a fault
  // in (shared) error-handling code — out of recovery scope (§VII).
  HSFI_HANDLER_POINT(fx_.hsfi(), "access_log_format");
  char line[512];
  const int len = std::snprintf(
      line, sizeof(line), "%llu \"%s %.*s\" %d\n",
      static_cast<unsigned long long>(FIR_TIME_NS(fx_)),
      http::method_name(req.method).data(),
      static_cast<int>(req.target.size()), req.target.data(), status);
  if (len > 0) {
    // Buffered-logger style: write is irrecoverable (Table II), so this is
    // one of the transactions Table III counts as irrecoverable.
    const ssize_t w = FIR_WRITE(fx_, access_log_fd_, line,
                                static_cast<std::size_t>(len));
    if (w < 0) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "log_write_failed");
      FIR_LOG(kWarn) << "apachette: access log write failed";
    }
  }
}


std::size_t Apachette::resident_state_bytes() const {
  return workers_.footprint_bytes() +
         fd_worker_.capacity() * sizeof(std::int32_t) + sizeof(*this);
}

}  // namespace fir
