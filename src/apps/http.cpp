#include "apps/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace fir::http {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

Method parse_method(std::string_view m) {
  if (m == "GET") return Method::kGet;
  if (m == "HEAD") return Method::kHead;
  if (m == "POST") return Method::kPost;
  if (m == "PUT") return Method::kPut;
  if (m == "DELETE") return Method::kDelete;
  if (m == "PROPFIND") return Method::kPropfind;
  if (m == "OPTIONS") return Method::kOptions;
  if (m == "MKCOL") return Method::kMkcol;
  return Method::kUnknown;
}

}  // namespace

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kPropfind: return "PROPFIND";
    case Method::kOptions: return "OPTIONS";
    case Method::kMkcol: return "MKCOL";
    case Method::kUnknown: break;
  }
  return "UNKNOWN";
}

ParseResult parse_request(std::string_view data, Request& out) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // Reject pathological header floods before they fill buffers.
    return data.size() > 16 * 1024 ? ParseResult::kBad
                                   : ParseResult::kIncomplete;
  }
  out = Request{};
  out.header_bytes = head_end + 4;

  // Request line.
  const std::size_t line_end = data.find("\r\n");
  std::string_view line = data.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return ParseResult::kBad;
  const std::size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return ParseResult::kBad;
  out.method = parse_method(line.substr(0, sp1));
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = line.substr(sp2 + 1);
  if (out.target.empty() || out.target[0] != '/') return ParseResult::kBad;
  if (!out.version.starts_with("HTTP/")) return ParseResult::kBad;

  const std::size_t q = out.target.find('?');
  if (q == std::string_view::npos) {
    out.path = out.target;
  } else {
    out.path = out.target.substr(0, q);
    out.query = out.target.substr(q + 1);
  }

  // HTTP/1.1 defaults to keep-alive; 1.0 to close.
  out.keep_alive = out.version == "HTTP/1.1";

  // Headers.
  std::string_view headers = data.substr(line_end + 2, head_end - line_end - 2);
  while (!headers.empty()) {
    const std::size_t eol = headers.find("\r\n");
    std::string_view header =
        eol == std::string_view::npos ? headers : headers.substr(0, eol);
    headers.remove_prefix(eol == std::string_view::npos ? headers.size()
                                                        : eol + 2);
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view key = trim(header.substr(0, colon));
    const std::string_view value = trim(header.substr(colon + 1));
    if (iequals(key, "connection")) {
      if (iequals(value, "close")) out.keep_alive = false;
      if (iequals(value, "keep-alive")) out.keep_alive = true;
    } else if (iequals(key, "host")) {
      out.host = value;
    } else if (iequals(key, "range")) {
      out.range = value;
    } else if (iequals(key, "content-length")) {
      std::size_t n = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return ParseResult::kBad;
        n = n * 10 + static_cast<std::size_t>(c - '0');
        if (n > 1 * 1024 * 1024) return ParseResult::kBad;
      }
      out.content_length = n;
    }
  }

  if (data.size() < out.header_bytes + out.content_length)
    return ParseResult::kIncomplete;
  out.body = data.substr(out.header_bytes, out.content_length);
  return ParseResult::kComplete;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 207: return "Multi-Status";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::size_t format_response_head(char* buf, std::size_t cap, int status,
                                 std::string_view reason,
                                 std::string_view content_type,
                                 std::size_t content_length,
                                 bool keep_alive) {
  const int head = std::snprintf(
      buf, cap,
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n"
      "\r\n",
      status, static_cast<int>(reason.size()), reason.data(),
      static_cast<int>(content_type.size()), content_type.data(),
      content_length, keep_alive ? "keep-alive" : "close");
  if (head < 0 || static_cast<std::size_t>(head) >= cap) return 0;
  return static_cast<std::size_t>(head);
}

std::size_t format_response(char* buf, std::size_t cap, int status,
                            std::string_view reason,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  const std::size_t head = format_response_head(
      buf, cap, status, reason, content_type, body.size(), keep_alive);
  if (head == 0) return 0;
  if (head + body.size() > cap) return 0;
  std::memcpy(buf + head, body.data(), body.size());
  return head + body.size();
}

std::string_view mime_type(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return "application/octet-stream";
  const std::string_view ext = path.substr(dot + 1);
  if (ext == "html" || ext == "htm" || ext == "shtml") return "text/html";
  if (ext == "txt") return "text/plain";
  if (ext == "css") return "text/css";
  if (ext == "js") return "application/javascript";
  if (ext == "json") return "application/json";
  if (ext == "xml") return "application/xml";
  if (ext == "png") return "image/png";
  if (ext == "jpg" || ext == "jpeg") return "image/jpeg";
  if (ext == "gif") return "image/gif";
  if (ext == "svg") return "image/svg+xml";
  if (ext == "ico") return "image/x-icon";
  return "application/octet-stream";
}

bool path_is_unsafe(std::string_view path) {
  if (path.find('\0') != std::string_view::npos) return true;
  // Reject any dot-dot segment.
  std::string_view rest = path;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view segment =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    if (segment == "..") return true;
    if (slash == std::string_view::npos) break;
    rest.remove_prefix(slash + 1);
  }
  return false;
}

ByteRange parse_range(std::string_view value) {
  ByteRange range;
  if (!value.starts_with("bytes=")) return range;
  value.remove_prefix(6);
  if (value.find(',') != std::string_view::npos) return range;  // multi
  const std::size_t dash = value.find('-');
  if (dash == std::string_view::npos) return range;
  auto parse_num = [](std::string_view s, std::size_t& out_num) {
    if (s.empty()) return false;
    std::size_t n = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      n = n * 10 + static_cast<std::size_t>(c - '0');
      if (n > (std::size_t{1} << 40)) return false;
    }
    out_num = n;
    return true;
  };
  const std::string_view first_str = value.substr(0, dash);
  const std::string_view last_str = value.substr(dash + 1);
  if (first_str.empty()) {
    // Suffix form: "-N".
    if (!parse_num(last_str, range.last) || range.last == 0) return range;
    range.suffix = true;
    range.valid = true;
    return range;
  }
  if (!parse_num(first_str, range.first)) return range;
  if (last_str.empty()) {
    range.last = static_cast<std::size_t>(-1);  // open-ended
  } else if (!parse_num(last_str, range.last) || range.last < range.first) {
    return range;
  }
  range.valid = true;
  return range;
}

bool resolve_range(ByteRange& range, std::size_t size) {
  if (!range.valid || size == 0) return false;
  if (range.suffix) {
    const std::size_t n = range.last > size ? size : range.last;
    range.first = size - n;
    range.last = size - 1;
    return true;
  }
  if (range.first >= size) return false;
  if (range.last >= size) range.last = size - 1;
  return true;
}

std::size_t url_decode(std::string_view in, char* out, std::size_t cap) {
  std::size_t len = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (len >= cap) return 0;
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return 0;
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) return 0;
      out[len++] = static_cast<char>(hi * 16 + lo);
      i += 2;
    } else if (c == '+') {
      out[len++] = ' ';
    } else {
      out[len++] = c;
    }
  }
  return len;
}

}  // namespace fir::http
