// FleetSupervisor: a reincarnation-style prefork supervisor for miniginx
// (stateless HTTP shards) or, in durable mode, minikv (host-backed AOF
// shards whose acked writes survive worker death).
//
// The outermost of the containment rings (docs/ARCHITECTURE.md §Process
// supervision): crash transactions absorb faults inside one request,
// worker THREADS contain unrecoverable faults inside one event loop, and
// this layer contains whole-PROCESS deaths — the double-fault _exit(70)
// path, hard kills (SIGKILL/SIGSEGV) and hangs — behind fork boundaries.
//
// Topology: the supervisor process forks one worker process per shard.
// Each worker hosts its own Miniginx (and therefore its own Env — the
// virtual OS is per-process state, so the fork boundary is also the fault
// boundary). Supervisor and worker speak a small length-prefixed frame
// protocol over a REAL socketpair: the supervisor routes request batches
// by shard to the owning worker; the worker replays them against its
// in-process server through the virtual network and returns per-request
// status codes, heartbeating between batches.
//
// Recovery policy, in escalation order:
//   * unplanned death (exit 70, signal, hang): the in-flight batch is
//     requeued at the FRONT of its shard queue (at-least-once ⇒ the fleet
//     loses zero requests) and the worker is restarted after exponential
//     backoff with jitter;
//   * flapping (>= flap_threshold deaths inside flap_window_ms): the shard
//     is quarantined — no more restarts, queued batches fail fast with
//     `lost` accounting, siblings keep serving their shards;
//   * planned drain: the worker stops accepting, finishes its in-flight
//     batch, hands its shard to a live sibling, and exits 0 — zero loss.
//
// Hangs are detected by heartbeat deadline: a worker that stops reading
// its control channel stops heartbeating; the supervisor SIGKILLs it after
// heartbeat_deadline_ms and classifies the death as a hang.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace fir::fleet {

/// How kill_worker() murders a worker — the three unplanned-death shapes
/// the integration tests cycle through.
enum class KillMode {
  kExit70,   // worker runs the real die_double_fault() path (_exit(70))
  kSigkill,  // supervisor sends a real SIGKILL
  kHang,     // worker goes silent; supervisor's heartbeat deadline fires
};

/// Why a reaped worker died, as classified from its wait status (mirrors
/// the campaign engine's death_record taxonomy).
enum class DeathCause {
  kDoubleFault,  // WIFEXITED with kDoubleFaultExitCode
  kSignal,       // WIFSIGNALED (and the supervisor did not SIGKILL it)
  kHang,         // WIFSIGNALED by the supervisor's own deadline SIGKILL
  kExit,         // any other nonzero exit
  kDrained,      // exit 0 after a planned drain
};

const char* death_cause_name(DeathCause cause);

/// Fleet-level configuration. from_env() applies the FIR_FLEET_* knobs
/// (rows in docs/KNOBS.md; CLI flags in obs/cli.cpp).
struct FleetConfig {
  /// FIR_FLEET_WORKERS: fleet width = shard count (one worker per shard
  /// at full strength).
  int workers = 4;
  /// Worker i's miniginx listens (inside its own Env) on base_port + i.
  std::uint16_t base_port = 8080;
  /// FIR_RESTART_BACKOFF_MS: base of the exponential restart backoff.
  std::uint32_t backoff_base_ms = 20;
  std::uint32_t backoff_max_ms = 1000;
  double backoff_jitter = 0.2;
  /// FIR_FLAP_THRESHOLD: deaths inside flap_window_ms that quarantine the
  /// shard (0 disables the breaker).
  std::uint32_t flap_threshold = 5;
  std::uint32_t flap_window_ms = 2000;
  /// FIR_HEARTBEAT_DEADLINE_MS: silence longer than this is a hang.
  std::uint32_t heartbeat_deadline_ms = 1000;
  /// Jitter stream seed (split per worker slot).
  std::uint64_t seed = 42;
  /// Workers enable the §VI-F SSI NULL bug (fault-injection demos).
  bool ssi_null_bug = false;
  /// FIR_FLEET_DURABLE: each worker hosts a durable minikv shard (AOF on,
  /// fsync policy "always", durable VFS host-backed under durable_dir)
  /// instead of a miniginx docroot. Batch targets are KV command lines
  /// ("SET k v"); statuses map +/:/$ replies to 200, "$-1" to 404 and
  /// -ERR to 500. Because every acked mutation crossed an fsync barrier
  /// into the host-backed durable image, a worker death loses nothing:
  /// the restarted incarnation re-attaches shard-N and replays its AOF.
  bool durable = false;
  /// FIR_FLEET_DURABLE_DIR: host directory holding one shard-N
  /// subdirectory per shard. Empty = a fresh mkdtemp under /tmp at
  /// start() (the resolved path is visible via config passed to workers).
  std::string durable_dir;
  /// FIR_GROUP_COMMIT_MAX: durable shards run policy "batch" with group
  /// commit — up to this many acks defer behind one barrier, still
  /// acked-implies-durable (docs/DURABILITY.md §Group commit). 0 falls
  /// back to policy "always" (one barrier per mutation). Default on: a
  /// pipelined batch retires with one barrier instead of one per command.
  std::uint32_t group_commit_max = 8;
  /// FIR_GROUP_COMMIT_US: how long (virtual µs) an ack may sit queued
  /// across event-loop passes (0 = retire at the end of every pass).
  std::uint32_t group_commit_window_us = 0;
  /// When non-empty, the supervisor appends one JSON object per fleet
  /// event to this file (the CI artifact).
  std::string event_log_path;
  /// TEST HOOK: shards whose worker dies via the double-fault path
  /// immediately on spawn — drives the flap breaker deterministically.
  std::vector<int> crash_on_spawn_shards;

  static FleetConfig from_env();
  static FleetConfig from_env(FleetConfig base);
};

/// Outcome of one submitted batch. `statuses[i]` is the HTTP status the
/// worker saw for request i (e.g. 200/404); `lost` counts requests the
/// fleet gave up on (only ever nonzero for quarantined shards).
struct BatchResult {
  std::vector<int> statuses;
  int lost = 0;
};

/// Monotonic fleet tallies (also published as fleet.* metrics).
struct FleetCounters {
  std::uint64_t spawns = 0;
  std::uint64_t deaths = 0;
  std::uint64_t restarts = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t drains = 0;
  std::uint64_t requeues = 0;       // batches put back after a death
  std::uint64_t batches_served = 0;
  std::uint64_t exit70_deaths = 0;
  std::uint64_t signal_deaths = 0;
  std::uint64_t hang_deaths = 0;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetConfig config = {});
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Forks the fleet and starts the supervision thread. False when any
  /// initial spawn fails outright (fork/socketpair error).
  bool start();
  /// Drains every live worker (planned, zero-loss), reaps them, joins the
  /// supervision thread. Idempotent.
  void stop();

  /// Routes a batch of HTTP GET targets (e.g. "/index.html") to shard's
  /// owning worker and blocks until it is answered. Batches submitted
  /// while the owner is restarting wait; batches for a quarantined shard
  /// return immediately with lost == targets.size(). Thread-safe.
  BatchResult submit(int shard, const std::vector<std::string>& targets);

  /// Kills worker `worker` in the requested mode (test/chaos interface).
  /// False when the worker is not currently up.
  bool kill_worker(int worker, KillMode mode);
  /// Planned removal: drain, hand the shard to a live sibling, retire the
  /// slot. False when the worker is not up or no sibling could take over.
  bool drain_worker(int worker);

  int worker_count() const { return static_cast<int>(slots_.size()); }
  bool worker_up(int worker) const;
  /// Slot currently owning `shard`; -1 when quarantined/unassigned.
  int shard_owner(int shard) const;
  bool quarantined(int shard) const;
  /// The last structured double-fault diagnostic captured from worker
  /// `worker`'s stderr pipe ("" when it never double-faulted).
  std::string last_diagnostic(int worker) const;
  /// Host directory backing the durable shards (resolved at start() when
  /// the config left it empty); "" for a stateless fleet. The durability
  /// audit re-opens shard-N subdirectories of this path after stop().
  std::string durable_dir() const;
  FleetCounters counters() const;

  obs::Observability& observability() { return obs_; }

 private:
  struct PendingBatch {
    std::vector<std::string> targets;
    BatchResult result;
    bool done = false;
  };

  enum class SlotState : std::uint8_t {
    kDown,         // dead, restart pending (or start() not yet run)
    kStarting,     // forked, kReady not yet seen
    kUp,           // serving
    kDraining,     // kDrain sent, waiting for kDrained + exit 0
    kRetired,      // drained cleanly; never restarted
    kQuarantined,  // flap breaker tripped; never restarted
  };

  struct Slot {
    int index = -1;
    int shard = -1;  // shard this slot serves; -1 once handed away
    pid_t pid = -1;
    int ctrl_fd = -1;  // supervisor end of the control socketpair
    int err_fd = -1;   // read end of the worker's stderr pipe
    SlotState state = SlotState::kDown;
    bool busy = false;  // a batch frame is in flight
    std::shared_ptr<PendingBatch> inflight;
    std::uint32_t next_batch_id = 1;
    std::string rxbuf;    // partial frames from ctrl_fd
    std::string errbuf;   // partial lines from err_fd
    std::string diagnostic;        // current incarnation's stderr capture
    std::string death_diagnostic;  // preserved across respawns
    std::uint64_t last_heard_ms = 0;
    bool hang_suspected = false;  // we SIGKILLed on deadline
    std::uint32_t attempt = 0;    // consecutive failed-restart count
    std::uint64_t restart_due_ms = 0;
    FlapWindow flap{0, 0};
    Rng jitter_rng{0};
  };

  bool spawn_worker(Slot& slot);  // mu_ held
  void reap_and_restart(std::uint64_t now_ms);
  void handle_frames(Slot& slot, std::uint64_t now_ms);
  void handle_death(Slot& slot, int wait_status, std::uint64_t now_ms);
  void quarantine(Slot& slot, std::uint64_t now_ms);
  void dispatch(std::uint64_t now_ms);
  void drain_err_pipe(Slot& slot);
  void close_slot_fds(Slot& slot);
  void fail_queue(int shard);  // mu_ held; completes batches as lost
  void supervise();            // supervision thread body
  std::uint64_t now_ms() const;
  void emit(obs::EventKind kind, const Slot& slot, std::int64_t a1,
            std::uint64_t now_ms, const char* extra_key = nullptr,
            const std::string& extra_value = std::string());

  FleetConfig config_;
  ExponentialBackoff backoff_;
  obs::Observability obs_;
  std::FILE* event_log_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // batch completion + queue activity
  std::vector<Slot> slots_;
  std::vector<int> shard_owner_;     // shard -> slot index (-1: none)
  std::vector<std::deque<std::shared_ptr<PendingBatch>>> shard_queues_;
  FleetCounters counters_;
  bool running_ = false;
  std::thread supervise_thread_;
};

/// Worker-process entry point, exec'd in the forked child by start().
/// Public so tools can reuse the loop; never returns (ends in _exit).
[[noreturn]] void fleet_worker_main(int ctrl_fd, const FleetConfig& config,
                                    int shard);

}  // namespace fir::fleet
