#include "apps/minikv.h"

#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/walrec.h"

namespace fir {
namespace {
constexpr std::uint32_t kOptReuseAddr = 0x1;
constexpr int kMaxEvents = 32;
constexpr std::int32_t kNone = -1;
// Batch fsync policy: barrier after this many AOF appends.
constexpr std::uint32_t kAofBatchRecords = 8;
}  // namespace

Minikv::Minikv(TxManagerConfig config)
    : Server(config), fd_conn_(1024, kNone) {}

Minikv::~Minikv() { stop(); }

Status Minikv::start(std::uint16_t port) {
  if (running_) return Status(ErrorCode::kFailedPrecondition, "running");
  port_ = port != 0 ? port : kDefaultPort;

  const int s = FIR_SOCKET(fx_);
  if (s < 0) return Status(ErrorCode::kResourceExhausted, "socket");
  if (FIR_SETSOCKOPT(fx_, s, kOptReuseAddr) == -1 ||
      FIR_BIND(fx_, s, port_) == -1 || FIR_LISTEN(fx_, s, 64) == -1 ||
      FIR_FCNTL_NONBLOCK(fx_, s, true) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "listener setup");
  }
  const int ep = FIR_EPOLL_CREATE1(fx_);
  if (ep < 0 || FIR_EPOLL_CTL(fx_, ep, kEpollAdd, s, kPollIn) == -1) {
    if (ep >= 0) FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "epoll setup");
  }
  if (aof_enabled_) {
    replay_aof();
    const int aof =
        FIR_OPEN(fx_, "/data/appendonly.aof", kCreat | kWrOnly | kAppend);
    if (aof < 0) {
      FIR_CLOSE(fx_, ep);
      FIR_CLOSE(fx_, s);
      return Status(ErrorCode::kInternal, "aof open");
    }
    aof_fd_ = aof;
  }
  FIR_QUIESCE(fx_);
  listen_fd_ = s;
  epfd_ = ep;
  running_ = true;
  return Status::ok();
}

void Minikv::stop() {
  if (!running_) return;
  // Shutdown must not strand queued acks: retire any pending group so the
  // last batch's mutations hit the log before the fds close.
  if (gc_pending_ > 0) retire_group();
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
  for (std::size_t fd = 0; fd < fd_conn_.size(); ++fd) {
    if (fd_conn_[fd] != kNone) {
      fx_.env().close(static_cast<int>(fd));
      fd_conn_[fd] = kNone;
    }
  }
  if (aof_fd_ >= 0) {
    fx_.env().close(aof_fd_);
    aof_fd_ = -1;
  }
  fx_.env().close(epfd_);
  fx_.env().close(listen_fd_);
  epfd_ = listen_fd_ = -1;
  running_ = false;
}

Minikv::Conn* Minikv::conn_of(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fd_conn_.size())
    return nullptr;
  const std::int32_t idx = fd_conn_[fd];
  return idx == kNone ? nullptr : conns_.at(static_cast<std::size_t>(idx));
}

void Minikv::run_once() {
  if (!running_) return;
  FIR_ANCHOR(fx_);
  PollEvent events[kMaxEvents];
  const int n = FIR_EPOLL_WAIT(fx_, epfd_, events, kMaxEvents);
  if (n < 0) {
    HSFI_POINT(fx_.hsfi(), "ae_loop_retry", /*critical=*/true);
    maybe_retire_group();
    FIR_QUIESCE(fx_);
    fx_.mgr().clear_anchor();
    return;
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].fd == listen_fd_) {
      accept_clients();
      continue;
    }
    Conn* conn = conn_of(events[i].fd);
    if (conn == nullptr) {
      FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, events[i].fd, 0);
      FIR_CLOSE(fx_, events[i].fd);
      continue;
    }
    client_readable(events[i].fd, conn);
  }
  maybe_retire_group();
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

void Minikv::accept_clients() {
  for (;;) {
    const int c = FIR_ACCEPT(fx_, listen_fd_);
    if (c < 0) {
      if (fx_.err() != EAGAIN) {
        HSFI_HANDLER_POINT(fx_.hsfi(), "accept_error");
        FIR_LOG(kWarn) << "minikv: accept failed";
      }
      return;
    }
    if (FIR_FCNTL_NONBLOCK(fx_, c, true) == -1) {
      FIR_CLOSE(fx_, c);
      continue;
    }
    Conn* conn = conns_.alloc();
    if (conn == nullptr) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "maxclients");
      FIR_CLOSE(fx_, c);
      continue;
    }
    tx_store(conn->fd, c);
    tx_store(conn->in_use, static_cast<std::uint8_t>(1));
    tx_store(fd_conn_[c], static_cast<std::int32_t>(conns_.index_of(conn)));
    if (FIR_EPOLL_CTL(fx_, epfd_, kEpollAdd, c, kPollIn) == -1) {
      close_conn(c, conn);
      continue;
    }
    counters_.connections_accepted += 1;
  }
}

void Minikv::close_conn(int fd, Conn* conn) {
  FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, fd, 0);
  FIR_CLOSE(fx_, fd);
  tx_store(fd_conn_[fd], kNone);
  conns_.release(conn);
  counters_.connections_closed += 1;
}

void Minikv::client_readable(int fd, Conn* conn) {
  const std::uint32_t space =
      static_cast<std::uint32_t>(sizeof(conn->rx)) - conn->rx_len;
  if (space == 0) {
    counters_.protocol_errors += 1;
    close_conn(fd, conn);
    return;
  }
  const ssize_t r = FIR_RECV(fx_, fd, conn->rx + conn->rx_len, space);
  if (r < 0) {
    if (fx_.err() == EAGAIN) return;
    HSFI_HANDLER_POINT(fx_.hsfi(), "recv_error");
    close_conn(fd, conn);
    return;
  }
  if (r == 0) {
    close_conn(fd, conn);
    return;
  }
  tx_store(conn->rx_len, conn->rx_len + static_cast<std::uint32_t>(r));

  // Process complete lines (inline protocol).
  for (;;) {
    const std::string_view view(conn->rx, conn->rx_len);
    const std::size_t eol = view.find('\n');
    if (eol == std::string_view::npos) return;
    char line[2048];
    std::size_t len = eol;
    if (len > 0 && view[len - 1] == '\r') --len;
    std::memcpy(line, conn->rx, len);
    line[len] = '\0';

    const std::uint32_t rest =
        conn->rx_len - static_cast<std::uint32_t>(eol + 1);
    if (rest > 0) {
      StoreGate::record(conn->rx, rest);
      std::memmove(conn->rx, conn->rx + eol + 1, rest);
    }
    tx_store(conn->rx_len, rest);
    tx_store(conn->commands, conn->commands + 1);
    if (len > 0) execute(fd, conn, line, len);
    if (conn_of(fd) != conn) return;  // command closed the connection
  }
}

void Minikv::execute(int fd, Conn* conn, char* line, std::size_t len) {
  (void)conn;
  HSFI_POINT_DATA(fx_.hsfi(), "command_parse", /*critical=*/false, line,
                  len < 8 ? len : 8);
  std::string_view input(line, len);
  auto next_token = [&input]() -> std::string_view {
    while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    const std::size_t sp = input.find(' ');
    std::string_view token = sp == std::string_view::npos
                                 ? input
                                 : input.substr(0, sp);
    input.remove_prefix(token.size());
    return token;
  };
  const std::string_view cmd = next_token();

  if (cmd == "PING") {
    reply(fd, "+PONG\r\n", 7);
    counters_.requests_ok += 1;
  } else if (cmd == "SET") {
    const std::string_view key = next_token();
    while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    cmd_set(fd, key, input);
  } else if (cmd == "GET") {
    cmd_get(fd, next_token());
  } else if (cmd == "DEL") {
    cmd_del(fd, next_token());
  } else if (cmd == "INCR") {
    cmd_incr(fd, next_token());
  } else if (cmd == "APPEND") {
    const std::string_view key = next_token();
    while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    cmd_append(fd, key, input);
  } else if (cmd == "MGET") {
    while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    cmd_mget(fd, input);
  } else if (cmd == "EXPIRE") {
    const std::string_view key = next_token();
    cmd_expire(fd, key, next_token());
  } else if (cmd == "TTL") {
    cmd_ttl(fd, next_token());
  } else if (cmd == "PERSIST") {
    cmd_persist(fd, next_token());
  } else if (cmd == "EXISTS") {
    const std::string_view key = next_token();
    purge_if_expired(key);
    const bool has = db_.contains(key);
    reply(fd, has ? ":1\r\n" : ":0\r\n", 4);
    counters_.requests_ok += 1;
  } else if (cmd == "DBSIZE") {
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), ":%zu\r\n", db_.size());
    reply(fd, buf, static_cast<std::size_t>(n));
    counters_.requests_ok += 1;
  } else if (cmd == "KEYS") {
    cmd_keys(fd);
  } else if (cmd == "SAVE") {
    cmd_save(fd);
  } else if (cmd == "FLUSHALL") {
    // Rebuild-free flush: erase every key (tracked, rollback-safe).
    HSFI_POINT(fx_.hsfi(), "flushall", /*critical=*/false);
    std::vector<Key> keys;
    db_.for_each([&keys](const Key& k, const Value&) { keys.push_back(k); });
    for (const Key& k : keys) db_.erase(k.view());
    dirty_ = 0;
    reply(fd, "+OK\r\n", 5);
    counters_.requests_ok += 1;
  } else {
    HSFI_HANDLER_POINT(fx_.hsfi(), "unknown_command");
    counters_.protocol_errors += 1;
    reply(fd, "-ERR unknown command\r\n", 22);
  }
}

bool Minikv::apply_set(std::string_view key, std::string_view value) {
  const auto k = Key::make(key);
  const auto v = Value::make(value);
  if (!k || !v || key.empty()) return false;
  return db_.put(key, *k, *v);
}

bool Minikv::aof_append(std::string_view line) {
  if (!aof_enabled_ || aof_fd_ < 0) return true;
  HSFI_POINT(fx_.hsfi(), "aof_write", /*critical=*/false);
  char record[256 + kWalrecHeaderBytes];
  const std::size_t n = walrec_encode(record, sizeof(record), line);
  if (n == 0) return false;
  // AOF durability write: compensable while the appended bytes sit past the
  // sync barrier, irrecoverable once a barrier covers them — like the real
  // Redis appendfsync path.
  if (FIR_WRITE(fx_, aof_fd_, record, n) < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "aof_write_failed");
    FIR_LOG(kWarn) << "minikv: AOF append failed";
    return false;
  }
  // Group commit: the barrier moves to retire_group(), which covers every
  // queued mutation at once before any of their acks flush.
  if (gc_active()) return true;
  if (fsync_policy_ == FsyncPolicy::kAlways ||
      (fsync_policy_ == FsyncPolicy::kBatch &&
       ++aof_unsynced_ >= kAofBatchRecords)) {
    if (FIR_FSYNC(fx_, aof_fd_) == -1) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "aof_fsync_failed");
      FIR_LOG(kWarn) << "minikv: AOF fsync failed";
      return false;
    }
    aof_unsynced_ = 0;
  }
  return true;
}

void Minikv::replay_aof() {
  aof_replayed_ = 0;
  aof_torn_bytes_ = 0;
  auto aof = fx_.env().vfs().lookup("/data/appendonly.aof");
  if (aof == nullptr || aof->data.empty()) return;
  WalrecScanner scan({aof->data.data(), aof->data.size()});
  std::string_view line;
  while (scan.next(line)) {
    const std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) continue;
    const std::string_view verb = line.substr(0, sp);
    line.remove_prefix(sp + 1);
    if (verb == "SET") {
      const std::size_t ksp = line.find(' ');
      if (ksp == std::string_view::npos) continue;
      if (apply_set(line.substr(0, ksp), line.substr(ksp + 1)))
        ++aof_replayed_;
    } else if (verb == "DEL") {
      if (db_.erase(line)) ++aof_replayed_;
    }
  }
  // Torn tail (partial final append or bit rot): truncate back to the last
  // record whose checksum verified, like redis-check-aof --fix.
  if (scan.valid_bytes() < aof->data.size()) {
    aof_torn_bytes_ = aof->data.size() - scan.valid_bytes();
    const int fd = fx_.env().open("/data/appendonly.aof", kWrOnly);
    if (fd >= 0) {
      fx_.env().ftruncate(fd, static_cast<std::int64_t>(scan.valid_bytes()));
      fx_.env().close(fd);
    }
    FIR_LOG(kWarn) << "minikv: dropped " << aof_torn_bytes_
                   << " torn AOF tail bytes";
  }
  FIR_LOG(kInfo) << "minikv: replayed " << aof_replayed_
                 << " AOF records on startup";
}

void Minikv::cmd_set(int fd, std::string_view key, std::string_view value) {
  HSFI_POINT(fx_.hsfi(), "cmd_set", /*critical=*/false);
  const auto k = Key::make(key);
  const auto v = Value::make(value);
  if (!k || !v || key.empty()) {
    counters_.protocol_errors += 1;
    reply(fd, "-ERR invalid argument\r\n", 23);
    return;
  }
  char record[224];
  const int rlen = std::snprintf(record, sizeof(record), "SET %.*s %.*s",
                                 static_cast<int>(key.size()), key.data(),
                                 static_cast<int>(value.size()),
                                 value.data());
  if (rlen <= 0 ||
      !aof_append({record, static_cast<std::size_t>(rlen)})) {
    reply(fd, "-ERR persistence failure\r\n", 26);
    counters_.responses_5xx += 1;
    return;
  }
  if (!db_.put(key, *k, *v)) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "db_full");
    reply(fd, "-OOM keyspace full\r\n", 20);
    counters_.responses_5xx += 1;
    return;
  }
  dirty_ += 1;
  counters_.requests_ok += 1;
  defer_or_reply(fd, "+OK\r\n", 5);
}

bool Minikv::purge_if_expired(std::string_view key) {
  const Expiry* expiry = expires_.get(key);
  if (expiry == nullptr) return false;
  if (fx_.env().clock().now_ns() < expiry->at_ns) return false;
  HSFI_POINT(fx_.hsfi(), "lazy_expire", /*critical=*/false);
  db_.erase(key);
  expires_.erase(key);
  dirty_ += 1;
  return true;
}

void Minikv::cmd_append(int fd, std::string_view key,
                        std::string_view value) {
  HSFI_POINT(fx_.hsfi(), "cmd_append", /*critical=*/false);
  purge_if_expired(key);
  const Value* existing = db_.get(key);
  char combined[sizeof(Value::data)];
  std::size_t len = 0;
  if (existing != nullptr) {
    len = existing->len;
    std::memcpy(combined, existing->data, len);
  }
  if (len + value.size() > sizeof(combined) || key.empty()) {
    counters_.protocol_errors += 1;
    reply(fd, "-ERR value too long\r\n", 21);
    return;
  }
  std::memcpy(combined + len, value.data(), value.size());
  len += value.size();
  const auto k = Key::make(key);
  const auto v = Value::make({combined, len});
  if (!k || !v || !db_.put(key, *k, *v)) {
    reply(fd, "-OOM keyspace full\r\n", 20);
    counters_.responses_5xx += 1;
    return;
  }
  dirty_ += 1;
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), ":%zu\r\n", len);
  reply(fd, buf, static_cast<std::size_t>(n));
  counters_.requests_ok += 1;
}

void Minikv::cmd_mget(int fd, std::string_view keys) {
  HSFI_POINT(fx_.hsfi(), "cmd_mget", /*critical=*/false);
  // Count keys first (array header needs the count).
  std::string_view scan = keys;
  int count = 0;
  while (!scan.empty()) {
    while (!scan.empty() && scan.front() == ' ') scan.remove_prefix(1);
    if (scan.empty()) break;
    ++count;
    const std::size_t sp = scan.find(' ');
    scan.remove_prefix(sp == std::string_view::npos ? scan.size() : sp);
  }
  char buf[4096];
  int n = std::snprintf(buf, sizeof(buf), "*%d\r\n", count);
  std::string_view rest = keys;
  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) break;
    const std::size_t sp = rest.find(' ');
    const std::string_view key =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    rest.remove_prefix(key.size());
    purge_if_expired(key);
    const Value* v = db_.get(key);
    int m;
    if (v == nullptr) {
      m = std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                        "$-1\r\n");
    } else {
      m = std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                        "$%u\r\n%.*s\r\n", v->len,
                        static_cast<int>(v->len), v->data);
    }
    if (m < 0 || static_cast<std::size_t>(n + m) >= sizeof(buf)) {
      reply(fd, "-ERR reply too large\r\n", 22);
      counters_.responses_5xx += 1;
      return;
    }
    n += m;
  }
  reply(fd, buf, static_cast<std::size_t>(n));
  counters_.requests_ok += 1;
}

void Minikv::cmd_expire(int fd, std::string_view key,
                        std::string_view seconds) {
  HSFI_POINT(fx_.hsfi(), "cmd_expire", /*critical=*/false);
  purge_if_expired(key);
  std::uint64_t secs = 0;
  for (char c : seconds) {
    if (c < '0' || c > '9') {
      counters_.protocol_errors += 1;
      reply(fd, "-ERR not an integer\r\n", 21);
      return;
    }
    secs = secs * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (!db_.contains(key)) {
    reply(fd, ":0\r\n", 4);
    counters_.requests_ok += 1;
    return;
  }
  const auto k = Key::make(key);
  const Expiry e{fx_.env().clock().now_ns() + secs * 1000000000ull};
  if (!k || !expires_.put(key, *k, e)) {
    reply(fd, "-OOM too many expirations\r\n", 27);
    counters_.responses_5xx += 1;
    return;
  }
  reply(fd, ":1\r\n", 4);
  counters_.requests_ok += 1;
}

void Minikv::cmd_ttl(int fd, std::string_view key) {
  HSFI_POINT(fx_.hsfi(), "cmd_ttl", /*critical=*/false);
  purge_if_expired(key);
  char buf[32];
  int n;
  if (!db_.contains(key)) {
    n = std::snprintf(buf, sizeof(buf), ":-2\r\n");
  } else {
    const Expiry* expiry = expires_.get(key);
    if (expiry == nullptr) {
      n = std::snprintf(buf, sizeof(buf), ":-1\r\n");
    } else {
      const std::uint64_t now = fx_.env().clock().now_ns();
      const std::uint64_t remaining_s =
          expiry->at_ns > now ? (expiry->at_ns - now) / 1000000000ull : 0;
      n = std::snprintf(buf, sizeof(buf), ":%llu\r\n",
                        static_cast<unsigned long long>(remaining_s));
    }
  }
  reply(fd, buf, static_cast<std::size_t>(n));
  counters_.requests_ok += 1;
}

void Minikv::cmd_persist(int fd, std::string_view key) {
  HSFI_POINT(fx_.hsfi(), "cmd_persist", /*critical=*/false);
  purge_if_expired(key);
  const bool removed = expires_.erase(key);
  reply(fd, removed ? ":1\r\n" : ":0\r\n", 4);
  counters_.requests_ok += 1;
}

void Minikv::cmd_get(int fd, std::string_view key) {
  HSFI_POINT(fx_.hsfi(), "cmd_get", /*critical=*/false);
  purge_if_expired(key);
  const Value* v = db_.get(key);
  if (v == nullptr) {
    reply(fd, "$-1\r\n", 5);
  } else {
    char buf[192];
    const int n = std::snprintf(buf, sizeof(buf), "$%u\r\n%.*s\r\n", v->len,
                                static_cast<int>(v->len), v->data);
    reply(fd, buf, static_cast<std::size_t>(n));
  }
  counters_.requests_ok += 1;
}

void Minikv::cmd_del(int fd, std::string_view key) {
  HSFI_POINT(fx_.hsfi(), "cmd_del", /*critical=*/false);
  if (db_.contains(key)) {
    char record[96];
    const int rlen = std::snprintf(record, sizeof(record), "DEL %.*s",
                                   static_cast<int>(key.size()), key.data());
    if (rlen > 0 &&
        !aof_append({record, static_cast<std::size_t>(rlen)})) {
      reply(fd, "-ERR persistence failure\r\n", 26);
      counters_.responses_5xx += 1;
      return;
    }
  }
  const bool erased = db_.erase(key);
  expires_.erase(key);
  if (erased) dirty_ += 1;
  counters_.requests_ok += 1;
  // Only an erased key wrote an AOF record, so only that ack defers.
  if (erased) {
    defer_or_reply(fd, ":1\r\n", 4);
  } else {
    reply(fd, ":0\r\n", 4);
  }
}

void Minikv::cmd_incr(int fd, std::string_view key) {
  HSFI_POINT(fx_.hsfi(), "cmd_incr", /*critical=*/false);
  std::int64_t current = 0;
  const Value* v = db_.get(key);
  if (v != nullptr) {
    for (char c : v->view()) {
      if (c < '0' || c > '9') {
        counters_.protocol_errors += 1;
        reply(fd, "-ERR not an integer\r\n", 21);
        return;
      }
      current = current * 10 + (c - '0');
    }
  }
  ++current;
  char num[32];
  const int nlen = std::snprintf(num, sizeof(num), "%lld",
                                 static_cast<long long>(current));
  const auto k = Key::make(key);
  const auto nv = Value::make({num, static_cast<std::size_t>(nlen)});
  if (!k || !nv || !db_.put(key, *k, *nv)) {
    reply(fd, "-OOM keyspace full\r\n", 20);
    counters_.responses_5xx += 1;
    return;
  }
  dirty_ += 1;
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), ":%lld\r\n",
                              static_cast<long long>(current));
  reply(fd, buf, static_cast<std::size_t>(n));
  counters_.requests_ok += 1;
}

void Minikv::cmd_keys(int fd) {
  HSFI_POINT(fx_.hsfi(), "cmd_keys", /*critical=*/false);
  char buf[4096];
  int n = std::snprintf(buf, sizeof(buf), "*%zu\r\n", db_.size());
  bool overflow = false;
  db_.for_each([&](const Key& k, const Value&) {
    if (overflow) return;
    const int m =
        std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                      "$%u\r\n%.*s\r\n", k.len, static_cast<int>(k.len),
                      k.data);
    if (m < 0 ||
        static_cast<std::size_t>(n + m) >= sizeof(buf)) {
      overflow = true;
      return;
    }
    n += m;
  });
  if (overflow) {
    reply(fd, "-ERR reply too large\r\n", 22);
    counters_.responses_5xx += 1;
    return;
  }
  reply(fd, buf, static_cast<std::size_t>(n));
  counters_.requests_ok += 1;
}

void Minikv::cmd_save(int fd) {
  HSFI_POINT(fx_.hsfi(), "rdb_save", /*critical=*/false);
  // RDB-style snapshot: write to a temp file, fsync, rename over the old
  // dump — the classic atomic-save sequence.
  const int rdb = FIR_OPEN(fx_, "/data/dump.rdb.tmp",
                           kCreat | kWrOnly | kTrunc);
  if (rdb < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "rdb_open_failed");
    reply(fd, "-ERR save failed\r\n", 18);
    counters_.responses_5xx += 1;
    return;
  }
  char record[256];
  std::int64_t off = 0;
  bool failed = false;
  db_.for_each([&](const Key& k, const Value& v) {
    if (failed) return;
    const int n = std::snprintf(record, sizeof(record), "%.*s=%.*s\n",
                                static_cast<int>(k.len), k.data,
                                static_cast<int>(v.len), v.data);
    const ssize_t w =
        FIR_PWRITE(fx_, rdb, record, static_cast<std::size_t>(n), off);
    if (w < 0) {
      failed = true;
      return;
    }
    off += w;
  });
  if (failed || FIR_FSYNC(fx_, rdb) == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "rdb_write_failed");
    FIR_CLOSE(fx_, rdb);
    reply(fd, "-ERR save failed\r\n", 18);
    counters_.responses_5xx += 1;
    return;
  }
  FIR_CLOSE(fx_, rdb);
  if (FIR_RENAME(fx_, "/data/dump.rdb.tmp", "/data/dump.rdb") == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "rdb_rename_failed");
    reply(fd, "-ERR save failed\r\n", 18);
    counters_.responses_5xx += 1;
    return;
  }
  // Publish the rename with a directory barrier: without it a crash image
  // may still hold the pre-rename namespace (old dump + tmp file).
  if (FIR_FSYNC_DIR(fx_, "/data") == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "rdb_dir_sync_failed");
    reply(fd, "-ERR save failed\r\n", 18);
    counters_.responses_5xx += 1;
    return;
  }
  dirty_ = 0;
  reply(fd, "+OK\r\n", 5);
  counters_.requests_ok += 1;
}

void Minikv::reply(int fd, const char* data, std::size_t len) {
  // A direct reply must never overtake queued acks (a GET answered before
  // the SET preceding it was acked would reorder the client's view), so any
  // pending group retires first.
  if (gc_pending_ > 0) retire_group();
  send_all(fd, data, len);
}

void Minikv::send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = FIR_SEND(fx_, fd, data + off, len - off);
    if (w < 0) {
      if (fx_.err() == EAGAIN) continue;
      HSFI_HANDLER_POINT(fx_.hsfi(), "reply_send_failed");
      Conn* conn = conn_of(fd);
      if (conn != nullptr) close_conn(fd, conn);
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

void Minikv::defer_or_reply(int fd, const char* data, std::size_t len) {
  if (!gc_active() || len > sizeof(GcAck{}.buf)) {
    reply(fd, data, len);
    return;
  }
  // Slot bytes land before the tracked count bump: a rollback mid-command
  // restores the count and the half-written slot is dead.
  GcAck& slot = gc_acks_[gc_pending_];
  slot.fd = fd;
  slot.len = static_cast<std::uint32_t>(len);
  std::memcpy(slot.buf, data, len);
  if (gc_pending_ == 0) gc_since_ns_ = fx_.env().clock().now_ns();
  tx_store(gc_pending_, gc_pending_ + 1);
  acks_deferred_ += 1;
  if (gc_pending_ >= group_commit_.max_acks) retire_group();
}

bool Minikv::retire_group() {
  if (gc_pending_ == 0) return true;
  HSFI_POINT(fx_.hsfi(), "group_commit", /*critical=*/false);
  // One barrier covers the whole group; only then do the acks flush.
  const bool ok = FIR_FSYNC(fx_, aof_fd_) != -1;
  if (ok) {
    group_commits_ += 1;
    aof_unsynced_ = 0;
  } else {
    HSFI_HANDLER_POINT(fx_.hsfi(), "group_fsync_failed");
    FIR_LOG(kWarn) << "minikv: group-commit fsync failed";
  }
  const std::uint32_t n = gc_pending_;
  tx_store(gc_pending_, 0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    const GcAck& ack = gc_acks_[i];
    if (ok) {
      send_all(ack.fd, ack.buf, ack.len);
    } else {
      // The mutations may not be durable: acked-implies-durable demands the
      // queued positive acks become errors.
      send_all(ack.fd, "-ERR persistence failure\r\n", 26);
    }
  }
  return ok;
}

void Minikv::maybe_retire_group() {
  if (gc_pending_ == 0) return;
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(group_commit_.window_us) * 1000;
  if (window_ns == 0 ||
      fx_.env().clock().now_ns() - gc_since_ns_ >= window_ns) {
    retire_group();
  }
}


std::size_t Minikv::resident_state_bytes() const {
  return db_.footprint_bytes() + expires_.footprint_bytes() +
         conns_.footprint_bytes() +
         fd_conn_.capacity() * sizeof(std::int32_t) + sizeof(*this);
}

}  // namespace fir
