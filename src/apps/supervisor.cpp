#include "apps/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>

#include "apps/minikv.h"
#include "apps/miniginx.h"
#include "core/crash.h"

namespace fir::fleet {

namespace {

// --- frame protocol ---------------------------------------------------------
// Everything on the control socketpair is a 12-byte header followed by
// `payload_len` bytes. The channel is a stream, so control frames (drain,
// kill) are totally ordered with batch frames — a drain sent while a batch
// is in flight takes effect after the batch's statuses, which is exactly
// the zero-loss drain semantics.

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint16_t type = 0;
  std::uint16_t n = 0;  // requests in a kBatch / statuses in a kStatuses
  std::uint32_t batch_id = 0;
};

enum FrameType : std::uint16_t {
  // supervisor -> worker
  kFrBatch = 1,
  kFrDrain = 2,
  kFrKillExit70 = 3,  // test/chaos: run the real double-fault death path
  kFrKillHang = 4,    // test/chaos: go silent (stop reading/heartbeating)
  // worker -> supervisor
  kFrReady = 10,
  kFrStatuses = 11,
  kFrHeartbeat = 12,
  kFrDrained = 13,
};

/// Blocking write of the whole buffer (the fds are O_NONBLOCK on the
/// supervisor side; control frames are tiny, so EAGAIN means a dead or
/// wedged peer — bounded retries, then give up and let reaping handle it).
bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  int stalls = 0;
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w > 0) {
      p += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (++stalls > 500) return false;
      struct pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 2);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool send_frame(int fd, std::uint16_t type, std::uint16_t n = 0,
                std::uint32_t batch_id = 0, const std::string& payload = {}) {
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.type = type;
  h.n = n;
  h.batch_id = batch_id;
  char buf[sizeof(FrameHeader)];
  std::memcpy(buf, &h, sizeof(h));
  if (!write_all(fd, buf, sizeof(buf))) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

/// Extracts one complete frame from the front of `buf`. Returns false when
/// more bytes are needed.
bool take_frame(std::string& buf, FrameHeader* h, std::string* payload) {
  if (buf.size() < sizeof(FrameHeader)) return false;
  std::memcpy(h, buf.data(), sizeof(FrameHeader));
  const std::size_t total = sizeof(FrameHeader) + h->payload_len;
  if (buf.size() < total) return false;
  payload->assign(buf, sizeof(FrameHeader), h->payload_len);
  buf.erase(0, total);
  return true;
}

std::string encode_targets(const std::vector<std::string>& targets) {
  std::string out;
  for (const std::string& t : targets) {
    const std::uint32_t len = static_cast<std::uint32_t>(t.size());
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out.append(t);
  }
  return out;
}

std::vector<std::string> decode_targets(const std::string& payload, int n) {
  std::vector<std::string> targets;
  std::size_t pos = 0;
  for (int i = 0; i < n && pos + sizeof(std::uint32_t) <= payload.size();
       ++i) {
    std::uint32_t len = 0;
    std::memcpy(&len, payload.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (pos + len > payload.size()) break;
    targets.emplace_back(payload, pos, len);
    pos += len;
  }
  return targets;
}

// --- worker-side HTTP bridge ------------------------------------------------

/// Scans `rx` for one complete HTTP response. Returns the total byte length
/// consumed (0 when incomplete); fills status and whether the server asked
/// to close. Mirrors HttpClient::try_read_response, which the supervisor
/// layer cannot link (workload depends on apps, not vice versa).
std::size_t scan_response(const std::string& rx, int* status,
                          bool* close_after) {
  const std::size_t head_end = rx.find("\r\n\r\n");
  if (head_end == std::string::npos) return 0;
  *status = rx.size() >= 12 && rx.compare(0, 5, "HTTP/") == 0
                ? std::atoi(rx.c_str() + 9)
                : 0;
  std::size_t content_length = 0;
  std::size_t pos = 0;
  while (pos < head_end) {
    std::size_t eol = rx.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    static constexpr std::string_view kKey = "content-length:";
    if (eol - pos > kKey.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kKey.size(); ++i) {
        const char c = rx[pos + i];
        const char a = c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
        if (a != kKey[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        content_length = static_cast<std::size_t>(
            std::atoll(rx.c_str() + pos + kKey.size()));
      }
    }
    pos = eol + 2;
  }
  const std::size_t total = head_end + 4 + content_length;
  if (rx.size() < total) return 0;
  *close_after = rx.find("Connection: close") < head_end;
  return total;
}

/// Replays one batch of GET targets against the worker's in-process
/// miniginx through the virtual network: send the request, pump run_once()
/// until the response is complete, keep the virtual connection alive
/// across requests. Returns per-request HTTP statuses (0 only if the
/// server could not produce a response at all, which a healthy worker
/// never does).
std::vector<int> serve_batch(Miniginx& mg,
                             const std::vector<std::string>& targets) {
  Env& env = mg.fx().env();
  std::vector<int> statuses(targets.size(), 0);
  int fd = -1;
  std::string rx;
  char buf[4096];
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (int attempt = 0; attempt < 3 && statuses[i] == 0; ++attempt) {
      if (fd < 0) {
        fd = env.connect_to(mg.port());
        rx.clear();
        if (fd < 0) break;  // listener gone (draining): leave status 0
      }
      std::string req = "GET " + targets[i] +
                        " HTTP/1.1\r\nHost: fleet\r\n"
                        "Connection: keep-alive\r\nContent-Length: 0\r\n\r\n";
      std::size_t off = 0;
      bool dead = false;
      int stalls = 0;
      while (off < req.size()) {
        const ssize_t w = env.send(fd, req.data() + off, req.size() - off);
        if (w > 0) {
          off += static_cast<std::size_t>(w);
          stalls = 0;
          continue;
        }
        mg.run_once();  // make room / progress the server
        if (++stalls > 1000) {
          dead = true;
          break;
        }
      }
      // Pump the server until the response for this request is complete.
      while (!dead) {
        mg.run_once();
        for (;;) {
          const ssize_t r = env.recv(fd, buf, sizeof(buf));
          if (r > 0) {
            rx.append(buf, static_cast<std::size_t>(r));
            continue;
          }
          if (r == 0 || env.last_errno() != EAGAIN) dead = true;
          break;
        }
        int status = 0;
        bool close_after = false;
        const std::size_t used = scan_response(rx, &status, &close_after);
        if (used > 0) {
          statuses[i] = status;
          rx.erase(0, used);
          if (close_after) dead = true;
          break;
        }
        if (dead) break;  // EOF without a full response: retry fresh
        if (++stalls > 10000) {
          dead = true;
          break;
        }
      }
      if (dead) {
        env.close(fd);
        fd = -1;
      }
    }
  }
  if (fd >= 0) env.close(fd);
  return statuses;
}

/// Scans `rx` for one complete minikv reply and maps it to an HTTP-shaped
/// status so BatchResult stays uniform across fleet modes: "+OK"/":N"/
/// bulk values → 200, the "$-1" miss → 404, "-ERR..." → 500. Returns the
/// bytes consumed (0 when incomplete). Mirrors KvClient::try_read_reply,
/// which the supervisor layer cannot link (workload depends on apps).
std::size_t scan_kv_reply(const std::string& rx, int* status) {
  const std::size_t eol = rx.find("\r\n");
  if (eol == std::string::npos) return 0;
  std::size_t total = eol + 2;
  long bulk_len = -1;
  if (!rx.empty() && rx[0] == '$') {
    bulk_len = std::atol(rx.c_str() + 1);
    if (bulk_len >= 0) {
      total = eol + 2 + static_cast<std::size_t>(bulk_len) + 2;
      if (rx.size() < total) return 0;
    }
  }
  if (!rx.empty() && rx[0] == '-') {
    *status = 500;
  } else if (!rx.empty() && rx[0] == '$' && bulk_len < 0) {
    *status = 404;
  } else {
    *status = 200;
  }
  return total;
}

/// Replays one batch of KV command lines against the worker's in-process
/// minikv through the virtual network (the durable-fleet analogue of
/// serve_batch). Pipelined: every still-unanswered command goes out before
/// any reply is read, so a group-commit server retires the whole batch
/// with ONE barrier instead of one per command. Replies come back in
/// order, so status i belongs to pipelined command i.
std::vector<int> serve_kv_batch(Minikv& kv,
                                const std::vector<std::string>& targets) {
  Env& env = kv.fx().env();
  std::vector<int> statuses(targets.size(), 0);
  char buf[4096];
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (statuses[i] == 0) pending.push_back(i);
    }
    if (pending.empty()) break;
    const int fd = env.connect_to(kv.port());
    if (fd < 0) break;  // listener gone (stopping): leave statuses 0
    std::string req;
    for (const std::size_t i : pending) {
      req += targets[i];
      req += "\r\n";
    }
    std::string rx;
    std::size_t off = 0;
    std::size_t answered = 0;
    int stalls = 0;
    bool dead = false;
    while (off < req.size() && !dead) {
      const ssize_t w = env.send(fd, req.data() + off, req.size() - off);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        stalls = 0;
        continue;
      }
      kv.run_once();  // let the server drain its side of the pipe
      if (++stalls > 1000) dead = true;
    }
    stalls = 0;
    while (!dead && answered < pending.size()) {
      kv.run_once();
      for (;;) {
        const ssize_t r = env.recv(fd, buf, sizeof(buf));
        if (r > 0) {
          rx.append(buf, static_cast<std::size_t>(r));
          continue;
        }
        if (r == 0 || env.last_errno() != EAGAIN) dead = true;
        break;
      }
      for (;;) {
        int status = 0;
        const std::size_t used = scan_kv_reply(rx, &status);
        if (used == 0) break;
        statuses[pending[answered]] = status;
        ++answered;
        rx.erase(0, used);
        stalls = 0;
        if (answered == pending.size()) break;
      }
      if (!dead && answered < pending.size() && ++stalls > 10000) dead = true;
    }
    env.close(fd);
  }
  return statuses;
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

const char* death_cause_name(DeathCause cause) {
  switch (cause) {
    case DeathCause::kDoubleFault: return "double-fault";
    case DeathCause::kSignal: return "signal";
    case DeathCause::kHang: return "hang";
    case DeathCause::kExit: return "exit";
    case DeathCause::kDrained: return "drained";
  }
  return "?";
}

// --- worker process ---------------------------------------------------------

void fleet_worker_main(int ctrl_fd, const FleetConfig& config, int shard) {
  ::signal(SIGPIPE, SIG_IGN);
  // The worker owns a fresh server and therefore a fresh Env: the fork
  // boundary is the fault boundary. FIR_SIGNALS is honored by the
  // TxManager's own config-from-env hook.
  std::unique_ptr<Miniginx> mg;
  std::unique_ptr<Minikv> kv;
  const std::uint16_t port =
      static_cast<std::uint16_t>(config.base_port + shard);
  if (config.durable) {
    // Durable shard: bind the virtual durable image to the shard's host
    // directory BEFORE start(), so start()'s AOF replay recovers whatever
    // the previous incarnation pushed past an fsync barrier. Policy
    // "always" makes every acked mutation durable before its reply.
    kv = std::make_unique<Minikv>();
    if (!config.durable_dir.empty() &&
        !kv->fx().env().vfs().attach_backing(config.durable_dir + "/shard-" +
                                             std::to_string(shard)))
      _exit(64);
    kv->enable_aof(true);
    if (config.group_commit_max > 0) {
      // Group commit: acks defer until one barrier retires the batch —
      // still acked-implies-durable, at a fraction of the barriers.
      kv->set_fsync_policy(FsyncPolicy::kBatch);
      kv->set_group_commit(
          {config.group_commit_max, config.group_commit_window_us});
    } else {
      kv->set_fsync_policy(FsyncPolicy::kAlways);
    }
    if (!kv->start(port).is_ok()) _exit(64);
  } else {
    mg = std::make_unique<Miniginx>();
    if (!mg->start(port).is_ok()) _exit(64);  // EX_USAGE-ish: cannot serve
    if (config.ssi_null_bug) mg->enable_ssi_null_bug(true);
  }
  for (const int s : config.crash_on_spawn_shards) {
    if (s == shard) {
      // TEST HOOK: die the way a worker whose shard input is poisonous
      // would — through the real double-fault termination path.
      DoubleFaultDiag diag;
      diag.site_function = "spawn";
      diag.site_location = "fleet-crash-on-spawn";
      die_double_fault(CrashKind::kSegv, "sync", &diag);
    }
  }
  send_frame(ctrl_fd, kFrReady);

  const int hb_interval_ms = std::max(
      1, std::min<int>(250, static_cast<int>(config.heartbeat_deadline_ms) / 4));
  std::uint64_t last_hb = steady_ms();
  std::string rxbuf;
  char buf[4096];
  for (;;) {
    struct pollfd pfd{ctrl_fd, POLLIN, 0};
    ::poll(&pfd, 1, hb_interval_ms);
    const std::uint64_t now = steady_ms();
    if (now - last_hb >= static_cast<std::uint64_t>(hb_interval_ms)) {
      if (!send_frame(ctrl_fd, kFrHeartbeat)) _exit(0);  // supervisor gone
      last_hb = now;
    }
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) continue;
    const ssize_t r = ::read(ctrl_fd, buf, sizeof(buf));
    if (r == 0) _exit(0);  // supervisor closed the channel: orderly exit
    if (r < 0) {
      if (errno == EAGAIN || errno == EINTR) continue;
      _exit(0);
    }
    rxbuf.append(buf, static_cast<std::size_t>(r));
    FrameHeader h;
    std::string payload;
    while (take_frame(rxbuf, &h, &payload)) {
      switch (h.type) {
        case kFrBatch: {
          const std::vector<std::string> targets =
              decode_targets(payload, h.n);
          std::vector<int> statuses;
          try {
            statuses = kv != nullptr ? serve_kv_batch(*kv, targets)
                                     : serve_batch(*mg, targets);
          } catch (const FatalCrashError& e) {
            // Unrecoverable fault while serving: in a real deployment the
            // process dies here. Leave a line for the supervisor's stderr
            // capture, then die (distinct from the double-fault code).
            const char* msg = "fir: worker fatal crash\n";
            const ssize_t ignored = ::write(2, msg, std::strlen(msg));
            (void)ignored;
            _exit(65);
          }
          std::string out;
          for (const int s : statuses) {
            const std::uint16_t v = static_cast<std::uint16_t>(s);
            out.append(reinterpret_cast<const char*>(&v), sizeof(v));
          }
          if (!send_frame(ctrl_fd, kFrStatuses,
                          static_cast<std::uint16_t>(statuses.size()),
                          h.batch_id, out))
            _exit(0);
          last_hb = steady_ms();
          break;
        }
        case kFrDrain:
          // Planned drain: stop accepting, finish anything buffered (the
          // frame stream already serialized us after any in-flight batch),
          // acknowledge, exit clean. A durable shard needs no handoff
          // step: everything acked is already on host media.
          if (mg != nullptr) mg->stop_accepting();
          send_frame(ctrl_fd, kFrDrained);
          if (mg != nullptr) mg->stop();
          if (kv != nullptr) kv->stop();
          _exit(0);
        case kFrKillExit70: {
          // Chaos interface: the REAL double-fault termination path, so
          // integration tests exercise exactly what production does.
          DoubleFaultDiag diag;
          diag.site_function = "fleet-kill";
          diag.site_location = "supervisor-chaos-hook";
          die_double_fault(CrashKind::kSegv, "sync", &diag);
        }
        case kFrKillHang:
          // Chaos interface: go silent. No reads, no heartbeats — the
          // supervisor's deadline detector must SIGKILL us.
          for (;;) ::poll(nullptr, 0, 1000);
        default:
          break;  // unknown frame: ignore (forward compatibility)
      }
    }
  }
}

// --- supervisor -------------------------------------------------------------

FleetConfig FleetConfig::from_env() { return from_env(FleetConfig{}); }

FleetConfig FleetConfig::from_env(FleetConfig base) {
  FleetConfig c = std::move(base);
  if (const char* v = std::getenv("FIR_FLEET_WORKERS")) {
    const int n = std::atoi(v);
    if (n > 0 && n <= 64) c.workers = n;
  }
  if (const char* v = std::getenv("FIR_RESTART_BACKOFF_MS")) {
    const long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) c.backoff_base_ms = static_cast<std::uint32_t>(ms);
  }
  if (const char* v = std::getenv("FIR_FLAP_THRESHOLD")) {
    const long k = std::strtol(v, nullptr, 10);
    if (k >= 0) c.flap_threshold = static_cast<std::uint32_t>(k);
  }
  if (const char* v = std::getenv("FIR_HEARTBEAT_DEADLINE_MS")) {
    const long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) c.heartbeat_deadline_ms = static_cast<std::uint32_t>(ms);
  }
  if (const char* v = std::getenv("FIR_FLEET_DURABLE")) {
    c.durable = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("FIR_FLEET_DURABLE_DIR")) {
    c.durable_dir = v;
  }
  {
    GroupCommitConfig gc{c.group_commit_max, c.group_commit_window_us};
    gc = group_commit_from_env(gc);
    c.group_commit_max = gc.max_acks;
    c.group_commit_window_us = gc.window_us;
  }
  return c;
}

namespace {

// Fleet lifecycle events are rare (spawns and deaths, not per-request), so
// the supervisor keeps its trace ring on by default; FIR_TRACE=0 still
// silences it.
obs::ObsConfig supervisor_obs_config() {
  obs::ObsConfig base;
  base.trace_enabled = true;
  return obs::ObsConfig::from_env(std::move(base));
}

}  // namespace

FleetSupervisor::FleetSupervisor(FleetConfig config)
    : config_(std::move(config)),
      obs_(supervisor_obs_config()) {
  backoff_.base_ms = config_.backoff_base_ms;
  backoff_.max_ms = config_.backoff_max_ms;
  backoff_.jitter_frac = config_.backoff_jitter;
  if (config_.workers < 1) config_.workers = 1;
}

FleetSupervisor::~FleetSupervisor() { stop(); }

std::uint64_t FleetSupervisor::now_ms() const { return steady_ms(); }

void FleetSupervisor::emit(obs::EventKind kind, const Slot& slot,
                           std::int64_t a1, std::uint64_t now,
                           const char* extra_key,
                           const std::string& extra_value) {
  obs_.emit(kind, static_cast<std::uint32_t>(-1), nullptr, slot.shard, a1);
  obs_.metrics()
      .counter(std::string("fleet.") + obs::event_kind_name(kind))
      .inc();
  if (event_log_ == nullptr) return;
  std::string line = "{\"t_ms\":" + std::to_string(now) +
                     ",\"event\":\"" + obs::event_kind_name(kind) +
                     "\",\"worker\":" + std::to_string(slot.index) +
                     ",\"shard\":" + std::to_string(slot.shard) +
                     ",\"pid\":" + std::to_string(slot.pid);
  if (extra_key != nullptr) {
    line += std::string(",\"") + extra_key + "\":\"";
    json_escape_into(line, extra_value);
    line += "\"";
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), event_log_);
  std::fflush(event_log_);
}

bool FleetSupervisor::spawn_worker(Slot& slot) {
  int ctrl[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, ctrl) != 0) return false;
  int errp[2];
  if (::pipe(errp) != 0) {
    ::close(ctrl[0]);
    ::close(ctrl[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(ctrl[0]);
    ::close(ctrl[1]);
    ::close(errp[0]);
    ::close(errp[1]);
    return false;
  }
  if (pid == 0) {
    // Child: capture stderr (the double-fault diagnostic arrives there via
    // async-signal-safe write(2)), drop every supervisor-owned fd, serve.
    ::dup2(errp[1], 2);
    ::close(errp[0]);
    ::close(errp[1]);
    ::close(ctrl[0]);
    for (const Slot& other : slots_) {
      if (other.ctrl_fd >= 0 && other.ctrl_fd != ctrl[1])
        ::close(other.ctrl_fd);
      if (other.err_fd >= 0) ::close(other.err_fd);
    }
    fleet_worker_main(ctrl[1], config_, slot.shard);  // never returns
  }
  ::close(ctrl[1]);
  ::close(errp[1]);
  ::fcntl(ctrl[0], F_SETFL, O_NONBLOCK);
  ::fcntl(errp[0], F_SETFL, O_NONBLOCK);
  slot.pid = pid;
  slot.ctrl_fd = ctrl[0];
  slot.err_fd = errp[0];
  slot.state = SlotState::kStarting;
  slot.busy = false;
  slot.inflight.reset();
  slot.rxbuf.clear();
  slot.errbuf.clear();
  slot.diagnostic.clear();  // dying words belong to the previous incarnation
  slot.hang_suspected = false;
  slot.last_heard_ms = now_ms();
  ++counters_.spawns;
  emit(obs::EventKind::kWorkerSpawn, slot, pid, slot.last_heard_ms);
  return true;
}

bool FleetSupervisor::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return true;
  if (!config_.event_log_path.empty()) {
    event_log_ = std::fopen(config_.event_log_path.c_str(), "w");
  }
  if (config_.durable && config_.durable_dir.empty()) {
    // Resolve the default BEFORE the first spawn: workers read the path
    // out of config_, so it must be fixed for the fleet's whole lifetime.
    char tmpl[] = "/tmp/fir_fleet_durable_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) return false;
    config_.durable_dir = tmpl;
  }
  slots_.assign(static_cast<std::size_t>(config_.workers), Slot{});
  shard_owner_.assign(static_cast<std::size_t>(config_.workers), -1);
  shard_queues_.assign(static_cast<std::size_t>(config_.workers), {});
  for (int i = 0; i < config_.workers; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    slot.index = i;
    slot.shard = i;
    slot.flap = FlapWindow(config_.flap_threshold, config_.flap_window_ms);
    slot.jitter_rng = Rng(split_seed(config_.seed,
                                     static_cast<std::uint64_t>(i)));
    shard_owner_[static_cast<std::size_t>(i)] = i;
    if (!spawn_worker(slot)) {
      for (Slot& s : slots_) {
        if (s.pid > 0) {
          ::kill(s.pid, SIGKILL);
          ::waitpid(s.pid, nullptr, 0);
        }
        close_slot_fds(s);
      }
      slots_.clear();
      return false;
    }
  }
  running_ = true;
  supervise_thread_ = std::thread([this] { supervise(); });
  return true;
}

void FleetSupervisor::close_slot_fds(Slot& slot) {
  if (slot.ctrl_fd >= 0) ::close(slot.ctrl_fd);
  if (slot.err_fd >= 0) ::close(slot.err_fd);
  slot.ctrl_fd = slot.err_fd = -1;
}

void FleetSupervisor::drain_err_pipe(Slot& slot) {
  if (slot.err_fd < 0) return;
  char buf[1024];
  for (;;) {
    const ssize_t r = ::read(slot.err_fd, buf, sizeof(buf));
    if (r <= 0) break;
    slot.errbuf.append(buf, static_cast<std::size_t>(r));
  }
  // Keep the last complete diagnostic-looking line (the double-fault line
  // is the worker's dying words; FIR_LOG noise may precede it).
  std::size_t pos = 0;
  while (true) {
    const std::size_t eol = slot.errbuf.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string line = slot.errbuf.substr(pos, eol - pos);
    if (line.find("double fault") != std::string::npos ||
        line.find("fatal crash") != std::string::npos) {
      slot.diagnostic = line;
    }
    pos = eol + 1;
  }
  slot.errbuf.erase(0, pos);
}

void FleetSupervisor::handle_frames(Slot& slot, std::uint64_t now) {
  if (slot.ctrl_fd < 0) return;
  char buf[4096];
  bool heard = false;
  for (;;) {
    const ssize_t r = ::read(slot.ctrl_fd, buf, sizeof(buf));
    if (r <= 0) break;
    slot.rxbuf.append(buf, static_cast<std::size_t>(r));
    heard = true;
  }
  if (heard) slot.last_heard_ms = now;
  FrameHeader h;
  std::string payload;
  while (take_frame(slot.rxbuf, &h, &payload)) {
    switch (h.type) {
      case kFrReady:
        if (slot.state == SlotState::kStarting) slot.state = SlotState::kUp;
        slot.attempt = 0;  // a successful spawn resets the backoff ladder
        break;
      case kFrStatuses:
        if (slot.busy && slot.inflight != nullptr) {
          PendingBatch& b = *slot.inflight;
          b.result.statuses.clear();
          for (std::size_t i = 0;
               i + sizeof(std::uint16_t) <= payload.size() &&
               b.result.statuses.size() < b.targets.size();
               i += sizeof(std::uint16_t)) {
            std::uint16_t v = 0;
            std::memcpy(&v, payload.data() + i, sizeof(v));
            b.result.statuses.push_back(v);
          }
          b.done = true;
          slot.busy = false;
          slot.inflight.reset();
          ++counters_.batches_served;
          cv_.notify_all();
        }
        break;
      case kFrHeartbeat:
      case kFrDrained:
        break;  // last_heard_ms already updated; exit status finishes drain
      default:
        break;
    }
  }
}

void FleetSupervisor::fail_queue(int shard) {
  auto& q = shard_queues_[static_cast<std::size_t>(shard)];
  while (!q.empty()) {
    std::shared_ptr<PendingBatch> b = q.front();
    q.pop_front();
    b->result.lost = static_cast<int>(b->targets.size());
    b->done = true;
  }
  cv_.notify_all();
}

void FleetSupervisor::quarantine(Slot& slot, std::uint64_t now) {
  slot.state = SlotState::kQuarantined;
  if (slot.shard >= 0)
    shard_owner_[static_cast<std::size_t>(slot.shard)] = -1;
  ++counters_.quarantines;
  emit(obs::EventKind::kWorkerQuarantine, slot,
       static_cast<std::int64_t>(slot.flap.events_in_window()), now, "cause",
       "flap-breaker");
  if (slot.shard >= 0) fail_queue(slot.shard);
}

void FleetSupervisor::handle_death(Slot& slot, int wait_status,
                                   std::uint64_t now) {
  // Classify the wait status the same way the campaign engine's
  // death_record does, plus the supervisor-only hang case.
  DeathCause cause;
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == kDoubleFaultExitCode) {
      cause = DeathCause::kDoubleFault;
    } else if (code == 0 && slot.state == SlotState::kDraining) {
      cause = DeathCause::kDrained;
    } else {
      cause = DeathCause::kExit;
    }
  } else {
    cause = slot.hang_suspected ? DeathCause::kHang : DeathCause::kSignal;
  }
  drain_err_pipe(slot);
  close_slot_fds(slot);
  if (!slot.diagnostic.empty()) slot.death_diagnostic = slot.diagnostic;

  if (cause == DeathCause::kDrained) {
    slot.pid = -1;
    slot.state = SlotState::kRetired;
    return;  // drain already emitted; shard already handed away
  }

  ++counters_.deaths;
  switch (cause) {
    case DeathCause::kDoubleFault: ++counters_.exit70_deaths; break;
    case DeathCause::kSignal: ++counters_.signal_deaths; break;
    case DeathCause::kHang: ++counters_.hang_deaths; break;
    default: break;
  }
  emit(obs::EventKind::kWorkerDeath, slot, wait_status, now, "cause",
       slot.diagnostic.empty()
           ? std::string(death_cause_name(cause))
           : std::string(death_cause_name(cause)) + ": " + slot.diagnostic);
  slot.pid = -1;

  // Zero-loss core: the batch the dead worker held goes back to the FRONT
  // of its shard queue and will be replayed after the restart.
  if (slot.busy && slot.inflight != nullptr && !slot.inflight->done) {
    if (slot.shard >= 0) {
      shard_queues_[static_cast<std::size_t>(slot.shard)].push_front(
          slot.inflight);
      ++counters_.requeues;
    } else {
      slot.inflight->result.lost =
          static_cast<int>(slot.inflight->targets.size());
      slot.inflight->done = true;
      cv_.notify_all();
    }
  }
  slot.busy = false;
  slot.inflight.reset();

  if (!running_ || slot.shard < 0) {
    slot.state = SlotState::kRetired;
    return;
  }
  if (slot.flap.record(now)) {
    quarantine(slot, now);
    return;
  }
  slot.state = SlotState::kDown;
  ++slot.attempt;
  const std::uint32_t delay = backoff_.delay_ms(slot.attempt, slot.jitter_rng);
  slot.restart_due_ms = now + delay;
}

void FleetSupervisor::reap_and_restart(std::uint64_t now) {
  for (Slot& slot : slots_) {
    if (slot.pid > 0) {
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid) {
        handle_death(slot, status, now);
        continue;
      }
      // Hang detection: silence past the heartbeat deadline.
      if ((slot.state == SlotState::kUp ||
           slot.state == SlotState::kStarting ||
           slot.state == SlotState::kDraining) &&
          now - slot.last_heard_ms > config_.heartbeat_deadline_ms) {
        slot.hang_suspected = true;
        ::kill(slot.pid, SIGKILL);
      }
    }
    if (slot.state == SlotState::kDown && running_ &&
        now >= slot.restart_due_ms) {
      ++counters_.restarts;
      emit(obs::EventKind::kWorkerRestart, slot,
           static_cast<std::int64_t>(slot.attempt), now);
      if (!spawn_worker(slot)) {
        // fork/socketpair failure: retry after another backoff step.
        ++slot.attempt;
        slot.restart_due_ms =
            now + backoff_.delay_ms(slot.attempt, slot.jitter_rng);
      }
    }
  }
}

void FleetSupervisor::dispatch(std::uint64_t) {
  for (std::size_t shard = 0; shard < shard_queues_.size(); ++shard) {
    auto& q = shard_queues_[shard];
    if (q.empty()) continue;
    const int owner = shard_owner_[shard];
    if (owner < 0) {
      fail_queue(static_cast<int>(shard));
      continue;
    }
    Slot& slot = slots_[static_cast<std::size_t>(owner)];
    if (slot.state != SlotState::kUp || slot.busy) continue;
    std::shared_ptr<PendingBatch> b = q.front();
    q.pop_front();
    slot.busy = true;
    slot.inflight = b;
    const std::uint32_t id = slot.next_batch_id++;
    if (!send_frame(slot.ctrl_fd, kFrBatch,
                    static_cast<std::uint16_t>(b->targets.size()), id,
                    encode_targets(b->targets))) {
      // Channel already broken: put it back; the reaper restarts the
      // worker and the batch replays then.
      q.push_front(b);
      slot.busy = false;
      slot.inflight.reset();
    }
  }
}

void FleetSupervisor::supervise() {
  for (;;) {
    std::vector<struct pollfd> pfds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Slot& slot : slots_) {
        if (slot.ctrl_fd >= 0) pfds.push_back({slot.ctrl_fd, POLLIN, 0});
        if (slot.err_fd >= 0) pfds.push_back({slot.err_fd, POLLIN, 0});
      }
    }
    if (!pfds.empty())
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 2);
    else
      ::poll(nullptr, 0, 2);
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t now = now_ms();
    for (Slot& slot : slots_) {
      handle_frames(slot, now);
      drain_err_pipe(slot);
    }
    reap_and_restart(now);
    dispatch(now);
    if (!running_) {
      bool any_alive = false;
      for (const Slot& slot : slots_) any_alive |= slot.pid > 0;
      if (!any_alive) return;
    }
  }
}

BatchResult FleetSupervisor::submit(int shard,
                                    const std::vector<std::string>& targets) {
  auto b = std::make_shared<PendingBatch>();
  b->targets = targets;
  std::unique_lock<std::mutex> lock(mu_);
  if (!running_ || shard < 0 ||
      shard >= static_cast<int>(shard_queues_.size()) ||
      shard_owner_[static_cast<std::size_t>(shard)] < 0) {
    b->result.lost = static_cast<int>(targets.size());
    return b->result;
  }
  shard_queues_[static_cast<std::size_t>(shard)].push_back(b);
  // The deadline is a liveness backstop for broken tests, not a drop
  // policy: ordinary restarts finish orders of magnitude sooner.
  if (!cv_.wait_for(lock, std::chrono::seconds(120),
                    [&] { return b->done; })) {
    auto& q = shard_queues_[static_cast<std::size_t>(shard)];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == b) {
        q.erase(it);
        break;
      }
    }
    b->result.lost = static_cast<int>(targets.size());
    b->done = true;
  }
  return b->result;
}

bool FleetSupervisor::kill_worker(int worker, KillMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
  Slot& slot = slots_[static_cast<std::size_t>(worker)];
  if (slot.state != SlotState::kUp || slot.pid <= 0) return false;
  switch (mode) {
    case KillMode::kSigkill:
      ::kill(slot.pid, SIGKILL);
      return true;
    case KillMode::kExit70:
      return send_frame(slot.ctrl_fd, kFrKillExit70);
    case KillMode::kHang:
      return send_frame(slot.ctrl_fd, kFrKillHang);
  }
  return false;
}

bool FleetSupervisor::drain_worker(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
  // Durable shards are pinned to their host directory: a sibling serving
  // its own backing dir would silently split the shard's keyspace. Scale
  // down a durable fleet by stop() (every ack is already on media).
  if (config_.durable) return false;
  Slot& slot = slots_[static_cast<std::size_t>(worker)];
  if (slot.state != SlotState::kUp || slot.shard < 0) return false;
  // Hand the shard to a live sibling BEFORE draining, so not a single
  // batch waits on the departing worker.
  int sibling = -1;
  for (const Slot& other : slots_) {
    if (other.index == worker) continue;
    if (other.shard < 0) continue;
    if (other.state == SlotState::kUp || other.state == SlotState::kStarting ||
        other.state == SlotState::kDown) {
      sibling = other.index;
      break;
    }
  }
  if (sibling < 0) return false;  // nobody to take over: refuse the drain
  shard_owner_[static_cast<std::size_t>(slot.shard)] = sibling;
  ++counters_.drains;
  emit(obs::EventKind::kWorkerDrain, slot, sibling, now_ms(), "cause",
       "planned-drain");
  slot.state = SlotState::kDraining;
  slot.shard = -1;
  send_frame(slot.ctrl_fd, kFrDrain);
  return true;
}

void FleetSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && supervise_thread_.joinable() == false) return;
    running_ = false;
    for (Slot& slot : slots_) {
      if (slot.state == SlotState::kUp || slot.state == SlotState::kStarting) {
        slot.state = SlotState::kDraining;
        if (slot.ctrl_fd >= 0) send_frame(slot.ctrl_fd, kFrDrain);
      }
    }
  }
  if (supervise_thread_.joinable()) supervise_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, nullptr, 0);
      slot.pid = -1;
    }
    close_slot_fds(slot);
  }
  for (std::size_t shard = 0; shard < shard_queues_.size(); ++shard)
    fail_queue(static_cast<int>(shard));
  if (event_log_ != nullptr) {
    std::fclose(event_log_);
    event_log_ = nullptr;
  }
}

bool FleetSupervisor::worker_up(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
  return slots_[static_cast<std::size_t>(worker)].state == SlotState::kUp;
}

int FleetSupervisor::shard_owner(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || shard >= static_cast<int>(shard_owner_.size())) return -1;
  return shard_owner_[static_cast<std::size_t>(shard)];
}

bool FleetSupervisor::quarantined(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || shard >= static_cast<int>(shard_owner_.size()))
    return false;
  return shard_owner_[static_cast<std::size_t>(shard)] < 0;
}

std::string FleetSupervisor::last_diagnostic(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return {};
  return slots_[static_cast<std::size_t>(worker)].death_diagnostic;
}

std::string FleetSupervisor::durable_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.durable ? config_.durable_dir : std::string();
}

FleetCounters FleetSupervisor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace fir::fleet
