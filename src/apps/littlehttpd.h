// littlehttpd: a lighttpd-shaped web server.
//
// lighttpd chops request processing into many small plugin stages, which is
// why the paper's Table III measures it at 136 unique transactions with only
// 17 embedded library calls: nearly every stage performs its own library
// call. littlehttpd mirrors that: a fine-grained state machine where each
// stage opens its own crash transaction, a chunked writer (several send()
// transactions per response — send is irrecoverable, giving lighttpd the
// largest irrecoverable share of the three web servers), and a WebDAV module
// with lighttpd bug #2780 (§VI-F): mod_webdav_connection_reset() misses a
// cleanup, so a WebDAV request mixed with other requests on one keep-alive
// connection leaves a stale per-connection handle behind; the next request
// dereferences it and crashes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/http.h"
#include "apps/server.h"
#include "mem/tracked_pool.h"

namespace fir {

class Littlehttpd final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 8082;

  explicit Littlehttpd(TxManagerConfig config = {});
  ~Littlehttpd() override;

  const char* name() const override { return "littlehttpd"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  /// Enables lighttpd bug #2780: the WebDAV connection-reset cleanup is
  /// skipped, leaving a dangling per-connection DAV handle.
  void enable_webdav_uaf_bug(bool on) { webdav_uaf_bug_ = on; }

  void install_default_docroot();

 private:
  /// Per-connection WebDAV scratch state (lock token etc.), pool-allocated
  /// so stale references are detectable (magic check models the UAF crash).
  struct DavState {
    std::uint32_t magic;
    std::uint32_t lock_serial;
    char lock_token[64];
  };
  static constexpr std::uint32_t kDavMagic = 0xDA57A7E5;

  struct Conn {
    std::int32_t fd;
    std::uint8_t state;
    std::uint8_t keep_alive;
    std::uint16_t padding;
    std::int32_t dav_state_idx;  // index into dav_pool_, -1 when none
    std::uint32_t rx_len;
    std::uint32_t tx_len;
    std::uint32_t tx_off;
    char rx[4096];
    char tx[16384];
  };
  enum ConnState : std::uint8_t { kReading = 1, kWriting = 2 };

  void accept_one();
  void conn_readable(int fd, Conn* conn);
  void conn_writable(int fd, Conn* conn);
  void dispatch_request(int fd, Conn* conn, const http::Request& req);
  void handle_static(Conn* conn, const http::Request& req);
  void handle_webdav(Conn* conn, const http::Request& req);
  /// lighttpd's mod_webdav_connection_reset(): supposed to drop the DAV
  /// handle at request end. With the bug enabled it forgets.
  void webdav_connection_reset(Conn* conn);
  /// Touches the connection's DAV handle; a stale (released) handle models
  /// the use-after-free crash.
  void touch_dav_state(Conn* conn);
  void queue_response(Conn* conn, int status, const char* content_type,
                      const char* body, std::size_t len, bool keep_alive);
  void close_conn(int fd, Conn* conn);
  Conn* conn_of(int fd);

  std::uint16_t port_ = kDefaultPort;
  int listen_fd_ = -1;
  int epfd_ = -1;
  int error_log_fd_ = -1;
  bool running_ = false;
  bool webdav_uaf_bug_ = false;

  TrackedPool<Conn> conns_{64};
  TrackedPool<DavState> dav_pool_{32};
  std::vector<std::int32_t> fd_conn_;
  /// Stable storage for the deferred-unlink path (must outlive the
  /// transaction the DELETE handler opens).
  char unlink_path_[1100] = {};
};

}  // namespace fir
