// minikv: a Redis-shaped in-memory key-value server.
//
// Single-threaded event loop (like Redis, which "does not require
// multithreading for parallelism" — paper §VI-B), an inline text protocol
// (SET/GET/DEL/INCR/EXISTS/KEYS/SAVE/FLUSHALL), a tracked open-addressing
// keyspace so crashes mid-command roll back to a consistent map, and an
// RDB-style SAVE path (open -> pwrite -> fsync -> rename) whose fsync/rename
// transactions exercise the irrecoverable and state-restore catalog classes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/fsync_policy.h"
#include "apps/server.h"
#include "mem/tracked_map.h"
#include "mem/tracked_pool.h"

namespace fir {

class Minikv final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 6379;

  explicit Minikv(TxManagerConfig config = {});
  ~Minikv() override;

  const char* name() const override { return "minikv"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  using Key = FixedString<48>;
  using Value = FixedString<128>;

  /// Keyspace introspection for tests.
  std::size_t db_size() const { return db_.size(); }
  const TrackedHashMap<Key, Value>& db() const { return db_; }

  /// Enables AOF persistence (Redis "appendonly yes"): every mutating
  /// command is appended to /data/appendonly.aof before it is applied, and
  /// an existing AOF is replayed at start(). Call before start().
  void enable_aof(bool on) { aof_enabled_ = on; }
  std::size_t aof_records_replayed() const { return aof_replayed_; }

  /// Torn/corrupt tail bytes dropped from the AOF by the last start()'s
  /// recovery scan (0 when the log ended on a whole, valid record).
  std::size_t aof_torn_bytes() const { return aof_torn_bytes_; }

  /// Durability-barrier policy for AOF appends. Defaults to "always"
  /// (overridable with FIR_FSYNC_POLICY); call before start().
  void set_fsync_policy(FsyncPolicy p) { fsync_policy_ = p; }
  FsyncPolicy fsync_policy() const { return fsync_policy_; }

  /// Group commit (policy "batch" only): mutating commands queue their
  /// replies and one barrier retires the whole group before any ack
  /// flushes — acked-implies-durable at a fraction of always-policy's
  /// barrier count. Defaults to the FIR_GROUP_COMMIT_* knobs (off unless
  /// set); call before start().
  void set_group_commit(GroupCommitConfig gc) {
    if (gc.max_acks > GroupCommitConfig::kMaxAcks)
      gc.max_acks = GroupCommitConfig::kMaxAcks;
    group_commit_ = gc;
  }
  const GroupCommitConfig& group_commit() const { return group_commit_; }

 private:
  struct Conn {
    std::int32_t fd;
    std::uint8_t in_use;
    std::uint8_t padding[3];
    std::uint32_t rx_len;
    std::uint64_t commands;
    char rx[2048];
  };

  void accept_clients();
  void client_readable(int fd, Conn* conn);
  /// Executes one command line; writes the reply via reply()/reply_err().
  void execute(int fd, Conn* conn, char* line, std::size_t len);
  void cmd_set(int fd, std::string_view key, std::string_view value);
  void cmd_get(int fd, std::string_view key);
  void cmd_del(int fd, std::string_view key);
  void cmd_incr(int fd, std::string_view key);
  void cmd_append(int fd, std::string_view key, std::string_view value);
  void cmd_mget(int fd, std::string_view keys);
  void cmd_expire(int fd, std::string_view key, std::string_view seconds);
  void cmd_ttl(int fd, std::string_view key);
  void cmd_persist(int fd, std::string_view key);
  void cmd_keys(int fd);
  void cmd_save(int fd);
  /// Lazy expiration: drops the key if its TTL has passed. Returns true
  /// when the key was expired (and is now gone).
  bool purge_if_expired(std::string_view key);
  void reply(int fd, const char* data, std::size_t len);
  /// Raw reply transmission (no group-commit interaction).
  void send_all(int fd, const char* data, std::size_t len);
  /// Group commit: true when deferred acks are in force (AOF on, policy
  /// "batch", nonzero ack budget).
  bool gc_active() const {
    return aof_enabled_ && aof_fd_ >= 0 &&
           fsync_policy_ == FsyncPolicy::kBatch && group_commit_.enabled();
  }
  /// Queues a mutation's ack for the next group retirement (or replies
  /// directly when group commit is off).
  void defer_or_reply(int fd, const char* data, std::size_t len);
  /// One barrier covers every queued mutation, then all acks flush (error
  /// acks on barrier failure). Returns false when the fsync failed.
  bool retire_group();
  /// End-of-pass retirement honoring the FIR_GROUP_COMMIT_US window.
  void maybe_retire_group();
  void close_conn(int fd, Conn* conn);
  /// Appends one mutation record to the AOF (no-op when AOF is off).
  /// Returns false when the append failed (callers reply -ERR).
  bool aof_append(std::string_view line);
  /// Replays an existing AOF into the keyspace (init phase).
  void replay_aof();
  /// Applies one already-parsed mutation without replying or re-logging
  /// (shared by execution and replay).
  bool apply_set(std::string_view key, std::string_view value);
  Conn* conn_of(int fd);

  std::uint16_t port_ = kDefaultPort;
  int listen_fd_ = -1;
  int epfd_ = -1;
  bool running_ = false;

  struct Expiry {
    std::uint64_t at_ns;
  };
  TrackedHashMap<Key, Value> db_{4096};
  TrackedHashMap<Key, Expiry> expires_{1024};
  TrackedPool<Conn> conns_{32};
  std::vector<std::int32_t> fd_conn_;
  tracked<std::uint64_t> dirty_;  // writes since last SAVE
  bool aof_enabled_ = false;
  int aof_fd_ = -1;
  std::size_t aof_replayed_ = 0;
  std::size_t aof_torn_bytes_ = 0;
  FsyncPolicy fsync_policy_ = fsync_policy_from_env(FsyncPolicy::kAlways);
  std::uint32_t aof_unsynced_ = 0;  // records since the last batch barrier

  /// One deferred ack. Slots at or past gc_pending_ are dead, so a command
  /// that queues an ack and then rolls back leaves no trace: the tracked
  /// count snaps back and the slot bytes are never read.
  struct GcAck {
    std::int32_t fd;
    std::uint32_t len;
    char buf[40];
  };
  GroupCommitConfig group_commit_ = group_commit_from_env({});
  GcAck gc_acks_[GroupCommitConfig::kMaxAcks];
  std::uint32_t gc_pending_ = 0;   // mutated via tx_store (rollback-safe)
  std::uint64_t gc_since_ns_ = 0;  // virtual time the oldest ack queued at
};

}  // namespace fir
