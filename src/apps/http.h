// Allocation-free HTTP/1.x parsing and formatting shared by the mini web
// servers.
//
// Everything here works on caller-provided buffers and string_views. The
// discipline is load-bearing: code running inside a crash transaction must
// not create locals with non-trivial destructors, because a rollback longjmp
// does not unwind them (exactly the constraint FIRestarter's instrumented C
// targets live under).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fir::http {

enum class Method : std::uint8_t { kGet = 0, kHead, kPost, kPut, kDelete,
                                   kPropfind, kOptions, kMkcol, kUnknown };

std::string_view method_name(Method m);

/// A parsed request line + the headers the servers care about. All views
/// point into the caller's receive buffer.
struct Request {
  Method method = Method::kUnknown;
  std::string_view target;       // "/index.html?q=1"
  std::string_view path;         // "/index.html"
  std::string_view query;        // "q=1"
  std::string_view version;      // "HTTP/1.1"
  std::string_view host;
  std::string_view range;  // raw Range header value ("bytes=0-99")
  std::string_view body;
  bool keep_alive = true;
  std::size_t header_bytes = 0;  // request-line + headers + blank line
  std::size_t content_length = 0;
};

enum class ParseResult : std::uint8_t {
  kComplete = 0,   // a full request was parsed
  kIncomplete,     // need more bytes
  kBad,            // malformed: respond 400 and close
};

/// Parses one request from `data`. On kComplete the request consumed
/// `out.header_bytes + out.content_length` bytes.
ParseResult parse_request(std::string_view data, Request& out);

/// Formats a response head + body into `buf`; returns bytes written, or 0
/// when it does not fit. `body` may be empty (e.g. HEAD, 204).
std::size_t format_response(char* buf, std::size_t cap, int status,
                            std::string_view reason,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive);

/// Formats just the head (status line through the blank line) announcing a
/// `content_length`-byte body; returns bytes written, or 0 when it does not
/// fit. The gather-write serving path sends the body from its own buffer,
/// so head and body never share a copy.
std::size_t format_response_head(char* buf, std::size_t cap, int status,
                                 std::string_view reason,
                                 std::string_view content_type,
                                 std::size_t content_length, bool keep_alive);

/// Reason phrase for the status codes the servers emit.
std::string_view reason_phrase(int status);

/// Content type from a path's extension ("text/html", "text/plain", ...).
std::string_view mime_type(std::string_view path);

/// True when `path` escapes the document root ("..", embedded NUL).
bool path_is_unsafe(std::string_view path);

/// Decodes %XX escapes in-place-free: writes into out (cap bytes); returns
/// decoded length or 0 on malformed escape / overflow.
std::size_t url_decode(std::string_view in, char* out, std::size_t cap);

/// A parsed "Range: bytes=a-b" request (single range only).
struct ByteRange {
  std::size_t first = 0;
  std::size_t last = 0;  // inclusive
  bool valid = false;
  bool suffix = false;  // "bytes=-N": last N bytes
};

/// Parses a Range header value ("bytes=0-99", "bytes=100-", "bytes=-50").
/// Multi-range and non-byte units yield valid=false.
ByteRange parse_range(std::string_view value);

/// Clamps a parsed range against a resource of `size` bytes. Returns false
/// when the range is unsatisfiable (RFC 7233: respond 416).
bool resolve_range(ByteRange& range, std::size_t size);

}  // namespace fir::http
