#include "apps/littlehttpd.h"

#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace fir {
namespace {
constexpr std::uint32_t kOptReuseAddr = 0x1;
constexpr int kMaxEvents = 64;
constexpr std::int32_t kNone = -1;
constexpr std::size_t kSendChunk = 1024;  // chunked writer: many small sends
}  // namespace

Littlehttpd::Littlehttpd(TxManagerConfig config)
    : Server(config), fd_conn_(1024, kNone) {}

Littlehttpd::~Littlehttpd() { stop(); }

void Littlehttpd::install_default_docroot() {
  Vfs& vfs = fx_.env().vfs();
  vfs.put_file("/srv/index.html",
               "<html><body><h1>littlehttpd</h1></body></html>");
  vfs.put_file("/srv/readme.txt", "littlehttpd: small and fast\n");
  std::string payload(6000, 'l');
  vfs.put_file("/srv/blob.bin", payload);
  vfs.put_file("/srv/dav/notes.txt", "dav-managed notes\n");
}

Status Littlehttpd::start(std::uint16_t port) {
  if (running_) return Status(ErrorCode::kFailedPrecondition, "running");
  port_ = port != 0 ? port : kDefaultPort;
  install_default_docroot();

  const int s = FIR_SOCKET(fx_);
  if (s < 0) return Status(ErrorCode::kResourceExhausted, "socket");
  if (FIR_SETSOCKOPT(fx_, s, kOptReuseAddr) == -1 ||
      FIR_BIND(fx_, s, port_) == -1 || FIR_LISTEN(fx_, s, 64) == -1 ||
      FIR_FCNTL_NONBLOCK(fx_, s, true) == -1) {
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "listener setup");
  }
  const int ep = FIR_EPOLL_CREATE1(fx_);
  if (ep < 0 || FIR_EPOLL_CTL(fx_, ep, kEpollAdd, s, kPollIn) == -1) {
    if (ep >= 0) FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "epoll setup");
  }
  const int elog = FIR_OPEN(fx_, "/logs/error.log", kCreat | kWrOnly);
  if (elog < 0) {
    FIR_CLOSE(fx_, ep);
    FIR_CLOSE(fx_, s);
    return Status(ErrorCode::kInternal, "error log");
  }
  FIR_QUIESCE(fx_);
  listen_fd_ = s;
  epfd_ = ep;
  error_log_fd_ = elog;
  running_ = true;
  return Status::ok();
}

void Littlehttpd::stop() {
  if (!running_) return;
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
  for (std::size_t fd = 0; fd < fd_conn_.size(); ++fd) {
    if (fd_conn_[fd] != kNone) {
      fx_.env().close(static_cast<int>(fd));
      fd_conn_[fd] = kNone;
    }
  }
  fx_.env().close(error_log_fd_);
  fx_.env().close(epfd_);
  fx_.env().close(listen_fd_);
  error_log_fd_ = epfd_ = listen_fd_ = -1;
  running_ = false;
}

Littlehttpd::Conn* Littlehttpd::conn_of(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fd_conn_.size())
    return nullptr;
  const std::int32_t idx = fd_conn_[fd];
  return idx == kNone ? nullptr : conns_.at(static_cast<std::size_t>(idx));
}

void Littlehttpd::run_once() {
  if (!running_) return;
  FIR_ANCHOR(fx_);
  PollEvent events[kMaxEvents];
  const int n = FIR_EPOLL_WAIT(fx_, epfd_, events, kMaxEvents);
  if (n < 0) {
    HSFI_POINT(fx_.hsfi(), "fdevent_poll_retry", /*critical=*/true);
    FIR_QUIESCE(fx_);
    fx_.mgr().clear_anchor();
    return;
  }
  for (int i = 0; i < n; ++i) {
    if (events[i].fd == listen_fd_) {
      accept_one();
      continue;
    }
    Conn* conn = conn_of(events[i].fd);
    if (conn == nullptr) {
      FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, events[i].fd, 0);
      FIR_CLOSE(fx_, events[i].fd);
      continue;
    }
    if (conn->state == kWriting) {
      conn_writable(events[i].fd, conn);
      conn = conn_of(events[i].fd);
    }
    if (conn != nullptr && conn->state == kReading) {
      conn_readable(events[i].fd, conn);
    }
  }
  FIR_QUIESCE(fx_);
  fx_.mgr().clear_anchor();
}

void Littlehttpd::accept_one() {
  for (;;) {
    const int c = FIR_ACCEPT(fx_, listen_fd_);
    if (c < 0) {
      if (fx_.err() != EAGAIN) {
        HSFI_HANDLER_POINT(fx_.hsfi(), "accept_error");
        FIR_LOG(kWarn) << "littlehttpd: accept failed";
      }
      return;
    }
    if (FIR_FCNTL_NONBLOCK(fx_, c, true) == -1) {
      FIR_CLOSE(fx_, c);
      continue;
    }
    Conn* conn = conns_.alloc();
    if (conn == nullptr) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "conn_table_full");
      FIR_CLOSE(fx_, c);
      continue;
    }
    tx_store(conn->fd, c);
    tx_store(conn->state, static_cast<std::uint8_t>(kReading));
    tx_store(conn->keep_alive, static_cast<std::uint8_t>(1));
    tx_store(conn->dav_state_idx, kNone);
    tx_store(fd_conn_[c], static_cast<std::int32_t>(conns_.index_of(conn)));
    if (FIR_EPOLL_CTL(fx_, epfd_, kEpollAdd, c, kPollIn) == -1) {
      close_conn(c, conn);
      continue;
    }
    counters_.connections_accepted += 1;
  }
}

void Littlehttpd::close_conn(int fd, Conn* conn) {
  if (conn->dav_state_idx != kNone) {
    DavState* dav =
        dav_pool_.at(static_cast<std::size_t>(conn->dav_state_idx));
    tx_store(dav->magic, 0u);
    dav_pool_.release(dav);
    tx_store(conn->dav_state_idx, kNone);
  }
  FIR_EPOLL_CTL(fx_, epfd_, kEpollDel, fd, 0);
  FIR_CLOSE(fx_, fd);
  tx_store(fd_conn_[fd], kNone);
  conns_.release(conn);
  counters_.connections_closed += 1;
}

void Littlehttpd::conn_readable(int fd, Conn* conn) {
  const std::uint32_t space =
      static_cast<std::uint32_t>(sizeof(conn->rx)) - conn->rx_len;
  if (space == 0) {
    counters_.protocol_errors += 1;
    close_conn(fd, conn);
    return;
  }
  const ssize_t r = FIR_READ(fx_, fd, conn->rx + conn->rx_len, space);
  if (r < 0) {
    if (fx_.err() == EAGAIN) return;
    HSFI_HANDLER_POINT(fx_.hsfi(), "read_error");
    close_conn(fd, conn);
    return;
  }
  if (r == 0) {
    close_conn(fd, conn);
    return;
  }
  tx_store(conn->rx_len, conn->rx_len + static_cast<std::uint32_t>(r));

  http::Request req;
  const auto result = http::parse_request({conn->rx, conn->rx_len}, req);
  HSFI_POINT(fx_.hsfi(), "request_parse", /*critical=*/false);
  if (result == http::ParseResult::kIncomplete) return;
  if (result == http::ParseResult::kBad) {
    counters_.responses_4xx += 1;
    counters_.protocol_errors += 1;
    queue_response(conn, 400, "text/html", "<h1>400</h1>", 12, false);
  } else {
    dispatch_request(fd, conn, req);
    // Consume the request; keep pipelined bytes.
    const std::uint32_t consumed = static_cast<std::uint32_t>(
        req.header_bytes + req.content_length);
    const std::uint32_t rest =
        consumed <= conn->rx_len ? conn->rx_len - consumed : 0;
    if (rest > 0) {
      StoreGate::record(conn->rx, rest);
      std::memmove(conn->rx, conn->rx + consumed, rest);
    }
    tx_store(conn->rx_len, rest);
    tx_store(conn->keep_alive, static_cast<std::uint8_t>(req.keep_alive));
  }
  tx_store(conn->state, static_cast<std::uint8_t>(kWriting));
  FIR_EPOLL_CTL(fx_, epfd_, kEpollMod, fd, kPollOut);
  conn_writable(fd, conn);
}

void Littlehttpd::touch_dav_state(Conn* conn) {
  if (conn->dav_state_idx == kNone) return;
  DavState* dav =
      dav_pool_.at(static_cast<std::size_t>(conn->dav_state_idx));
  // Bug #2780's crash site: the handle was released but the connection kept
  // the pointer; lighttpd dereferences freed memory here. The magic check
  // models the MMU fault on the poisoned allocation.
  if (dav->magic != kDavMagic) raise_crash(CrashKind::kSegv);
  (void)dav->lock_serial;
}

void Littlehttpd::dispatch_request(int fd, Conn* conn,
                                   const http::Request& req) {
  (void)fd;
  HSFI_POINT(fx_.hsfi(), "dispatch", /*critical=*/false);
  if (http::path_is_unsafe(req.path)) {
    HSFI_POINT(fx_.hsfi(), "unsafe_path", /*critical=*/false);
    counters_.responses_4xx += 1;
    queue_response(conn, 403, "text/html", "<h1>403</h1>", 12,
                   req.keep_alive);
    return;
  }
  if (req.method == http::Method::kOptions) {
    // Capability discovery (lighttpd answers from static config).
    HSFI_POINT(fx_.hsfi(), "options_probe", /*critical=*/false);
    counters_.requests_ok += 1;
    queue_response(conn, 204, "text/plain", "", 0, req.keep_alive);
    return;
  }
  if (req.method == http::Method::kPropfind ||
      req.method == http::Method::kPut ||
      req.method == http::Method::kDelete ||
      req.method == http::Method::kMkcol) {
    handle_webdav(conn, req);
    webdav_connection_reset(conn);
    return;
  }
  handle_static(conn, req);
}

void Littlehttpd::webdav_connection_reset(Conn* conn) {
  HSFI_POINT(fx_.hsfi(), "webdav_connection_reset", /*critical=*/false);
  if (conn->dav_state_idx == kNone) return;
  DavState* dav =
      dav_pool_.at(static_cast<std::size_t>(conn->dav_state_idx));
  tx_store(dav->magic, 0u);
  dav_pool_.release(dav);
  if (!webdav_uaf_bug_) {
    tx_store(conn->dav_state_idx, kNone);  // the cleanup bug #2780 skips
  }
}

void Littlehttpd::handle_webdav(Conn* conn, const http::Request& req) {
  HSFI_POINT(fx_.hsfi(), "webdav_enter", /*critical=*/false);
  // Allocate the per-connection DAV handle.
  if (conn->dav_state_idx == kNone) {
    DavState* dav = dav_pool_.alloc();
    if (dav == nullptr) {
      counters_.responses_5xx += 1;
      queue_response(conn, 503, "text/plain", "busy\n", 5, req.keep_alive);
      return;
    }
    tx_store(dav->magic, kDavMagic);
    tx_store(dav->lock_serial, dav->lock_serial + 1u);
    tx_store(conn->dav_state_idx,
             static_cast<std::int32_t>(dav_pool_.index_of(dav)));
  } else {
    touch_dav_state(conn);
  }

  char full[1100];
  std::snprintf(full, sizeof(full), "/srv%.*s",
                static_cast<int>(req.path.size()), req.path.data());

  if (req.method == http::Method::kPut) {
    const int ffd = FIR_OPEN64(fx_, full, kCreat | kWrOnly | kTrunc);
    if (ffd < 0) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "dav_put_open_failed");
      counters_.responses_4xx += 1;
      queue_response(conn, 403, "text/html", "<h1>403 - Forbidden</h1>", 24,
                     req.keep_alive);
      return;
    }
    const ssize_t w =
        FIR_PWRITE(fx_, ffd, req.body.data(), req.body.size(), 0);
    if (w < 0) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "dav_put_write_failed");
      counters_.responses_5xx += 1;
      queue_response(conn, 500, "text/html", "", 0, req.keep_alive);
      FIR_CLOSE(fx_, ffd);
      return;
    }
    FIR_CLOSE(fx_, ffd);
    counters_.requests_ok += 1;
    queue_response(conn, 201, "text/plain", "created\n", 8, req.keep_alive);
    return;
  }

  if (req.method == http::Method::kMkcol) {
    // Collections are modeled as marker files ("<dir>/.collection").
    HSFI_POINT(fx_.hsfi(), "dav_mkcol", /*critical=*/false);
    char marker[1150];
    std::snprintf(marker, sizeof(marker), "%s/.collection", full);
    if (fx_.env().vfs().exists(marker)) {
      counters_.responses_4xx += 1;
      queue_response(conn, 405, "text/html", "<h1>405</h1>", 12,
                     req.keep_alive);
      return;
    }
    const int cfd = FIR_OPEN64(fx_, marker, kCreat | kWrOnly);
    if (cfd < 0) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "dav_mkcol_failed");
      counters_.responses_4xx += 1;
      queue_response(conn, 403, "text/html", "<h1>403 - Forbidden</h1>", 24,
                     req.keep_alive);
      return;
    }
    FIR_CLOSE(fx_, cfd);
    counters_.requests_ok += 1;
    queue_response(conn, 201, "text/plain", "created\n", 8, req.keep_alive);
    return;
  }

  if (req.method == http::Method::kDelete) {
    // The deferred unlink runs at this transaction's commit, after this
    // frame may be gone — the path must live in stable storage.
    std::memcpy(unlink_path_, full, sizeof(unlink_path_));
    if (FIR_UNLINK(fx_, unlink_path_) == -1) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "dav_delete_missing");
      counters_.responses_4xx += 1;
      queue_response(conn, 404, "text/html", "<h1>404</h1>", 12,
                     req.keep_alive);
      return;
    }
    counters_.requests_ok += 1;
    queue_response(conn, 204, "text/plain", "", 0, req.keep_alive);
    return;
  }

  // PROPFIND.
  std::size_t fsize = 0;
  if (FIR_STAT_SIZE(fx_, full, &fsize) == -1) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "dav_propfind_missing");
    counters_.responses_4xx += 1;
    queue_response(conn, 404, "text/html", "<h1>404</h1>", 12,
                   req.keep_alive);
    return;
  }
  char body[512];
  const int blen = std::snprintf(
      body, sizeof(body),
      "<?xml version=\"1.0\"?><d:multistatus><d:response>"
      "<d:href>%.*s</d:href><d:propstat><d:prop>"
      "<d:getcontentlength>%zu</d:getcontentlength></d:prop>"
      "</d:propstat></d:response></d:multistatus>",
      static_cast<int>(req.path.size()), req.path.data(), fsize);
  counters_.requests_ok += 1;
  queue_response(conn, 207, "application/xml", body,
                 static_cast<std::size_t>(blen), req.keep_alive);
}

void Littlehttpd::handle_static(Conn* conn, const http::Request& req) {
  HSFI_POINT(fx_.hsfi(), "static_enter", /*critical=*/false);
  if (req.method != http::Method::kGet &&
      req.method != http::Method::kHead) {
    counters_.responses_4xx += 1;
    queue_response(conn, 405, "text/html", "<h1>405</h1>", 12,
                   req.keep_alive);
    return;
  }
  char full[1100];
  std::snprintf(full, sizeof(full), "/srv%.*s%s",
                static_cast<int>(req.path.size()), req.path.data(),
                req.path.ends_with("/") ? "index.html" : "");

  const int ffd = FIR_OPEN64(fx_, full, kRdOnly);
  if (ffd < 0) {
    // §VI-F: the WebDAV UAF crash (inside touch_dav_state below on the
    // re-executed path, or inside this handler) diverts at this open64
    // gate; the error path answers "403 - Forbidden", as the paper reports.
    HSFI_HANDLER_POINT(fx_.hsfi(), "static_open_failed");
    counters_.responses_4xx += 1;
    queue_response(conn, 403, "text/html", "<h1>403 - Forbidden</h1>", 24,
                   req.keep_alive);
    return;
  }
  // The missing-cleanup bug fires here: a mixed (non-DAV) request touches
  // the stale DAV handle while preparing the response.
  touch_dav_state(conn);

  std::size_t fsize = 0;
  if (FIR_FSTAT_SIZE(fx_, ffd, &fsize) == -1) {
    counters_.responses_5xx += 1;
    queue_response(conn, 500, "text/html", "", 0, req.keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  char* scratch = static_cast<char*>(FIR_MALLOC(fx_, fsize + 1));
  if (scratch == nullptr) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "static_oom");
    counters_.responses_5xx += 1;
    queue_response(conn, 500, "text/html", "<h1>500</h1>", 12,
                   req.keep_alive);
    FIR_CLOSE(fx_, ffd);
    return;
  }
  const ssize_t got = FIR_PREAD(fx_, ffd, scratch, fsize, 0);
  if (got < 0) {
    HSFI_HANDLER_POINT(fx_.hsfi(), "static_read_failed");
    counters_.responses_5xx += 1;
    queue_response(conn, 500, "text/html", "", 0, req.keep_alive);
  } else {
    counters_.requests_ok += 1;
    const std::string_view mime = http::mime_type(full);
    char mime_buf[64];
    std::snprintf(mime_buf, sizeof(mime_buf), "%.*s",
                  static_cast<int>(mime.size()), mime.data());
    queue_response(conn, 200, mime_buf, scratch,
                   req.method == http::Method::kHead
                       ? 0
                       : static_cast<std::size_t>(got),
                   req.keep_alive);
  }
  FIR_FREE(fx_, scratch);
  FIR_CLOSE(fx_, ffd);
}

void Littlehttpd::queue_response(Conn* conn, int status,
                                 const char* content_type, const char* body,
                                 std::size_t len, bool keep_alive) {
  char buf[sizeof(Conn::tx)];
  const std::size_t n = http::format_response(
      buf, sizeof(buf), status, http::reason_phrase(status), content_type,
      {body, len}, keep_alive);
  tx_memcpy(conn->tx, buf, n);
  tx_store(conn->tx_len, static_cast<std::uint32_t>(n));
  tx_store(conn->tx_off, 0u);
  if (status >= 400) {
    char line[128];
    const int llen = std::snprintf(line, sizeof(line),
                                   "littlehttpd: response status %d\n",
                                   status);
    // Error-log write: its own (irrecoverable) transaction per event,
    // lighttpd-style.
    if (FIR_WRITE(fx_, error_log_fd_, line,
                  static_cast<std::size_t>(llen)) < 0) {
      HSFI_HANDLER_POINT(fx_.hsfi(), "errorlog_write_failed");
    }
  }
}

void Littlehttpd::conn_writable(int fd, Conn* conn) {
  while (conn->tx_off < conn->tx_len) {
    // Chunked writer: at most kSendChunk bytes per send() — many small
    // irrecoverable transactions, lighttpd's signature shape in Table III.
    const std::size_t remaining = conn->tx_len - conn->tx_off;
    const std::size_t chunk =
        remaining < kSendChunk ? remaining : kSendChunk;
    const ssize_t w = FIR_SEND(fx_, fd, conn->tx + conn->tx_off, chunk);
    if (w < 0) {
      if (fx_.err() == EAGAIN) return;
      HSFI_HANDLER_POINT(fx_.hsfi(), "write_chunk_failed");
      close_conn(fd, conn);
      return;
    }
    tx_store(conn->tx_off, conn->tx_off + static_cast<std::uint32_t>(w));
    HSFI_POINT(fx_.hsfi(), "write_chunk_done", /*critical=*/false);
  }
  tx_store(conn->tx_len, 0u);
  tx_store(conn->tx_off, 0u);
  if (conn->keep_alive != 0) {
    tx_store(conn->state, static_cast<std::uint8_t>(kReading));
    FIR_EPOLL_CTL(fx_, epfd_, kEpollMod, fd, kPollIn);
  } else {
    close_conn(fd, conn);
  }
}


std::size_t Littlehttpd::resident_state_bytes() const {
  return conns_.footprint_bytes() + dav_pool_.footprint_bytes() +
         fd_conn_.capacity() * sizeof(std::int32_t) + sizeof(*this);
}

}  // namespace fir
