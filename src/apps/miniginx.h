// miniginx: an nginx-shaped event-driven web server.
//
// Structure mirrors the paper's running example and evaluation target:
// epoll event loop, non-blocking sockets, per-request heap scratch
// (malloc -> 500-on-OOM, the paper's §V-B example), static file serving via
// open/pread/close, keep-alive connections, and a Server Side Includes
// (SSI) substitution pass with an optional NULL-pointer-dereference bug
// reproducing nginx 1.11.0 ticket #1263 (§VI-F).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "apps/http.h"
#include "apps/server.h"
#include "mem/tracked_pool.h"

namespace fir {

class Miniginx final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 8080;

  explicit Miniginx(TxManagerConfig config = {});
  ~Miniginx() override;

  const char* name() const override { return "miniginx"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  /// Enables the §VI-F NULL-deref bug: SSI substitution of an unknown
  /// variable dereferences the NULL lookup result.
  void enable_ssi_null_bug(bool on) { ssi_null_bug_ = on; }

  /// Populates the document root with the default test-suite content.
  void install_default_docroot();

 private:
  struct Conn {
    std::int32_t fd;
    std::uint8_t state;  // ConnState
    std::uint8_t keep_alive;
    std::uint16_t padding;
    std::uint32_t rx_len;
    std::uint32_t tx_len;
    std::uint32_t tx_off;
    std::uint64_t served;
    char rx[4096];
    char tx[16384];
  };
  enum ConnState : std::uint8_t { kReading = 1, kWriting = 2 };

  void accept_new_connections();
  void handle_readable(int fd, Conn* conn);
  void handle_writable(int fd, Conn* conn);
  /// Processes one complete request in conn->rx; fills conn->tx.
  void process_request(int fd, Conn* conn);
  /// Serves a static file (with optional SSI pass) into conn->tx.
  void serve_file(Conn* conn, const char* full_path, bool keep_alive,
                  bool head_only, std::string_view range);
  /// Dedicated large-file path (distinct transaction sites; see Fig. 3).
  void serve_big_file(Conn* conn, const char* full_path, std::size_t fsize,
                      bool keep_alive, bool head_only);
  /// SSI variable lookup; returns nullptr for unknown variables when the
  /// §VI-F bug is enabled, "(none)" otherwise.
  const char* ssi_get_variable(const char* name, std::size_t len);
  /// Expands <!--#echo var="..." --> directives from src into dst.
  std::size_t ssi_expand(const char* src, std::size_t len, char* dst,
                         std::size_t cap);
  void queue_response(Conn* conn, int status, const char* content_type,
                      const char* body, std::size_t body_len,
                      bool keep_alive);
  /// Serves a byte range of a file (206 Partial Content / 416).
  void serve_range(Conn* conn, const char* full_path, std::size_t fsize,
                   http::ByteRange range, bool keep_alive);
  /// Appends one access-log line (buffered write, nginx-style).
  void access_log(const http::Request& req, int status);
  void close_conn(int fd, Conn* conn);
  Conn* conn_of(int fd);

  std::uint16_t port_ = kDefaultPort;
  int listen_fd_ = -1;
  int epfd_ = -1;
  int access_log_fd_ = -1;
  /// Status of the most recently queued response (access-log input).
  int last_status_ = 0;
  bool running_ = false;
  bool ssi_null_bug_ = false;
  /// Responses above this take the dedicated large-file path.
  static constexpr std::size_t kBigFileBytes = 8 * 1024;

  TrackedPool<Conn> conns_{64};
  std::vector<std::int32_t> fd_conn_;  // fd -> pool index, tracked stores
};

}  // namespace fir
