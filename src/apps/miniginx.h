// miniginx: an nginx-shaped event-driven web server.
//
// Structure mirrors the paper's running example and evaluation target:
// epoll event loop, non-blocking sockets, per-request heap scratch
// (malloc -> 500-on-OOM, the paper's §V-B example), static file serving via
// open/pread/close, keep-alive connections, and a Server Side Includes
// (SSI) substitution pass with an optional NULL-pointer-dereference bug
// reproducing nginx 1.11.0 ticket #1263 (§VI-F).
//
// Two execution modes share the same handler code:
//   * cooperative: the workload driver calls run_once() on its own thread
//     (the historical single-threaded mode);
//   * worker pool: start_workers(n) spawns n event-loop threads, each with
//     its own listener (port+1+i, nginx's SO_REUSEPORT-per-worker shape),
//     epoll instance, connection pool and fd map. Workers share the Fx —
//     the per-thread recovery runtime gives each its own crash
//     transactions, and an unrecoverable fault kills only the worker it
//     fired on (crash containment), never its siblings.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string_view>
#include <thread>
#include <vector>

#include "apps/http.h"
#include "apps/server.h"
#include "mem/tracked_pool.h"

namespace fir {

/// Serving fast-path knobs, read once at server construction (rows in
/// docs/KNOBS.md; CLI flags in obs/cli.cpp).
struct ServingConfig {
  /// Hard ceiling for FIR_PIPELINE_MAX (sizes the per-connection slice
  /// table).
  static constexpr int kMaxPipeline = 16;

  /// FIR_KEEPALIVE. false: every response carries `Connection: close` and
  /// the connection drops after the flush — the legacy close-per-request
  /// arm the serving benchmark compares against.
  bool keep_alive = true;
  /// FIR_PIPELINE_MAX: back-to-back requests parsed per readiness event
  /// before the batched flush (clamped to [1, kMaxPipeline]).
  int pipeline_max = 8;
  /// FIR_WRITEV. false: one gated send() per response slice instead of a
  /// single gated writev() per flush pass.
  bool use_writev = true;
  /// FIR_REUSEPORT. true: every listener (cooperative loop and workers)
  /// sets SO_REUSEPORT and binds the SAME port; the env deals connections
  /// round-robin across the group — nginx's one-port-per-fleet shape.
  /// false (default): worker i listens on port()+1+i as before.
  bool reuse_port = false;

  static ServingConfig from_env();
};

class Miniginx final : public Server {
 public:
  static constexpr std::uint16_t kDefaultPort = 8080;

  explicit Miniginx(TxManagerConfig config = {});
  ~Miniginx() override;

  const char* name() const override { return "miniginx"; }
  Status start(std::uint16_t port) override;
  void run_once() override;
  void stop() override;
  std::uint16_t port() const override { return port_; }
  std::size_t resident_state_bytes() const override;

  /// Enables the §VI-F NULL-deref bug: SSI substitution of an unknown
  /// variable dereferences the NULL lookup result (fail-stop via the
  /// defensive check_ptr -> synchronous crash channel).
  void enable_ssi_null_bug(bool on) { ssi_null_bug_ = on; }

  /// Enables the §VI-F bug WITHOUT the defensive check: the NULL result is
  /// dereferenced by an actual load, so the fault arrives as a genuine
  /// SIGSEGV. Requires FIR_SIGNALS=1 to be survivable — exactly how the
  /// unpatched nginx bug behaves. Implies enable_ssi_null_bug().
  void enable_hard_ssi_null_bug(bool on) {
    ssi_hard_null_bug_ = on;
    if (on) ssi_null_bug_ = true;
  }

  /// Populates the document root with the default test-suite content.
  void install_default_docroot();

  /// Drain hook: closes the cooperative loop's listener so no new
  /// connections are accepted; established connections keep being served
  /// by run_once() until their batches flush. Idempotent.
  void stop_accepting();
  bool accepting() const { return running_ && loop_.listen_fd >= 0; }

  // --- worker pool --------------------------------------------------------
  /// Spawns `n` worker event-loop threads. Worker i listens on
  /// port() + 1 + i (query with worker_port). Requires start() first.
  Status start_workers(int n);
  /// Stops and joins all workers, releases their resources, and folds
  /// their service counters into the server-wide aggregate.
  void stop_workers();
  int worker_count() const { return static_cast<int>(workers_.size()); }
  std::uint16_t worker_port(int i) const {
    return workers_[static_cast<std::size_t>(i)].port;
  }
  /// False once worker i died to an unrecoverable fault (its siblings keep
  /// running — the property the threaded recovery tests assert).
  bool worker_alive(int i) const {
    return workers_[static_cast<std::size_t>(i)].alive.load(
        std::memory_order_relaxed);
  }
  /// Service counters summed over the cooperative loop and every worker
  /// (the per-worker counters are single-writer; read when quiescent for
  /// exact totals).
  ServerCounters aggregated_counters() const;

  /// The knob values this server was constructed with (benchmark arms
  /// report them alongside their numbers).
  const ServingConfig& serving() const { return serving_; }

 private:
  /// One queued stretch of response bytes. Heads point into Conn::tx,
  /// bodies into the per-connection arena or static storage — all stable
  /// until the batch flushes, so the flush gathers them without copying.
  struct Slice {
    const char* data;
    std::uint32_t len;
    std::uint32_t reserved;
  };
  static constexpr std::uint32_t kMaxSlices =
      2 * static_cast<std::uint32_t>(ServingConfig::kMaxPipeline);
  /// Per-connection bump arena geometry. A chunk must fit the small-file
  /// path's worst pair of allocations (8 KiB file + SSI headroom twice,
  /// ~17.5 KiB) — see batch_has_room().
  static constexpr std::uint32_t kArenaChunkBytes = 20 * 1024;
  static constexpr int kArenaChunkSlots = 6;
  /// batch_has_room() reserves a full chunk per pending response, so a
  /// mid-chunk remainder can never strand a batch in a spurious OOM.
  static constexpr std::uint32_t kMaxBodyScratch = kArenaChunkBytes;
  static constexpr std::uint32_t kMaxHeadBytes = 256;

  struct Conn {
    std::int32_t fd;
    std::uint8_t state;  // ConnState
    std::uint8_t keep_alive;
    std::uint8_t close_after_flush;
    std::uint8_t padding;
    std::uint32_t rx_len;
    std::uint32_t tx_len;   // total queued response bytes (sum of slices)
    std::uint32_t tx_off;   // of which already sent
    std::uint32_t hdr_used; // bytes of tx[] holding this batch's heads
    std::uint32_t n_slices;
    std::uint64_t served;
    // Bump arena: chunks are FIR_MALLOC'd on demand, rewound (kept) when a
    // batch flushes, FIR_FREE'd when the connection closes.
    char* arena_chunks[kArenaChunkSlots];
    std::uint32_t arena_chunk;  // current chunk index
    std::uint32_t arena_used;   // bump offset within the current chunk
    Slice slices[kMaxSlices];
    char rx[4096];
    char tx[16384];  // response heads (bodies live in the arena)
  };
  enum ConnState : std::uint8_t { kReading = 1, kWriting = 2 };

  /// One event loop's worth of state. The cooperative run_once() loop and
  /// every worker thread each own one — connection pool, fd map and
  /// counters are never shared across threads, only the Fx (whose runtime
  /// is per-thread underneath) and the access log fd (Env-serialized).
  struct WorkerState {
    int index = -1;  // -1: the cooperative run_once() loop
    std::uint16_t port = 0;
    int listen_fd = -1;
    int epfd = -1;
    int last_status = 0;  // most recently queued response (access log)
    /// Where the handlers account; aliases Server::counters_ for the
    /// cooperative loop, own_counters for workers (single-writer each).
    ServerCounters* counters = nullptr;
    ServerCounters own_counters;
    TrackedPool<Conn> conns{64};
    std::vector<std::int32_t> fd_conn =
        std::vector<std::int32_t>(1024, -1);  // fd -> pool index
    std::atomic<bool> alive{false};
    std::thread thread;
  };

  /// Gated listener + epoll setup for one loop (runs on the calling
  /// thread; init phase, unprotected).
  Status open_listener(WorkerState& ws);
  void release_loop_resources(WorkerState& ws);
  void worker_main(WorkerState& ws);
  /// One epoll pass; returns true when any event was handled. timeout_ms
  /// > 0 blocks the pass in the env's epoll when nothing is ready
  /// (worker-pool mode); the cooperative run_once() loop passes 0.
  bool event_pass(WorkerState& ws, int timeout_ms = 0);

  void accept_new_connections(WorkerState& ws);
  void handle_readable(WorkerState& ws, int fd, Conn* conn);
  void handle_writable(WorkerState& ws, int fd, Conn* conn);
  /// Parses up to serving_.pipeline_max complete requests out of conn->rx,
  /// queues their responses on the slice table, then flushes the batch.
  void process_request(WorkerState& ws, int fd, Conn* conn);

  // --- per-connection arena + response slice table ------------------------
  /// Bump-allocates `n` body bytes; FIR_MALLOCs a chunk when needed.
  /// Returns nullptr on allocation failure (the callers' OOM paths).
  char* arena_alloc(Conn* conn, std::size_t n);
  /// Resets the bump cursor after a flush; chunks are kept for reuse.
  void arena_rewind(Conn* conn);
  /// Appends one response slice (stable storage) to the batch.
  void push_slice(Conn* conn, const char* data, std::uint32_t len);
  /// Copies a formatted head into Conn::tx and slices it.
  void push_head(Conn* conn, const char* head, std::size_t len);
  /// True while the batch can absorb another worst-case response.
  bool batch_has_room(const Conn* conn) const;
  /// Serves a static file (with optional SSI pass) into conn->tx.
  void serve_file(WorkerState& ws, Conn* conn, const char* full_path,
                  bool keep_alive, bool head_only, std::string_view range);
  /// Dedicated large-file path (distinct transaction sites; see Fig. 3).
  void serve_big_file(WorkerState& ws, Conn* conn, const char* full_path,
                      std::size_t fsize, bool keep_alive, bool head_only);
  /// SSI variable lookup; returns nullptr for unknown variables when the
  /// §VI-F bug is enabled, "(none)" otherwise.
  const char* ssi_get_variable(const char* name, std::size_t len);
  /// Expands <!--#echo var="..." --> directives from src into dst.
  std::size_t ssi_expand(const char* src, std::size_t len, char* dst,
                         std::size_t cap);
  void queue_response(WorkerState& ws, Conn* conn, int status,
                      const char* content_type, const char* body,
                      std::size_t body_len, bool keep_alive);
  /// Serves a byte range of a file (206 Partial Content / 416).
  void serve_range(WorkerState& ws, Conn* conn, const char* full_path,
                   std::size_t fsize, http::ByteRange range, bool keep_alive);
  /// Appends one access-log line (buffered write, nginx-style).
  void access_log(const http::Request& req, int status);
  void close_conn(WorkerState& ws, int fd, Conn* conn);
  Conn* conn_of(WorkerState& ws, int fd);

  ServingConfig serving_ = ServingConfig::from_env();
  std::uint16_t port_ = kDefaultPort;
  int access_log_fd_ = -1;
  bool running_ = false;
  bool ssi_null_bug_ = false;
  bool ssi_hard_null_bug_ = false;
  /// Responses above this take the dedicated large-file path.
  static constexpr std::size_t kBigFileBytes = 8 * 1024;

  WorkerState loop_;  // the cooperative run_once() loop's state
  std::deque<WorkerState> workers_;  // address-stable (threads hold refs)
  std::atomic<bool> workers_running_{false};
};

}  // namespace fir
