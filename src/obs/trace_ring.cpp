#include "obs/trace_ring.h"

#include <algorithm>

namespace fir::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTxBegin: return "tx-begin";
    case EventKind::kTxCommit: return "tx-commit";
    case EventKind::kTxCoalesce: return "tx-coalesce";
    case EventKind::kSnapshotOversize: return "snapshot-oversize";
    case EventKind::kDeferredFlush: return "deferred-flush";
    case EventKind::kHtmAbort: return "htm-abort";
    case EventKind::kStmFallback: return "stm-fallback";
    case EventKind::kSiteDemotion: return "site-demotion";
    case EventKind::kCrash: return "crash";
    case EventKind::kRollback: return "rollback";
    case EventKind::kRetry: return "retry";
    case EventKind::kCompensation: return "compensation";
    case EventKind::kFaultInjection: return "fault-injection";
    case EventKind::kSignalCaught: return "signal-caught";
    case EventKind::kDoubleFault: return "double-fault";
    case EventKind::kWatchdogFire: return "watchdog-fire";
    case EventKind::kWorkerSpawn: return "worker-spawn";
    case EventKind::kWorkerDeath: return "worker-death";
    case EventKind::kWorkerRestart: return "worker-restart";
    case EventKind::kWorkerQuarantine: return "quarantine";
    case EventKind::kWorkerDrain: return "worker-drain";
    case EventKind::kKindCount: break;
  }
  return "?";
}

const char* event_class_name(EventClass cls) {
  switch (cls) {
    case EventClass::kTx: return "tx";
    case EventClass::kHtm: return "htm";
    case EventClass::kRecovery: return "recovery";
    case EventClass::kFleet: return "fleet";
  }
  return "?";
}

EventClass event_class(EventKind kind) {
  switch (kind) {
    case EventKind::kTxBegin:
    case EventKind::kTxCommit:
    case EventKind::kTxCoalesce:
    case EventKind::kSnapshotOversize:
    case EventKind::kDeferredFlush:
      return EventClass::kTx;
    case EventKind::kHtmAbort:
    case EventKind::kStmFallback:
    case EventKind::kSiteDemotion:
      return EventClass::kHtm;
    case EventKind::kWorkerSpawn:
    case EventKind::kWorkerDeath:
    case EventKind::kWorkerRestart:
    case EventKind::kWorkerQuarantine:
    case EventKind::kWorkerDrain:
      return EventClass::kFleet;
    default:
      return EventClass::kRecovery;
  }
}

std::uint32_t event_class_mask(EventClass cls) {
  std::uint32_t mask = 0;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (event_class(kind) == cls) mask |= event_bit(kind);
  }
  return mask;
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))) {
  mask_ = slots_.size() - 1;
}

std::uint16_t TraceRing::thread_slot() {
  // Dense per-ring ids (first emitter = 0) keep exporter output
  // deterministic in the single-threaded common case.
  thread_local const TraceRing* cached_ring = nullptr;
  thread_local std::uint16_t cached_slot = 0;
  if (cached_ring != this) {
    cached_slot = static_cast<std::uint16_t>(
        thread_count_.fetch_add(1, std::memory_order_relaxed));
    cached_ring = this;
  }
  return cached_slot;
}

void TraceRing::emit_always(EventKind kind, std::uint32_t site,
                            std::uint64_t t_ns, const char* code,
                            std::int64_t a0, std::int64_t a1) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq & mask_];
  TraceEvent& e = slot.event;
  e.seq = seq;
  e.t_ns = t_ns;
  e.a0 = a0;
  e.a1 = a1;
  e.code = code;
  e.site = site;
  e.thread = thread_slot();
  e.kind = kind;
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::uint64_t TraceRing::dropped() const {
  const std::uint64_t total = total_emitted();
  return total > slots_.size() ? total - slots_.size() : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t total = total_emitted();
  const std::uint64_t resident = std::min<std::uint64_t>(total, slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(resident);
  for (std::uint64_t seq = total - resident; seq < total; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    TraceEvent copy = slot.event;
    // Seqlock validation: a concurrent overwrite bumps the stamp; discard
    // the (possibly torn) copy in that case.
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(copy);
  }
  return out;
}

void TraceRing::clear() {
  for (Slot& slot : slots_) slot.stamp.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
}

}  // namespace fir::obs
