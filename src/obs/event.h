// Typed recovery events for the runtime observability layer.
//
// Every noteworthy action of the recovery runtime — a transaction opening or
// committing, an HTM abort, a crash, a rollback, an injected error — is
// recorded as one fixed-size TraceEvent in the obs::TraceRing. Events are
// machine-diffable: the bench harness and production operators consume them
// through the JSONL exporter (obs/export.h) instead of scraping the
// human-readable tables in src/report.
//
// The obs layer sits below src/core on purpose: it depends only on
// src/common, so core, htm, stm and interpose can all publish into it
// without dependency cycles. Site ids are carried as raw std::uint32_t
// (the value of fir::SiteId) for the same reason.
#pragma once

#include <cstdint>

#include "common/cacheline.h"

namespace fir::obs {

/// Site id sentinel, mirroring fir::kInvalidSite without including core.
inline constexpr std::uint32_t kNoSite = static_cast<std::uint32_t>(-1);

/// What happened. One enumerator per row of docs/OBSERVABILITY.md §2.
enum class EventKind : std::uint8_t {
  kTxBegin = 0,     // crash transaction opened at a gate
  kTxCommit,        // transaction committed (next gate / quiesce)
  kTxCoalesce,      // quiescent call extended the open transaction instead
                    // of commit+re-checkpoint (a0 = run length so far)
  kSnapshotOversize,  // stack span exceeded StackSnapshot::kMaxBytes; the
                      // transaction runs unprotected (a0 = span bytes)
  kDeferredFlush,   // deferred library-call effects ran at commit
  kHtmAbort,        // simulated TSX abort (code = abort reason)
  kStmFallback,     // re-execution switched from HTM to STM
  kSiteDemotion,    // adaptive policy permanently demoted a site to STM
  kCrash,           // fatal fault entered the crash channel
  kRollback,        // memory + stack state rolled back to the checkpoint
  kRetry,           // rollback followed by re-execution (transient model)
  kCompensation,    // opening call's compensation action ran
  kFaultInjection,  // documented error injected; execution diverted
  kSignalCaught,    // real POSIX signal entered the crash channel
  kDoubleFault,     // crash during recovery itself; process terminating
  kWatchdogFire,    // transaction exceeded its deadline (hang model)
  kWorkerSpawn,     // fleet supervisor forked a worker (a0 = shard,
                    // a1 = pid)
  kWorkerDeath,     // worker process died (code = cause, a0 = shard,
                    // a1 = pid)
  kWorkerRestart,   // worker respawned after backoff (a0 = shard,
                    // a1 = backoff ms)
  kWorkerQuarantine,  // flap breaker tripped; shard handed to a sibling
                      // (a0 = shard, a1 = deaths in window)
  kWorkerDrain,     // planned drain completed; worker exited cleanly
                    // (a0 = shard, a1 = pid)
  kKindCount,       // sentinel — keep last
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kKindCount);

const char* event_kind_name(EventKind kind);

/// Event classes group kinds for the FIR_TRACE_FILTER env var.
enum class EventClass : std::uint8_t {
  kTx = 0,    // kTxBegin, kTxCommit, kTxCoalesce, kSnapshotOversize,
              // kDeferredFlush
  kHtm,       // kHtmAbort, kStmFallback, kSiteDemotion
  kRecovery,  // kCrash, kRollback, kRetry, kCompensation, kFaultInjection,
              // kSignalCaught, kDoubleFault, kWatchdogFire
  kFleet,     // kWorkerSpawn, kWorkerDeath, kWorkerRestart,
              // kWorkerQuarantine, kWorkerDrain (process supervision)
};

const char* event_class_name(EventClass cls);
EventClass event_class(EventKind kind);

/// Bit for `kind` in a TraceRing filter mask.
inline constexpr std::uint32_t event_bit(EventKind kind) {
  return 1u << static_cast<std::uint32_t>(kind);
}

inline constexpr std::uint32_t kAllEventsMask =
    (1u << kEventKindCount) - 1u;

/// Mask selecting every kind in one class.
std::uint32_t event_class_mask(EventClass cls);

/// One recorded event. Padded to a cache line so concurrent emitters never
/// share a line and the ring walks sequentially in line-sized strides.
struct alignas(kCacheLineBytes) TraceEvent {
  std::uint64_t seq = 0;        // monotonically increasing per ring
  std::uint64_t t_ns = 0;       // common/clock.h VirtualClock timestamp
  std::int64_t a0 = 0;          // kind-specific payload (see exporter)
  std::int64_t a1 = 0;          // kind-specific payload
  const char* code = nullptr;   // static name string (abort code, signal, …)
  std::uint32_t site = kNoSite;
  std::uint16_t thread = 0;     // per-ring dense thread slot (first = 0)
  EventKind kind = EventKind::kTxBegin;
};

static_assert(sizeof(TraceEvent) == kCacheLineBytes,
              "TraceEvent must occupy exactly one cache line");

}  // namespace fir::obs
