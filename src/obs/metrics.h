// MetricsRegistry: named counters, gauges and histograms for the recovery
// runtime.
//
// The runtime modules (TxManager, AdaptivePolicy, HtmContext, StmContext,
// the FIR_* gates) publish here instead of keeping ad-hoc private tallies,
// so one snapshot — exportable as JSON/CSV (obs/export.h) or rendered as a
// table (report::metrics_table) — covers the whole process. Two publishing
// styles:
//
//   * live metrics: counter()/gauge()/histogram() return a reference that
//     stays valid for the registry's lifetime; hot paths update it directly
//     (Counter::inc is one relaxed fetch_add — lock-free);
//   * collectors: modules that already maintain cheap internal stats (the
//     HTM/STM engines) register a callback that copies them into gauges
//     when a snapshot is taken, keeping their hot paths untouched.
//
// The canonical metric names are documented in docs/OBSERVABILITY.md §3.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace fir::obs {

/// Monotonic event count. Lock-free; safe to update from any thread.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Collector-style publication: overwrites the count with an externally
  /// maintained tally (second publishing style in the file comment — used
  /// by modules whose hot paths must stay free of atomic RMW ops).
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement (footprints, ratios, high-water marks).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One metric in a snapshot. Histogram-backed samples also carry summary
/// statistics so exporters need not re-derive them.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram count
  // Histogram summary (valid when kind == kHistogram and value > 0).
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// References stay valid until the registry is destroyed, and lookup is
  /// mutex-guarded so concurrent first-use registration from worker threads
  /// is safe (hot paths hold the returned reference and never re-look-up).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a snapshot-time publisher (see file comment).
  void add_collector(std::function<void(MetricsRegistry&)> collector);

  /// Runs collectors, then returns every metric sorted by name.
  std::vector<MetricSample> snapshot();

  /// Zeroes counters and gauges, clears histograms (experiment-phase
  /// boundaries). Registered names and collectors survive.
  void reset();

  std::size_t size() const;

 private:
  // Recursive: collectors run under the lock and call back into
  // counter()/gauge() to publish.
  mutable std::recursive_mutex mu_;
  // node-based maps: stable addresses across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

}  // namespace fir::obs
