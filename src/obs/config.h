// Runtime configuration of the observability layer, in the style of
// Recorder's env-var interception switches (SNIPPETS.md §3): every knob is
// an environment variable so tracing can be turned on for any binary —
// examples, bench harnesses, tests — without recompiling or editing code.
//
//   FIR_TRACE         enable/disable event tracing ("1"/"0"; default off,
//                     or on when built with -DFIR_TRACE=ON)
//   FIR_TRACE_RING    ring capacity in events (default 4096, rounded up to
//                     a power of two)
//   FIR_TRACE_OUT     path for the JSONL trace dump written when a
//                     TxManager shuts down; setting it implies FIR_TRACE=1.
//                     The first dump of the process truncates the file,
//                     later managers append (one file = one process run).
//   FIR_TRACE_FILTER  comma-separated event classes and/or kinds to keep
//                     ("tx", "htm", "recovery", or kind names like
//                     "crash,fault-injection"; default "all")
//   FIR_METRICS_OUT   path for the metrics snapshot written at shutdown;
//                     ".csv" selects CSV, anything else JSON
//
// Programmatic configuration (TxManagerConfig::obs) provides the defaults;
// environment variables override it, so an operator can always turn tracing
// on under an unmodified binary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/event.h"

namespace fir::obs {

inline constexpr const char* kEnvTrace = "FIR_TRACE";
inline constexpr const char* kEnvTraceRing = "FIR_TRACE_RING";
inline constexpr const char* kEnvTraceOut = "FIR_TRACE_OUT";
inline constexpr const char* kEnvTraceFilter = "FIR_TRACE_FILTER";
inline constexpr const char* kEnvMetricsOut = "FIR_METRICS_OUT";

struct ObsConfig {
  /// Master tracing switch. The compile-time default flips to true when the
  /// tree is configured with -DFIR_TRACE=ON (CI builds both).
#if defined(FIR_TRACE_DEFAULT_ON)
  bool trace_enabled = true;
#else
  bool trace_enabled = false;
#endif
  std::size_t ring_capacity = 4096;
  std::uint32_t event_mask = kAllEventsMask;
  std::string trace_out;    // empty: no file dump
  std::string metrics_out;  // empty: no file dump

  /// `base` overridden by any FIR_TRACE_* / FIR_METRICS_OUT env vars set in
  /// the process environment.
  static ObsConfig from_env(ObsConfig base);
  static ObsConfig from_env() { return from_env(ObsConfig{}); }
};

/// Parses a FIR_TRACE_FILTER value ("all", class names, kind names).
/// Unknown tokens are ignored; an empty or all-unknown value yields the
/// full mask rather than silencing the trace.
std::uint32_t parse_event_filter(const std::string& spec);

}  // namespace fir::obs
