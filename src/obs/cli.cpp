#include "obs/cli.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/config.h"

namespace fir::obs {

namespace {

struct FlagSpec {
  const char* flag;      // "--trace-out"
  const char* env;       // variable it exports
  bool takes_value;
};

constexpr FlagSpec kFlags[] = {
    {"--trace", kEnvTrace, false},
    {"--trace-out", kEnvTraceOut, true},
    {"--trace-ring", kEnvTraceRing, true},
    {"--trace-filter", kEnvTraceFilter, true},
    {"--metrics-out", kEnvMetricsOut, true},
    // Crash-channel knobs. String literals, not the kEnv* constants from
    // core/tx_manager.h: obs sits below core in the layering and cannot
    // include its headers (see src/obs/event.h's file comment).
    {"--signals", "FIR_SIGNALS", false},
    {"--tx-deadline-ms", "FIR_TX_DEADLINE_MS", true},
    {"--recovery-log-cap", "FIR_RECOVERY_LOG_CAP", true},
    {"--storm-threshold", "FIR_STORM_THRESHOLD", true},
    {"--stm-filter", "FIR_STM_FILTER", true},
    {"--undo-retain-bytes", "FIR_UNDO_RETAIN_BYTES", true},
    {"--coalesce", "FIR_COALESCE", true},
    {"--coalesce-max", "FIR_COALESCE_MAX", true},
    // Serving fast-path knobs (apps/miniginx.h ServingConfig).
    {"--keepalive", "FIR_KEEPALIVE", true},
    {"--pipeline-max", "FIR_PIPELINE_MAX", true},
    {"--writev", "FIR_WRITEV", true},
    {"--reuseport", "FIR_REUSEPORT", true},
    // Fleet supervisor knobs (apps/supervisor.h FleetConfig).
    {"--fleet-workers", "FIR_FLEET_WORKERS", true},
    {"--restart-backoff-ms", "FIR_RESTART_BACKOFF_MS", true},
    {"--flap-threshold", "FIR_FLAP_THRESHOLD", true},
    {"--heartbeat-deadline-ms", "FIR_HEARTBEAT_DEADLINE_MS", true},
    {"--fleet-durable", "FIR_FLEET_DURABLE", false},
    {"--fleet-durable-dir", "FIR_FLEET_DURABLE_DIR", true},
    // Durable-storage knobs (apps/fsync_policy.h; minikv AOF / minipg WAL).
    {"--fsync-policy", "FIR_FSYNC_POLICY", true},
    {"--group-commit-max", "FIR_GROUP_COMMIT_MAX", true},
    {"--group-commit-us", "FIR_GROUP_COMMIT_US", true},
};

}  // namespace

void apply_cli_flags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    bool consumed = false;
    for (const FlagSpec& spec : kFlags) {
      const std::size_t flag_len = std::strlen(spec.flag);
      if (std::strncmp(arg, spec.flag, flag_len) != 0) continue;
      if (!spec.takes_value) {
        if (arg[flag_len] != '\0') continue;
        ::setenv(spec.env, "1", /*overwrite=*/1);
        consumed = true;
        break;
      }
      if (arg[flag_len] == '=') {
        ::setenv(spec.env, arg + flag_len + 1, 1);
        consumed = true;
        break;
      }
      if (arg[flag_len] == '\0' && i + 1 < *argc) {
        ::setenv(spec.env, argv[i + 1], 1);
        ++i;  // value argument consumed too
        consumed = true;
        break;
      }
    }
    if (!consumed) argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;
}

const char* cli_flags_help() {
  return "  --trace               enable recovery-event tracing (FIR_TRACE=1)\n"
         "  --trace-out=PATH      dump the JSONL trace at shutdown\n"
         "  --trace-ring=N        trace ring capacity in events\n"
         "  --trace-filter=SPEC   keep only these event classes/kinds\n"
         "  --metrics-out=PATH    dump the metrics snapshot (.csv or .json)\n"
         "  --signals             real POSIX signal crash channel "
         "(FIR_SIGNALS=1)\n"
         "  --tx-deadline-ms=N    hang watchdog: per-transaction deadline\n"
         "  --recovery-log-cap=N  bound on recorded recovery episodes\n"
         "  --storm-threshold=N   diversions before retries are skipped\n"
         "  --stm-filter=0|1      STM first-write filter (FIR_STM_FILTER)\n"
         "  --undo-retain-bytes=N undo-log retention cap across transactions\n"
         "  --coalesce=0|1        checkpoint-coalescing kill switch\n"
         "  --coalesce-max=N      max quiescent calls per checkpoint\n"
         "  --keepalive=0|1       HTTP keep-alive (0: close per request)\n"
         "  --pipeline-max=N      requests parsed per readiness event\n"
         "  --writev=0|1          vectored response flush (0: per-slice "
         "send)\n"
         "  --reuseport=0|1       SO_REUSEPORT worker listeners on one port\n"
         "  --fleet-workers=N     prefork fleet width (FIR_FLEET_WORKERS)\n"
         "  --restart-backoff-ms=N  restart backoff base "
         "(FIR_RESTART_BACKOFF_MS)\n"
         "  --flap-threshold=K    deaths in-window before quarantine\n"
         "  --heartbeat-deadline-ms=N  silence treated as a hang\n"
         "  --fleet-durable       durable minikv shards (FIR_FLEET_DURABLE)\n"
         "  --fleet-durable-dir=PATH  host dir backing the shards' state\n"
         "  --fsync-policy=P      always|batch|no (FIR_FSYNC_POLICY)\n"
         "  --group-commit-max=N  acks deferred behind one barrier "
         "(FIR_GROUP_COMMIT_MAX; 0 = off)\n"
         "  --group-commit-us=N   max queue age across loop passes "
         "(FIR_GROUP_COMMIT_US)\n";
}

}  // namespace fir::obs
