#include "obs/config.h"

#include <cstdlib>

namespace fir::obs {

namespace {

bool parse_bool(const char* value, bool fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  return !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

std::uint32_t parse_event_filter(const std::string& spec) {
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    start = end + 1;
    if (token.empty()) continue;
    if (token == "all") return kAllEventsMask;
    bool matched = false;
    for (const EventClass cls :
         {EventClass::kTx, EventClass::kHtm, EventClass::kRecovery,
          EventClass::kFleet}) {
      if (token == event_class_name(cls)) {
        mask |= event_class_mask(cls);
        matched = true;
      }
    }
    for (std::size_t k = 0; !matched && k < kEventKindCount; ++k) {
      const auto kind = static_cast<EventKind>(k);
      if (token == event_kind_name(kind)) {
        mask |= event_bit(kind);
        matched = true;
      }
    }
  }
  return mask == 0 ? kAllEventsMask : mask;
}

ObsConfig ObsConfig::from_env(ObsConfig base) {
  ObsConfig config = std::move(base);
  if (const char* v = std::getenv(kEnvTrace)) {
    config.trace_enabled = parse_bool(v, config.trace_enabled);
  }
  if (const char* v = std::getenv(kEnvTraceRing)) {
    const long capacity = std::strtol(v, nullptr, 10);
    if (capacity > 0) config.ring_capacity = static_cast<std::size_t>(capacity);
  }
  if (const char* v = std::getenv(kEnvTraceOut); v != nullptr && *v != '\0') {
    config.trace_out = v;
    config.trace_enabled = true;  // a requested dump implies tracing
  }
  if (const char* v = std::getenv(kEnvTraceFilter)) {
    config.event_mask = parse_event_filter(v);
  }
  if (const char* v = std::getenv(kEnvMetricsOut); v != nullptr && *v != '\0') {
    config.metrics_out = v;
  }
  return config;
}

}  // namespace fir::obs
