#include "obs/obs.h"

#include <fstream>
#include <mutex>
#include <set>

#include "common/log.h"

namespace fir::obs {

// A runtime that starts with tracing disabled gets a token two-slot ring:
// capacity is fixed at construction, and reserving ring_capacity cache
// lines per TxManager would distort the Fig. 9 instrumentation-footprint
// accounting for the (default) untraced configuration.
Observability::Observability(ObsConfig config)
    : config_(std::move(config)),
      trace_(config_.trace_enabled ? config_.ring_capacity : 2) {
  trace_.set_enabled(config_.trace_enabled);
  trace_.set_filter(config_.event_mask);
}

namespace {

/// Paths already truncated by this process (see flush_outputs contract).
std::set<std::string>& truncated_paths() {
  static std::set<std::string> paths;
  return paths;
}
std::mutex g_truncate_mutex;

std::ios_base::openmode mode_for(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_truncate_mutex);
  auto [it, inserted] = truncated_paths().emplace(path);
  (void)it;
  return inserted ? std::ios_base::trunc : std::ios_base::app;
}

}  // namespace

void Observability::flush_outputs(const SiteSymbolizer& symbolize) {
  if (!config_.trace_out.empty() && trace_.total_emitted() > 0) {
    std::ofstream os(config_.trace_out, mode_for(config_.trace_out));
    if (os) {
      write_trace_jsonl(trace_, os, symbolize);
    } else {
      FIR_LOG(kWarn) << "cannot open trace output " << config_.trace_out;
    }
  }
  if (!config_.metrics_out.empty()) {
    std::ofstream os(config_.metrics_out, mode_for(config_.metrics_out));
    if (os) {
      const bool csv = config_.metrics_out.size() >= 4 &&
                       config_.metrics_out.compare(
                           config_.metrics_out.size() - 4, 4, ".csv") == 0;
      os << (csv ? metrics_csv(metrics_) : metrics_json(metrics_)) << '\n';
    } else {
      FIR_LOG(kWarn) << "cannot open metrics output " << config_.metrics_out;
    }
  }
}

}  // namespace fir::obs
