// Command-line front end for the FIR_* runtime configuration: lets any
// bench or example binary opt into tracing and the crash-channel knobs with
// flags instead of environment variables. The flags are translated into the
// corresponding environment variables (setenv) before the first TxManager
// is constructed, so the env-driven paths in ObsConfig::from_env and the
// TxManager constructor stay the one source of truth for configuration.
//
//   --trace                 FIR_TRACE=1
//   --trace-out=PATH        FIR_TRACE_OUT=PATH   (implies tracing)
//   --trace-ring=N          FIR_TRACE_RING=N
//   --trace-filter=SPEC     FIR_TRACE_FILTER=SPEC
//   --metrics-out=PATH      FIR_METRICS_OUT=PATH (.csv selects CSV)
//   --signals               FIR_SIGNALS=1        (real signal crash channel)
//   --tx-deadline-ms=N      FIR_TX_DEADLINE_MS=N (hang watchdog)
//   --recovery-log-cap=N    FIR_RECOVERY_LOG_CAP=N
//   --storm-threshold=N     FIR_STORM_THRESHOLD=N (crash-storm backstop)
//   --stm-filter=0|1        FIR_STM_FILTER=N     (first-write filter)
//   --undo-retain-bytes=N   FIR_UNDO_RETAIN_BYTES=N
//   --coalesce=0|1          FIR_COALESCE=N       (checkpoint fast path)
//   --coalesce-max=N        FIR_COALESCE_MAX=N
//
// The full knob reference (defaults, semantics, introducing PRs) is
// docs/KNOBS.md.
//
// Both `--flag=value` and `--flag value` spellings are accepted.
#pragma once

namespace fir::obs {

/// Consumes the observability flags from argv (compacting argc/argv in
/// place) and exports them as FIR_* environment variables. Unrecognized
/// arguments are left for the caller's own parser (google-benchmark flags,
/// app options). Call before constructing any TxManager.
void apply_cli_flags(int* argc, char** argv);

/// One-line-per-flag usage text for --help output.
const char* cli_flags_help();

}  // namespace fir::obs
