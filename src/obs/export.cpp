#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace fir::obs {

namespace {

const char* sample_kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "?";
}

/// Integral values print without a decimal point so counter snapshots diff
/// cleanly across runs; everything else gets shortest-round-trip %.17g
/// trimmed to %g readability.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_trace_jsonl(const TraceRing& ring, std::ostream& os,
                       const SiteSymbolizer& symbolize) {
  char buf[256];
  for (const TraceEvent& e : ring.snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%" PRIu64 ",\"t_ns\":%" PRIu64
                  ",\"thread\":%u,\"kind\":\"%s\",\"class\":\"%s\"",
                  e.seq, e.t_ns, static_cast<unsigned>(e.thread),
                  event_kind_name(e.kind),
                  event_class_name(event_class(e.kind)));
    os << buf;
    if (e.site != kNoSite) {
      os << ",\"site\":" << e.site;
      std::string function, location;
      if (symbolize && symbolize(e.site, &function, &location)) {
        os << ",\"function\":\"" << json_escape(function)
           << "\",\"location\":\"" << json_escape(location) << '"';
      }
    }
    if (e.code != nullptr) {
      os << ",\"code\":\"" << json_escape(e.code) << '"';
    }
    if (e.a0 != 0 || e.a1 != 0) {
      os << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1;
    }
    os << "}\n";
  }
}

std::string trace_jsonl(const TraceRing& ring,
                        const SiteSymbolizer& symbolize) {
  std::ostringstream os;
  write_trace_jsonl(ring, os, symbolize);
  return os.str();
}

std::string metrics_json(MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"counters\":{";
  const std::vector<MetricSample> samples = registry.snapshot();
  bool first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kCounter) continue;
    os << (first ? "" : ",") << '"' << json_escape(s.name)
       << "\":" << format_number(s.value);
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kGauge) continue;
    os << (first ? "" : ",") << '"' << json_escape(s.name)
       << "\":" << format_number(s.value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kHistogram) continue;
    os << (first ? "" : ",") << '"' << json_escape(s.name)
       << "\":{\"count\":" << format_number(s.value)
       << ",\"mean\":" << format_number(s.mean)
       << ",\"p50\":" << format_number(s.p50)
       << ",\"p95\":" << format_number(s.p95)
       << ",\"max\":" << format_number(s.max) << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string metrics_json_object(MetricsRegistry& registry,
                                std::string_view prefix) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const MetricSample& s : registry.snapshot()) {
    if (s.kind == MetricSample::Kind::kHistogram) continue;  // timing-laden
    if (s.name.compare(0, prefix.size(), prefix) != 0) continue;
    os << (first ? "" : ",") << '"' << json_escape(s.name)
       << "\":" << format_number(s.value);
    first = false;
  }
  os << '}';
  return os.str();
}

std::string metrics_csv(MetricsRegistry& registry) {
  std::ostringstream os;
  os << "name,kind,value,mean,p50,p95,max\n";
  for (const MetricSample& s : registry.snapshot()) {
    // CSV-quote names defensively; canonical names are dot-separated
    // identifiers, but nothing enforces that for app-defined metrics.
    std::string name = s.name;
    if (name.find_first_of(",\"\n") != std::string::npos) {
      std::string quoted = "\"";
      for (const char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = quoted;
    }
    os << name << ',' << sample_kind_name(s.kind) << ','
       << format_number(s.value);
    if (s.kind == MetricSample::Kind::kHistogram) {
      os << ',' << format_number(s.mean) << ',' << format_number(s.p50)
         << ',' << format_number(s.p95) << ',' << format_number(s.max);
    } else {
      os << ",,,,";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fir::obs
