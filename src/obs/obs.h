// Observability: the per-runtime bundle of trace ring + metrics registry.
//
// One instance lives inside each TxManager. Everything the recovery runtime
// publishes — events and metrics — flows through here; the exporters and
// report renderers read from here. The emit() fast path is a single inlined
// enabled/filter check so a tracing-disabled gate costs one predictable
// branch (measured by micro_checkpoint's BM_GateTracing).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "obs/config.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"

namespace fir::obs {

class Observability {
 public:
  /// `config` is the fully resolved configuration (callers that honor the
  /// FIR_TRACE_* environment run it through ObsConfig::from_env first).
  /// Ring capacity is fixed here: a configuration with tracing disabled
  /// allocates a token ring, so decide tracing before construction (the
  /// runtime toggles via trace().set_enabled() still work, over whatever
  /// capacity was reserved).
  explicit Observability(ObsConfig config = {});

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  const ObsConfig& config() const { return config_; }

  /// Timestamp source for emitted events; nullptr falls back to 0 stamps.
  /// The TxManager wires its Env's VirtualClock here so event times line up
  /// with the simulation's syscall accounting.
  void set_clock(const VirtualClock* clock) { clock_ = clock; }

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }

  bool tracing() const { return trace_.enabled(); }

  /// Records one event stamped with the current virtual time.
  void emit(EventKind kind, std::uint32_t site, const char* code = nullptr,
            std::int64_t a0 = 0, std::int64_t a1 = 0) {
    if (!trace_.wants(kind)) return;
    trace_.emit(kind, site, clock_ != nullptr ? clock_->now_ns() : 0, code,
                a0, a1);
  }

  /// Writes the configured FIR_TRACE_OUT / FIR_METRICS_OUT files, if any.
  /// The first write to a given trace path in this process truncates it;
  /// subsequent writers (later TxManager generations, prefork siblings in
  /// one address space) append, so one file captures one process run.
  void flush_outputs(const SiteSymbolizer& symbolize = {});

 private:
  ObsConfig config_;
  TraceRing trace_;
  MetricsRegistry metrics_;
  const VirtualClock* clock_ = nullptr;
};

}  // namespace fir::obs
