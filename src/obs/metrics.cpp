#include "obs/metrics.h"

#include <algorithm>

namespace fir::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::add_collector(
    std::function<void(MetricsRegistry&)> collector) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSample> MetricsRegistry::snapshot() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& collector : collectors_) collector(*this);

  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(counter->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = static_cast<double>(hist->count());
    if (!hist->empty()) {
      s.mean = hist->mean();
      s.p50 = hist->percentile(50.0);
      s.p95 = hist->percentile(95.0);
      s.max = hist->max();
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->clear();
}

}  // namespace fir::obs
