// Lock-free, fixed-capacity ring buffer of recovery events.
//
// Design constraints (ISSUE: the gate fast path must stay within measurement
// noise when tracing is disabled):
//   * disabled emit() is one relaxed atomic load + branch — no allocation,
//     no locks, no syscalls, ever;
//   * enabled emit() is wait-free: a relaxed fetch_add reserves a slot, the
//     event is written in place, and a release store of the slot's sequence
//     number publishes it (readers discard slots whose stamp is stale);
//   * capacity is fixed at construction (rounded up to a power of two) and
//     the ring overwrites its oldest events instead of growing — tracing can
//     run forever in production without unbounded memory.
//
// The protected process is single-threaded (README §Limitations), but the
// ring tolerates concurrent emitters so bench harness threads and future
// multi-threaded runtimes can share one ring.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace fir::obs {

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Power-of-two slot count actually allocated.
  std::size_t capacity() const { return slots_.size(); }

  // --- runtime switches (FIR_TRACE / FIR_TRACE_FILTER) ---------------------
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Event-kind filter; bits built with event_bit()/event_class_mask().
  void set_filter(std::uint32_t mask) {
    filter_.store(mask, std::memory_order_relaxed);
  }
  std::uint32_t filter() const {
    return filter_.load(std::memory_order_relaxed);
  }

  /// True when an emit of `kind` would record anything. Inline so callers
  /// can skip argument marshalling on the disabled path.
  bool wants(EventKind kind) const {
    return enabled_.load(std::memory_order_relaxed) &&
           (filter_.load(std::memory_order_relaxed) & event_bit(kind)) != 0;
  }

  // --- emission ------------------------------------------------------------
  /// Records one event; no-op unless wants(kind). `code` must point to a
  /// string with static storage duration (enum-name tables).
  void emit(EventKind kind, std::uint32_t site, std::uint64_t t_ns,
            const char* code = nullptr, std::int64_t a0 = 0,
            std::int64_t a1 = 0) {
    if (!wants(kind)) return;
    emit_always(kind, site, t_ns, code, a0, a1);
  }

  // --- inspection ----------------------------------------------------------
  /// Events accepted over the ring's lifetime (including overwritten ones).
  std::uint64_t total_emitted() const {
    return next_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound (oldest overwritten by newest).
  std::uint64_t dropped() const;

  /// Stable copy of the resident events, oldest first. Concurrent emitters
  /// may overwrite slots mid-snapshot; torn slots are detected via their
  /// sequence stamp and skipped.
  std::vector<TraceEvent> snapshot() const;

  /// Forgets all recorded events (counters and switches survive).
  void clear();

 private:
  void emit_always(EventKind kind, std::uint32_t site, std::uint64_t t_ns,
                   const char* code, std::int64_t a0, std::int64_t a1);
  std::uint16_t thread_slot();

  struct Slot {
    TraceEvent event;
    /// seq + 1 of the resident event; 0 = empty. Written with release
    /// order after the payload so readers can validate.
    std::atomic<std::uint64_t> stamp{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> filter_{kAllEventsMask};
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint32_t> thread_count_{0};
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;  // capacity - 1 (capacity is a power of two)
};

}  // namespace fir::obs
