// Machine-readable exporters over the trace ring and metrics registry.
//
// Three formats, one source of truth:
//   * JSONL trace — one JSON object per event, grep/jq/diff friendly; this
//     is the raw stream behind every figure's recovery accounting;
//   * JSON metrics snapshot — counters, gauges and histogram summaries;
//   * CSV metrics snapshot — the same samples as flat rows for spreadsheet
//     ingestion and cross-run diffing.
//
// Site ids are symbolized through an optional callback so this module stays
// independent of core's SiteRegistry (TxManager::trace_symbolizer() provides
// the standard one).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace_ring.h"

namespace fir::obs {

/// Resolves a site id to (function, location); returns false for ids it
/// does not know (the exporter then omits the name fields).
using SiteSymbolizer = std::function<bool(
    std::uint32_t site, std::string* function, std::string* location)>;

/// Writes every resident event, oldest first, one JSON object per line.
/// Field reference: docs/OBSERVABILITY.md §4.
void write_trace_jsonl(const TraceRing& ring, std::ostream& os,
                       const SiteSymbolizer& symbolize = {});
std::string trace_jsonl(const TraceRing& ring,
                        const SiteSymbolizer& symbolize = {});

/// Metrics snapshot as one JSON document (runs collectors).
std::string metrics_json(MetricsRegistry& registry);

/// Metrics snapshot as CSV: `name,kind,value,mean,p50,p95,max` (summary
/// columns empty for counters/gauges).
std::string metrics_csv(MetricsRegistry& registry);

/// Flat `{"name":value,...}` object of the counters and gauges whose names
/// start with `prefix` (empty prefix = all). Histograms are omitted: their
/// summaries carry wall-clock timing, and this form exists for DETERMINISTIC
/// run records — the campaign engine embeds it in per-run JSONL so two runs
/// of the same plan position diff byte-identical (docs/CAMPAIGNS.md).
std::string metrics_json_object(MetricsRegistry& registry,
                                std::string_view prefix = {});

/// JSON string escaping (exposed for tests and other emitters).
std::string json_escape(const std::string& raw);

}  // namespace fir::obs
