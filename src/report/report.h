// Human-readable reports over the recovery runtime's introspection data.
//
// The bench binaries and examples all need the same few renderings: the
// per-site transaction table (which sites ran, under which mechanism, with
// what outcomes), the recovery-event timeline, campaign summaries, and the
// Table III surface block. Centralizing them keeps the output format
// consistent and testable.
#pragma once

#include <string>

#include "core/analyzer.h"
#include "core/tx_manager.h"
#include "workload/campaign.h"

namespace fir::report {

/// Per-site table: function, location (basename:line), gate mode, lifetime
/// executions, HTM aborts, commits, retries, diversions, recoverable flag.
/// Sites that never executed are omitted. Sorted most-active first.
std::string site_table(const SiteRegistry& sites);

/// Recovery-event timeline: one row per rollback episode with the site,
/// signal, action taken, and latency.
std::string recovery_timeline(const TxManager& mgr);

/// Campaign detail: one row per experiment with its outcome.
std::string campaign_table(const CampaignResult& result);

/// The Table III block for one server run.
std::string surface_block(const SurfaceReport& report);

/// Metrics snapshot table: one row per registered metric (counter value,
/// gauge reading, or histogram count + mean/p50/p95/max). Runs the
/// registry's collectors, so the table reflects the moment of the call.
std::string metrics_table(obs::MetricsRegistry& metrics);

/// Tail of the recovery-event trace: the newest `max_rows` resident events,
/// oldest first, with site ids resolved through `sites`.
std::string trace_table(const obs::TraceRing& ring, const SiteRegistry& sites,
                        std::size_t max_rows = 32);

/// "file.cpp:123" from a full path location.
std::string short_location(const std::string& location);

}  // namespace fir::report
