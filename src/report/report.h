// Human-readable reports over the recovery runtime's introspection data.
//
// The bench binaries and examples all need the same few renderings: the
// per-site transaction table (which sites ran, under which mechanism, with
// what outcomes), the recovery-event timeline, campaign summaries, and the
// Table III surface block. Centralizing them keeps the output format
// consistent and testable.
#pragma once

#include <string>

#include "core/analyzer.h"
#include "core/tx_manager.h"
#include "workload/campaign.h"

namespace fir::report {

/// Per-site table: function, location (basename:line), gate mode, lifetime
/// executions, HTM aborts, commits, retries, diversions, recoverable flag.
/// Sites that never executed are omitted. Sorted most-active first.
std::string site_table(const SiteRegistry& sites);

/// Recovery-event timeline: one row per rollback episode with the site,
/// signal, action taken, and latency.
std::string recovery_timeline(const TxManager& mgr);

/// Campaign detail: one row per experiment with its outcome.
std::string campaign_table(const CampaignResult& result);

/// The Table III block for one server run.
std::string surface_block(const SurfaceReport& report);

/// "file.cpp:123" from a full path location.
std::string short_location(const std::string& location);

}  // namespace fir::report
