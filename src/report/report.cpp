#include "report/report.h"

#include "common/table.h"

namespace fir::report {

std::string short_location(const std::string& location) {
  const std::size_t slash = location.rfind('/');
  return slash == std::string::npos ? location : location.substr(slash + 1);
}

std::string site_table(const SiteRegistry& sites) {
  TextTable table;
  table.set_header({"function", "site", "mode", "execs", "HTM aborts",
                    "commits", "retries", "diverts", "recoverable"});
  for (const SiteReportRow& row : site_report(sites)) {
    // site_report() already filters to executed sites and sorts by
    // activity; re-derive the gate fields from the registry.
    const Site* site = nullptr;
    for (const Site& candidate : sites.all()) {
      if (candidate.function == row.function &&
          candidate.location == row.location) {
        site = &candidate;
        break;
      }
    }
    if (site == nullptr) continue;
    table.add_row({row.function, short_location(row.location),
                   site->gate.sticky_stm ? "STM" : "HTM",
                   std::to_string(site->gate.executions),
                   std::to_string(site->gate.htm_aborts),
                   std::to_string(row.stats.commits),
                   std::to_string(row.stats.retries),
                   std::to_string(row.stats.diversions),
                   row.recoverable ? "yes" : "NO"});
  }
  return table.render();
}

std::string recovery_timeline(const TxManager& mgr) {
  TextTable table;
  table.set_header({"#", "site", "signal", "action", "latency us"});
  std::size_t index = 0;
  for (const RecoveryEvent& event : mgr.recovery_log()) {
    const Site& site = mgr.sites()[event.site];
    const char* action = "retry";
    if (event.action == RecoveryEvent::Action::kDivert) action = "divert";
    if (event.action == RecoveryEvent::Action::kFatal) action = "FATAL";
    table.add_row({std::to_string(index++),
                   site.function + " @ " + short_location(site.location),
                   crash_kind_name(event.kind), action,
                   format_double(event.latency_seconds * 1e6, 1)});
  }
  return table.render();
}

std::string campaign_table(const CampaignResult& result) {
  TextTable table;
  table.set_header({"marker", "site", "fault", "triggered", "crashed",
                    "outcome"});
  for (const ExperimentRecord& e : result.experiments) {
    const char* outcome = "no effect";
    if (e.crashed) outcome = e.recovered ? "RECOVERED" : "fatal";
    table.add_row({e.marker_name, short_location(e.marker_location),
                   fault_type_name(e.fault), e.triggered ? "yes" : "no",
                   e.crashed ? "yes" : "no", outcome});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(result.injected()) + " injected",
                 "", std::to_string(result.triggered()),
                 std::to_string(result.crashes()),
                 std::to_string(result.recovered()) + " recovered / " +
                     std::to_string(result.fatal()) + " fatal"});
  return table.render();
}

std::string surface_block(const SurfaceReport& report) {
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"unique transactions",
                 std::to_string(report.unique_transactions)});
  table.add_row({"embedded libcall sites",
                 std::to_string(report.embedded_libcall_sites)});
  table.add_row({"irrecoverable transactions",
                 std::to_string(report.irrecoverable_transactions)});
  table.add_row({"recoverable surface",
                 format_percent(report.recoverable_fraction(), 1)});
  return table.render();
}

namespace {

/// Integral-looking doubles (counter values, counts) print without a
/// fraction; everything else keeps two decimals.
std::string format_metric_value(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return format_double(v, 2);
}

}  // namespace

std::string metrics_table(obs::MetricsRegistry& metrics) {
  TextTable table;
  table.set_header({"metric", "kind", "value", "mean", "p50", "p95", "max"});
  for (const obs::MetricSample& s : metrics.snapshot()) {
    const char* kind = "counter";
    if (s.kind == obs::MetricSample::Kind::kGauge) kind = "gauge";
    if (s.kind == obs::MetricSample::Kind::kHistogram) kind = "histogram";
    if (s.kind == obs::MetricSample::Kind::kHistogram && s.value > 0) {
      table.add_row({s.name, kind, format_metric_value(s.value),
                     format_double(s.mean, 6), format_double(s.p50, 6),
                     format_double(s.p95, 6), format_double(s.max, 6)});
    } else {
      table.add_row(
          {s.name, kind, format_metric_value(s.value), "", "", "", ""});
    }
  }
  return table.render();
}

std::string trace_table(const obs::TraceRing& ring, const SiteRegistry& sites,
                        std::size_t max_rows) {
  TextTable table;
  table.set_header({"seq", "t_ns", "kind", "site", "code", "a0", "a1"});
  std::vector<obs::TraceEvent> events = ring.snapshot();
  const std::size_t begin =
      events.size() > max_rows ? events.size() - max_rows : 0;
  for (std::size_t i = begin; i < events.size(); ++i) {
    const obs::TraceEvent& e = events[i];
    std::string where = "-";
    if (e.site != obs::kNoSite && e.site < sites.size()) {
      const Site& site = sites[static_cast<SiteId>(e.site)];
      where = site.function + " @ " + short_location(site.location);
    }
    table.add_row({std::to_string(e.seq), std::to_string(e.t_ns),
                   obs::event_kind_name(e.kind), where,
                   e.code != nullptr ? e.code : "",
                   std::to_string(e.a0), std::to_string(e.a1)});
  }
  return table.render();
}

}  // namespace fir::report
