#include "report/report.h"

#include "common/table.h"

namespace fir::report {

std::string short_location(const std::string& location) {
  const std::size_t slash = location.rfind('/');
  return slash == std::string::npos ? location : location.substr(slash + 1);
}

std::string site_table(const SiteRegistry& sites) {
  TextTable table;
  table.set_header({"function", "site", "mode", "execs", "HTM aborts",
                    "commits", "retries", "diverts", "recoverable"});
  for (const SiteReportRow& row : site_report(sites)) {
    // site_report() already filters to executed sites and sorts by
    // activity; re-derive the gate fields from the registry.
    const Site* site = nullptr;
    for (const Site& candidate : sites.all()) {
      if (candidate.function == row.function &&
          candidate.location == row.location) {
        site = &candidate;
        break;
      }
    }
    if (site == nullptr) continue;
    table.add_row({row.function, short_location(row.location),
                   site->gate.sticky_stm ? "STM" : "HTM",
                   std::to_string(site->gate.executions),
                   std::to_string(site->gate.htm_aborts),
                   std::to_string(row.stats.commits),
                   std::to_string(row.stats.retries),
                   std::to_string(row.stats.diversions),
                   row.recoverable ? "yes" : "NO"});
  }
  return table.render();
}

std::string recovery_timeline(const TxManager& mgr) {
  TextTable table;
  table.set_header({"#", "site", "signal", "action", "latency us"});
  std::size_t index = 0;
  for (const RecoveryEvent& event : mgr.recovery_log()) {
    const Site& site = mgr.sites()[event.site];
    const char* action = "retry";
    if (event.action == RecoveryEvent::Action::kDivert) action = "divert";
    if (event.action == RecoveryEvent::Action::kFatal) action = "FATAL";
    table.add_row({std::to_string(index++),
                   site.function + " @ " + short_location(site.location),
                   crash_kind_name(event.kind), action,
                   format_double(event.latency_seconds * 1e6, 1)});
  }
  return table.render();
}

std::string campaign_table(const CampaignResult& result) {
  TextTable table;
  table.set_header({"marker", "site", "fault", "triggered", "crashed",
                    "outcome"});
  for (const ExperimentRecord& e : result.experiments) {
    const char* outcome = "no effect";
    if (e.crashed) outcome = e.recovered ? "RECOVERED" : "fatal";
    table.add_row({e.marker_name, short_location(e.marker_location),
                   fault_type_name(e.fault), e.triggered ? "yes" : "no",
                   e.crashed ? "yes" : "no", outcome});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(result.injected()) + " injected",
                 "", std::to_string(result.triggered()),
                 std::to_string(result.crashes()),
                 std::to_string(result.recovered()) + " recovered / " +
                     std::to_string(result.fatal()) + " fatal"});
  return table.render();
}

std::string surface_block(const SurfaceReport& report) {
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"unique transactions",
                 std::to_string(report.unique_transactions)});
  table.add_row({"embedded libcall sites",
                 std::to_string(report.embedded_libcall_sites)});
  table.add_row({"irrecoverable transactions",
                 std::to_string(report.irrecoverable_transactions)});
  table.add_row({"recoverable surface",
                 format_percent(report.recoverable_fraction(), 1)});
  return table.render();
}

}  // namespace fir::report
