// Durability refinement of the library-call catalog.
//
// The catalog (catalog.h) pins the paper's Table II: 101 functions in five
// recoverability classes, where `write` is flatly irrecoverable because its
// effect is externally visible. That static judgment conflates two very
// different calls: a write that only dirtied the page cache is perfectly
// revertible (truncate back, nothing reached media), while a write that hit
// durable media is not. This SEPARATE table — it does not add entries to or
// change totals of the Table II catalog — names which modeled calls sit on
// which side of the sync barrier, and is what the interposition layer's
// prepare_file_write logic implements dynamically per call
// (docs/DURABILITY.md).
#pragma once

#include <string_view>

namespace fir {

/// Where a modeled library call sits relative to the durability barrier.
enum class DurabilityClass {
  /// Not a storage-durability-relevant call (sockets, memory, ...).
  kNone,
  /// Mutates the volatile (page-cache) image only; the effect becomes
  /// durable at the next barrier. Revertible while unsynced: the dynamic
  /// refinement upgrades these calls to divertible when the touched range
  /// is entirely past the fd's durable boundary.
  kPageCacheWrite,
  /// Pushes volatile state to stable media (fsync/fdatasync). Never
  /// compensable — you cannot un-write a disk — so always a transaction
  /// gate boundary, exactly as in the static catalog.
  kDurabilityBarrier,
  /// Mutates the directory namespace (create/rename/unlink); volatile
  /// until a directory barrier makes it crash-durable.
  kNamespaceOp,
};

/// Classification by catalog function name; kNone for everything the
/// durability model does not refine.
DurabilityClass durability_class(std::string_view function);

/// Human-readable class name (reports, docs, tests).
const char* durability_class_name(DurabilityClass c);

}  // namespace fir
