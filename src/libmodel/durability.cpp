#include "libmodel/durability.h"

namespace fir {

DurabilityClass durability_class(std::string_view function) {
  // Page-cache mutators: content changes that a crash can lose (and a
  // compensation can revert while they remain unsynced).
  if (function == "write" || function == "pwrite" || function == "writev" ||
      function == "ftruncate")
    return DurabilityClass::kPageCacheWrite;
  // Stable-media barriers.
  if (function == "fsync" || function == "fdatasync")
    return DurabilityClass::kDurabilityBarrier;
  // Namespace mutators: durable only after a directory barrier.
  if (function == "open" || function == "creat" || function == "rename" ||
      function == "unlink")
    return DurabilityClass::kNamespaceOp;
  return DurabilityClass::kNone;
}

const char* durability_class_name(DurabilityClass c) {
  switch (c) {
    case DurabilityClass::kNone: return "none";
    case DurabilityClass::kPageCacheWrite: return "page-cache-write";
    case DurabilityClass::kDurabilityBarrier: return "durability-barrier";
    case DurabilityClass::kNamespaceOp: return "namespace-op";
  }
  return "none";
}

}  // namespace fir
