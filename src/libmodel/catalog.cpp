#include "libmodel/catalog.h"

#include <cerrno>
#include <unordered_map>

namespace fir {
namespace {

using R = Recoverability;

// The Table II catalog. Class totals (reversible 23, idempotent 35,
// deferrable 7, state-restore 20, irrecoverable 16) and divertibility splits
// (23/0, 9/26, 5/2, 12/8, 12/4 => 61/40 overall) match the paper.
constexpr LibFunctionSpec kCatalog[] = {
    // --- Operation reversible (23, all divertible) -----------------------
    {"mmap", R::kReversible, true, {-1, ENOMEM}, "revert: munmap"},
    {"open", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"open64", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"openat", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"listen", R::kReversible, true, {-1, EADDRINUSE},
     "revert: stop listening / close"},
    {"socket", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"accept", R::kReversible, true, {-1, ECONNABORTED},
     "revert: close (peer-visible: not replay-safe)", /*replay_unsafe=*/true},
    {"accept4", R::kReversible, true, {-1, ECONNABORTED},
     "revert: close (peer-visible: not replay-safe)", /*replay_unsafe=*/true},
    {"epoll_create", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"epoll_create1", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"dup", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"dup2", R::kReversible, true, {-1, EMFILE}, "revert: close+restore"},
    {"pipe", R::kReversible, true, {-1, EMFILE}, "revert: close both ends"},
    {"socketpair", R::kReversible, true, {-1, EMFILE}, "revert: close both"},
    {"timerfd_create", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"eventfd", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"signalfd", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"inotify_init", R::kReversible, true, {-1, EMFILE}, "revert: close"},
    {"malloc", R::kReversible, true, {0, ENOMEM}, "revert: free"},
    {"calloc", R::kReversible, true, {0, ENOMEM}, "revert: free"},
    {"realloc", R::kReversible, true, {0, ENOMEM}, "revert: free new block"},
    {"posix_memalign", R::kReversible, true, {ENOMEM, 0},
     "revert: free; reports error via return value"},
    {"bind", R::kReversible, true, {-1, EADDRINUSE}, "revert: close socket"},

    // --- No reversion needed / idempotent (35: 9 divertible, 26 not) -----
    {"setsockopt", R::kIdempotent, true, {-1, EINVAL}, "socket opt set"},
    {"getsockopt", R::kIdempotent, true, {-1, EINVAL}, "pure read"},
    {"fcntl", R::kIdempotent, true, {-1, EINVAL}, "flag updates idempotent"},
    {"fcntl64", R::kIdempotent, true, {-1, EINVAL}, "flag updates idempotent"},
    {"epoll_ctl", R::kIdempotent, true, {-1, ENOMEM},
     "interest-set update; re-applicable"},
    {"epoll_wait", R::kIdempotent, true, {-1, EINTR},
     "level-triggered: readiness is re-observable"},
    {"stat", R::kIdempotent, true, {-1, ENOENT}, "pure read"},
    {"fstat", R::kIdempotent, true, {-1, EBADF}, "pure read"},
    {"access", R::kIdempotent, true, {-1, EACCES}, "pure read"},
    {"getpid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"getppid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"getuid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"geteuid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"getgid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"getegid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"gettid", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"strlen", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"strcmp", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"strncmp", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"memcmp", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"htons", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"htonl", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"ntohs", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"ntohl", R::kIdempotent, false, {0, 0}, "no error channel"},
    {"time", R::kIdempotent, false, {-1, 0}, "retval conventionally unchecked"},
    {"gettimeofday", R::kIdempotent, false, {-1, 0}, "retval unchecked"},
    {"clock_gettime", R::kIdempotent, false, {-1, 0}, "retval unchecked"},
    {"printf", R::kIdempotent, false, {-1, 0}, "retval typically ignored"},
    {"fprintf", R::kIdempotent, false, {-1, 0}, "retval typically ignored"},
    {"puts", R::kIdempotent, false, {-1, 0}, "retval typically ignored"},
    {"putchar", R::kIdempotent, false, {-1, 0}, "retval typically ignored"},
    {"isatty", R::kIdempotent, false, {0, ENOTTY}, "probe only"},
    {"umask", R::kIdempotent, false, {0, 0}, "cannot fail"},
    {"sched_yield", R::kIdempotent, false, {0, 0}, "retval unchecked"},
    {"pthread_self", R::kIdempotent, false, {0, 0}, "cannot fail"},

    // --- Operation deferrable (7: 5 divertible, 2 not) -------------------
    {"close", R::kDeferrable, true, {-1, EBADF},
     "defer actual close until commit"},
    {"fclose", R::kDeferrable, true, {-1, EBADF}, "defer until commit"},
    {"munmap", R::kDeferrable, true, {-1, EINVAL}, "defer until commit"},
    {"shutdown", R::kDeferrable, true, {-1, ENOTCONN}, "defer until commit"},
    {"unlink", R::kDeferrable, true, {-1, ENOENT}, "defer until commit"},
    {"free", R::kDeferrable, false, {0, 0},
     "void return: defer release until commit"},
    {"cfree", R::kDeferrable, false, {0, 0}, "void return: defer"},

    // --- State restoration needed (20: 12 divertible, 8 not) -------------
    {"read", R::kStateRestore, true, {-1, EIO},
     "checkpoint destination buffer + restore stream position"},
    {"recv", R::kStateRestore, true, {-1, ECONNRESET},
     "checkpoint destination buffer + un-consume socket bytes"},
    {"recvfrom", R::kStateRestore, true, {-1, ECONNRESET},
     "checkpoint destination buffer + un-consume socket bytes"},
    {"recvmsg", R::kStateRestore, true, {-1, ECONNRESET},
     "checkpoint destination buffers + un-consume socket bytes"},
    {"readv", R::kStateRestore, true, {-1, EIO},
     "checkpoint destination buffers + restore stream position"},
    {"pread", R::kStateRestore, true, {-1, EINVAL},
     "checkpoint destination buffer; offset-based, no stream state"},
    {"pread64", R::kStateRestore, true, {-1, EINVAL},
     "checkpoint destination buffer"},
    {"lseek", R::kStateRestore, true, {-1, EINVAL}, "restore prior offset"},
    {"lseek64", R::kStateRestore, true, {-1, EINVAL}, "restore prior offset"},
    {"ftruncate", R::kStateRestore, true, {-1, EINVAL},
     "restore prior length"},
    {"sigaction", R::kStateRestore, true, {-1, EINVAL},
     "restore previous handler"},
    {"rename", R::kStateRestore, true, {-1, ENOENT}, "rename back"},
    {"srand", R::kStateRestore, false, {0, 0}, "void; restore seed state"},
    {"srandom", R::kStateRestore, false, {0, 0}, "void; restore seed state"},
    {"tzset", R::kStateRestore, false, {0, 0}, "void; restore TZ state"},
    {"rewind", R::kStateRestore, false, {0, 0}, "void; restore offset"},
    {"clearerr", R::kStateRestore, false, {0, 0}, "void; restore flags"},
    {"setbuf", R::kStateRestore, false, {0, 0}, "void; restore buffering"},
    {"signal", R::kStateRestore, false, {0, 0},
     "retval conventionally unchecked; restore handler"},
    {"localtime", R::kStateRestore, false, {0, 0},
     "restore static result buffer; retval rarely checked"},

    // --- Irrecoverable (16: 12 divertible, 4 not) ------------------------
    {"write", R::kIrrecoverable, true, {-1, EIO},
     "bytes may have left the process"},
    {"send", R::kIrrecoverable, true, {-1, ECONNRESET}, "network-visible"},
    {"sendto", R::kIrrecoverable, true, {-1, ECONNRESET}, "network-visible"},
    {"sendmsg", R::kIrrecoverable, true, {-1, ECONNRESET}, "network-visible"},
    {"sendfile", R::kIrrecoverable, true, {-1, EIO}, "network-visible"},
    {"writev", R::kIrrecoverable, true, {-1, EIO}, "bytes may have left"},
    {"pwrite", R::kIrrecoverable, true, {-1, EIO}, "durable media write"},
    {"pwrite64", R::kIrrecoverable, true, {-1, EIO}, "durable media write"},
    {"fsync", R::kIrrecoverable, true, {-1, EIO}, "durability barrier"},
    {"fdatasync", R::kIrrecoverable, true, {-1, EIO}, "durability barrier"},
    {"connect", R::kIrrecoverable, true, {-1, ECONNREFUSED},
     "SYN already visible to peer"},
    {"msync", R::kIrrecoverable, true, {-1, EIO}, "durable media write"},
    {"abort", R::kIrrecoverable, false, {0, 0}, "terminates process"},
    {"_exit", R::kIrrecoverable, false, {0, 0}, "terminates process"},
    {"fork", R::kIrrecoverable, false, {-1, EAGAIN},
     "child is externally visible; retval checked but effect irreversible"},
    {"system", R::kIrrecoverable, false, {-1, 0}, "spawns external process"},
};

static_assert(std::size(kCatalog) == 101,
              "Table II catalog must contain exactly 101 functions");

const std::unordered_map<std::string_view, const LibFunctionSpec*>&
name_index() {
  static const auto* index = [] {
    auto* m =
        new std::unordered_map<std::string_view, const LibFunctionSpec*>();
    for (const auto& spec : kCatalog) (*m)[spec.name] = &spec;
    return m;
  }();
  return *index;
}

}  // namespace

std::string_view recoverability_name(Recoverability r) {
  switch (r) {
    case Recoverability::kReversible: return "Operation reversible";
    case Recoverability::kIdempotent: return "No reversion needed";
    case Recoverability::kDeferrable: return "Operation deferrable";
    case Recoverability::kStateRestore: return "State restoration needed";
    case Recoverability::kIrrecoverable: return "Irrecoverable";
  }
  return "?";
}

const LibraryCatalog& LibraryCatalog::instance() {
  static const LibraryCatalog catalog;
  return catalog;
}

const LibFunctionSpec* LibraryCatalog::find(std::string_view name) const {
  const auto& index = name_index();
  auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

std::span<const LibFunctionSpec> LibraryCatalog::all() const {
  return kCatalog;
}

int LibraryCatalog::count(Recoverability r, bool divertible) const {
  int n = 0;
  for (const auto& spec : kCatalog)
    if (spec.recoverability == r && spec.divertible == divertible) ++n;
  return n;
}

}  // namespace fir
