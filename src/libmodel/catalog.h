// Library interface model: the data the Library Interface Analyzer pass
// derives from library documentation (§III, §V-A).
//
// For every standard-library function used by the target applications the
// catalog records:
//   * its RECOVERABILITY CLASS — whether and how its effect can be reverted
//     when the transaction that follows it must be rolled back;
//   * whether execution can be DIVERTED at call sites of this function —
//     i.e. the function reports errors through its return value and a
//     well-written caller checks for them, so forcing the documented error
//     return steers execution into the caller's error handler;
//   * the ERROR to inject: return value + errno, from the man page.
//
// The catalog contains the 101 functions of the paper's Table II with the
// same per-class totals (23 / 35 / 7 / 20 / 16; divertible 61 vs 40).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace fir {

/// Paper Table II rows.
enum class Recoverability : std::uint8_t {
  kReversible = 0,    // a revert operation exists (munmap reverts mmap)
  kIdempotent,        // "no reversion needed": call does not modify app state
  kDeferrable,        // effects can be postponed until commit (free())
  kStateRestore,      // reversible iff pre-call state is checkpointed
  kIrrecoverable,     // externally visible side effects (write, send)
};

constexpr int kRecoverabilityClassCount = 5;

std::string_view recoverability_name(Recoverability r);

/// The fault to inject at a call site: what the call "returns" and the errno
/// it sets, per its interface documentation.
struct InjectedError {
  std::intptr_t return_value;  // e.g. -1, or 0 for pointer-returning calls
  int errno_value;             // e.g. EINVAL
};

/// One catalog entry.
struct LibFunctionSpec {
  std::string_view name;
  Recoverability recoverability;
  /// True when the function reports errors via its return value (and callers
  /// conventionally check them) — the precondition for fault-injection-based
  /// execution diversion.
  bool divertible;
  InjectedError error;
  std::string_view note;  // compensation / semantics summary
  /// True when revert-then-re-execute is NOT equivalent to the original
  /// execution because the revert is visible outside the process (accept's
  /// revert closes a connection the peer established; re-executing accept
  /// cannot get it back). Such calls may OPEN a crash transaction — the
  /// opening call is never re-executed on rollback — but must not be
  /// coalesced INTO one, where rollback replays them (checkpoint fast path,
  /// core/tx_manager.h).
  bool replay_unsafe = false;
};

/// Immutable process-wide catalog (the Library Interface Analyzer's output).
class LibraryCatalog {
 public:
  static const LibraryCatalog& instance();

  /// Lookup by function name; nullptr when the function is not modeled.
  const LibFunctionSpec* find(std::string_view name) const;

  std::span<const LibFunctionSpec> all() const;

  /// Table II cell: number of functions in `r` with the given divertibility.
  int count(Recoverability r, bool divertible) const;

  /// A function is usable for fault-injection recovery when it is divertible
  /// and its effects can be compensated (any class except irrecoverable).
  static bool usable_for_recovery(const LibFunctionSpec& spec) {
    return spec.divertible &&
           spec.recoverability != Recoverability::kIrrecoverable;
  }

 private:
  LibraryCatalog() = default;
};

}  // namespace fir
