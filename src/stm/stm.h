// Software transactional memory: the undo-log checkpointing mode.
//
// Paper mapping (§IV-A): the STM clone of each code region logs every store's
// old value in an undo log; rollback walks the log in reverse. Register and
// stack-pointer restoration is performed by the transaction entry gate's
// setjmp/longjmp protocol (core/gate.h) — this module is responsible for
// memory contents only.
//
// STM always succeeds (no capacity limit), which is why FIRestarter uses it
// as the fallback that maximizes the recovery surface. It is also the slow
// path — but only the FIRST store to each location pays for an undo-log
// append: a per-transaction first-write filter (mem/write_filter.h) elides
// repeated stores to already-covered bytes, because rollback walks the log
// newest-first and the oldest entry (the true pre-transaction value) wins
// regardless. Re-logging covered bytes is therefore pure overhead, and
// skipping them cannot change what rollback restores.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/store_gate.h"
#include "mem/undo_log.h"
#include "mem/write_filter.h"
#include "obs/metrics.h"

namespace fir {

/// Cumulative STM statistics.
struct StmStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  /// All instrumented stores routed to STM (logged + elided).
  std::uint64_t stores = 0;
  /// Stores that appended nothing: every touched byte was already covered
  /// by an earlier log entry of the same transaction.
  std::uint64_t stores_elided = 0;
  /// Line-granular filter coverage hits (>= stores_elided: a multi-line
  /// store can hit on some lines and log others).
  std::uint64_t filter_hits = 0;
  /// Bytes actually appended to the undo log (pre-filter designs logged
  /// every store; the gap to stores*size is the filter's saving).
  std::uint64_t bytes_logged = 0;
  /// High-water mark of undo-log + filter footprint — feeds the Fig. 9
  /// memory accounting.
  std::size_t peak_log_bytes = 0;
};

/// One software-transaction engine. Protocol mirrors HtmContext:
/// begin(); stores via record_store(); commit() or rollback().
class StmContext final : public StoreRecorder {
 public:
  /// Starts a transaction. Precondition: none active. Resets the
  /// first-write filter (O(1) epoch bump).
  void begin();

  /// Commits: discards the undo log.
  void commit();

  /// Rolls back: restores every logged location, newest first.
  void rollback();

  /// StoreRecorder: logs the not-yet-covered old contents. Never rejects a
  /// store. (The gate's inlined fast path elides fully covered single-line
  /// stores before this is reached; this slow path handles first writes and
  /// line-spanning stores.)
  bool record_store(void* addr, std::size_t size) override;

  /// Enables the devirtualized StoreGate fast path for this engine.
  void bind_gate();

  /// Disables first-write filtering (every store logs, the pre-filter
  /// behaviour). Flip only between transactions.
  void set_filter_enabled(bool enabled) { filter_enabled_ = enabled; }
  bool filter_enabled() const { return filter_enabled_; }

  /// Retention cap for the undo log and filter (FIR_UNDO_RETAIN_BYTES).
  void set_retention(std::size_t bytes);
  std::size_t retention() const { return retain_bytes_; }

  bool active() const { return active_; }
  /// First-write-filter epoch of the open (or last) transaction. A coalesced
  /// run keeps one transaction — and therefore one epoch and one undo log —
  /// open across every call it spans, so repeated stores from different
  /// calls in the run still elide against the run's first write.
  std::uint16_t filter_epoch() const { return filter_.epoch(); }
  std::size_t log_entries() const { return log_.entry_count(); }
  std::size_t log_bytes() const { return log_.logged_bytes(); }
  /// Bytes currently reserved by the log's and filter's buffers (capacity,
  /// not size).
  std::size_t footprint_bytes() const {
    return log_.footprint_bytes() + filter_.footprint_bytes();
  }

  /// Merged statistics snapshot. The gate's fast path appends to the undo
  /// log without touching any tally, so store counts are reconstructed
  /// here: elisions from the filter's counters, gate appends from the log's
  /// entry count minus the slow path's own appends (folded into `stats_` at
  /// commit/rollback for completed transactions).
  StmStats stats() const {
    StmStats s = stats_;
    s.stores += filter_.spans_elided() + (log_.entry_count() - slow_entries_);
    s.stores_elided += filter_.spans_elided();
    s.filter_hits = filter_.hits();
    s.bytes_logged += log_.logged_bytes();
    return s;
  }
  void reset_stats() {
    stats_ = StmStats{};
    filter_.reset_counters();
  }

  /// Publishes this engine's statistics into `registry` as "stm.*" gauges
  /// via a snapshot-time collector (the record_store() hot path is
  /// untouched). `registry` must outlive this context or never snapshot
  /// after its destruction.
  void register_metrics(obs::MetricsRegistry& registry);

 private:
  /// Folds the ended transaction's log appends into the cumulative store
  /// and byte tallies (the gate fast path does no per-store bookkeeping).
  void fold_log_tallies();

  UndoLog log_;
  WriteFilter filter_;
  bool active_ = false;
  bool filter_enabled_ = true;
  std::size_t retain_bytes_ = UndoLog::kDefaultRetainBytes;
  /// Undo-log appends made by record_store() in the current transaction;
  /// the remainder of the log's entries came from the gate fast path.
  std::uint64_t slow_entries_ = 0;
  StmStats stats_;
};

}  // namespace fir
