// Software transactional memory: the undo-log checkpointing mode.
//
// Paper mapping (§IV-A): the STM clone of each code region logs every store's
// old value in an undo log; rollback walks the log in reverse. Register and
// stack-pointer restoration is performed by the transaction entry gate's
// setjmp/longjmp protocol (core/gate.h) — this module is responsible for
// memory contents only.
//
// STM always succeeds (no capacity limit), which is why FIRestarter uses it
// as the fallback that maximizes the recovery surface; it is also the slow
// path: EVERY store pays for an undo-log append, versus once-per-line for the
// HTM model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/store_gate.h"
#include "mem/undo_log.h"
#include "obs/metrics.h"

namespace fir {

/// Cumulative STM statistics.
struct StmStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t stores = 0;
  std::uint64_t bytes_logged = 0;
  /// High-water mark of undo-log footprint — feeds the Fig. 9 memory
  /// accounting.
  std::size_t peak_log_bytes = 0;
};

/// One software-transaction engine. Protocol mirrors HtmContext:
/// begin(); stores via record_store(); commit() or rollback().
class StmContext final : public StoreRecorder {
 public:
  /// Starts a transaction. Precondition: none active.
  void begin();

  /// Commits: discards the undo log.
  void commit();

  /// Rolls back: restores every logged location, newest first.
  void rollback();

  /// StoreRecorder: logs the old contents. Never rejects a store.
  bool record_store(void* addr, std::size_t size) override;

  bool active() const { return active_; }
  std::size_t log_entries() const { return log_.entry_count(); }
  std::size_t log_bytes() const { return log_.logged_bytes(); }
  /// Bytes currently reserved by the log's buffers (capacity, not size).
  std::size_t footprint_bytes() const { return log_.footprint_bytes(); }

  const StmStats& stats() const { return stats_; }
  void reset_stats() { stats_ = StmStats{}; }

  /// Publishes this engine's statistics into `registry` as "stm.*" gauges
  /// via a snapshot-time collector (the record_store() hot path is
  /// untouched). `registry` must outlive this context or never snapshot
  /// after its destruction.
  void register_metrics(obs::MetricsRegistry& registry);

 private:
  /// Store-instruction granularity of the modeled instrumentation.
  static constexpr std::size_t kWordBytes = 8;

  UndoLog log_;
  bool active_ = false;
  StmStats stats_;
};

}  // namespace fir
