#include "stm/stm.h"

#include <algorithm>
#include <cassert>

#include "common/cacheline.h"

namespace fir {

void StmContext::begin() {
  assert(!active_ && "nested software transactions are not modeled");
  active_ = true;
  log_.clear();
  filter_.reset();
  slow_entries_ = 0;
  ++stats_.begun;
}

void StmContext::commit() {
  assert(active_);
  active_ = false;
  ++stats_.committed;
  fold_log_tallies();
  stats_.peak_log_bytes = std::max(stats_.peak_log_bytes, footprint_bytes());
  log_.clear();
  filter_.shrink(retain_bytes_);
}

void StmContext::rollback() {
  assert(active_);
  active_ = false;
  ++stats_.rolled_back;
  fold_log_tallies();
  stats_.peak_log_bytes = std::max(stats_.peak_log_bytes, footprint_bytes());
  log_.rollback();
  filter_.shrink(retain_bytes_);
}

void StmContext::fold_log_tallies() {
  // The gate fast path appends with zero bookkeeping; account for its
  // stores and bytes once per transaction instead of once per store.
  stats_.stores += log_.entry_count() - slow_entries_;
  stats_.bytes_logged += log_.logged_bytes();
  slow_entries_ = 0;
}

bool StmContext::record_store(void* addr, std::size_t size) {
  assert(active_);
  if (size == 0) return true;
  ++stats_.stores;
  // Segment the store at cache-line boundaries (the filter's granularity)
  // and log only segments with not-yet-covered bytes. Partially covered
  // segments are re-logged whole: rollback walks the log newest-first, so a
  // redundant newer pre-image is always overwritten by the older true one.
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t end = a + size;
  bool logged_any = false;
  while (a < end) {
    const std::uintptr_t line = line_base(a);
    const std::uintptr_t seg_end = std::min(end, line + kCacheLineBytes);
    const std::size_t seg = seg_end - a;
    if (!filter_enabled_ ||
        !filter_.cover(line, WriteFilter::span_mask(a, seg))) {
      log_.record(reinterpret_cast<void*>(a), seg);
      ++slow_entries_;
      logged_any = true;
    }
    a = seg_end;
  }
  if (!logged_any) ++stats_.stores_elided;
  return true;
}

void StmContext::bind_gate() {
  if (filter_enabled_) {
    StoreGate::bind_stm(&filter_, &log_, this);
  } else {
    StoreGate::set_recorder(this);
  }
}

void StmContext::set_retention(std::size_t bytes) {
  retain_bytes_ = bytes;
  log_.set_retention(bytes);
}

void StmContext::register_metrics(obs::MetricsRegistry& registry) {
  registry.add_collector([this](obs::MetricsRegistry& reg) {
    const StmStats s = stats();
    reg.gauge("stm.begun").set(static_cast<double>(s.begun));
    reg.gauge("stm.committed").set(static_cast<double>(s.committed));
    reg.gauge("stm.rolled_back").set(static_cast<double>(s.rolled_back));
    reg.gauge("stm.stores").set(static_cast<double>(s.stores));
    reg.gauge("stm.stores_elided")
        .set(static_cast<double>(s.stores_elided));
    reg.gauge("stm.filter_hits").set(static_cast<double>(s.filter_hits));
    reg.gauge("stm.bytes_logged").set(static_cast<double>(s.bytes_logged));
    reg.gauge("stm.peak_log_bytes")
        .set(static_cast<double>(s.peak_log_bytes));
  });
}

}  // namespace fir
