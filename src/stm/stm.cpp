#include "stm/stm.h"

#include <algorithm>
#include <cassert>

namespace fir {

void StmContext::begin() {
  assert(!active_ && "nested software transactions are not modeled");
  active_ = true;
  log_.clear();
  ++stats_.begun;
}

void StmContext::commit() {
  assert(active_);
  active_ = false;
  ++stats_.committed;
  stats_.peak_log_bytes = std::max(stats_.peak_log_bytes, footprint_bytes());
  log_.clear();
}

void StmContext::rollback() {
  assert(active_);
  active_ = false;
  stats_.peak_log_bytes = std::max(stats_.peak_log_bytes, footprint_bytes());
  ++stats_.rolled_back;
  log_.rollback();
}

bool StmContext::record_store(void* addr, std::size_t size) {
  assert(active_);
  ++stats_.stores;
  stats_.bytes_logged += size;
  // Word-granular logging: compiled undo-log instrumentation hooks every
  // store instruction, so a bulk copy of N bytes costs N/8 log appends —
  // the cost structure behind STM-only's high overhead in the paper's
  // Fig. 7. (A single coarse record per memcpy would understate it.)
  auto* bytes = static_cast<std::uint8_t*>(addr);
  while (size > kWordBytes) {
    log_.record(bytes, kWordBytes);
    bytes += kWordBytes;
    size -= kWordBytes;
  }
  log_.record(bytes, size);
  return true;
}

void StmContext::register_metrics(obs::MetricsRegistry& registry) {
  registry.add_collector([this](obs::MetricsRegistry& reg) {
    reg.gauge("stm.begun").set(static_cast<double>(stats_.begun));
    reg.gauge("stm.committed").set(static_cast<double>(stats_.committed));
    reg.gauge("stm.rolled_back")
        .set(static_cast<double>(stats_.rolled_back));
    reg.gauge("stm.stores").set(static_cast<double>(stats_.stores));
    reg.gauge("stm.bytes_logged")
        .set(static_cast<double>(stats_.bytes_logged));
    reg.gauge("stm.peak_log_bytes")
        .set(static_cast<double>(stats_.peak_log_bytes));
  });
}

}  // namespace fir
