#include "env/env.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace fir {

thread_local int Env::t_errno_ = 0;

Env::Env() : fds_(kMaxFds) {}

Env::~Env() = default;

int Env::alloc_fd() {
  // Lowest free descriptor, POSIX-style. fd 0-2 are reserved to keep the
  // mini-servers' logs honest about stdio.
  for (int fd = 3; fd < kMaxFds; ++fd)
    if (fds_[fd].kind == FdKind::kFree) return fd;
  return -1;
}

Env::FdEntry* Env::entry(int fd) {
  if (fd < 0 || fd >= kMaxFds || fds_[fd].kind == FdKind::kFree)
    return nullptr;
  return &fds_[fd];
}

const Env::FdEntry* Env::entry(int fd) const {
  if (fd < 0 || fd >= kMaxFds || fds_[fd].kind == FdKind::kFree)
    return nullptr;
  return &fds_[fd];
}

bool Env::fd_valid(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return entry(fd) != nullptr;
}

std::size_t Env::open_fd_count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& e : fds_)
    if (e.kind != FdKind::kFree) ++n;
  return n;
}

void Env::reset_stats() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  stats_ = EnvStats{};
}

// --- files ----------------------------------------------------------------

int Env::open(std::string_view path, int flags) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  bool mutated = false;
  std::shared_ptr<Inode> inode = vfs_.lookup(path);
  if (inode == nullptr) {
    if ((flags & kCreat) == 0) return err(ENOENT);
    inode = vfs_.create(path, false);
    mutated = true;
  } else if (flags & kTrunc) {
    mutated = !inode->data.empty();
    inode->note_truncate(0);
    inode->data.clear();
  }
  const int fd = alloc_fd();
  if (fd < 0) return err(EMFILE);
  FdEntry& e = fds_[fd];
  e.kind = FdKind::kFile;
  e.file = std::make_shared<OpenFile>();
  e.file->inode = std::move(inode);
  e.file->flags = flags;
  e.file->offset =
      (flags & kAppend) ? static_cast<std::int64_t>(e.file->inode->data.size())
                        : 0;
  if (mutated) persist_op();
  return fd;
}

ssize_t Env::read(int fd, void* buf, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr) return errs(EBADF);
  if (e->kind == FdKind::kSocket) return recv(fd, buf, n);
  if (e->kind != FdKind::kFile) return errs(EBADF);
  const ssize_t got = pread(fd, buf, n, e->file->offset);
  if (got > 0) e->file->offset += got;
  return got;
}

ssize_t Env::pread(int fd, void* buf, std::size_t n, std::int64_t offset) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return errs(EBADF);
  if (offset < 0) return errs(EINVAL);
  const auto& data = e->file->inode->data;
  if (static_cast<std::size_t>(offset) >= data.size()) return 0;
  const std::size_t avail = data.size() - static_cast<std::size_t>(offset);
  const std::size_t take = std::min(n, avail);
  std::memcpy(buf, data.data() + offset, take);
  return static_cast<ssize_t>(take);
}

ssize_t Env::write(int fd, const void* buf, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr) return errs(EBADF);
  if (e->kind == FdKind::kSocket) return send(fd, buf, n);
  if (e->kind != FdKind::kFile) return errs(EBADF);
  // O_APPEND: every write goes to end-of-file regardless of the tracked
  // offset, exactly like the real flag — appenders (AOF/WAL) rely on it
  // instead of manual offset bookkeeping.
  if (e->file->flags & kAppend)
    e->file->offset = static_cast<std::int64_t>(e->file->inode->data.size());
  const ssize_t wrote = pwrite(fd, buf, n, e->file->offset);
  if (wrote > 0) e->file->offset += wrote;
  return wrote;
}

ssize_t Env::pwrite(int fd, const void* buf, std::size_t n,
                    std::int64_t offset) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return errs(EBADF);
  if (offset < 0) return errs(EINVAL);
  auto& data = e->file->inode->data;
  const std::size_t end = static_cast<std::size_t>(offset) + n;
  e->file->inode->note_write(static_cast<std::size_t>(offset), n);
  if (end > data.size()) data.resize(end, '\0');
  std::memcpy(data.data() + offset, buf, n);
  if (n > 0) persist_op();
  return static_cast<ssize_t>(n);
}

std::int64_t Env::lseek(int fd, std::int64_t offset, int whence) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return errs(EBADF);
  std::int64_t base = 0;
  switch (whence) {
    case kSeekSet: base = 0; break;
    case kSeekCur: base = e->file->offset; break;
    case kSeekEnd:
      base = static_cast<std::int64_t>(e->file->inode->data.size());
      break;
    default:
      return errs(EINVAL);
  }
  const std::int64_t target = base + offset;
  if (target < 0) return errs(EINVAL);
  e->file->offset = target;
  return target;
}

int Env::stat_size(std::string_view path, std::size_t* size_out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  auto inode = vfs_.lookup(path);
  if (inode == nullptr) return err(ENOENT);
  if (size_out != nullptr) *size_out = inode->data.size();
  return 0;
}

int Env::fstat_size(int fd, std::size_t* size_out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return err(EBADF);
  if (size_out != nullptr) *size_out = e->file->inode->data.size();
  return 0;
}

int Env::unlink(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  if (!vfs_.unlink(path)) return err(ENOENT);
  persist_op();
  return 0;
}

int Env::rename(std::string_view from, std::string_view to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  if (!vfs_.rename(from, to)) return err(ENOENT);
  persist_op();
  return 0;
}

int Env::ftruncate(int fd, std::size_t length) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return err(EBADF);
  e->file->inode->note_truncate(length);
  e->file->inode->data.resize(length, '\0');
  persist_op();
  return 0;
}

int Env::fsync(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return err(EBADF);
  // Flush the inode to stable media and persist its current link(s).
  vfs_.sync_inode(e->file->inode);
  clock_.advance_ns(5000);
  persist_op();
  return 0;
}

int Env::fdatasync(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return err(EBADF);
  vfs_.sync_inode_data(e->file->inode);
  clock_.advance_ns(5000);
  persist_op();
  return 0;
}

int Env::fsync_dir(std::string_view dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  vfs_.sync_dir(dir);
  clock_.advance_ns(5000);
  persist_op();
  return 0;
}

// --- sockets ----------------------------------------------------------------

int Env::socket() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  const int fd = alloc_fd();
  if (fd < 0) return err(EMFILE);
  FdEntry& e = fds_[fd];
  e.kind = FdKind::kSocket;
  e.socket = std::make_shared<SocketEndpoint>();
  return fd;
}

Listener* Env::listener_for_port(std::uint16_t port) {
  for (auto& e : fds_)
    if (e.kind == FdKind::kListener && e.listener->port == port)
      return e.listener.get();
  return nullptr;
}

int Env::bind(int fd, std::uint16_t port) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return err(EBADF);
  if (port == 0) return err(EINVAL);
  // SO_REUSEPORT sharding: a port may be shared when EVERY holder — this
  // socket and all already-bound/listening ones — opted in before binding
  // (the kernel's rule). Otherwise EADDRINUSE against bound-but-not-
  // listening and listening sockets alike.
  const bool reuse = (e->socket->options & kSockOptReusePort) != 0;
  for (const auto& other : fds_) {
    if (other.kind == FdKind::kListener && other.listener->port == port &&
        !(reuse && other.listener->reuse_port))
      return err(EADDRINUSE);
    if (other.kind == FdKind::kSocket && other.socket != e->socket &&
        other.bound_port == port &&
        !(reuse && (other.socket->options & kSockOptReusePort) != 0))
      return err(EADDRINUSE);
  }
  e->bound_port = port;
  return 0;
}

int Env::listen(int fd, int backlog) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return err(EBADF);
  if (e->bound_port == 0) return err(EINVAL);  // EADDRINUSE-free: not bound
  auto listener = std::make_shared<Listener>();
  listener->port = e->bound_port;
  listener->backlog = backlog > 0 ? backlog : 16;
  listener->reuse_port = (e->socket->options & kSockOptReusePort) != 0;
  listener->socket_options = e->socket->options;
  e->kind = FdKind::kListener;
  e->listener = std::move(listener);
  e->socket.reset();
  return 0;
}

int Env::accept(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kListener) return err(EBADF);
  if (e->listener->pending.empty()) return err(EAGAIN);
  const int conn_fd = alloc_fd();
  if (conn_fd < 0) return err(EMFILE);
  FdEntry& c = fds_[conn_fd];
  c.kind = FdKind::kSocket;
  c.socket = e->listener->pending.front();
  e->listener->pending.pop_front();
  return conn_fd;
}

int Env::connect_to(std::uint16_t port) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  // Gather the port's listener group (size 1 without SO_REUSEPORT) and
  // shard the connection round-robin, skipping members with a full backlog
  // — a deterministic model of the kernel's reuseport flow hash.
  Listener* group[kMaxFds];
  std::size_t group_size = 0;
  for (auto& e : fds_)
    if (e.kind == FdKind::kListener && e.listener->port == port)
      group[group_size++] = e.listener.get();
  Listener* listener = nullptr;
  for (std::size_t i = 0; i < group_size; ++i) {
    Listener* candidate = group[(reuseport_next_ + i) % group_size];
    if (candidate->pending.size() <
        static_cast<std::size_t>(candidate->backlog)) {
      listener = candidate;
      reuseport_next_ = (reuseport_next_ + i + 1) % group_size;
      break;
    }
  }
  if (listener == nullptr) return err(ECONNREFUSED);
  const int fd = alloc_fd();
  if (fd < 0) return err(EMFILE);
  auto client_end = std::make_shared<SocketEndpoint>();
  auto server_end = std::make_shared<SocketEndpoint>();
  client_end->peer = server_end;
  server_end->peer = client_end;
  FdEntry& e = fds_[fd];
  e.kind = FdKind::kSocket;
  e.socket = std::move(client_end);
  listener->pending.push_back(std::move(server_end));
  wake_pollers();  // listener became readable
  return fd;
}

ssize_t Env::send(int fd, const void* buf, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return errs(EBADF);
  SocketEndpoint& s = *e->socket;
  if (s.reset) return errs(ECONNRESET);
  if (s.shutdown_wr) return errs(EPIPE);
  auto peer = s.peer.lock();
  if (peer == nullptr) return errs(EPIPE);
  const std::size_t space = peer->rx_space();
  if (space == 0) return errs(EAGAIN);
  const std::size_t take = std::min(n, space);
  const char* bytes = static_cast<const char*>(buf);
  peer->rx.insert(peer->rx.end(), bytes, bytes + take);
  stats_.bytes_sent += take;
  wake_pollers();  // peer became readable
  return static_cast<ssize_t>(take);
}

ssize_t Env::recv(int fd, void* buf, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return errs(EBADF);
  SocketEndpoint& s = *e->socket;
  if (s.reset) return errs(ECONNRESET);
  if (s.rx.empty()) {
    if (s.peer_closed || s.peer.expired()) return 0;  // orderly EOF
    return errs(EAGAIN);
  }
  const std::size_t take = std::min(n, s.rx.size());
  char* out = static_cast<char*>(buf);
  for (std::size_t i = 0; i < take; ++i) {
    out[i] = s.rx.front();
    s.rx.pop_front();
  }
  stats_.bytes_received += take;
  wake_pollers();  // drained rx: the peer may be writable again
  return static_cast<ssize_t>(take);
}

int Env::sock_unread(int fd, const void* data, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return err(EBADF);
  const char* bytes = static_cast<const char*>(data);
  auto& rx = e->socket->rx;
  rx.insert(rx.begin(), bytes, bytes + n);
  stats_.bytes_received -= std::min<std::uint64_t>(stats_.bytes_received, n);
  wake_pollers();  // fd became readable again
  return 0;
}

int Env::setsockopt(int fd, std::uint32_t option_bit) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || (e->kind != FdKind::kSocket)) return err(EBADF);
  e->socket->options |= option_bit;
  return 0;
}

int Env::fcntl_set_nonblock(int fd, bool nonblocking) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr) return err(EBADF);
  if (e->kind == FdKind::kSocket) e->socket->nonblocking = nonblocking;
  return 0;
}

int Env::shutdown_wr(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return err(ENOTCONN);
  e->socket->shutdown_wr = true;
  if (auto peer = e->socket->peer.lock()) peer->peer_closed = true;
  wake_pollers();  // peer sees EOF/HUP
  return 0;
}

int Env::unbind(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) return err(EBADF);
  e->bound_port = 0;
  return 0;
}

int Env::unlisten(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kListener) return err(EBADF);
  // Pending, never-accepted connections are torn down (clients see RST).
  for (auto& pending : e->listener->pending) {
    if (auto peer = pending->peer.lock()) peer->reset = true;
  }
  const std::uint16_t port = e->listener->port;
  const std::uint32_t options = e->listener->socket_options;
  e->kind = FdKind::kSocket;
  e->listener.reset();
  e->socket = std::make_shared<SocketEndpoint>();
  e->socket->options = options;  // keep the reuseport group membership
  e->bound_port = port;
  wake_pollers();  // reset pending peers see kPollErr
  return 0;
}

std::int64_t Env::file_offset(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return -1;
  return e->file->offset;
}

bool Env::fd_is_file(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FdEntry* e = entry(fd);
  return e != nullptr && e->kind == FdKind::kFile;
}

std::int64_t Env::file_size(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return -1;
  return static_cast<std::int64_t>(e->file->inode->data.size());
}

std::int64_t Env::file_durable_size(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return -1;
  return static_cast<std::int64_t>(e->file->inode->durable.size());
}

int Env::file_flags(int fd) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile) return -1;
  return e->file->flags;
}

void Env::set_file_offset(int fd, std::int64_t offset) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FdEntry* e = entry(fd);
  if (e == nullptr || e->kind != FdKind::kFile || offset < 0) return;
  e->file->offset = offset;
}

// --- persistence points & crash capture -------------------------------------

void Env::persist_op() {
  ++persist_ops_;
  if (capture_at_ != 0 && !capture_fired_ && persist_ops_ >= capture_at_) {
    captured_image_ = vfs_.crash_image(capture_opts_);
    capture_fired_ = true;
  }
}

std::uint64_t Env::persist_op_count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return persist_ops_;
}

void Env::arm_crash_capture(std::uint64_t k, const CrashImageOptions& opts) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  capture_at_ = k;
  capture_opts_ = opts;
  capture_fired_ = false;
  captured_image_ = Vfs{};
}

bool Env::crash_capture_fired() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return capture_fired_;
}

const Vfs& Env::captured_crash_image() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return captured_image_;
}

int Env::close(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr) return err(EBADF);
  if (e->kind == FdKind::kSocket) {
    if (auto peer = e->socket->peer.lock()) peer->peer_closed = true;
  }
  drop_epoll_interest(fd);
  *e = FdEntry{};
  wake_pollers();  // peers see EOF/HUP; sleepers re-check their interest sets
  return 0;
}

// --- descriptor & vector ops --------------------------------------------------

int Env::dup(int fd) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* e = entry(fd);
  if (e == nullptr) return err(EBADF);
  const int copy = alloc_fd();
  if (copy < 0) return err(EMFILE);
  fds_[copy] = *e;  // shared_ptrs: shares the description
  return copy;
}

int Env::socketpair(int out[2]) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  const int a = alloc_fd();
  if (a < 0) return err(EMFILE);
  fds_[a].kind = FdKind::kSocket;  // reserve before second alloc
  const int b = alloc_fd();
  if (b < 0) {
    fds_[a] = FdEntry{};
    return err(EMFILE);
  }
  auto end_a = std::make_shared<SocketEndpoint>();
  auto end_b = std::make_shared<SocketEndpoint>();
  end_a->peer = end_b;
  end_b->peer = end_a;
  fds_[a].kind = FdKind::kSocket;
  fds_[a].socket = std::move(end_a);
  fds_[b].kind = FdKind::kSocket;
  fds_[b].socket = std::move(end_b);
  out[0] = a;
  out[1] = b;
  return 0;
}

int Env::pipe(int out[2]) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const int rc = socketpair(out);
  if (rc != 0) return rc;
  // Unidirectional: reader cannot write, writer cannot read (model).
  fds_[out[0]].socket->shutdown_wr = true;
  return 0;
}

ssize_t Env::sendfile(int out_sock, int in_file, std::int64_t offset,
                      std::size_t count) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* file = entry(in_file);
  if (file == nullptr || file->kind != FdKind::kFile) return errs(EBADF);
  FdEntry* sock = entry(out_sock);
  if (sock == nullptr || sock->kind != FdKind::kSocket) return errs(EBADF);
  if (offset < 0) return errs(EINVAL);
  const auto& data = file->file->inode->data;
  if (static_cast<std::size_t>(offset) >= data.size()) return 0;
  const std::size_t avail = data.size() - static_cast<std::size_t>(offset);
  const std::size_t want = std::min(count, avail);
  // Reuses socket send semantics (EAGAIN on backpressure etc.).
  return send(out_sock, data.data() + offset, want);
}

ssize_t Env::writev(int fd, const IoSlice* slices, int n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  if (n < 0) return errs(EINVAL);
  ssize_t total = 0;
  for (int i = 0; i < n; ++i) {
    if (slices[i].len == 0) continue;
    const ssize_t w = write(fd, slices[i].data, slices[i].len);
    if (w < 0) return total > 0 ? total : w;
    total += w;
    if (static_cast<std::size_t>(w) < slices[i].len) break;  // backpressure
  }
  return total;
}

// --- epoll ------------------------------------------------------------------

int Env::epoll_create1() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  const int fd = alloc_fd();
  if (fd < 0) return err(EMFILE);
  FdEntry& e = fds_[fd];
  e.kind = FdKind::kEpoll;
  e.epoll = std::make_shared<EpollInstance>();
  return fd;
}

int Env::epoll_ctl(int epfd, int op, int fd, std::uint32_t events) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* ep = entry(epfd);
  if (ep == nullptr || ep->kind != FdKind::kEpoll) return err(EBADF);
  if (entry(fd) == nullptr) return err(EBADF);
  PollInterest* existing = ep->epoll->find(fd);
  switch (op) {
    case kEpollAdd:
      if (existing != nullptr) return err(EEXIST);
      ep->epoll->interests.push_back(PollInterest{fd, events});
      return 0;
    case kEpollMod:
      if (existing == nullptr) return err(ENOENT);
      existing->events = events;
      return 0;
    case kEpollDel: {
      if (existing == nullptr) return err(ENOENT);
      auto& v = ep->epoll->interests;
      v.erase(std::remove_if(v.begin(), v.end(),
                             [fd](const PollInterest& i) {
                               return i.fd == fd;
                             }),
              v.end());
      return 0;
    }
    default:
      return err(EINVAL);
  }
}

int Env::epoll_scan(const EpollInstance& ep, PollEvent* events,
                    int max_events) {
  int count = 0;
  for (const PollInterest& interest : ep.interests) {
    if (count >= max_events) break;
    const FdEntry* t = entry(interest.fd);
    if (t == nullptr) continue;
    std::uint32_t ready = 0;
    if (t->kind == FdKind::kSocket) {
      if ((interest.events & kPollIn) && t->socket->readable())
        ready |= kPollIn;
      if ((interest.events & kPollOut) && t->socket->writable())
        ready |= kPollOut;
      if (t->socket->reset) ready |= kPollErr;
      if (t->socket->peer_closed && t->socket->rx.empty()) ready |= kPollHup;
    } else if (t->kind == FdKind::kListener) {
      if ((interest.events & kPollIn) && t->listener->readable())
        ready |= kPollIn;
    }
    if (ready != 0) {
      events[count].fd = interest.fd;
      events[count].events = ready;
      ++count;
    }
  }
  return count;
}

int Env::epoll_wait(int epfd, PollEvent* events, int max_events,
                    int timeout_ms) {
  std::unique_lock<std::recursive_mutex> lock(mu_);
  tick();
  FdEntry* ep = entry(epfd);
  if (ep == nullptr || ep->kind != FdKind::kEpoll) return err(EBADF);
  if (max_events <= 0) return err(EINVAL);
  // Hold a reference to the instance rather than the FdEntry: a concurrent
  // close(epfd) while we sleep must not leave us scanning freed state.
  std::shared_ptr<EpollInstance> inst = ep->epoll;
  int count = epoll_scan(*inst, events, max_events);
  if (count > 0 || timeout_ms <= 0) return count;
  // Nothing ready: park until a peer changes readiness or the (real-time)
  // deadline passes. The wait releases the big lock, so client threads make
  // progress while this event loop sleeps. Spurious wakeups just re-scan.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (count == 0) {
    if (poll_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      count = epoll_scan(*inst, events, max_events);
      break;
    }
    count = epoll_scan(*inst, events, max_events);
  }
  return count;
}

void Env::drop_epoll_interest(int fd) {
  for (auto& e : fds_) {
    if (e.kind != FdKind::kEpoll) continue;
    auto& v = e.epoll->interests;
    v.erase(std::remove_if(
                v.begin(), v.end(),
                [fd](const PollInterest& i) { return i.fd == fd; }),
            v.end());
  }
}

// --- accounted heap ----------------------------------------------------------

namespace {
struct AllocHeader {
  std::size_t size;
  std::size_t magic;
};
constexpr std::size_t kAllocMagic = 0xF1EE57A7;
}  // namespace

void* Env::mem_alloc(std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tick();
  auto* header = static_cast<AllocHeader*>(
      std::malloc(sizeof(AllocHeader) + n));
  if (header == nullptr) {
    t_errno_ = ENOMEM;
    return nullptr;
  }
  header->size = n;
  header->magic = kAllocMagic;
  stats_.heap_bytes += n;
  stats_.heap_peak_bytes = std::max(stats_.heap_peak_bytes, stats_.heap_bytes);
  ++stats_.heap_allocs;
  return header + 1;
}

void* Env::mem_alloc_zero(std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  void* p = mem_alloc(n);
  if (p != nullptr) std::memset(p, 0, n);
  return p;
}

void* Env::mem_realloc(void* p, std::size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (p == nullptr) return mem_alloc(n);
  auto* header = static_cast<AllocHeader*>(p) - 1;
  assert(header->magic == kAllocMagic);
  const std::size_t old = header->size;
  void* fresh = mem_alloc(n);
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, p, std::min(old, n));
  mem_free(p);
  return fresh;
}

void Env::mem_free(void* p) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (p == nullptr) return;
  tick();
  auto* header = static_cast<AllocHeader*>(p) - 1;
  assert(header->magic == kAllocMagic && "mem_free of foreign pointer");
  header->magic = 0;
  stats_.heap_bytes -= header->size;
  ++stats_.heap_frees;
  std::free(header);
}

}  // namespace fir
