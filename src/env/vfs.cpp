#include "env/vfs.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fir {
namespace {

// Host-backing name mangling: virtual "/data/appendonly.aof" lives in the
// backing directory as "data__appendonly.aof". '/' never appears in host
// names, so the mapping round-trips.
std::string mangle(std::string_view vpath) {
  std::string out;
  out.reserve(vpath.size() + 4);
  std::size_t i = 0;
  while (i < vpath.size() && vpath[i] == '/') ++i;  // drop leading slashes
  for (; i < vpath.size(); ++i)
    if (vpath[i] == '/')
      out += "__";
    else
      out += vpath[i];
  return out;
}

std::string demangle(std::string_view host_name) {
  std::string out = "/";
  for (std::size_t i = 0; i < host_name.size(); ++i) {
    if (host_name[i] == '_' && i + 1 < host_name.size() &&
        host_name[i + 1] == '_') {
      out += '/';
      ++i;
    } else {
      out += host_name[i];
    }
  }
  return out;
}

}  // namespace

std::shared_ptr<Inode> Vfs::lookup(std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

std::shared_ptr<Inode> Vfs::create(std::string_view path, bool truncate) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (truncate) {
      it->second->note_truncate(0);
      it->second->data.clear();
    }
    return it->second;
  }
  auto inode = std::make_shared<Inode>();
  files_.emplace(std::string(path), inode);
  return inode;
}

bool Vfs::unlink(std::string_view path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  files_.erase(it);
  return true;
}

bool Vfs::rename(std::string_view from, std::string_view to) {
  auto it = files_.find(from);
  if (it == files_.end()) return false;
  auto inode = it->second;
  files_.erase(it);
  files_.insert_or_assign(std::string(to), std::move(inode));
  return true;
}

std::size_t Vfs::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, inode] : files_) total += inode->data.size();
  return total;
}

void Vfs::import_from(const Vfs& other) {
  for (const auto& [name, inode] : other.files_) {
    auto copy = std::make_shared<Inode>();
    copy->data = inode->data;
    copy->durable = inode->data;
    files_.insert_or_assign(name, copy);
    durable_links_.insert_or_assign(name, copy);
    if (backed()) backing_write(name, copy->durable);
  }
}

void Vfs::put_file(std::string_view path, std::string_view contents) {
  auto inode = create(path, /*truncate=*/true);
  inode->data.assign(contents.begin(), contents.end());
  inode->durable = inode->data;
  inode->dirty = inode->prefix_dirty = false;
  durable_links_.insert_or_assign(std::string(path), inode);
  if (backed()) backing_write(path, inode->durable);
}

// --- durability -------------------------------------------------------------

Vfs::SyncKind Vfs::classify_sync(const Inode& inode) {
  if (!inode.dirty) {
    if (inode.data.size() == inode.durable.size()) return SyncKind::kNoop;
    // The images disagree without a recorded mutation: something mutated
    // inode->data directly (tests do) — distrust the flags, copy in full.
    return SyncKind::kFull;
  }
  // An append run: nothing below the durable prefix was touched and the
  // volatile image is at least as long, so durable is still a verbatim
  // prefix of data and the barrier only has to copy the tail.
  if (!inode.prefix_dirty && inode.data.size() >= inode.durable.size())
    return SyncKind::kDelta;
  return SyncKind::kFull;
}

std::size_t Vfs::flush_inode(const std::shared_ptr<Inode>& inode,
                             SyncKind kind) {
  const std::size_t prev = inode->durable.size();
  switch (kind) {
    case SyncKind::kNoop:
      persist_stats_.noop_syncs += 1;
      persist_stats_.bytes_elided += prev;
      break;
    case SyncKind::kDelta:
      inode->durable.insert(inode->durable.end(),
                            inode->data.begin() +
                                static_cast<std::ptrdiff_t>(prev),
                            inode->data.end());
      persist_stats_.delta_syncs += 1;
      persist_stats_.bytes_synced += inode->data.size() - prev;
      persist_stats_.bytes_elided += prev;
      break;
    case SyncKind::kFull:
      inode->durable = inode->data;
      persist_stats_.full_syncs += 1;
      persist_stats_.bytes_synced += inode->data.size();
      break;
  }
  inode->dirty = inode->prefix_dirty = false;
  return prev;
}

void Vfs::sync_inode(const std::shared_ptr<Inode>& inode) {
  if (inode == nullptr) return;
  persist_stats_.barriers += 1;
  const SyncKind kind = classify_sync(*inode);
  const std::size_t prev = flush_inode(inode, kind);
  // Persist the inode's current link(s): a journaled filesystem commits the
  // creation with the data, so create + write + fsync is a durable file
  // without a separate directory barrier. Stale durable names (a renamed-
  // away source, a replaced target's old inode) are NOT touched — only
  // sync_dir reorders the durable namespace.
  for (const auto& [name, node] : files_)
    if (node == inode) {
      const auto dur = durable_links_.find(name);
      const bool newly_linked =
          dur == durable_links_.end() || dur->second != inode;
      if (newly_linked) durable_links_.insert_or_assign(name, inode);
      if (!backed()) continue;
      // A name first linked by this barrier has no backing file to append
      // to; delta-append only an already-linked name, full-write the rest.
      if (newly_linked || kind == SyncKind::kFull) {
        backing_write(name, inode->durable);
      } else if (kind == SyncKind::kDelta) {
        backing_append(name, inode->durable, prev);
      }
    }
}

void Vfs::sync_inode_data(const std::shared_ptr<Inode>& inode) {
  if (inode == nullptr) return;
  persist_stats_.barriers += 1;
  const SyncKind kind = classify_sync(*inode);
  const std::size_t prev = flush_inode(inode, kind);
  if (!backed() || kind == SyncKind::kNoop) return;
  for (const auto& [name, node] : durable_links_)
    if (node == inode) {
      if (kind == SyncKind::kDelta) {
        backing_append(name, inode->durable, prev);
      } else {
        backing_write(name, inode->durable);
      }
    }
}

void Vfs::sync_dir(std::string_view dir) {
  persist_stats_.barriers += 1;
  // Reconcile the durable name table with the volatile one for every path
  // whose parent directory is `dir`. Contents are NOT flushed: a rename
  // made durable before its data was synced exposes the target name bound
  // to whatever the inode's durable image holds (possibly nothing) — the
  // rename-before-fsync bug, reproduced faithfully.
  for (auto it = durable_links_.begin(); it != durable_links_.end();) {
    if (parent_dir(it->first) == dir && files_.find(it->first) == files_.end()) {
      if (backed()) backing_remove(it->first);
      it = durable_links_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, inode] : files_) {
    if (parent_dir(name) != dir) continue;
    auto it = durable_links_.find(name);
    if (it != durable_links_.end() && it->second == inode) continue;
    durable_links_.insert_or_assign(name, inode);
    if (backed()) backing_write(name, inode->durable);
  }
}

bool Vfs::durably_linked(std::string_view path) const {
  auto vol = files_.find(path);
  auto dur = durable_links_.find(path);
  return vol != files_.end() && dur != durable_links_.end() &&
         vol->second == dur->second;
}

std::size_t Vfs::durable_size(std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->durable.size();
}

Vfs Vfs::crash_image(const CrashImageOptions& opts) const {
  Vfs image;
  for (const auto& [name, inode] : durable_links_) {
    auto copy = std::make_shared<Inode>();
    copy->data = inode->durable;
    if (opts.torn_tail_bytes > 0 &&
        inode->data.size() > inode->durable.size()) {
      // A tail was in flight: keep a partial-sector prefix of it.
      const std::size_t unsynced = inode->data.size() - inode->durable.size();
      const std::size_t keep = std::min(opts.torn_tail_bytes, unsynced);
      copy->data.insert(copy->data.end(),
                        inode->data.begin() +
                            static_cast<std::ptrdiff_t>(inode->durable.size()),
                        inode->data.begin() +
                            static_cast<std::ptrdiff_t>(inode->durable.size() +
                                                        keep));
      if (opts.torn_bit_flip && !copy->data.empty())
        copy->data.back() = static_cast<char>(copy->data.back() ^ 0x40);
    }
    copy->durable = copy->data;  // the image IS the media: fully synced
    image.files_.insert_or_assign(name, copy);
    image.durable_links_.insert_or_assign(name, copy);
  }
  return image;
}

// --- host backing -----------------------------------------------------------

std::string Vfs::parent_dir(std::string_view path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string_view::npos) return "";
  if (slash == 0) return "/";
  return std::string(path.substr(0, slash));
}

std::string Vfs::backing_path(std::string_view vpath) const {
  return backing_dir_ + "/" + mangle(vpath);
}

bool Vfs::attach_backing(const std::string& host_dir) {
  if (::mkdir(host_dir.c_str(), 0755) != 0 && errno != EEXIST) return false;
  DIR* d = ::opendir(host_dir.c_str());
  if (d == nullptr) return false;
  backing_dir_ = host_dir;
  while (dirent* ent = ::readdir(d)) {
    const std::string host_name = ent->d_name;
    if (host_name == "." || host_name == "..") continue;
    // Skip a temp file left by a crash mid write-through: the rename never
    // happened, so the previous image under the real name is the truth.
    if (host_name.size() > 4 &&
        host_name.compare(host_name.size() - 4, 4, ".tmp") == 0) {
      ::unlink((host_dir + "/" + host_name).c_str());
      continue;
    }
    const std::string host_path = host_dir + "/" + host_name;
    struct stat st{};
    if (::stat(host_path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    std::FILE* f = std::fopen(host_path.c_str(), "rb");
    if (f == nullptr) continue;
    auto inode = std::make_shared<Inode>();
    inode->data.resize(static_cast<std::size_t>(st.st_size));
    if (st.st_size > 0 &&
        std::fread(inode->data.data(), 1, inode->data.size(), f) !=
            inode->data.size()) {
      std::fclose(f);
      continue;
    }
    std::fclose(f);
    inode->durable = inode->data;
    const std::string vpath = demangle(host_name);
    files_.insert_or_assign(vpath, inode);
    durable_links_.insert_or_assign(vpath, inode);
  }
  ::closedir(d);
  return true;
}

void Vfs::backing_write(std::string_view vpath,
                        const std::vector<char>& bytes) {
  const std::string path = backing_path(vpath);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  ::rename(tmp.c_str(), path.c_str());
}

void Vfs::backing_append(std::string_view vpath,
                         const std::vector<char>& bytes, std::size_t from) {
  if (from > bytes.size()) from = bytes.size();
  const std::string path = backing_path(vpath);
  // "r+b": the file must already exist (it does — the name was durably
  // linked by an earlier barrier, which wrote it in full). A missing or
  // unopenable file falls back to the SIGKILL-atomic temp+rename path.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    backing_write(vpath, bytes);
    return;
  }
  bool ok = std::fseek(f, static_cast<long>(from), SEEK_SET) == 0;
  const std::size_t delta = bytes.size() - from;
  if (ok && delta > 0)
    ok = std::fwrite(bytes.data() + from, 1, delta, f) == delta;
  if (ok) {
    std::fflush(f);
    ::fdatasync(::fileno(f));
    std::fclose(f);
    return;
  }
  std::fclose(f);
  backing_write(vpath, bytes);  // positional append failed: full rewrite
}

void Vfs::backing_remove(std::string_view vpath) {
  ::unlink(backing_path(vpath).c_str());
}

}  // namespace fir
