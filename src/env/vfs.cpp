#include "env/vfs.h"

namespace fir {

std::shared_ptr<Inode> Vfs::lookup(std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

std::shared_ptr<Inode> Vfs::create(std::string_view path, bool truncate) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (truncate) it->second->data.clear();
    return it->second;
  }
  auto inode = std::make_shared<Inode>();
  files_.emplace(std::string(path), inode);
  return inode;
}

bool Vfs::unlink(std::string_view path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  files_.erase(it);
  return true;
}

bool Vfs::rename(std::string_view from, std::string_view to) {
  auto it = files_.find(from);
  if (it == files_.end()) return false;
  auto inode = it->second;
  files_.erase(it);
  files_.insert_or_assign(std::string(to), std::move(inode));
  return true;
}

std::size_t Vfs::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, inode] : files_) total += inode->data.size();
  return total;
}

void Vfs::import_from(const Vfs& other) {
  for (const auto& [name, inode] : other.files_) {
    auto copy = std::make_shared<Inode>();
    copy->data = inode->data;
    files_.insert_or_assign(name, std::move(copy));
  }
}

void Vfs::put_file(std::string_view path, std::string_view contents) {
  auto inode = create(path, /*truncate=*/true);
  inode->data.assign(contents.begin(), contents.end());
}

}  // namespace fir
