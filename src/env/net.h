// Virtual network: TCP-like stream sockets over an in-process loopback
// fabric, plus an epoll-like readiness poller.
//
// Connections are pairs of endpoints with bounded receive buffers; send()
// appends to the peer's buffer (EAGAIN when full), recv() consumes the own
// buffer (EAGAIN when empty and the peer is open, 0 at orderly shutdown).
// unread() pushes bytes back to the FRONT of a receive buffer — the
// compensation primitive that makes recv a "state restoration needed"
// library call rather than an irrecoverable one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>

namespace fir {

/// One side of an established connection.
struct SocketEndpoint {
  /// Bytes queued for this endpoint to read.
  std::deque<char> rx;
  /// Peer endpoint; expired when the peer fd was fully torn down.
  std::weak_ptr<SocketEndpoint> peer;
  bool peer_closed = false;  // peer performed close()/shutdown(WR)
  bool reset = false;        // connection reset (RST)
  bool shutdown_wr = false;  // this side shut down writing
  /// Per-socket option store (SO_REUSEADDR etc.) — semantics-free flags the
  /// mini-servers set and the catalog classifies as idempotent.
  std::uint32_t options = 0;
  bool nonblocking = false;

  /// Receive-buffer capacity: send() to a full peer returns EAGAIN.
  static constexpr std::size_t kRxCapacity = 256 * 1024;

  std::size_t rx_space() const {
    return rx.size() >= kRxCapacity ? 0 : kRxCapacity - rx.size();
  }
  bool readable() const { return !rx.empty() || peer_closed || reset; }
  bool writable() const {
    auto p = peer.lock();
    return p != nullptr && !shutdown_wr && p->rx_space() > 0;
  }
};

/// A listening socket: a bound port with a queue of not-yet-accepted
/// connections (each already a fully formed endpoint pair; the client holds
/// the other end).
struct Listener {
  std::uint16_t port = 0;
  int backlog = 0;
  std::deque<std::shared_ptr<SocketEndpoint>> pending;
  /// Member of a SO_REUSEPORT group: siblings may listen on the same port
  /// and connect_to() shards connections across the group.
  bool reuse_port = false;
  /// Socket option bits at listen() time, restored by unlisten() (the
  /// compensation must reproduce the pre-listen socket exactly).
  std::uint32_t socket_options = 0;

  bool readable() const { return !pending.empty(); }
};

/// Interest registered with an epoll instance.
struct PollInterest {
  int fd = -1;
  std::uint32_t events = 0;  // EPOLLIN / EPOLLOUT bits (see kPollIn/Out)
};

inline constexpr std::uint32_t kPollIn = 0x1;
inline constexpr std::uint32_t kPollOut = 0x4;
inline constexpr std::uint32_t kPollErr = 0x8;
inline constexpr std::uint32_t kPollHup = 0x10;

/// Readiness event returned by epoll_wait.
struct PollEvent {
  int fd = -1;
  std::uint32_t events = 0;
};

/// An epoll instance: a set of fd interests, scanned level-triggered.
struct EpollInstance {
  std::vector<PollInterest> interests;

  PollInterest* find(int fd) {
    for (auto& interest : interests)
      if (interest.fd == fd) return &interest;
    return nullptr;
  }
};

}  // namespace fir
