// Virtual filesystem: the file side of the simulated environment.
//
// Paths map to in-memory inodes; open file descriptions carry offset and
// flags. Semantics mirror the POSIX subset the mini-servers and the
// interposition wrappers rely on (including the compensation operations:
// restoring offsets, renaming back, re-creating unlinked files is never
// needed because unlink is deferred until commit).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fir {

/// One regular file's contents. Shared between the name table and open file
/// descriptions so an unlinked-but-open file stays readable (POSIX).
struct Inode {
  std::vector<char> data;
};

/// Name-to-inode mapping plus path-level operations.
class Vfs {
 public:
  /// Looks up a path; nullptr when absent.
  std::shared_ptr<Inode> lookup(std::string_view path) const;

  /// Creates (or truncates, when `truncate` is set) a file and returns its
  /// inode.
  std::shared_ptr<Inode> create(std::string_view path, bool truncate);

  bool exists(std::string_view path) const { return lookup(path) != nullptr; }

  /// Removes the name; the inode lives on while referenced. Returns false
  /// when the path does not exist.
  bool unlink(std::string_view path);

  /// Atomically renames; replaces any existing target. Returns false when
  /// the source does not exist.
  bool rename(std::string_view from, std::string_view to);

  std::size_t file_count() const { return files_.size(); }

  /// Total bytes held by all named files (memory accounting).
  std::size_t total_bytes() const;

  /// Convenience for tests and workload setup: writes a whole file.
  void put_file(std::string_view path, std::string_view contents);

  /// Deep-copies every file from `other` into this VFS (restart semantics:
  /// a "new process" inheriting the previous instance's durable storage).
  /// Existing same-named files are replaced.
  void import_from(const Vfs& other);

 private:
  std::map<std::string, std::shared_ptr<Inode>, std::less<>> files_;
};

}  // namespace fir
