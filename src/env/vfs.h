// Virtual filesystem: the file side of the simulated environment.
//
// Paths map to in-memory inodes; open file descriptions carry offset and
// flags. Semantics mirror the POSIX subset the mini-servers and the
// interposition wrappers rely on (including the compensation operations:
// restoring offsets, renaming back, re-creating unlinked files is never
// needed because unlink is deferred until commit).
//
// Durability model (docs/DURABILITY.md): every inode carries two images —
// `data` is the volatile (page-cache) image that write/pwrite mutate, and
// `durable` is what has reached simulated stable media. fsync copies
// data → durable and durably links the file's current names; fdatasync
// flushes data only. Namespace operations (create/rename/unlink) are
// volatile until a directory barrier (`sync_dir`) reconciles the durable
// name table for that directory. `crash_image()` materializes the
// filesystem a fresh process would see after a crash: durable names only,
// durable bytes only, with an optional torn tail of in-flight unsynced
// bytes (partial-sector last write).
//
// Barriers are incremental: each inode tracks whether (and where) it was
// mutated since the last barrier, so fsync on an append-only log copies
// only the appended delta — and writes through to host backing with a
// positional append — instead of re-copying the whole file. Rewrites
// inside the durable prefix fall back to the full copy; barriers on clean
// inodes are no-ops. PersistStats accounts for the saved bytes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fir {

/// One regular file's contents. Shared between the name table and open file
/// descriptions so an unlinked-but-open file stays readable (POSIX).
struct Inode {
  /// Volatile (page-cache) image: what read/write/pread/pwrite see.
  std::vector<char> data;
  /// Durable (stable-media) image: what survives a crash. Updated only by
  /// fsync/fdatasync.
  std::vector<char> durable;
  /// Any volatile mutation since the last barrier. A barrier on a clean
  /// inode copies nothing (the every-barrier full copy was O(file)).
  bool dirty = false;
  /// A mutation touched bytes below durable.size() (an overwrite inside the
  /// durable prefix, or a truncate beneath it). Forces the next barrier to
  /// take the full-copy path; a false value means the volatile image still
  /// extends the durable one unchanged, so the barrier copies only the
  /// appended delta.
  bool prefix_dirty = false;

  /// Mutation bookkeeping, called by every volatile write path *before* the
  /// bytes land (the flags classify the write against the current durable
  /// prefix).
  void note_write(std::size_t offset, std::size_t n) {
    if (n == 0) return;
    dirty = true;
    if (offset < durable.size()) prefix_dirty = true;
  }
  void note_truncate(std::size_t new_size) {
    if (new_size != data.size()) dirty = true;
    if (new_size < durable.size()) prefix_dirty = true;
  }
};

/// How crash_image() treats bytes that were written but never synced.
struct CrashImageOptions {
  /// Keep up to this many bytes of each file's unsynced volatile tail in
  /// the image (a torn, partial-sector last write). 0 = drop the whole
  /// unsynced tail (clean power-off of the durable state).
  std::size_t torn_tail_bytes = 0;
  /// Corrupt the last included torn byte (media writing garbage mid-sector).
  /// Only meaningful with torn_tail_bytes > 0.
  bool torn_bit_flip = false;
};

/// Barrier-cost accounting (docs/DURABILITY.md §"Incremental barriers").
/// The servers publish these as the persist.* obs counters; the durable
/// throughput benchmark gates bytes_synced-per-barrier staying flat as the
/// log grows (O(delta), not O(file)).
struct PersistStats {
  std::uint64_t barriers = 0;      // sync_inode + sync_inode_data + sync_dir
  std::uint64_t bytes_synced = 0;  // bytes actually copied to durable images
  std::uint64_t bytes_elided = 0;  // bytes the pre-delta code would have copied
  std::uint64_t full_syncs = 0;    // barriers that took the full-copy path
  std::uint64_t delta_syncs = 0;   // barriers that copied only an append run
  std::uint64_t noop_syncs = 0;    // barriers on a clean inode
};

/// Name-to-inode mapping plus path-level operations.
class Vfs {
 public:
  /// Looks up a path; nullptr when absent.
  std::shared_ptr<Inode> lookup(std::string_view path) const;

  /// Creates (or truncates, when `truncate` is set) a file and returns its
  /// inode. The new name is volatile until fsync/sync_dir.
  std::shared_ptr<Inode> create(std::string_view path, bool truncate);

  bool exists(std::string_view path) const { return lookup(path) != nullptr; }

  /// Removes the name; the inode lives on while referenced. Returns false
  /// when the path does not exist. The removal is volatile until sync_dir.
  bool unlink(std::string_view path);

  /// Atomically renames; replaces any existing target. Returns false when
  /// the source does not exist. The rename is volatile until sync_dir —
  /// a crash before the directory barrier leaves the durable namespace
  /// with the old binding (rename-before-barrier reordering).
  bool rename(std::string_view from, std::string_view to);

  std::size_t file_count() const { return files_.size(); }

  /// Total bytes held by all named files (memory accounting).
  std::size_t total_bytes() const;

  /// Convenience for tests and workload setup: writes a whole file. The
  /// file is fully durable (both images + durable link), modeling a file
  /// that already existed on media before the run.
  void put_file(std::string_view path, std::string_view contents);

  /// Deep-copies every file from `other` into this VFS (restart semantics:
  /// a "new process" inheriting the previous instance's storage after a
  /// graceful handoff — everything the old process had in its page cache
  /// made it down). Existing same-named files are replaced; imported files
  /// are fully durable.
  void import_from(const Vfs& other);

  // --- durability ---------------------------------------------------------
  /// fsync(fd): flushes the inode's volatile image to the durable image and
  /// durably links every current volatile name of this inode (journaled
  /// filesystems persist the inode's link with its data).
  void sync_inode(const std::shared_ptr<Inode>& inode);

  /// fdatasync(fd): flushes data only; name linkage stays volatile.
  void sync_inode_data(const std::shared_ptr<Inode>& inode);

  /// Directory barrier: makes the durable name table match the volatile one
  /// for every path directly inside `dir` (rename/unlink/create become
  /// crash-safe). Does NOT flush file contents.
  void sync_dir(std::string_view dir);

  /// True when `path`'s current binding is durably linked to its current
  /// inode (diagnostics / tests).
  bool durably_linked(std::string_view path) const;

  /// Durable image size of a path's inode; 0 when absent.
  std::size_t durable_size(std::string_view path) const;

  /// The filesystem a fresh process would observe after a crash right now:
  /// durable names bound to durable bytes, plus an optional torn tail (see
  /// CrashImageOptions). The image is fully synced and never host-backed.
  Vfs crash_image(const CrashImageOptions& opts = {}) const;

  // --- host backing -------------------------------------------------------
  /// Binds this VFS's durable state to a real host directory: existing
  /// host files are loaded as fully durable files, and from then on every
  /// barrier (sync_inode/sync_dir/put_file/import_from) writes the durable
  /// image through to the host (temp file + rename, so a SIGKILL between
  /// barriers leaves the previous image intact). This is how a fleet
  /// worker's durable state survives its own death: the restarted
  /// incarnation attaches the same directory. Returns false when the
  /// directory cannot be created/read.
  bool attach_backing(const std::string& host_dir);
  bool backed() const { return !backing_dir_.empty(); }
  const std::string& backing_dir() const { return backing_dir_; }

  /// Cumulative barrier-cost accounting since construction (crash images
  /// start fresh).
  const PersistStats& persist_stats() const { return persist_stats_; }

 private:
  /// Durable link table entry: name → inode + the durable bytes are the
  /// inode's `durable` image.
  using Table = std::map<std::string, std::shared_ptr<Inode>, std::less<>>;

  /// How a barrier reconciles an inode's durable image with its volatile
  /// one (classified from the dirty flags before any copying).
  enum class SyncKind { kNoop, kDelta, kFull };
  static SyncKind classify_sync(const Inode& inode);
  /// Copies data -> durable along the classified path, updates the stats,
  /// and clears the dirty flags. Returns the durable size *before* the copy
  /// (the append-run start for backing writes).
  std::size_t flush_inode(const std::shared_ptr<Inode>& inode, SyncKind kind);

  static std::string parent_dir(std::string_view path);
  std::string backing_path(std::string_view vpath) const;
  void backing_write(std::string_view vpath, const std::vector<char>& bytes);
  /// O(delta) write-through: positionally appends bytes[from..) to the
  /// existing backing file and fdatasyncs it. Falls back to the full
  /// temp+rename write when the backing file cannot be opened in place.
  void backing_append(std::string_view vpath, const std::vector<char>& bytes,
                      std::size_t from);
  void backing_remove(std::string_view vpath);

  Table files_;          // volatile namespace
  Table durable_links_;  // durable namespace
  std::string backing_dir_;
  PersistStats persist_stats_;
};

}  // namespace fir
