// Env: the virtual operating system a protected application runs against.
//
// Every interposition wrapper (src/interpose) bottoms out in one of these
// methods. Return-value and errno conventions mirror POSIX so the
// mini-servers' error-handling code reads like the real servers'. The layer
// is synchronous; every public method is serialized by one recursive mutex
// (kernel-style "big lock"), so worker threads and the workload driver can
// share one Env — the coarse lock keeps the fd table, the virtual network
// and the heap accounting coherent without per-structure locking, and calls
// still interleave deterministically enough for crash / recovery
// experiments. The virtual errno is per-thread, like the real one: a
// diverted worker's injected errno must not leak into a sibling's.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "env/net.h"
#include "env/vfs.h"

namespace fir {

/// open() flags (subset).
enum OpenFlags : int {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreat = 0x40,
  kTrunc = 0x200,
  kAppend = 0x400,
};

/// lseek() whence.
enum SeekWhence : int { kSeekSet = 0, kSeekCur = 1, kSeekEnd = 2 };

/// epoll_ctl() ops.
enum EpollOp : int { kEpollAdd = 1, kEpollDel = 2, kEpollMod = 3 };

/// setsockopt() option bit with modeled semantics: sockets that set it
/// before bind() may share one port (SO_REUSEPORT). connect_to() deals new
/// connections round-robin across the port's listener group — the
/// deterministic stand-in for the kernel's reuseport flow hash. All other
/// option bits (the servers' REUSEADDR/NODELAY flags) remain semantics-free
/// per-socket state.
inline constexpr std::uint32_t kSockOptReusePort = 0x8;

/// Aggregate environment statistics (syscall counts, heap accounting).
struct EnvStats {
  std::uint64_t syscalls = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::size_t heap_bytes = 0;
  std::size_t heap_peak_bytes = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_frees = 0;
};

/// The virtual OS. See file comment.
class Env {
 public:
  Env();
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  // --- errno ------------------------------------------------------------
  /// Per-thread, like the libc errno: each worker sees only its own calls'
  /// (and its own injected faults') error codes.
  int last_errno() const { return t_errno_; }
  void set_errno(int e) { t_errno_ = e; }

  // --- files ------------------------------------------------------------
  /// Returns a new fd, or -1 (ENOENT without kCreat, EMFILE on exhaustion).
  int open(std::string_view path, int flags);
  ssize_t read(int fd, void* buf, std::size_t n);
  ssize_t pread(int fd, void* buf, std::size_t n, std::int64_t offset);
  ssize_t write(int fd, const void* buf, std::size_t n);
  ssize_t pwrite(int fd, const void* buf, std::size_t n, std::int64_t offset);
  std::int64_t lseek(int fd, std::int64_t offset, int whence);
  /// stat/fstat reduced to what the servers use: existence + size.
  int stat_size(std::string_view path, std::size_t* size_out);
  int fstat_size(int fd, std::size_t* size_out);
  int unlink(std::string_view path);
  int rename(std::string_view from, std::string_view to);
  int ftruncate(int fd, std::size_t length);
  /// Durability barrier: flushes the inode's volatile image to the durable
  /// image and durably links its current names (see Vfs::sync_inode).
  int fsync(int fd);
  /// Data-only barrier: flushes content, leaves name linkage volatile.
  int fdatasync(int fd);
  /// Directory barrier (stands in for open(dir) + fsync + close): makes
  /// renames/creates/unlinks directly inside `dir` crash-durable.
  int fsync_dir(std::string_view dir);

  // --- sockets ----------------------------------------------------------
  int socket();
  int bind(int fd, std::uint16_t port);
  int listen(int fd, int backlog);
  /// Accepts one pending connection; -1/EAGAIN when the queue is empty.
  int accept(int fd);
  /// Client-side: creates a socket connected to `port`; -1/ECONNREFUSED
  /// when nothing listens there.
  int connect_to(std::uint16_t port);
  ssize_t send(int fd, const void* buf, std::size_t n);
  ssize_t recv(int fd, void* buf, std::size_t n);
  /// Compensation primitive: pushes `n` bytes back to the FRONT of fd's
  /// receive queue, exactly undoing a recv of those bytes.
  int sock_unread(int fd, const void* data, std::size_t n);
  int setsockopt(int fd, std::uint32_t option_bit);
  int fcntl_set_nonblock(int fd, bool nonblocking);
  int shutdown_wr(int fd);
  /// True when fd is an open descriptor (compensation validity checks).
  bool fd_valid(int fd) const;
  /// Compensation primitives: exactly undo bind()/listen() on a socket.
  int unbind(int fd);
  int unlisten(int fd);
  /// Current file offset without syscall accounting (compensation support).
  std::int64_t file_offset(int fd) const;
  /// Compensation support, no syscall accounting: true when fd is an open
  /// regular file.
  bool fd_is_file(int fd) const;
  /// Volatile / durable sizes and open flags of a file fd, no syscall
  /// accounting; -1 when fd is not a file. The write-compensation layer
  /// uses these to decide whether a write touches only unsynced bytes.
  std::int64_t file_size(int fd) const;
  std::int64_t file_durable_size(int fd) const;
  int file_flags(int fd) const;
  /// Compensation primitive: restores fd's offset without the lseek
  /// syscall accounting.
  void set_file_offset(int fd, std::int64_t offset);

  // --- descriptor & vector ops -------------------------------------------
  /// Duplicates fd onto the lowest free descriptor (shares the open file
  /// description / socket endpoint).
  int dup(int fd);
  /// Creates a unidirectional byte pipe; out[0] = read end, out[1] = write
  /// end. Implemented over a socket pair with the write sides shut down.
  int pipe(int out[2]);
  /// Connected socket pair (AF_UNIX-style).
  int socketpair(int out[2]);
  /// Copies up to `count` bytes from a file to a socket without passing
  /// through user memory (zero-copy model). Returns bytes sent.
  ssize_t sendfile(int out_sock, int in_file, std::int64_t offset,
                   std::size_t count);
  struct IoSlice {
    const void* data;
    std::size_t len;
  };
  /// Gathering write: sends the slices in order; may stop early on
  /// backpressure. Returns total bytes written.
  ssize_t writev(int fd, const IoSlice* slices, int n);

  // --- epoll ------------------------------------------------------------
  int epoll_create1();
  int epoll_ctl(int epfd, int op, int fd, std::uint32_t events);
  /// Level-triggered scan of the interest set. With timeout_ms == 0 it
  /// never blocks (returns 0 when nothing is ready — the cooperative
  /// harness then drives the clients). With timeout_ms > 0 and nothing
  /// ready it parks the calling thread on a condition variable until
  /// another thread's send/connect/close/shutdown makes a descriptor
  /// ready or the (real-time) timeout expires — worker-pool event loops
  /// idle here instead of spin-yielding.
  int epoll_wait(int epfd, PollEvent* events, int max_events,
                 int timeout_ms = 0);

  // --- accounted heap ---------------------------------------------------
  /// malloc with per-Env accounting (drives Fig. 9). Returns nullptr only
  /// if the real allocator fails.
  void* mem_alloc(std::size_t n);
  void* mem_alloc_zero(std::size_t n);
  /// realloc-style grow; accounting follows.
  void* mem_realloc(void* p, std::size_t n);
  void mem_free(void* p);

  // --- misc -------------------------------------------------------------
  int getpid() const { return 4242; }
  VirtualClock& clock() { return clock_; }
  Vfs& vfs() { return vfs_; }
  const EnvStats& stats() const { return stats_; }
  void reset_stats();

  // --- persistence points & crash capture --------------------------------
  /// Monotone count of persistence-relevant operations (file writes,
  /// truncates, namespace ops, barriers). The crash-consistency harness
  /// enumerates these as its crash points: between any two counts the
  /// post-crash image is constant.
  std::uint64_t persist_op_count() const;
  /// Arms an in-run crash capture: when the k-th persistence op (1-based)
  /// completes, the post-crash image (Vfs::crash_image with `opts`) is
  /// snapshotted atomically under the env lock. k = 0 disarms.
  void arm_crash_capture(std::uint64_t k, const CrashImageOptions& opts = {});
  /// True once the armed capture fired.
  bool crash_capture_fired() const;
  /// The captured image; empty Vfs when nothing fired.
  const Vfs& captured_crash_image() const;

  /// Number of currently open descriptors (leak checks in tests).
  std::size_t open_fd_count() const;

 private:
  enum class FdKind : std::uint8_t {
    kFree = 0,
    kFile,
    kSocket,
    kListener,
    kEpoll,
  };

  struct OpenFile {
    std::shared_ptr<Inode> inode;
    std::int64_t offset = 0;
    int flags = 0;
  };

  struct FdEntry {
    FdKind kind = FdKind::kFree;
    std::shared_ptr<OpenFile> file;
    std::shared_ptr<SocketEndpoint> socket;
    std::shared_ptr<Listener> listener;
    std::shared_ptr<EpollInstance> epoll;
    std::uint16_t bound_port = 0;
  };

 public:
  int close(int fd);

 private:
  static constexpr int kMaxFds = 1024;
  static constexpr std::uint64_t kSyscallCostNs = 150;

  int err(int e) {
    t_errno_ = e;
    return -1;
  }
  ssize_t errs(int e) {
    t_errno_ = e;
    return -1;
  }
  int alloc_fd();
  FdEntry* entry(int fd);
  const FdEntry* entry(int fd) const;
  Listener* listener_for_port(std::uint16_t port);
  void drop_epoll_interest(int fd);
  /// Readiness scan over one epoll instance (caller holds mu_).
  int epoll_scan(const EpollInstance& ep, PollEvent* events, int max_events);
  /// Wake any epoll_wait(timeout>0) sleepers; called (with mu_ held) by
  /// every operation that can change descriptor readiness.
  void wake_pollers() { poll_cv_.notify_all(); }
  void tick() {
    ++stats_.syscalls;
    clock_.advance_ns(kSyscallCostNs);
  }
  /// Called (with mu_ held) after every persistence-relevant operation;
  /// fires the armed crash capture when the counter hits the target.
  void persist_op();

  /// One coarse lock over all public entry points (see file comment).
  /// Recursive: several methods are composed from other public methods
  /// (read → recv, pipe → socketpair, mem_realloc → mem_alloc/mem_free),
  /// and a compensation running during recovery may re-enter from a frame
  /// that conceptually sits inside an interrupted call on the same thread.
  mutable std::recursive_mutex mu_;
  /// Blocked epoll_wait(timeout>0) callers park here (condition_variable_any
  /// because the big lock is recursive).
  std::condition_variable_any poll_cv_;
  std::vector<FdEntry> fds_;
  /// Round-robin cursor for SO_REUSEPORT listener groups (connect_to).
  std::uint64_t reuseport_next_ = 0;
  Vfs vfs_;
  VirtualClock clock_;
  EnvStats stats_;
  /// Persistence-point bookkeeping (guarded by mu_).
  std::uint64_t persist_ops_ = 0;
  std::uint64_t capture_at_ = 0;
  bool capture_fired_ = false;
  CrashImageOptions capture_opts_;
  Vfs captured_image_;
  static thread_local int t_errno_;
};

}  // namespace fir
