// Exhaustive crash-point harness for the durable servers.
//
// The harness answers the question the durability layer exists for: is
// there ANY instant, at write-back granularity, where losing power corrupts
// a server's recovered state? It runs a fixed mutation script against a
// server once to record every persistence point (Env::persist_op_count) and
// the expected keyspace after each acknowledged mutation, then re-runs the
// identical script once per crash point k with a crash image captured at
// exactly k persistence ops (optionally with a torn final write). Each
// image is handed to a fresh server instance, which recovers, and three
// invariants are checked:
//
//   acked-durable      every mutation acknowledged at or before the crash
//                      point is present (FIR_FSYNC_POLICY=always: the ack
//                      implies a completed barrier);
//   prefix-consistent  the recovered state equals the state after SOME
//                      prefix of the script — never a partial command,
//                      never a mix of old and new;
//   replay-idempotent  recovering the recovered state again reproduces it
//                      exactly, with no further tail repair.
//
// Crash points run in forked workers (campaign-style slot files), so an
// unexpected fatal path in one point cannot take down the matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/fsync_policy.h"

namespace fir::crashtest {

struct CrashTestOptions {
  std::string server = "minikv";  // "minikv" or "minipg"
  /// Durability policy the servers run under. "always" acks after its own
  /// barrier; "batch" needs group_commit_max > 0 to keep the acked-durable
  /// invariant (acks defer until one barrier retires the group).
  FsyncPolicy policy = FsyncPolicy::kAlways;
  /// Group-commit ack budget (0 = off). Pass with policy kBatch to exercise
  /// the deferred-ack path under the full crash-point matrix.
  std::uint32_t group_commit_max = 0;
  /// Torn-write knob: keep this many unsynced tail bytes in every crash
  /// image (0 = clean write-back boundary).
  std::size_t torn_tail_bytes = 0;
  /// Additionally flip one bit in the torn tail (media corruption).
  bool torn_bit_flip = false;
  /// Forked crash-point runs in flight; 0 runs every point in-process
  /// (tests), >= 1 forks one worker per point like the campaign engine.
  int workers = 1;
  bool verbose = false;
};

struct CrashPointResult {
  std::uint64_t crash_op = 0;  // persistence-op index of the image
  std::size_t acked_prefix = 0;     // mutations acked at or before crash_op
  std::int64_t recovered_prefix = -1;  // prefix the state equals; -1 = none
  std::size_t replayed = 0;         // log records the recovery applied
  std::size_t torn_bytes = 0;       // tail bytes recovery truncated
  bool acked_durable = false;
  bool prefix_consistent = false;
  bool replay_idempotent = false;
  bool ok = false;
  std::string detail;  // empty when ok; diagnostics otherwise
};

struct CrashTestReport {
  std::string server;
  std::uint64_t persist_ops = 0;  // crash points exercised (1..persist_ops)
  std::size_t mutations = 0;      // acknowledged mutations in the script
  std::vector<CrashPointResult> points;
  bool passed = false;
};

/// Runs the full crash-point matrix for options.server.
CrashTestReport run_crash_test(const CrashTestOptions& options);

/// One-line JSON rendering of a point result (slot files / results.jsonl).
std::string result_jsonl(const CrashTestOptions& options,
                         const CrashPointResult& result);

/// Parses a line written by result_jsonl. False (with `error`) on malformed
/// input.
bool result_from_jsonl(const std::string& line, CrashPointResult* out,
                       std::string* error);

}  // namespace fir::crashtest
