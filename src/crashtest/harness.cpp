#include "crashtest/harness.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "apps/minikv.h"
#include "apps/minipg.h"
#include "campaign/json.h"
#include "env/vfs.h"
#include "workload/kv_client.h"
#include "workload/pg_client.h"

namespace fir::crashtest {
namespace {

/// Observable durable state: a flat key -> value map. minipg entries are
/// "table/key"; a bare "table/" entry marks the relation's existence so a
/// lost CREATE is distinguishable from an empty table.
using State = std::map<std::string, std::string>;

TxManagerConfig harness_cfg() {
  TxManagerConfig c;
  c.policy.kind = PolicyKind::kStmOnly;  // no faults injected; keep it lean
  return c;
}

/// Server-kind adapter: scripted workload, pure state simulation, and
/// client-side observation of a recovered instance.
class Adapter {
 public:
  virtual ~Adapter() = default;
  virtual std::unique_ptr<Server> make(
      const CrashTestOptions& options) const = 0;
  virtual const std::vector<std::string>& commands() const = 0;
  /// True when the command changes replayable durable state.
  virtual bool is_mutation(const std::string& cmd) const = 0;
  /// Applies the command's semantics to the simulated state.
  virtual void apply(const std::string& cmd, State* state) const = 0;
  /// Queries the (recovered) server for the full observable state.
  virtual State observe(Server& server) const = 0;
  virtual std::size_t replayed(const Server& server) const = 0;
  virtual std::size_t torn_bytes(const Server& server) const = 0;
};

std::string first_token(std::string_view& input) {
  while (!input.empty() && input.front() == ' ') input.remove_prefix(1);
  const std::size_t sp = input.find(' ');
  std::string token(sp == std::string_view::npos ? input : input.substr(0, sp));
  input.remove_prefix(token.size());
  return token;
}

// ---------------------------------------------------------------- minikv

class MinikvAdapter final : public Adapter {
 public:
  std::unique_ptr<Server> make(
      const CrashTestOptions& options) const override {
    auto server = std::make_unique<Minikv>(harness_cfg());
    server->enable_aof(true);
    server->set_fsync_policy(options.policy);
    server->set_group_commit({options.group_commit_max, 0});
    return server;
  }

  const std::vector<std::string>& commands() const override {
    static const std::vector<std::string> kScript = {
        "SET user:1 alice", "SET user:2 bob",  "SET user:1 alice-v2",
        "DEL user:2",       "SET user:3 carol", "SAVE",
        "SET counter 1",    "DEL user:3",       "SET user:4 dave",
    };
    return kScript;
  }

  bool is_mutation(const std::string& cmd) const override {
    // SAVE snapshots but does not change what an AOF replay reconstructs.
    return cmd.rfind("SET ", 0) == 0 || cmd.rfind("DEL ", 0) == 0;
  }

  void apply(const std::string& cmd, State* state) const override {
    std::string_view input(cmd);
    const std::string verb = first_token(input);
    const std::string key = first_token(input);
    if (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    if (verb == "SET") (*state)[key] = std::string(input);
    if (verb == "DEL") state->erase(key);
  }

  State observe(Server& server) const override {
    static const char* kKeys[] = {"user:1", "user:2", "user:3", "user:4",
                                  "counter"};
    State state;
    KvClient client(server.fx().env(), server.port());
    for (const char* key : kKeys) {
      const std::string reply =
          roundtrip(server, client, std::string("GET ") + key);
      if (reply != "$-1") state[key] = reply;
    }
    return state;
  }

  std::size_t replayed(const Server& server) const override {
    return static_cast<const Minikv&>(server).aof_records_replayed();
  }
  std::size_t torn_bytes(const Server& server) const override {
    return static_cast<const Minikv&>(server).aof_torn_bytes();
  }

  static std::string roundtrip(Server& server, KvClient& client,
                               const std::string& line) {
    if (!client.connected() && !client.connect()) return "<no-connect>";
    if (!client.send_command(line)) return "<no-send>";
    std::string reply;
    for (int i = 0; i < 8; ++i) {
      server.run_once();
      if (client.try_read_reply(reply) == 1) return reply;
    }
    return "<no-reply>";
  }
};

// ---------------------------------------------------------------- minipg

class MinipgAdapter final : public Adapter {
 public:
  std::unique_ptr<Server> make(
      const CrashTestOptions& options) const override {
    auto server = std::make_unique<Minipg>(harness_cfg());
    server->set_fsync_policy(options.policy);
    server->set_group_commit({options.group_commit_max, 0});
    return server;
  }

  const std::vector<std::string>& commands() const override {
    static const std::vector<std::string> kScript = {
        "CREATE TABLE users",
        "INSERT users alice admin",
        "INSERT users bob guest",
        "UPDATE users bob member",
        "INSERT users carol temp",
        "DELETE users carol",
        "BEGIN",
        "INSERT users dave new",
        "COMMIT",
        "CHECKPOINT",
        "CREATE TABLE items",
        "INSERT items sword legendary",
        "DROP TABLE items",
    };
    return kScript;
  }

  bool is_mutation(const std::string& cmd) const override {
    // BEGIN/COMMIT/CHECKPOINT add persistence points but no replayable
    // state of their own.
    return cmd.rfind("CREATE ", 0) == 0 || cmd.rfind("INSERT ", 0) == 0 ||
           cmd.rfind("UPDATE ", 0) == 0 || cmd.rfind("DELETE ", 0) == 0 ||
           cmd.rfind("DROP ", 0) == 0;
  }

  void apply(const std::string& cmd, State* state) const override {
    std::string_view input(cmd);
    const std::string verb = first_token(input);
    if (verb == "CREATE" || verb == "DROP") {
      first_token(input);  // TABLE
      const std::string table = first_token(input);
      if (verb == "CREATE") {
        (*state)[table + "/"] = "1";
        return;
      }
      const std::string prefix = table + "/";
      for (auto it = state->begin(); it != state->end();) {
        it = it->first.rfind(prefix, 0) == 0 ? state->erase(it)
                                             : std::next(it);
      }
      return;
    }
    const std::string table = first_token(input);
    const std::string key = first_token(input);
    if (!input.empty() && input.front() == ' ') input.remove_prefix(1);
    if (verb == "INSERT" || verb == "UPDATE")
      (*state)[table + "/" + key] = std::string(input);
    if (verb == "DELETE") state->erase(table + "/" + key);
  }

  State observe(Server& server) const override {
    static const char* kTables[] = {"users", "items"};
    static const char* kUserKeys[] = {"alice", "bob", "carol", "dave"};
    static const char* kItemKeys[] = {"sword"};
    State state;
    PgClient client(server.fx().env(), server.port());
    for (const char* table : kTables) {
      // Relation existence probe: a missing table errors, an empty one
      // returns zero rows.
      const std::string probe = roundtrip(
          server, client, std::string("SELECT ") + table + " __probe__");
      if (probe == "ERROR: relation does not exist") continue;
      state[std::string(table) + "/"] = "1";
      const bool users = std::string_view(table) == "users";
      const auto keys = users ? std::vector<const char*>(std::begin(kUserKeys),
                                                         std::end(kUserKeys))
                              : std::vector<const char*>(std::begin(kItemKeys),
                                                         std::end(kItemKeys));
      for (const char* key : keys) {
        const std::string reply = roundtrip(
            server, client, std::string("SELECT ") + table + " " + key);
        const std::size_t eol = reply.find('\n');
        if (eol != std::string::npos &&
            reply.substr(eol) == "\n(1 row)") {
          state[std::string(table) + "/" + key] = reply.substr(0, eol);
        }
      }
    }
    return state;
  }

  std::size_t replayed(const Server& server) const override {
    return static_cast<const Minipg&>(server).wal_records_replayed();
  }
  std::size_t torn_bytes(const Server& server) const override {
    return static_cast<const Minipg&>(server).wal_torn_bytes();
  }

  static std::string roundtrip(Server& server, PgClient& client,
                               const std::string& sql) {
    if (!client.connected() && !client.connect()) return "<no-connect>";
    if (!client.send_query(sql)) return "<no-send>";
    std::string reply;
    for (int i = 0; i < 8; ++i) {
      server.run_once();
      if (client.try_read_result(reply) == 1) return reply;
    }
    return "<no-reply>";
  }
};

const Adapter* adapter_for(const std::string& server) {
  static const MinikvAdapter kv;
  static const MinipgAdapter pg;
  if (server == "minikv") return &kv;
  if (server == "minipg") return &pg;
  return nullptr;
}

std::string run_script(const Adapter& a, Server& server) {
  // Drives every scripted command; returns "" or a failure description.
  if (a.commands().empty()) return "empty script";
  std::unique_ptr<KvClient> kv;
  std::unique_ptr<PgClient> pg;
  for (const std::string& cmd : a.commands()) {
    std::string reply;
    if (dynamic_cast<const MinipgAdapter*>(&a) != nullptr) {
      if (!pg) pg = std::make_unique<PgClient>(server.fx().env(),
                                               server.port());
      reply = MinipgAdapter::roundtrip(server, *pg, cmd);
    } else {
      if (!kv) kv = std::make_unique<KvClient>(server.fx().env(),
                                               server.port());
      reply = MinikvAdapter::roundtrip(server, *kv, cmd);
    }
    if (reply.rfind("<no-", 0) == 0)
      return "command '" + cmd + "' got " + reply;
  }
  return "";
}

/// The record phase: one fault-free run of the script, noting the
/// persistence-op count at each mutation's ack and the expected state
/// after each acknowledged prefix.
struct Recording {
  std::vector<State> prefix_states;       // [0..mutations]
  std::vector<std::uint64_t> acked_ops;   // per mutation, count at ack
  std::uint64_t total_ops = 0;
  std::string error;
};

Recording record_phase(const Adapter& a,
                       const CrashTestOptions& options) {
  Recording rec;
  rec.prefix_states.push_back({});
  auto server = a.make(options);
  if (!server->start(0).is_ok()) {
    rec.error = "record-phase start failed";
    return rec;
  }
  State running;
  std::unique_ptr<KvClient> kv;
  std::unique_ptr<PgClient> pg;
  for (const std::string& cmd : a.commands()) {
    std::string reply;
    if (dynamic_cast<const MinipgAdapter*>(&a) != nullptr) {
      if (!pg) pg = std::make_unique<PgClient>(server->fx().env(),
                                               server->port());
      reply = MinipgAdapter::roundtrip(*server, *pg, cmd);
    } else {
      if (!kv) kv = std::make_unique<KvClient>(server->fx().env(),
                                               server->port());
      reply = MinikvAdapter::roundtrip(*server, *kv, cmd);
    }
    if (reply.rfind("<no-", 0) == 0) {
      rec.error = "record-phase command '" + cmd + "' got " + reply;
      return rec;
    }
    if (a.is_mutation(cmd)) {
      a.apply(cmd, &running);
      rec.prefix_states.push_back(running);
      rec.acked_ops.push_back(server->fx().env().persist_op_count());
    }
  }
  rec.total_ops = server->fx().env().persist_op_count();
  return rec;
}

std::string state_diff(const State& expected, const State& observed) {
  std::ostringstream os;
  for (const auto& [k, v] : expected) {
    const auto it = observed.find(k);
    if (it == observed.end())
      os << " missing " << k << "=" << v;
    else if (it->second != v)
      os << " " << k << "=" << it->second << " want " << v;
  }
  for (const auto& [k, v] : observed) {
    if (expected.find(k) == expected.end()) os << " extra " << k << "=" << v;
  }
  return os.str();
}

CrashPointResult run_point(const Adapter& a, const Recording& rec,
                           const CrashTestOptions& options,
                           std::uint64_t k) {
  CrashPointResult r;
  r.crash_op = k;
  while (r.acked_prefix < rec.acked_ops.size() &&
         rec.acked_ops[r.acked_prefix] <= k) {
    ++r.acked_prefix;
  }

  // Re-run the identical script with a crash image armed at op k. The
  // virtual world is deterministic, so op k lands at the exact same
  // instant as in the record phase.
  CrashImageOptions image_opts;
  image_opts.torn_tail_bytes = options.torn_tail_bytes;
  image_opts.torn_bit_flip = options.torn_bit_flip;
  auto victim = a.make(options);
  victim->fx().env().arm_crash_capture(k, image_opts);
  if (!victim->start(0).is_ok()) {
    r.detail = "victim start failed";
    return r;
  }
  const std::string script_error = run_script(a, *victim);
  if (!script_error.empty()) {
    r.detail = script_error;
    return r;
  }
  if (!victim->fx().env().crash_capture_fired()) {
    r.detail = "crash capture never fired";
    return r;
  }

  // "Reboot": a fresh instance inherits only the crash image.
  auto recovered = a.make(options);
  recovered->fx().env().vfs().import_from(
      victim->fx().env().captured_crash_image());
  victim->stop();
  if (!recovered->start(0).is_ok()) {
    r.detail = "recovery start failed";
    return r;
  }
  const State observed = a.observe(*recovered);
  r.replayed = a.replayed(*recovered);
  r.torn_bytes = a.torn_bytes(*recovered);

  for (std::int64_t j =
           static_cast<std::int64_t>(rec.prefix_states.size()) - 1;
       j >= 0; --j) {
    if (rec.prefix_states[static_cast<std::size_t>(j)] == observed) {
      r.recovered_prefix = j;
      break;
    }
  }
  r.prefix_consistent = r.recovered_prefix >= 0;
  r.acked_durable =
      r.prefix_consistent &&
      r.recovered_prefix >= static_cast<std::int64_t>(r.acked_prefix);

  // Recover the recovered state once more: must be a fixed point.
  Vfs handoff;
  handoff.import_from(recovered->fx().env().vfs());
  auto again = a.make(options);
  again->fx().env().vfs().import_from(handoff);
  if (again->start(0).is_ok()) {
    r.replay_idempotent =
        a.observe(*again) == observed && a.torn_bytes(*again) == 0;
  }

  r.ok = r.acked_durable && r.prefix_consistent && r.replay_idempotent;
  if (!r.ok && r.detail.empty()) {
    std::ostringstream os;
    if (!r.prefix_consistent) {
      os << "state matches no command prefix; vs acked prefix:"
         << state_diff(rec.prefix_states[r.acked_prefix], observed);
    } else if (!r.acked_durable) {
      os << "acked prefix " << r.acked_prefix << " but recovered only "
         << r.recovered_prefix << ":"
         << state_diff(rec.prefix_states[r.acked_prefix], observed);
    } else {
      os << "second recovery diverged from the first";
    }
    r.detail = os.str();
  }
  return r;
}

std::string slot_path(const std::string& dir, std::uint64_t k) {
  return dir + "/point_" + std::to_string(k) + ".json";
}

void run_points_forked(const Adapter& a, const Recording& rec,
                       const CrashTestOptions& options,
                       std::vector<CrashPointResult>* points) {
  char tmpl[] = "/tmp/fir_crashtest_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  const std::string slot_dir = dir != nullptr ? dir : ".";
  std::uint64_t next = 1;
  std::map<pid_t, std::uint64_t> live;  // pid -> crash op
  const auto spawn = [&]() -> bool {
    if (next > rec.total_ops) return false;
    const std::uint64_t k = next++;
    const pid_t pid = ::fork();
    if (pid < 0) {
      (*points)[k - 1] = run_point(a, rec, options, k);
      return true;
    }
    if (pid == 0) {
      const CrashPointResult result = run_point(a, rec, options, k);
      std::ofstream out(slot_path(slot_dir, k), std::ios::trunc);
      out << result_jsonl(options, result) << '\n';
      out.close();
      ::_exit(0);
    }
    live.emplace(pid, k);
    return true;
  };
  const int workers = options.workers > 0 ? options.workers : 1;
  for (int i = 0; i < workers && spawn(); ++i) {
  }
  while (!live.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) break;
    const auto it = live.find(pid);
    if (it == live.end()) continue;
    const std::uint64_t k = it->second;
    live.erase(it);
    CrashPointResult result;
    result.crash_op = k;
    std::ifstream in(slot_path(slot_dir, k));
    std::string line;
    std::string error;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0 && in &&
        std::getline(in, line) && result_from_jsonl(line, &result, &error)) {
      // parsed
    } else {
      result.ok = false;
      result.detail = WIFSIGNALED(status)
                          ? "worker killed by signal " +
                                std::to_string(WTERMSIG(status))
                          : "worker record missing/corrupt";
    }
    (*points)[k - 1] = result;
    if (options.verbose) {
      std::fprintf(stderr, "[crashtest] %s op %llu/%llu %s\n",
                   options.server.c_str(),
                   static_cast<unsigned long long>(k),
                   static_cast<unsigned long long>(rec.total_ops),
                   result.ok ? "ok" : "FAIL");
    }
    spawn();
  }
  for (std::uint64_t k = 1; k <= rec.total_ops; ++k)
    std::remove(slot_path(slot_dir, k).c_str());
  if (dir != nullptr) ::rmdir(dir);
}

}  // namespace

CrashTestReport run_crash_test(const CrashTestOptions& options) {
  CrashTestReport report;
  report.server = options.server;
  const Adapter* adapter = adapter_for(options.server);
  if (adapter == nullptr) {
    CrashPointResult bad;
    bad.detail = "unknown server '" + options.server + "'";
    report.points.push_back(bad);
    return report;
  }
  const Recording rec = record_phase(*adapter, options);
  if (!rec.error.empty()) {
    CrashPointResult bad;
    bad.detail = rec.error;
    report.points.push_back(bad);
    return report;
  }
  report.persist_ops = rec.total_ops;
  report.mutations = rec.acked_ops.size();
  report.points.resize(rec.total_ops);
  if (options.workers <= 0) {
    for (std::uint64_t k = 1; k <= rec.total_ops; ++k) {
      report.points[k - 1] = run_point(*adapter, rec, options, k);
      if (options.verbose) {
        std::fprintf(stderr, "[crashtest] %s op %llu/%llu %s\n",
                     options.server.c_str(),
                     static_cast<unsigned long long>(k),
                     static_cast<unsigned long long>(rec.total_ops),
                     report.points[k - 1].ok ? "ok" : "FAIL");
      }
    }
  } else {
    run_points_forked(*adapter, rec, options, &report.points);
  }
  report.passed = !report.points.empty();
  for (const CrashPointResult& p : report.points)
    report.passed = report.passed && p.ok;
  return report;
}

std::string result_jsonl(const CrashTestOptions& options,
                         const CrashPointResult& r) {
  std::ostringstream os;
  os << "{\"server\":" << campaign::Json::string(options.server).dump()
     << ",\"crash_op\":" << r.crash_op
     << ",\"policy\":"
     << campaign::Json::string(fsync_policy_name(options.policy)).dump()
     << ",\"group_commit\":" << options.group_commit_max
     << ",\"torn\":" << options.torn_tail_bytes
     << ",\"flip\":" << (options.torn_bit_flip ? "true" : "false")
     << ",\"acked_prefix\":" << r.acked_prefix
     << ",\"recovered_prefix\":" << r.recovered_prefix
     << ",\"replayed\":" << r.replayed
     << ",\"torn_bytes\":" << r.torn_bytes
     << ",\"acked_durable\":" << (r.acked_durable ? "true" : "false")
     << ",\"prefix_consistent\":" << (r.prefix_consistent ? "true" : "false")
     << ",\"replay_idempotent\":" << (r.replay_idempotent ? "true" : "false")
     << ",\"ok\":" << (r.ok ? "true" : "false")
     << ",\"detail\":" << campaign::Json::string(r.detail).dump() << "}";
  return os.str();
}

bool result_from_jsonl(const std::string& line, CrashPointResult* out,
                       std::string* error) {
  const campaign::Json json = campaign::Json::parse(line, error);
  if (error != nullptr && !error->empty()) return false;
  if (!json.is_object()) {
    if (error != nullptr) *error = "result line is not an object";
    return false;
  }
  const auto u64 = [&json](std::string_view key) -> std::uint64_t {
    const campaign::Json* v = json.find(key);
    return v != nullptr && v->is_number() ? v->uint_value() : 0;
  };
  const auto flag = [&json](std::string_view key) -> bool {
    const campaign::Json* v = json.find(key);
    return v != nullptr && v->is_bool() && v->bool_value();
  };
  out->crash_op = u64("crash_op");
  out->acked_prefix = u64("acked_prefix");
  const campaign::Json* rp = json.find("recovered_prefix");
  out->recovered_prefix =
      rp != nullptr && rp->is_number() ? rp->int_value() : -1;
  out->replayed = u64("replayed");
  out->torn_bytes = u64("torn_bytes");
  out->acked_durable = flag("acked_durable");
  out->prefix_consistent = flag("prefix_consistent");
  out->replay_idempotent = flag("replay_idempotent");
  out->ok = flag("ok");
  const campaign::Json* detail = json.find("detail");
  out->detail = detail != nullptr && detail->is_string()
                    ? detail->string_value()
                    : "";
  return true;
}

}  // namespace fir::crashtest
