#include "mem/undo_log.h"

#include <cstring>

namespace fir {

UndoLog::UndoLog() { entries_.reserve(kEntryReserve); }

std::uint8_t* UndoLog::arena_alloc(std::size_t size) {
  // Advance past retained chunks whose remaining tail is too small (the
  // wasted tail is bounded by one spill's size).
  while (chunk_index_ < chunks_.size() &&
         chunk_used_ + size > chunks_[chunk_index_].capacity) {
    ++chunk_index_;
    chunk_used_ = 0;
  }
  if (chunk_index_ == chunks_.size()) {
    Chunk chunk;
    chunk.capacity = size > kChunkBytes ? size : kChunkBytes;
    // Plain new[]: default-initialized, i.e. no zero-fill of bytes the
    // memcpy below overwrites anyway.
    chunk.data.reset(new std::uint8_t[chunk.capacity]);
    arena_capacity_ += chunk.capacity;
    chunks_.push_back(std::move(chunk));
    chunk_used_ = 0;
  }
  std::uint8_t* p = chunks_[chunk_index_].data.get() + chunk_used_;
  chunk_used_ += size;
  return p;
}

void UndoLog::rollback() {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    void* dst = reinterpret_cast<void*>(it->addr);
    if (it->size <= kInlineBytes) {
      std::memcpy(dst, it->inline_data, it->size);
    } else {
      std::memcpy(dst, it->spill, it->size);
    }
  }
  clear();
}

void UndoLog::clear() {
  // Every record() pushes an entry, so an empty entry list means the rest
  // of the state is already reset (common case: begin() after commit()) —
  // unless the retention cap was lowered since the buffers were retained.
  if (entries_.empty() && arena_capacity_ <= retain_bytes_ &&
      entries_.capacity() * sizeof(Entry) <= retain_bytes_) {
    return;
  }
  entries_.clear();
  if (entries_.capacity() * sizeof(Entry) > retain_bytes_) {
    entries_.shrink_to_fit();
    entries_.reserve(kEntryReserve);
  }
  // Keep leading chunks while they fit under the cap; an outlier
  // transaction's oversize chunks are released here.
  std::size_t keep = 0;
  std::size_t kept_bytes = 0;
  while (keep < chunks_.size() &&
         kept_bytes + chunks_[keep].capacity <= retain_bytes_) {
    kept_bytes += chunks_[keep].capacity;
    ++keep;
  }
  if (keep < chunks_.size()) {
    chunks_.resize(keep);
    arena_capacity_ = kept_bytes;
  }
  chunk_index_ = 0;
  chunk_used_ = 0;
  logged_bytes_ = 0;
}

std::size_t UndoLog::footprint_bytes() const {
  return entries_.capacity() * sizeof(Entry) + arena_capacity_;
}

}  // namespace fir
