#include "mem/undo_log.h"

#include <cstring>

namespace fir {

UndoLog::UndoLog() {
  entries_.reserve(256);
  arena_.reserve(1024);
}

void UndoLog::record(void* addr, std::size_t size) {
  Entry e;
  e.addr = reinterpret_cast<std::uintptr_t>(addr);
  e.size = static_cast<std::uint32_t>(size);
  if (size <= kInlineBytes) {
    std::memcpy(e.inline_data, addr, size);
  } else {
    e.arena_offset = arena_.size();
    arena_.resize(arena_.size() + size);
    std::memcpy(arena_.data() + e.arena_offset, addr, size);
  }
  entries_.push_back(e);
  logged_bytes_ += size;
}

void UndoLog::rollback() {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    void* dst = reinterpret_cast<void*>(it->addr);
    if (it->size <= kInlineBytes) {
      std::memcpy(dst, it->inline_data, it->size);
    } else {
      std::memcpy(dst, arena_.data() + it->arena_offset, it->size);
    }
  }
  clear();
}

void UndoLog::clear() {
  entries_.clear();
  arena_.clear();
  logged_bytes_ = 0;
}

std::size_t UndoLog::footprint_bytes() const {
  return entries_.capacity() * sizeof(Entry) + arena_.capacity();
}

}  // namespace fir
