#include "mem/store_gate.h"

#include <cstdio>
#include <cstdlib>

namespace fir {

StoreRecorder* StoreGate::recorder_ = nullptr;
StoreGate::AbortHook StoreGate::abort_hook_ = nullptr;
void* StoreGate::abort_ctx_ = nullptr;

StoreRecorder* StoreGate::set_recorder(StoreRecorder* recorder) {
  StoreRecorder* prev = recorder_;
  recorder_ = recorder;
  return prev;
}

void StoreGate::set_abort_hook(AbortHook hook, void* ctx) {
  abort_hook_ = hook;
  abort_ctx_ = ctx;
}

void StoreGate::fire_abort() {
  if (abort_hook_ != nullptr) {
    abort_hook_(abort_ctx_);
    // The hook normally longjmps away; falling through means no transaction
    // was active to absorb the abort.
  }
  std::fprintf(stderr,
               "fir: store rejected with no abort hook installed — "
               "tracked store outside a recoverable transaction\n");
  std::abort();
}

}  // namespace fir
