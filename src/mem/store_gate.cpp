#include "mem/store_gate.h"

#include <cstdio>
#include <cstdlib>

namespace fir {

StoreGate::Mode StoreGate::mode_ = StoreGate::Mode::kOff;
StoreRecorder* StoreGate::recorder_ = nullptr;
WriteFilter* StoreGate::stm_filter_ = nullptr;
UndoLog* StoreGate::stm_log_ = nullptr;
std::uintptr_t* StoreGate::htm_last_line_ = nullptr;
std::uint64_t* StoreGate::htm_store_tally_ = nullptr;
StoreGate::AbortHook StoreGate::abort_hook_ = nullptr;
void* StoreGate::abort_ctx_ = nullptr;

StoreRecorder* StoreGate::set_recorder(StoreRecorder* recorder) {
  StoreRecorder* prev = recorder_;
  recorder_ = recorder;
  mode_ = recorder != nullptr ? Mode::kVirtual : Mode::kOff;
  stm_filter_ = nullptr;
  stm_log_ = nullptr;
  htm_last_line_ = nullptr;
  htm_store_tally_ = nullptr;
  return prev;
}

void StoreGate::bind_stm(WriteFilter* filter, UndoLog* log,
                         StoreRecorder* cold) {
  // The HTM pointers stay as-is: they are only read in kHtm mode, which is
  // unreachable without a fresh bind_htm(). Binds run per transaction, so
  // they stay minimal.
  recorder_ = cold;
  stm_filter_ = filter;
  stm_log_ = log;
  mode_ = Mode::kStm;
}

void StoreGate::bind_htm(std::uintptr_t* last_line, std::uint64_t* store_tally,
                         StoreRecorder* cold) {
  recorder_ = cold;
  htm_last_line_ = last_line;
  htm_store_tally_ = store_tally;
  mode_ = Mode::kHtm;
}

void StoreGate::set_abort_hook(AbortHook hook, void* ctx) {
  abort_hook_ = hook;
  abort_ctx_ = ctx;
}

void StoreGate::record_slow(void* addr, std::size_t size) {
  if (!recorder_->record_store(addr, size)) fire_abort();
}

void StoreGate::fire_abort() {
  if (abort_hook_ != nullptr) {
    abort_hook_(abort_ctx_);
    // The hook normally longjmps away; falling through means no transaction
    // was active to absorb the abort.
  }
  std::fprintf(stderr,
               "fir: store rejected with no abort hook installed — "
               "tracked store outside a recoverable transaction\n");
  std::abort();
}

}  // namespace fir
