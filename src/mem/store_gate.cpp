#include "mem/store_gate.h"

#include <cstdio>
#include <cstdlib>

namespace fir {

thread_local StoreGate::Mode StoreGate::mode_ = StoreGate::Mode::kOff;
thread_local StoreRecorder* StoreGate::recorder_ = nullptr;
thread_local WriteFilter* StoreGate::stm_filter_ = nullptr;
thread_local UndoLog* StoreGate::stm_log_ = nullptr;
thread_local std::uintptr_t* StoreGate::htm_last_line_ = nullptr;
thread_local std::uint64_t* StoreGate::htm_store_tally_ = nullptr;
std::atomic<StoreGate::AbortHook> StoreGate::abort_hook_{nullptr};
std::atomic<void*> StoreGate::abort_ctx_{nullptr};

StoreRecorder* StoreGate::set_recorder(StoreRecorder* recorder) {
  StoreRecorder* prev = recorder_;
  recorder_ = recorder;
  mode_ = recorder != nullptr ? Mode::kVirtual : Mode::kOff;
  stm_filter_ = nullptr;
  stm_log_ = nullptr;
  htm_last_line_ = nullptr;
  htm_store_tally_ = nullptr;
  return prev;
}

void StoreGate::bind_stm(WriteFilter* filter, UndoLog* log,
                         StoreRecorder* cold) {
  // The HTM pointers stay as-is: they are only read in kHtm mode, which is
  // unreachable without a fresh bind_htm(). Binds run per transaction on
  // the transaction's own thread, so they stay minimal.
  recorder_ = cold;
  stm_filter_ = filter;
  stm_log_ = log;
  mode_ = Mode::kStm;
}

void StoreGate::bind_htm(std::uintptr_t* last_line, std::uint64_t* store_tally,
                         StoreRecorder* cold) {
  recorder_ = cold;
  htm_last_line_ = last_line;
  htm_store_tally_ = store_tally;
  mode_ = Mode::kHtm;
}

void StoreGate::set_abort_hook(AbortHook hook, void* ctx) {
  abort_hook_.store(hook, std::memory_order_relaxed);
  abort_ctx_.store(ctx, std::memory_order_relaxed);
}

void StoreGate::record_slow(void* addr, std::size_t size) {
  if (!recorder_->record_store(addr, size)) fire_abort();
}

void StoreGate::fire_abort() {
  const AbortHook hook = abort_hook_.load(std::memory_order_relaxed);
  if (hook != nullptr) {
    hook(abort_ctx_.load(std::memory_order_relaxed));
    // The hook normally longjmps away; falling through means no transaction
    // was active to absorb the abort.
  }
  std::fprintf(stderr,
               "fir: store rejected with no abort hook installed — "
               "tracked store outside a recoverable transaction\n");
  std::abort();
}

}  // namespace fir
