// TrackedBuffer: a fixed-capacity byte buffer whose mutations are tracked.
//
// The mini-servers use it for request/response assembly and connection
// buffers — the kind of state that must be restored exactly when a crash
// transaction rolls back.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

#include "mem/tracked.h"

namespace fir {

/// Byte buffer with tracked writes. Capacity is fixed at construction; the
/// backing storage address is stable (required: the undo log records raw
/// addresses).
class TrackedBuffer {
 public:
  explicit TrackedBuffer(std::size_t capacity)
      : storage_(capacity), size_(0) {}

  std::size_t capacity() const { return storage_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t remaining() const { return capacity() - size_; }

  const char* data() const { return storage_.data(); }
  std::string_view view() const { return {storage_.data(), size_.get()}; }

  /// Appends bytes; returns false (buffer unchanged) when they do not fit.
  bool append(const void* src, std::size_t n) {
    if (n > remaining()) return false;
    tx_memcpy(storage_.data() + size_, src, n);
    size_ += n;
    return true;
  }
  bool append(std::string_view s) { return append(s.data(), s.size()); }
  bool push_back(char c) { return append(&c, 1); }

  /// Overwrites [offset, offset+n). Precondition: range within size().
  void overwrite(std::size_t offset, const void* src, std::size_t n) {
    assert(offset + n <= size_);
    tx_memcpy(storage_.data() + offset, src, n);
  }

  /// Drops all contents (tracked, so rollback restores the old length —
  /// the bytes themselves are restored by subsequent appends' undo records).
  void clear() { size_ = 0; }

  /// Truncates to `n` bytes. Precondition: n <= size().
  void resize_down(std::size_t n) {
    assert(n <= size_);
    size_ = n;
  }

  /// Removes `n` bytes from the front (consume pattern for parse loops).
  /// O(size) move; buffers here are small and this mirrors how the
  /// mini-servers consume request bytes.
  void consume(std::size_t n) {
    assert(n <= size_);
    const std::size_t rest = size_ - n;
    if (rest > 0) {
      // memmove semantics with tracking: save destination region first.
      StoreGate::record(storage_.data(), rest);
      std::memmove(storage_.data(), storage_.data() + n, rest);
    }
    size_ = rest;
  }

 private:
  std::vector<char> storage_;  // address-stable; never resized after ctor
  tracked<std::size_t> size_;
};

}  // namespace fir
