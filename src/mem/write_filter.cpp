#include "mem/write_filter.h"

#include <algorithm>

namespace fir {

namespace {
std::size_t table_size_for(std::size_t min_lines) {
  // Power of two with 50% load-factor headroom over the expected line count.
  std::size_t cap = 64;
  while (cap < min_lines * 2) cap *= 2;
  return cap;
}
}  // namespace

WriteFilter::WriteFilter(std::size_t min_lines)
    : slots_(table_size_for(min_lines)), min_slots_(slots_.size()) {}

void WriteFilter::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t table_mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if ((slot.tag & kEpochMask) != epoch_) continue;  // only live entries
    const auto line = static_cast<std::uintptr_t>((slot.tag >> 16) << 6);
    std::size_t idx = hash(line, table_mask);
    while (slots_[idx].tag != 0) idx = (idx + 1) & table_mask;
    slots_[idx] = slot;
  }
}

void WriteFilter::wipe() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
}

void WriteFilter::shrink_slow() {
  // All-zero tags are stale under every valid epoch, so the fresh table
  // needs no epoch bump.
  std::vector<Slot>(min_slots_).swap(slots_);
  lines_ = 0;
}

}  // namespace fir
