// Tracked-memory primitives: the source-level equivalent of the paper's
// compiler store instrumentation.
//
// Application state that must survive a rollback is written exclusively
// through these helpers, which announce each store to the StoreGate before
// mutating memory. This mirrors what FIRestarter's LLVM pass does to every
// store instruction in the cloned STM code path.
#pragma once

#include <cstring>
#include <type_traits>

#include "mem/store_gate.h"

namespace fir {

/// Records and performs a scalar store. T must be trivially copyable.
template <typename T>
inline void tx_store(T& dst, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "tracked stores require trivially copyable types");
  StoreGate::record(&dst, sizeof(T));
  dst = value;
}

/// Tracked memcpy into application state.
inline void tx_memcpy(void* dst, const void* src, std::size_t size) {
  if (size == 0) return;
  StoreGate::record(dst, size);
  std::memcpy(dst, src, size);
}

/// Tracked memset.
inline void tx_memset(void* dst, int value, std::size_t size) {
  if (size == 0) return;
  StoreGate::record(dst, size);
  std::memset(dst, value, size);
}

/// Read-modify-write helper: `tx_apply(counter, [](auto& c){ ++c; })`.
template <typename T, typename Fn>
inline void tx_apply(T& dst, Fn&& fn) {
  static_assert(std::is_trivially_copyable_v<T>);
  StoreGate::record(&dst, sizeof(T));
  fn(dst);
}

/// A scalar whose assignments are tracked. Reads are plain loads (undo-log
/// designs only instrument stores). Usable as a drop-in for int/bool/pointer
/// fields of application state structs.
template <typename T>
class tracked {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  tracked() = default;
  /*implicit*/ tracked(T value) : value_(value) {}

  tracked& operator=(T value) {
    tx_store(value_, value);
    return *this;
  }
  tracked& operator+=(T delta) {
    tx_store(value_, static_cast<T>(value_ + delta));
    return *this;
  }
  tracked& operator-=(T delta) {
    tx_store(value_, static_cast<T>(value_ - delta));
    return *this;
  }
  tracked& operator++() { return *this += T{1}; }
  tracked& operator--() { return *this -= T{1}; }

  operator T() const { return value_; }
  T get() const { return value_; }

  /// Untracked escape hatch for initialization before any transaction runs.
  void init(T value) { value_ = value; }

 private:
  T value_{};
};

}  // namespace fir
