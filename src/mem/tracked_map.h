// TrackedHashMap: an open-addressing hash map over POD keys/values whose
// every mutation flows through the store gate.
//
// minikv (the Redis-shaped server) keeps its keyspace here so that a crash
// mid-SET rolls the map back to a consistent pre-transaction state. Standard
// containers cannot be used for rollback-able state: their node allocations
// and internal pointer writes bypass the instrumentation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

#include "mem/tracked.h"

namespace fir {

/// Fixed-capacity string key/value slot types for TrackedHashMap.
template <std::size_t N>
struct FixedString {
  char data[N];
  std::uint32_t len;

  static std::optional<FixedString> make(std::string_view s) {
    if (s.size() > N) return std::nullopt;
    FixedString f{};
    std::memcpy(f.data, s.data(), s.size());
    f.len = static_cast<std::uint32_t>(s.size());
    return f;
  }
  std::string_view view() const { return {data, len}; }
  bool equals(std::string_view s) const { return view() == s; }
};

/// Open-addressing (linear probing) map with tombstones. Capacity is fixed
/// at construction (address-stable storage, as the undo log requires).
/// K and V must be trivially copyable.
template <typename K, typename V>
class TrackedHashMap {
  static_assert(std::is_trivially_copyable_v<K>);
  static_assert(std::is_trivially_copyable_v<V>);

 public:
  /// `capacity` is rounded up to a power of two; the map holds at most
  /// capacity * kMaxLoadPercent / 100 entries.
  explicit TrackedHashMap(std::size_t capacity) {
    std::size_t cap = 16;
    while (cap < capacity) cap *= 2;
    slots_.resize(cap);
    size_.init(0);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  /// Entries the map will accept before reporting exhaustion.
  std::size_t max_size() const { return capacity() * kMaxLoadPercent / 100; }
  /// Resident bytes of the slot array (memory accounting).
  std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

  /// Inserts or overwrites. Returns false when the map is full (the caller —
  /// a server request handler — treats this like an allocation failure).
  bool put(std::string_view key, const K& k, const V& v) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hash(key) & mask;
    std::size_t first_tombstone = kNoSlot;
    for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
      Slot& s = slots_[idx];
      if (s.state == kEmpty) {
        if (size_ >= max_size()) return false;
        Slot& dst =
            first_tombstone == kNoSlot ? s : slots_[first_tombstone];
        write_slot(dst, k, v);
        size_ += 1;
        return true;
      }
      if (s.state == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = idx;
      } else if (key_of(s.key).equals(key)) {
        StoreGate::record(&s.value, sizeof(V));
        s.value = v;
        return true;
      }
      idx = (idx + 1) & mask;
    }
    // Table fully probed: only tombstones/full slots. Reuse a tombstone.
    if (first_tombstone != kNoSlot && size_ < max_size()) {
      write_slot(slots_[first_tombstone], k, v);
      size_ += 1;
      return true;
    }
    return false;
  }

  /// Returns a pointer to the stored value, or nullptr. The pointer stays
  /// valid until the slot is erased (storage is never reallocated).
  const V* get(std::string_view key) const {
    const Slot* s = find_slot(key);
    return s != nullptr ? &s->value : nullptr;
  }

  /// Erases a key. Returns true if it was present.
  bool erase(std::string_view key) {
    Slot* s = const_cast<Slot*>(find_slot(key));
    if (s == nullptr) return false;
    StoreGate::record(&s->state, sizeof(s->state));
    s->state = kTombstone;
    size_ -= 1;
    return true;
  }

  bool contains(std::string_view key) const {
    return find_slot(key) != nullptr;
  }

  /// Visits every live entry: fn(const K&, const V&).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.state == kFull) fn(s.key, s.value);
  }

 private:
  static constexpr std::size_t kMaxLoadPercent = 70;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  enum SlotState : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    K key;
    V value;
    std::uint8_t state = kEmpty;
  };

  // Keys are FixedString-like: expose view via key_of so the map can also be
  // instantiated with plain POD keys that provide view().
  static const K& key_of(const K& k) { return k; }

  static std::size_t hash(std::string_view s) {
    // FNV-1a.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }

  const Slot* find_slot(std::string_view key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hash(key) & mask;
    for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
      const Slot& s = slots_[idx];
      if (s.state == kEmpty) return nullptr;
      if (s.state == kFull && s.key.equals(key)) return &s;
      idx = (idx + 1) & mask;
    }
    return nullptr;
  }

  void write_slot(Slot& s, const K& k, const V& v) {
    StoreGate::record(&s, sizeof(Slot));
    s.key = k;
    s.value = v;
    s.state = kFull;
  }

  std::vector<Slot> slots_;  // address-stable
  tracked<std::size_t> size_;
};

}  // namespace fir
