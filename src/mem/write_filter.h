// First-write filter: per-transaction coverage tracking for the store path.
//
// Undo-log rollback only needs the FIRST pre-image of each memory location:
// once a byte's pre-transaction value is in the log, re-logging it on every
// subsequent store buys nothing (the log is walked newest-first, so the
// oldest entry wins anyway). This filter remembers, per cache line, which
// bytes have already been logged in the current transaction, turning the
// dominant repeated-store pattern (loop counters, parser cursors, connection
// state words) into a hash probe instead of a log append.
//
// Design:
//   * open-addressing hash table of 16-byte (tag, byte mask) slots, where
//     the tag packs the line number with a 16-bit epoch — liveness and
//     identity check in ONE load and compare;
//   * epoch-stamped slots make per-transaction reset() an amortized-O(1)
//     counter bump: a slot is live only while its epoch matches, and the
//     table is wiped just once per 65535 resets when the counter wraps;
//   * the hash preserves line locality (consecutive lines map to consecutive
//     slots, four to a table cache line), so sweep-style write sets probe
//     and insert sequentially instead of scattering across the table;
//   * byte-granular masks keep rollback word-exact: a second store to a line
//     is elided only when every byte it touches is already covered, so the
//     filter never widens what the undo log restores (unlike whole-line
//     logging, which would clobber untracked neighbours);
//   * the table doubles at 50% load and shrinks back under a retention cap
//     between transactions, so one outlier transaction cannot pin a huge
//     table forever.
//
// The HTM write-set model shares this structure with mask=kFullLineMask:
// there, "covered" simply means "line already in the write-set".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"

namespace fir {

/// See file comment. Single-threaded, like the rest of the store path.
class WriteFilter {
 public:
  /// Mask claiming every byte of a line (the HTM membership-only use).
  static constexpr std::uint64_t kFullLineMask = ~std::uint64_t{0};

  /// `min_lines` sizes the initial table (rounded up to a power of two with
  /// 50% headroom); the table grows on demand beyond it.
  explicit WriteFilter(std::size_t min_lines = 64);

  /// Starts a new transaction: amortized O(1) — an epoch bump, with one
  /// table wipe per 65535 resets when the 16-bit epoch wraps. A coalesced
  /// run (core/tx_manager.h checkpoint fast path) deliberately spans many
  /// library calls with ONE epoch: stores made by consecutive calls dedupe
  /// against each other, because rollback always replays to the start of
  /// the run — the oldest pre-image is the right one for the whole run.
  void reset() {
    if (++epoch_ > kEpochMask) {
      epoch_ = 1;
      wipe();
    }
    lines_ = 0;
  }

  /// Current transaction epoch (1..65535). Observable so tests can prove
  /// epoch REUSE: consecutive calls coalesced into one run see the same
  /// epoch, while un-coalesced calls bump it once per transaction.
  std::uint16_t epoch() const { return static_cast<std::uint16_t>(epoch_); }

  /// Byte mask of [addr, addr+size) within its cache line.
  /// Precondition: the span does not cross a line boundary.
  static std::uint64_t span_mask(std::uintptr_t addr, std::size_t size) {
    const unsigned off = static_cast<unsigned>(addr & (kCacheLineBytes - 1));
    if (size >= kCacheLineBytes) return kFullLineMask;
    return ((std::uint64_t{1} << size) - 1) << off;
  }

  /// Gate fast-path probe: true iff [addr, addr+size) lies within a single
  /// cache line whose touched bytes are all already covered this
  /// transaction — i.e. the store needs no undo-log append. Counts the hit.
  bool covers(const void* addr, std::size_t size) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t line = line_base(a);
    if (size == 0 || line_base(a + size - 1) != line) return false;
    const Slot* slot = find(line);
    if (slot == nullptr) return false;
    const std::uint64_t mask = span_mask(a, size);
    if ((slot->mask & mask) != mask) return false;
    ++hits_;
    ++spans_elided_;
    return true;
  }

  /// Marks `mask` covered for `line`, inserting the line if new. Returns
  /// true when every masked byte was ALREADY covered (caller may elide the
  /// log append); counts such hits. Inline: this is the store gate's one
  /// hash probe per first-write.
  bool cover(std::uintptr_t line, std::uint64_t mask) {
    const std::uint64_t want = make_tag(line);
    const std::size_t table_mask = slots_.size() - 1;
    std::size_t idx = hash(line, table_mask);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.tag == want) {
        if ((slot.mask & mask) == mask) {
          ++hits_;
          return true;
        }
        slot.mask |= mask;
        return false;
      }
      if ((slot.tag & kEpochMask) != epoch_) {
        // Stale slot: the line is new this transaction. Growing AFTER the
        // insert keeps the check off the hit path; load peaks at 50% + 1.
        slot.tag = want;
        slot.mask = mask;
        if (++lines_ * 2 > slots_.size()) grow();
        return false;
      }
      idx = (idx + 1) & table_mask;
    }
  }

  /// Counter hook for the gate: a cover() hit that elided a whole store.
  void note_elided() { ++spans_elided_; }

  /// Membership probe (no insertion, no counting).
  bool contains(std::uintptr_t line) const { return find(line) != nullptr; }

  /// Distinct lines touched in the current transaction.
  std::size_t lines() const { return lines_; }

  /// Line-granular coverage hits (gate probes + slow-path cover() hits).
  std::uint64_t hits() const { return hits_; }
  /// Stores elided entirely by the gate fast path.
  std::uint64_t spans_elided() const { return spans_elided_; }
  void reset_counters() { hits_ = spans_elided_ = 0; }

  std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

  /// Retention cap: when the grown table exceeds `max_bytes`, reallocate it
  /// back to its initial size. Call between transactions only (discards all
  /// coverage). Inline no-op while the table is within the cap.
  void shrink(std::size_t max_bytes) {
    if (slots_.size() * sizeof(Slot) <= max_bytes || slots_.size() <= min_slots_)
      return;
    shrink_slow();
  }

 private:
  /// Epochs occupy the tag's low 16 bits, the line number (line base / 64)
  /// the rest; valid epochs are 1..65535, so an all-zero slot is always
  /// stale under every live epoch.
  static constexpr std::uint64_t kEpochMask = 0xFFFF;

  struct Slot {
    std::uint64_t tag = 0;  // (line >> 6) << 16 | epoch
    std::uint64_t mask = 0;
  };

  std::uint64_t make_tag(std::uintptr_t line) const {
    return ((static_cast<std::uint64_t>(line) >> 6) << 16) | epoch_;
  }

  static std::size_t hash(std::uintptr_t line, std::size_t mask) {
    // Locality-preserving: consecutive lines land in consecutive slots
    // (four per table cache line), so sweep-style write sets stay
    // prefetcher-friendly; the folded high bits break large-stride
    // aliasing between distant regions.
    const std::uint64_t l = static_cast<std::uint64_t>(line) >> 6;
    return static_cast<std::size_t>(l ^ (l >> 12)) & mask;
  }

  const Slot* find(std::uintptr_t line) const {
    const std::uint64_t want = make_tag(line);
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hash(line, mask);
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.tag == want) return &slot;
      if ((slot.tag & kEpochMask) != epoch_) return nullptr;  // stale = miss
      idx = (idx + 1) & mask;
    }
  }

  void grow();
  void wipe();
  void shrink_slow();

  std::vector<Slot> slots_;
  std::size_t min_slots_;
  std::uint64_t epoch_ = 1;
  std::size_t lines_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t spans_elided_ = 0;
};

}  // namespace fir
