// Store gate: the single funnel through which every instrumented application
// store flows.
//
// The paper's Checkpoint Manager compiles store instrumentation into the
// application; here, tracked-memory primitives (mem/tracked.h) call
// StoreGate::record() before each store. The gate routes to the currently
// active engine — the HTM write-set model, the STM undo logger, or nothing
// when execution is outside any crash transaction.
//
// Dispatch is a flat mode tag with the per-engine fast paths inlined here:
//   kStm  — first-write filter probe: a store whose bytes are already
//           covered this transaction returns after one hash probe;
//   kHtm  — same-line check: a store staying within the previously touched
//           cache line returns after one compare (real TSX tracks it for
//           free in the cache).
// Only stores the fast path cannot absorb fall through to the out-of-line
// slow path, which dispatches through the StoreRecorder interface. The
// common store therefore costs one predictable branch and no indirect call;
// kVirtual preserves the old any-recorder routing for tests and custom
// recorders.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/cacheline.h"
#include "mem/undo_log.h"
#include "mem/write_filter.h"

namespace fir {

/// Recorder interface implemented by HtmContext and StmContext; the gate's
/// slow path (and kVirtual mode) dispatches through it.
class StoreRecorder {
 public:
  virtual ~StoreRecorder() = default;

  /// Called before the bytes at [addr, addr+size) are overwritten.
  /// Returns false when the recorder cannot absorb the store (simulated HTM
  /// capacity overflow); the gate then fires the abort hook, which — when a
  /// transaction is active — does not return.
  virtual bool record_store(void* addr, std::size_t size) = 0;
};

/// Per-thread store routing. The routing state (mode tag, engine
/// pointers) is thread_local: each worker thread binds its own transaction's
/// filter/log/write-set, so concurrent STM transactions never share an undo
/// log and a store on thread A can never land in thread B's pre-image set.
/// Only the abort hook is process-global (one TxManager claims it), and it
/// always fires on the thread whose store was rejected.
class StoreGate {
 public:
  using AbortHook = void (*)(void* ctx);

  /// How record() dispatches the current store.
  enum class Mode : std::uint8_t { kOff = 0, kVirtual, kStm, kHtm };

  /// Installs `recorder` behind the generic kVirtual dispatch (nullptr
  /// disables tracking). Returns the previous recorder. The engines'
  /// bind_gate() methods use bind_stm()/bind_htm() instead to enable the
  /// inlined fast paths.
  static StoreRecorder* set_recorder(StoreRecorder* recorder);
  static StoreRecorder* recorder() { return recorder_; }

  /// STM binding: `filter` elides already-covered stores inline; first-
  /// write pre-images go straight into `log` (no virtual hop, no re-probe);
  /// `cold` (the StmContext) absorbs line-spanning and zero-size stores.
  static void bind_stm(WriteFilter* filter, UndoLog* log, StoreRecorder* cold);

  /// HTM binding: `last_line` is the engine's previously-touched-line cache
  /// and `store_tally` its store counter (bumped when the fast path elides);
  /// `cold` (the HtmContext) handles new-line touches.
  static void bind_htm(std::uintptr_t* last_line, std::uint64_t* store_tally,
                       StoreRecorder* cold);

  /// Hook invoked when a recorder rejects a store (HTM abort). Installed by
  /// the transaction manager; typically longjmps back to the entry gate and
  /// therefore does not return.
  static void set_abort_hook(AbortHook hook, void* ctx);

  /// Routes one store. Inlined into the tracked-memory fast path.
  static void record(void* addr, std::size_t size) {
    switch (mode_) {
      case Mode::kOff:
        return;
      case Mode::kStm: {
        // First-write filter, one probe total: a hit elides the store; a
        // miss has already recorded coverage, so the pre-image goes straight
        // into the undo log — no re-probe, no virtual call, and the store
        // tallies are reconstructed from log/filter counters at commit.
        const auto a = reinterpret_cast<std::uintptr_t>(addr);
        // Single-line iff first and last byte differ only in the low 6 bits.
        if (size != 0 && (a ^ (a + size - 1)) < kCacheLineBytes) {
          const std::uintptr_t line = line_base(a);
          if (stm_filter_->cover(line, WriteFilter::span_mask(a, size))) {
            stm_filter_->note_elided();
            return;
          }
          stm_log_->record(addr, size);
          return;
        }
        break;  // line-spanning or empty: segmented by the slow path
      }
      case Mode::kHtm: {
        // A store staying within the last-touched line is already in the
        // write-set; only the engine's store tally moves.
        const auto a = reinterpret_cast<std::uintptr_t>(addr);
        const std::uintptr_t line = line_base(a);
        if (line == *htm_last_line_ &&
            line_base(a + (size > 0 ? size - 1 : 0)) == line) {
          ++*htm_store_tally_;
          return;
        }
        break;
      }
      case Mode::kVirtual:
        break;
    }
    record_slow(addr, size);
  }

  static bool tracking() { return mode_ != Mode::kOff; }
  static Mode mode() { return mode_; }

 private:
  static void record_slow(void* addr, std::size_t size);
  static void fire_abort();

  static thread_local Mode mode_;
  static thread_local StoreRecorder* recorder_;
  static thread_local WriteFilter* stm_filter_;
  static thread_local UndoLog* stm_log_;
  static thread_local std::uintptr_t* htm_last_line_;
  static thread_local std::uint64_t* htm_store_tally_;
  // Shared across threads: claimed once per TxManager (before its workers
  // start), read on the (cold) abort path of whichever thread's store was
  // rejected. Atomic so a late-constructed second manager re-claiming the
  // hook does not race with a sibling's abort.
  static std::atomic<AbortHook> abort_hook_;
  static std::atomic<void*> abort_ctx_;
};

}  // namespace fir
