// Store gate: the single funnel through which every instrumented application
// store flows.
//
// The paper's Checkpoint Manager compiles store instrumentation into the
// application; here, tracked-memory primitives (mem/tracked.h) call
// StoreGate::record() before each store. The gate forwards to the currently
// active recorder — the HTM write-set model, the STM undo logger, or nothing
// when execution is outside any crash transaction.
#pragma once

#include <cstddef>

namespace fir {

/// Recorder interface implemented by HtmContext and StmContext.
class StoreRecorder {
 public:
  virtual ~StoreRecorder() = default;

  /// Called before the bytes at [addr, addr+size) are overwritten.
  /// Returns false when the recorder cannot absorb the store (simulated HTM
  /// capacity overflow); the gate then fires the abort hook, which — when a
  /// transaction is active — does not return.
  virtual bool record_store(void* addr, std::size_t size) = 0;
};

/// Process-global store routing. Single-threaded by design (paper §VII).
class StoreGate {
 public:
  using AbortHook = void (*)(void* ctx);

  /// Installs `recorder` as the destination for subsequent stores.
  /// Pass nullptr to disable tracking. Returns the previous recorder.
  static StoreRecorder* set_recorder(StoreRecorder* recorder);
  static StoreRecorder* recorder() { return recorder_; }

  /// Hook invoked when a recorder rejects a store (HTM abort). Installed by
  /// the transaction manager; typically longjmps back to the entry gate and
  /// therefore does not return.
  static void set_abort_hook(AbortHook hook, void* ctx);

  /// Routes one store. Inlined into the tracked-memory fast path.
  static void record(void* addr, std::size_t size) {
    if (recorder_ != nullptr && !recorder_->record_store(addr, size)) {
      fire_abort();
    }
  }

  static bool tracking() { return recorder_ != nullptr; }

 private:
  static void fire_abort();

  static StoreRecorder* recorder_;
  static AbortHook abort_hook_;
  static void* abort_ctx_;
};

}  // namespace fir
