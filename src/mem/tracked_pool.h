// TrackedPool: fixed-size object pool with a tracked free list.
//
// The mini-servers allocate per-connection / per-request state from pools so
// that (a) allocation itself is rollback-safe (the free-list head is tracked
// state) and (b) object addresses are stable, as the undo log requires.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "mem/tracked.h"

namespace fir {

/// Pool of up to `capacity` T objects. T must be trivially copyable (its
/// fields are restored byte-wise on rollback).
template <typename T>
class TrackedPool {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit TrackedPool(std::size_t capacity)
      : slots_(capacity), next_free_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i)
      next_free_[i] = static_cast<std::uint32_t>(i + 1);
    head_.init(0);
    live_.init(0);
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t live() const { return live_; }
  /// Resident bytes of the pool's backing storage (memory accounting).
  std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(T) +
           next_free_.capacity() * sizeof(std::uint32_t);
  }
  bool full() const { return head_ >= capacity(); }

  /// Allocates a zero-initialized object; nullptr when exhausted.
  T* alloc() {
    const std::size_t idx = head_;
    if (idx >= capacity()) return nullptr;
    head_ = next_free_[idx];
    live_ += 1;
    T* obj = &slots_[idx];
    tx_memset(obj, 0, sizeof(T));
    return obj;
  }

  /// Returns an object to the pool. Precondition: obj came from this pool
  /// and is currently live.
  void release(T* obj) {
    const std::size_t idx = index_of(obj);
    tx_store(next_free_[idx], static_cast<std::uint32_t>(head_.get()));
    head_ = static_cast<std::uint32_t>(idx);
    live_ -= 1;
  }

  /// Index of a pool object (stable identifier for logging).
  std::size_t index_of(const T* obj) const {
    assert(obj >= slots_.data() && obj < slots_.data() + slots_.size());
    return static_cast<std::size_t>(obj - slots_.data());
  }

  T* at(std::size_t idx) {
    assert(idx < slots_.size());
    return &slots_[idx];
  }

 private:
  std::vector<T> slots_;                 // address-stable
  std::vector<std::uint32_t> next_free_; // tracked via tx_store on mutation
  tracked<std::uint32_t> head_;
  tracked<std::size_t> live_;
};

}  // namespace fir
