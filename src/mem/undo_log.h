// Undo log: the rollback substrate shared by the STM checkpointing mode and
// by the simulated-HTM write-set discard.
//
// Paper mapping (§IV-A): "we rely on a common undo log-based design, which
// instruments the specified code region to track all the stores to memory and
// save the old data in the undo log. To roll back, we walk the undo log in
// reverse order and restore each modified memory location to its original
// value."
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace fir {

/// Append-only log of (address, old bytes) pairs with reverse-order rollback.
///
/// Small stores (<= 16 bytes, the overwhelmingly common case) keep their old
/// data inline in the entry; larger stores spill into a chunked bump-pointer
/// arena: appends never zero-initialize grown memory and never move (or
/// invalidate) previously spilled data, so a large store costs exactly one
/// pointer bump plus the memcpy of its old bytes.
///
/// The log is reused across transactions via clear(), which also enforces a
/// retention cap (set_retention / FIR_UNDO_RETAIN_BYTES): buffers grown by
/// one outlier transaction shrink back so the steady-state footprint stays
/// bounded — this keeps the Fig. 9 memory accounting honest.
class UndoLog {
 public:
  /// Default retention cap applied by clear() (1 MiB).
  static constexpr std::size_t kDefaultRetainBytes = 1u << 20;

  UndoLog();

  /// Saves the current contents of [addr, addr+size) so rollback() can
  /// restore them. Call BEFORE performing the store. Inline: this is the
  /// store gate's direct append target.
  void record(void* addr, std::size_t size) {
    Entry e;
    e.addr = reinterpret_cast<std::uintptr_t>(addr);
    e.size = static_cast<std::uint32_t>(size);
    if (size <= kInlineBytes) {
      std::memcpy(e.inline_data, addr, size);
    } else {
      std::uint8_t* dst = arena_alloc(size);
      std::memcpy(dst, addr, size);
      e.spill = dst;
    }
    entries_.push_back(e);
    logged_bytes_ += size;
  }

  /// Restores all recorded locations, newest first, and clears the log.
  void rollback();

  /// Discards the log without restoring (transaction committed) and shrinks
  /// buffers back under the retention cap.
  void clear();

  /// Caps the capacity clear() retains across transactions.
  void set_retention(std::size_t bytes) { retain_bytes_ = bytes; }
  std::size_t retention() const { return retain_bytes_; }

  std::size_t entry_count() const { return entries_.size(); }
  /// Total bytes of old data held (inline + arena) — drives the memory
  /// overhead accounting of Fig. 9.
  std::size_t logged_bytes() const { return logged_bytes_; }
  /// Capacity currently reserved by the log's internal buffers.
  std::size_t footprint_bytes() const;
  bool empty() const { return entries_.empty(); }

 private:
  static constexpr std::size_t kInlineBytes = 16;
  static constexpr std::size_t kChunkBytes = 64u * 1024;
  static constexpr std::size_t kEntryReserve = 256;

  struct Entry {
    std::uintptr_t addr;
    std::uint32_t size;
    // Old data: inline when size <= kInlineBytes, else a stable pointer
    // into one of the arena chunks.
    union {
      std::uint8_t inline_data[kInlineBytes];
      const std::uint8_t* spill;
    };
  };

  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t capacity = 0;
  };

  /// Bump-allocates `size` uninitialized bytes with a stable address.
  std::uint8_t* arena_alloc(std::size_t size);

  std::vector<Entry> entries_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;  // chunk currently being bump-allocated
  std::size_t chunk_used_ = 0;   // bytes used in that chunk
  std::size_t arena_capacity_ = 0;
  std::size_t logged_bytes_ = 0;
  std::size_t retain_bytes_ = kDefaultRetainBytes;
};

}  // namespace fir
