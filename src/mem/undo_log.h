// Undo log: the rollback substrate shared by the STM checkpointing mode and
// by the simulated-HTM write-set discard.
//
// Paper mapping (§IV-A): "we rely on a common undo log-based design, which
// instruments the specified code region to track all the stores to memory and
// save the old data in the undo log. To roll back, we walk the undo log in
// reverse order and restore each modified memory location to its original
// value."
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fir {

/// Append-only log of (address, old bytes) pairs with reverse-order rollback.
///
/// Small stores (<= 16 bytes, the overwhelmingly common case) keep their old
/// data inline in the entry; larger stores spill into a byte arena. The log
/// is reused across transactions via clear() to avoid steady-state
/// allocation.
class UndoLog {
 public:
  UndoLog();

  /// Saves the current contents of [addr, addr+size) so rollback() can
  /// restore them. Call BEFORE performing the store.
  void record(void* addr, std::size_t size);

  /// Restores all recorded locations, newest first, and clears the log.
  void rollback();

  /// Discards the log without restoring (transaction committed).
  void clear();

  std::size_t entry_count() const { return entries_.size(); }
  /// Total bytes of old data held (inline + arena) — drives the memory
  /// overhead accounting of Fig. 9.
  std::size_t logged_bytes() const { return logged_bytes_; }
  /// Capacity currently reserved by the log's internal buffers.
  std::size_t footprint_bytes() const;
  bool empty() const { return entries_.empty(); }

 private:
  static constexpr std::size_t kInlineBytes = 16;

  struct Entry {
    std::uintptr_t addr;
    std::uint32_t size;
    // Old data: inline when size <= kInlineBytes, else offset into arena_.
    union {
      std::uint8_t inline_data[kInlineBytes];
      std::size_t arena_offset;
    };
  };

  std::vector<Entry> entries_;
  std::vector<std::uint8_t> arena_;
  std::size_t logged_bytes_ = 0;
};

}  // namespace fir
