// Minimal leveled logger.
//
// The recovery runtime logs diversion / rollback decisions at kInfo; the
// mini-servers log their own application-level errors (mirroring nginx's
// LOG_ERROR idiom) through the same sink so tests can assert on them.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace fir {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logging configuration. Not thread-safe by design: the
/// FIRestarter runtime is single-threaded per protected process (paper §VII,
/// "Multithreading" limitation).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  /// Messages below this level are dropped before formatting.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr). Tests install a capturing
  /// sink to assert on recovery decisions.
  void set_sink(Sink sink);

  /// Restores the default stderr sink.
  void reset_sink();

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

// for-loop form avoids dangling-else ambiguity at unbraced call sites.
#define FIR_LOG(level)                                                     \
  for (bool fir_log_once =                                                 \
           ::fir::Logger::instance().enabled(::fir::LogLevel::level);      \
       fir_log_once; fir_log_once = false)                                 \
  ::fir::detail::LogMessage(::fir::LogLevel::level)

}  // namespace fir
