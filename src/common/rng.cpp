#include "common/rng.h"

#include <cassert>

namespace fir {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace fir
