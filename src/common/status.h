// Lightweight error-handling vocabulary used across the FIRestarter code base.
//
// We deliberately avoid exceptions on hot paths: the transaction machinery
// longjmp()s across frames (mirroring the paper's signal-handler + register
// restore mechanism), and C++ exceptions may not unwind across such jumps.
// All fallible library-style interfaces therefore return Status / Result<T>.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace fir {

/// Error categories roughly mirroring POSIX errno classes plus
/// FIRestarter-internal conditions.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // EINVAL
  kNotFound,          // ENOENT
  kAlreadyExists,     // EEXIST
  kPermissionDenied,  // EACCES
  kResourceExhausted, // ENOMEM / EMFILE
  kUnavailable,       // EAGAIN / EWOULDBLOCK
  kConnectionReset,   // ECONNRESET
  kAddressInUse,      // EADDRINUSE
  kBadFileDescriptor, // EBADF
  kNotConnected,      // ENOTCONN
  kBrokenPipe,        // EPIPE
  kOutOfRange,        // index / offset outside object bounds
  kFailedPrecondition,// operation not valid in current state
  kAborted,           // transaction aborted
  kInternal,          // invariant violation inside FIRestarter itself
  kUnimplemented,
};

/// Human-readable name of an ErrorCode ("kOk" -> "OK", ...).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error value. Cheap to copy on success (no allocation);
/// carries a message only on error.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status. `code` must not be kOk.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "error Status requires non-OK code");
  }

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. A minimal std::expected
/// stand-in (we target toolchains where <expected> may be absent).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : repr_(std::move(value)) {}
  /// Implicit from error: `return Status(...)`. Must be non-OK.
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).is_ok() &&
           "Result error must carry a non-OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return is_ok(); }

  /// Precondition: is_ok().
  T& value() & {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(repr_));
  }

  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  /// OK status if holding a value, the error otherwise.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(repr_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagate-on-error helper: `FIR_RETURN_IF_ERROR(do_thing());`
#define FIR_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::fir::Status fir_status_ = (expr);             \
    if (!fir_status_.is_ok()) return fir_status_;   \
  } while (0)

/// `FIR_ASSIGN_OR_RETURN(auto v, compute());`
#define FIR_ASSIGN_OR_RETURN(decl, expr)               \
  auto fir_result_##__LINE__ = (expr);                 \
  if (!fir_result_##__LINE__.is_ok())                  \
    return fir_result_##__LINE__.status();             \
  decl = std::move(fir_result_##__LINE__).value()

}  // namespace fir
