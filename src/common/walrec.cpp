#include "common/walrec.h"

#include <cstring>

#include "common/crc32.h"

namespace fir {
namespace {

void store_le32(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t load_le32(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

std::size_t walrec_encode(char* out, std::size_t cap,
                          std::string_view payload) {
  if (payload.size() > kWalrecMaxPayload) return 0;
  const std::size_t total = kWalrecHeaderBytes + payload.size();
  if (cap < total) return 0;
  store_le32(out, static_cast<std::uint32_t>(payload.size()));
  store_le32(out + 4, crc32(payload));
  std::memcpy(out + kWalrecHeaderBytes, payload.data(), payload.size());
  return total;
}

bool WalrecScanner::next(std::string_view& payload) {
  if (rest_.size() < kWalrecHeaderBytes) return false;  // torn header or end
  const std::uint32_t len = load_le32(rest_.data());
  if (len > kWalrecMaxPayload) return false;  // corrupt length field
  if (rest_.size() < kWalrecHeaderBytes + len) return false;  // torn payload
  const std::string_view body = rest_.substr(kWalrecHeaderBytes, len);
  if (crc32(body) != load_le32(rest_.data() + 4)) return false;  // bit rot
  payload = body;
  rest_.remove_prefix(kWalrecHeaderBytes + len);
  valid_bytes_ += kWalrecHeaderBytes + len;
  return true;
}

}  // namespace fir
