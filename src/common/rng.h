// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (HTM interrupt aborts, fault
// placement, workload request mixes) draws from an explicitly seeded Rng so
// that experiments are exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>

namespace fir {

/// Derives the seed of independent stream `stream` from `base`. The
/// increment is the SplitMix64 golden-gamma, and Rng's constructor runs
/// SplitMix64 over its seed, so consecutive streams are exactly the
/// SplitMix64 sequence of `base` — uncorrelated by construction. One
/// helper, used everywhere a campaign-level seed fans out (per-run seeds in
/// the campaign planner, hsfi per-thread corruption streams, per-context
/// HTM abort streams), so "seed 1, run 7" means the same thing in every
/// layer.
inline constexpr std::uint64_t split_seed(std::uint64_t base,
                                          std::uint64_t stream) {
  return base + stream * 0x9E3779B97F4A7C15ull;
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Not cryptographic; fine for simulation.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Fisher-Yates index helper: random index into a container of `size`.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(next_below(size));
  }

  /// Splits off an independent generator (for per-site / per-worker streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace fir
