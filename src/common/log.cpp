#include "common/log.h"

#include <cstdio>

namespace fir {
namespace {

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger::Logger() { reset_sink(); }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::reset_sink() {
  sink_ = [](LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[fir %s] %.*s\n", level_tag(level).data(),
                 static_cast<int>(msg.size()), msg.data());
  };
}

void Logger::write(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  sink_(level, msg);
}

}  // namespace fir
