#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fir {

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

void Histogram::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::percentile(double p) const {
  assert(!empty());
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

// ---------------------------------------------------------------------------
// LogHistogram

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  // Keep the top kSubBucketBits+1 significant bits: bucket width is
  // 2^(msb - kSubBucketBits) <= value / 2^kSubBucketBits.
  const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(value));
  const unsigned shift = msb - kSubBucketBits;
  const std::uint64_t top = value >> shift;  // in [kSubBucketCount, 2*kSubBucketCount)
  const std::size_t octave = msb - kSubBucketBits + 1;  // octave 0 = exact range
  return (octave << kSubBucketBits) +
         static_cast<std::size_t>(top & (kSubBucketCount - 1));
}

std::uint64_t LogHistogram::bucket_low(std::size_t index) {
  const std::size_t octave = index >> kSubBucketBits;
  const std::uint64_t sub = index & (kSubBucketCount - 1);
  if (octave == 0) return sub;
  const unsigned shift = static_cast<unsigned>(octave - 1);
  return (kSubBucketCount + sub) << shift;
}

std::uint64_t LogHistogram::bucket_high(std::size_t index) {
  const std::size_t octave = index >> kSubBucketBits;
  const std::uint64_t sub = index & (kSubBucketCount - 1);
  if (octave == 0) return sub;
  const unsigned shift = static_cast<unsigned>(octave - 1);
  // Written as low + (2^shift - 1); ((top+1) << shift) - 1 would overflow
  // for the last bucket of the top octave.
  return ((kSubBucketCount + sub) << shift) + ((1ull << shift) - 1);
}

void LogHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[bucket_index(value)] += count;
  total_ += count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  if (other.total_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
}

void LogHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

std::uint64_t LogHistogram::value_at_percentile(double p) const {
  if (empty()) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest recorded value with cumulative count
  // >= p% of the total.
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  target = std::clamp<std::uint64_t>(target, 1, total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    if (cum >= target) {
      const std::uint64_t lo = bucket_low(i);
      const std::uint64_t hi = bucket_high(i);
      return std::clamp(lo + (hi - lo) / 2, min_, max_);
    }
  }
  return max_;
}

}  // namespace fir
