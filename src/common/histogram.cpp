#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fir {

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

void Histogram::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::percentile(double p) const {
  assert(!empty());
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace fir
