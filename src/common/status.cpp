#include "common/status.h"

namespace fir {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kConnectionReset: return "CONNECTION_RESET";
    case ErrorCode::kAddressInUse: return "ADDRESS_IN_USE";
    case ErrorCode::kBadFileDescriptor: return "BAD_FILE_DESCRIPTOR";
    case ErrorCode::kNotConnected: return "NOT_CONNECTED";
    case ErrorCode::kBrokenPipe: return "BROKEN_PIPE";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fir
