// Cache geometry constants for the simulated HTM (Intel TSX model).
#pragma once

#include <cstddef>
#include <cstdint>

namespace fir {

/// x86 cache line size; the TSX write-set is tracked at this granularity.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Skylake-era L1D: 32 KiB, 8-way. TSX write capacity is bounded by L1D;
/// in practice the usable write-set is a fraction of this because of
/// associativity conflicts. These defaults drive the HtmConfig.
inline constexpr std::size_t kL1DataCacheBytes = 32 * 1024;
inline constexpr std::size_t kL1Associativity = 8;
inline constexpr std::size_t kL1Sets =
    kL1DataCacheBytes / (kCacheLineBytes * kL1Associativity);

/// Rounds an address down to its cache-line base.
inline std::uintptr_t line_base(std::uintptr_t addr) {
  return addr & ~static_cast<std::uintptr_t>(kCacheLineBytes - 1);
}

/// Index of the L1 set an address maps to.
inline std::size_t line_set_index(std::uintptr_t addr) {
  return (addr / kCacheLineBytes) % kL1Sets;
}

}  // namespace fir
