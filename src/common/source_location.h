// FIR_HERE: a compile-time "file:line" literal identifying a call site.
// Used by the interposition gates (site identity) and the fault injector
// (marker identity).
#pragma once

#define FIR_DETAIL_STR2(x) #x
#define FIR_DETAIL_STR(x) FIR_DETAIL_STR2(x)
#define FIR_HERE __FILE__ ":" FIR_DETAIL_STR(__LINE__)
