// Framed durable-log records, shared by the minipg WAL and minikv AOF.
//
// Wire format per record (little-endian):
//
//   [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// The frame makes recovery self-validating: a replay scans records from the
// start and stops at the first frame that is truncated (torn append) or
// whose checksum mismatches (bit rot), then truncates the log back to the
// last record that verified — the standard WAL/redis-check-aof recovery
// contract. Payloads stay plain text so logs remain grep-able.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fir {

constexpr std::size_t kWalrecHeaderBytes = 8;
constexpr std::size_t kWalrecMaxPayload = 4096;

/// Encodes one framed record into `out` (capacity `cap`). Returns the total
/// bytes written (header + payload), or 0 when the payload exceeds
/// kWalrecMaxPayload or the buffer is too small.
std::size_t walrec_encode(char* out, std::size_t cap,
                          std::string_view payload);

/// Forward scanner over a possibly torn log image.
class WalrecScanner {
 public:
  explicit WalrecScanner(std::string_view log) : rest_(log) {}

  /// Advances past the next valid record, pointing `payload` into the log
  /// buffer. Returns false at end of log OR at the first torn/corrupt
  /// frame — scanning never resumes past damage.
  bool next(std::string_view& payload);

  /// Bytes occupied by the records that verified so far. Once next() has
  /// returned false this is the recovery truncation point.
  std::size_t valid_bytes() const { return valid_bytes_; }

 private:
  std::string_view rest_;
  std::size_t valid_bytes_ = 0;
};

}  // namespace fir
