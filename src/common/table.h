// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces one paper table/figure and prints it in a
// layout comparable side-by-side with the paper's. This helper keeps the
// formatting consistent across binaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fir {

/// Builds an aligned ASCII table. Columns are sized to their widest cell.
class TextTable {
 public:
  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator after the most recently added row.
  void add_separator();

  /// Renders with single-space padding and `|` column separators.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_after = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// printf-style float formatting helpers used by bench binaries.
std::string format_double(double v, int decimals);
std::string format_percent(double fraction, int decimals = 1);

}  // namespace fir
