// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise.
// Durable-log records are small (a command line each), so a lookup table
// buys nothing; the bitwise form keeps this header dependency-free.
#pragma once

#include <cstdint>
#include <string_view>

namespace fir {

inline std::uint32_t crc32(std::string_view data,
                           std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (const char ch : data) {
    crc ^= static_cast<unsigned char>(ch);
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
  }
  return ~crc;
}

}  // namespace fir
