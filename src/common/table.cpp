#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace fir {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() {
  if (!rows_.empty()) rows_.back().separator_after = true;
}

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.cells.size());
  if (columns == 0) return "";

  std::vector<std::size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  account(header_);
  for (const auto& row : rows_) account(row.cells);

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };
  auto separator = [&]() {
    std::string line = "+";
    for (std::size_t i = 0; i < columns; ++i)
      line += std::string(widths[i] + 2, '-') + "+";
    line += "\n";
    return line;
  };

  std::string out = separator();
  if (!header_.empty()) {
    out += render_line(header_);
    out += separator();
  }
  for (const auto& row : rows_) {
    out += render_line(row.cells);
    if (row.separator_after) out += separator();
  }
  out += separator();
  return out;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace fir
