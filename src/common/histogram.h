// Latency / size histograms with percentile queries.
//
// Two recorders share this header:
//   * Histogram     — exact (stores every sample); the benchmark harness's
//                     reference recorder (Fig. 5 scatter data, throughput
//                     summaries) and the accuracy oracle in tests.
//   * LogHistogram  — HDR-style log-bucketed fixed-footprint recorder for
//                     high-rate recording (the serving load generator): each
//                     record() is a couple of bit operations and one array
//                     increment, merge() is element-wise addition, and any
//                     percentile query carries a guaranteed relative-error
//                     bound, so millions of per-request latencies cost
//                     neither allocation nor a sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fir {

/// Records non-negative samples; answers count/mean/min/max/percentile.
/// Exact (stores all samples); fine for the sample counts our experiments
/// produce (<= a few million).
class Histogram {
 public:
  void add(double sample);
  void merge(const Histogram& other);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// p in [0, 100]. Linear interpolation between order statistics.
  /// Precondition: !empty().
  double percentile(double p) const;

  /// All recorded samples in insertion order (for scatter plots like Fig. 5).
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Log-bucketed histogram of non-negative integer samples (HdrHistogram's
/// bucketing scheme, fixed precision): values below 2^kSubBucketBits are
/// exact; above that, each power-of-two octave is split into
/// 2^kSubBucketBits linear sub-buckets, so a bucket's width is at most
/// value / 2^kSubBucketBits and any reported percentile is within
/// kMaxRelativeError of the exact order statistic. The full uint64 range is
/// covered by a flat ~2 k-entry counter array; record() never allocates.
class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per octave.
  static constexpr unsigned kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  /// Guaranteed bound on |reported - exact| / exact for percentile queries
  /// (half a bucket width either way after midpoint reconstruction).
  static constexpr double kMaxRelativeError = 1.0 / (1 << kSubBucketBits);

  LogHistogram() : counts_(kBucketCount, 0) {}

  void record(std::uint64_t value) { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t count);
  void merge(const LogHistogram& other);
  void clear();

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  std::uint64_t min() const { return empty() ? 0 : min_; }
  std::uint64_t max() const { return empty() ? 0 : max_; }
  double mean() const {
    return empty() ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// p in [0, 100]. Returns the midpoint of the bucket holding the p-th
  /// order statistic (clamped to the recorded min/max), so the result is
  /// within kMaxRelativeError of the exact percentile. Returns 0 when
  /// empty.
  std::uint64_t value_at_percentile(double p) const;

  /// Bytes of counter storage (footprint accounting).
  std::size_t footprint_bytes() const {
    return counts_.capacity() * sizeof(std::uint64_t);
  }

 private:
  // Octaves above the exact range: values with a highest set bit at
  // position >= kSubBucketBits each contribute kSubBucketCount/2 distinct
  // buckets... laid out flat, the standard HDR index formula below maps the
  // 64-bit range onto (64 - kSubBucketBits + 1) * kSubBucketCount slots.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBucketBits + 1) * kSubBucketCount;

  static std::size_t bucket_index(std::uint64_t value);
  /// Smallest and largest value mapping to bucket `index` (midpoint query).
  static std::uint64_t bucket_low(std::size_t index);
  static std::uint64_t bucket_high(std::size_t index);

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace fir
