// Latency / size histogram with percentile queries.
//
// Used by the benchmark harness (recovery-latency distribution of Fig. 5,
// throughput summaries) and by the runtime's self-metrics.
#pragma once

#include <cstdint>
#include <vector>

namespace fir {

/// Records non-negative samples; answers count/mean/min/max/percentile.
/// Exact (stores all samples); fine for the sample counts our experiments
/// produce (<= a few million).
class Histogram {
 public:
  void add(double sample);
  void merge(const Histogram& other);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// p in [0, 100]. Linear interpolation between order statistics.
  /// Precondition: !empty().
  double percentile(double p) const;

  /// All recorded samples in insertion order (for scatter plots like Fig. 5).
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace fir
