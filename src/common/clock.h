// Time sources.
//
// The virtual OS (src/env) runs on VirtualClock so simulations are
// deterministic; the benchmark harness measures real elapsed time with
// StopWatch.
#pragma once

#include <ctime>

#include <atomic>
#include <chrono>
#include <cstdint>

namespace fir {

/// Monotonic simulated time in nanoseconds, advanced explicitly by the
/// environment (e.g. each virtual syscall costs a few hundred ns, each
/// poller wait advances to the next readiness event). Atomic relaxed:
/// advances run under the Env lock, but the observability layer timestamps
/// trace events from whichever thread is in a gate, so reads race with
/// advances. Per-variable coherence is all a timestamp needs.
class VirtualClock {
 public:
  std::uint64_t now_ns() const {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta) {
    now_ns_.fetch_add(delta, std::memory_order_relaxed);
  }
  void reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> now_ns_{0};
};

/// Process-CPU-time stopwatch (CLOCK_PROCESS_CPUTIME_ID): the throughput
/// experiments run on shared machines, and CPU time excludes interference
/// from other tenants that wall time would charge to the server under test.
class CpuStopWatch {
 public:
  CpuStopWatch() : start_(now()) {}
  void restart() { start_ = now(); }
  double elapsed_seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// Wall-clock stopwatch over std::chrono::steady_clock.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fir
