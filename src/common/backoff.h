// Restart pacing for supervisors: exponential backoff with jitter, and a
// flap detector (K failures inside a sliding window).
//
// Both are deliberately tiny value types with explicit time inputs — the
// caller owns the clock (the fleet supervisor feeds steady-clock
// milliseconds, tests feed literals), so every schedule is unit-testable
// without sleeping.
#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.h"

namespace fir {

/// Exponential backoff: attempt n (1-based) waits base * 2^(n-1), capped,
/// plus up to `jitter_frac` of that delay drawn from `rng` — the jitter
/// de-synchronizes a fleet of restarting workers so they do not stampede
/// the supervisor (or, in a real deployment, a shared dependency).
struct ExponentialBackoff {
  std::uint32_t base_ms = 20;
  std::uint32_t max_ms = 1000;
  double jitter_frac = 0.2;

  /// Deterministic part of attempt `attempt`'s delay (attempt >= 1).
  std::uint32_t base_delay_ms(std::uint32_t attempt) const {
    if (attempt == 0) return 0;
    std::uint64_t d = base_ms;
    // Shift saturating at the cap: attempt counts are small but unbounded.
    for (std::uint32_t i = 1; i < attempt && d < max_ms; ++i) d <<= 1;
    return static_cast<std::uint32_t>(d < max_ms ? d : max_ms);
  }

  /// Full delay for attempt `attempt`, jittered from `rng`.
  std::uint32_t delay_ms(std::uint32_t attempt, Rng& rng) const {
    const std::uint32_t base = base_delay_ms(attempt);
    if (jitter_frac <= 0.0 || base == 0) return base;
    const double jitter = static_cast<double>(base) * jitter_frac;
    return base + static_cast<std::uint32_t>(jitter * rng.next_double());
  }
};

/// Sliding-window flap detector: record() returns true when `threshold`
/// events landed within the trailing `window_ms` — the supervisor's signal
/// to stop restarting a worker whose shard crashes on (or right after)
/// every spawn, and quarantine it instead.
class FlapWindow {
 public:
  FlapWindow(std::uint32_t threshold, std::uint32_t window_ms)
      : threshold_(threshold), window_ms_(window_ms) {}

  /// Records one event at `now_ms`; true when the window now holds
  /// `threshold` or more events (threshold 0 never trips).
  bool record(std::uint64_t now_ms) {
    events_.push_back(now_ms);
    while (!events_.empty() && events_.front() + window_ms_ < now_ms)
      events_.pop_front();
    return threshold_ > 0 && events_.size() >= threshold_;
  }

  std::size_t events_in_window() const { return events_.size(); }
  void reset() { events_.clear(); }

 private:
  std::uint32_t threshold_;
  std::uint32_t window_ms_;
  std::deque<std::uint64_t> events_;
};

}  // namespace fir
