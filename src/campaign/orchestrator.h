// Campaign orchestrator: plan expansion, the forked worker pool, and
// result persistence.
//
// Process model (the reason campaigns survive their own experiments):
// the parent profiles every (target, policy) pair ONCE, expands the full
// plan, then fans run indices out to N forked worker children. Each child
// executes exactly one run in-process, writes its record to a private slot
// file (runs/run_<index>.json) and _exit(0)s. A double fault — the
// recovery runtime's _exit(70) backstop — therefore kills one run, not the
// campaign: the parent reaps the child via waitpid, classifies the exit
// status (0 = record on disk, kDoubleFaultExitCode = double-fault record,
// anything else = worker-died) and keeps scheduling.
//
// Determinism: run identity is plan position and every run's seed is
// split_seed(campaign_seed, index), so aggregate results are identical for
// --workers 1 and --workers 8.
#pragma once

#include <string>
#include <vector>

#include "campaign/aggregate.h"
#include "campaign/runner.h"
#include "campaign/spec.h"

namespace fir::campaign {

struct OrchestratorOptions {
  /// Result directory. Layout (docs/CAMPAIGNS.md):
  ///   plan.jsonl      one line per planned run (pre-execution)
  ///   runs/run_N.json worker slot files (one record each)
  ///   results.jsonl   all records, ordered by run index
  ///   matrix.json     machine-readable aggregate
  ///   report.md       rendered Table IV + per-fault matrices
  /// Empty = keep everything in memory, write nothing.
  std::string out_dir;
  /// Worker process count; <= 0 uses the spec's `workers`.
  int workers = 0;
  /// Runs every run in the calling process instead of forking. For tests
  /// and --run-index debugging; a double fault then kills the campaign.
  bool in_process = false;
  /// Campaign seed override; 0 keeps the spec's seed.
  std::uint64_t seed = 0;
};

struct CampaignOutcome {
  std::vector<RunRecord> records;  // ordered by run index
  Aggregate aggregate;
  bool passed = false;
  std::string failure;  // human-readable gate failures when !passed
};

/// Profiles targets with live servers (the production ProfileFn).
std::vector<Marker> profile_target(const TargetSpec& target,
                                   const PolicySpec& policy);

/// Synthesizes the record for a run whose worker process died before
/// writing its slot file, classifying the wait status: exit with
/// kDoubleFaultExitCode is the recovery runtime's own backstop (outcome
/// "double-fault" — a real experiment result); any other exit or a signal
/// is outcome "worker-died" with the reason spelled out. Public because
/// the fleet supervisor mirrors this taxonomy and the reap tests pin both
/// to one golden file.
RunRecord death_record(const RunSpec& spec, int wait_status);

/// Expands `spec` and executes the whole plan. Workloads print nothing;
/// progress goes to stderr when `verbose`.
CampaignOutcome run_campaign_spec(const CampaignSpec& spec,
                                  const OrchestratorOptions& options,
                                  bool verbose = false);

/// Loads results.jsonl text (one record per line) back into records —
/// the aggregation half of the pipeline, reusable over saved runs.
bool load_results_jsonl(const std::string& text,
                        std::vector<RunRecord>* out, std::string* error);

}  // namespace fir::campaign
