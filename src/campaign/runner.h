// Single-run execution and the per-run JSONL record.
//
// One RunSpec = one process-isolated experiment. The worker child calls
// execute_run(), writes record_jsonl() to its slot file and _exits; the
// orchestrator parses the files back with record_from_json() and
// aggregates. Records contain ONLY deterministic fields (virtual-clock
// world, seeded workloads, no wall times), so a fixed (spec, seed) plan
// produces byte-identical results.jsonl under any worker count.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.h"
#include "campaign/spec.h"

namespace fir::campaign {

/// Classified outcome of one run (the `outcome` record field).
///   recovered        fault crashed; server survived and still serves
///   not-recovered    fault crashed; server survived but the health probe
///                    failed (availability lost without dying)
///   fatal            FatalCrashError ended the faulty workload
///   double-fault     worker exited with kDoubleFaultExitCode (70)
///   no-crash         fault fired but never crashed (latent faults mostly)
///   not-triggered    armed marker never executed under the workload
///   worker-died      worker killed by a signal / unexpected exit code
///   lost-record      worker exited 0 but its record is missing/corrupt
///   baseline-ok / baseline-failed
struct RunRecord {
  RunSpec spec;
  std::string outcome;
  bool triggered = false;
  bool crashed = false;
  bool recovered = false;
  bool fatal = false;
  bool double_fault = false;
  std::uint64_t diversions = 0;
  std::uint64_t retries = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_5xx = 0;
  std::string death_reason;
  /// Flat {"recovery.*":n} object (obs::metrics_json_object) — the run's
  /// recovery-counter snapshot; "{}" when the run never started a server.
  std::string metrics_json = "{}";
};

/// Executes one run in the calling process: exports the policy's FIR_* env
/// knobs (restoring them afterwards), builds the named server under the
/// named policy preset, and runs the baseline suite or the single-fault
/// experiment. May terminate the process through the double-fault path —
/// callers that must survive that fork first (the orchestrator does).
RunRecord execute_run(const RunSpec& spec);

/// One-line JSON rendering of a record (results.jsonl / slot files).
std::string record_jsonl(const RunRecord& record);

/// Parses a record written by record_jsonl. Returns false on malformed
/// input and sets `error`.
bool record_from_json(const Json& json, RunRecord* out, std::string* error);

}  // namespace fir::campaign
