// Campaign aggregation: run records → survivability / divert /
// double-fault matrices and the regenerated Table IV.
//
// Aggregation is pure over the record list and ordered by run index, so
// the same results.jsonl renders the same matrices no matter how many
// workers produced it or in what order their slot files landed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.h"

namespace fir::campaign {

/// One (server × policy × fault) cell of the campaign matrices.
struct MatrixCell {
  std::string server;
  std::string policy;
  std::string fault;  // fault_type_name
  std::uint64_t injected = 0;   // experiment runs in the cell
  std::uint64_t triggered = 0;  // armed fault fired
  std::uint64_t crashed = 0;    // crash reached the recovery runtime
  std::uint64_t recovered = 0;  // server survived and kept serving
  std::uint64_t fatal = 0;      // FatalCrashError ended the run
  std::uint64_t double_faults = 0;
  std::uint64_t worker_deaths = 0;  // worker-died / lost-record outcomes
  std::uint64_t diversions = 0;
  std::uint64_t retries = 0;

  /// Table IV survivability: recovered / crashed (1.0 when nothing
  /// crashed — no opportunity to fail).
  double survivability() const {
    return crashed > 0 ? static_cast<double>(recovered) /
                             static_cast<double>(crashed)
                       : 1.0;
  }
};

/// Baseline accounting per (server × policy).
struct BaselineCell {
  std::string server;
  std::string policy;
  std::uint64_t runs = 0;
  std::uint64_t ok = 0;
};

struct Aggregate {
  /// Cells in first-appearance (plan) order.
  std::vector<MatrixCell> cells;
  std::vector<BaselineCell> baselines;
  std::uint64_t runs = 0;

  /// Rows collapsed over fail-stop faults only (persistent/transient/real
  /// crashes) for one (server × policy) — the Table IV pass gate input.
  std::vector<MatrixCell> fail_stop_rows() const;
};

/// Folds records (any order) into the matrices.
Aggregate aggregate_records(const std::vector<RunRecord>& records);

/// The paper-shaped Table IV: one row per (server × policy), fail-stop
/// faults collapsed, with injected/crashed/recovered/survivability
/// columns. Server names are rendered via apps::paper_server_name.
std::string render_table4(const Aggregate& agg);

/// Full per-fault matrix plus baseline table (the campaign report body).
std::string render_matrices(const Aggregate& agg);

/// Machine-readable aggregate (matrix.json): cells, baselines, totals.
std::string matrix_json(const Aggregate& agg);

/// Pass gate: every baseline ok, no worker deaths, and every fail-stop
/// (server × policy) row at or above `min_survivability` (0 disables the
/// survivability check). Appends human-readable failures to `why`.
bool campaign_passed(const Aggregate& agg, double min_survivability,
                     std::string* why);

}  // namespace fir::campaign
