// Built-in campaign specs: bench/campaigns/*.json embedded at configure
// time so the CLI and the table4 bench binary share ONE source of truth
// with the checked-in spec files (no runtime path resolution needed).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fir::campaign {

/// Returns the embedded JSON text of a named built-in spec ("table4",
/// "smoke"), or nullptr when unknown.
const char* builtin_spec(std::string_view name);

std::vector<std::string> builtin_spec_names();

}  // namespace fir::campaign
