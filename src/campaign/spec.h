// Campaign specification: the config schema of the fault-injection
// campaign engine (docs/CAMPAIGNS.md).
//
// A campaign spec is a JSON document — FIJ-shaped (SNIPPETS.md §1):
// campaign-wide settings, a `defaults` block, and a `targets` list whose
// entries override the defaults per server. The sweep axes are
//   fault type × injection site × server × policy (+knobs) × seed repeat,
// and expansion turns them into a flat, totally ordered PLAN of runs. Run
// index in the plan is the run's identity: its seed is
// split_seed(campaign_seed, index), so results are bit-reproducible for a
// fixed spec regardless of worker count or scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hsfi/hsfi.h"

namespace fir::campaign {

/// One policy column of the sweep: a named TxManagerConfig preset
/// (apps::named_policy_config) plus optional knob overrides.
struct PolicySpec {
  std::string name = "firestarter";
  /// Adaptive-policy knobs; negative / zero = keep the preset's value.
  double abort_threshold = -1.0;
  std::uint32_t sample_size = 0;
  int max_crash_retries = -1;
  /// FIR_* environment knobs exported into the run's worker process before
  /// the server is constructed (docs/KNOBS.md) — e.g. {"FIR_SIGNALS":"1"}.
  std::map<std::string, std::string> env;

  /// Display label: the preset name, plus a knob suffix when overridden
  /// (distinct sweep columns must aggregate separately).
  std::string label() const;
};

/// One server's slice of the campaign (defaults already merged in).
struct TargetSpec {
  std::string server;
  std::vector<FaultType> faults;
  std::vector<PolicySpec> policies;
  /// Workload length: suite iterations per experiment run.
  int suite_iterations = 1;
  /// Seed repeats: experiments per (site × fault × policy) cell.
  int repeats = 1;
  /// Fault-free runs per (server × policy) validating the harness: the
  /// server must survive the suite with successes and zero recovery
  /// activity, or the campaign fails regardless of the matrices.
  int baseline_runs = 1;
  /// Injection-site selection (config-driven; see hsfi::TargetSelection).
  TargetSelection sites;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  /// Worker processes the orchestrator fans runs out to.
  int workers = 1;
  /// Pass gate: minimum fail-stop survivability (recovered/crashed) per
  /// (server × policy) row. 0 disables the gate.
  double min_fail_stop_survivability = 0.0;
  std::vector<TargetSpec> targets;
};

/// Parses and validates a campaign spec. Strict: unknown keys, unknown
/// server/policy/fault names and type mismatches are errors (a typo must
/// not silently drop a sweep axis). Returns false and sets `error`.
bool parse_campaign_spec(const std::string& text, CampaignSpec* out,
                         std::string* error);

/// One run of the expanded plan.
struct RunSpec {
  std::uint64_t run = 0;  // plan position == identity
  bool baseline = false;
  std::string server;
  std::string policy_label;
  PolicySpec policy;
  FaultType fault = FaultType::kPersistentCrash;  // unused for baselines
  std::string marker_name;      // empty for baselines
  std::string marker_location;  // empty for baselines
  int suite_iterations = 1;
  std::uint64_t seed = 1;  // split_seed(campaign seed, run)
};

/// Supplies the profiled target markers for one (target, policy) pair.
/// The orchestrator profiles live servers; tests stub this.
using ProfileFn = std::function<std::vector<Marker>(const TargetSpec&,
                                                    const PolicySpec&)>;

/// Expands the sweep into the plan: for each target, for each policy —
/// baselines first, then for each fault × profiled site × repeat one
/// experiment run. Deterministic given the spec and the profiles.
std::vector<RunSpec> expand_plan(const CampaignSpec& spec,
                                 const ProfileFn& profile);

/// One plan line (JSONL) for plan.jsonl / the worker handoff.
std::string run_spec_jsonl(const RunSpec& spec);

}  // namespace fir::campaign
