#include "campaign/aggregate.h"

#include <sstream>

#include "apps/registry.h"
#include "common/table.h"
#include "obs/export.h"

namespace fir::campaign {

namespace {

MatrixCell& cell_for(std::vector<MatrixCell>& cells, const std::string& server,
                     const std::string& policy, const std::string& fault) {
  for (MatrixCell& cell : cells) {
    if (cell.server == server && cell.policy == policy &&
        cell.fault == fault) {
      return cell;
    }
  }
  MatrixCell cell;
  cell.server = server;
  cell.policy = policy;
  cell.fault = fault;
  cells.push_back(std::move(cell));
  return cells.back();
}

BaselineCell& baseline_for(std::vector<BaselineCell>& cells,
                           const std::string& server,
                           const std::string& policy) {
  for (BaselineCell& cell : cells) {
    if (cell.server == server && cell.policy == policy) return cell;
  }
  BaselineCell cell;
  cell.server = server;
  cell.policy = policy;
  cells.push_back(std::move(cell));
  return cells.back();
}

void add_cell(MatrixCell& into, const MatrixCell& cell) {
  into.injected += cell.injected;
  into.triggered += cell.triggered;
  into.crashed += cell.crashed;
  into.recovered += cell.recovered;
  into.fatal += cell.fatal;
  into.double_faults += cell.double_faults;
  into.worker_deaths += cell.worker_deaths;
  into.diversions += cell.diversions;
  into.retries += cell.retries;
}

void cell_json(const MatrixCell& cell, std::ostringstream& os) {
  os << "{\"server\":\"" << obs::json_escape(cell.server) << "\",\"policy\":\""
     << obs::json_escape(cell.policy) << "\",\"fault\":\""
     << obs::json_escape(cell.fault) << "\",\"injected\":" << cell.injected
     << ",\"triggered\":" << cell.triggered << ",\"crashed\":" << cell.crashed
     << ",\"recovered\":" << cell.recovered << ",\"fatal\":" << cell.fatal
     << ",\"double_faults\":" << cell.double_faults
     << ",\"worker_deaths\":" << cell.worker_deaths
     << ",\"diversions\":" << cell.diversions
     << ",\"retries\":" << cell.retries << ",\"survivability\":"
     << format_double(cell.survivability(), 4) << '}';
}

}  // namespace

std::vector<MatrixCell> Aggregate::fail_stop_rows() const {
  std::vector<MatrixCell> rows;
  for (const MatrixCell& cell : cells) {
    FaultType type;
    if (!fault_type_from_name(cell.fault, &type) || !is_fail_stop(type)) {
      continue;
    }
    MatrixCell& row = cell_for(rows, cell.server, cell.policy, "fail-stop");
    add_cell(row, cell);
  }
  return rows;
}

Aggregate aggregate_records(const std::vector<RunRecord>& records) {
  Aggregate agg;
  agg.runs = records.size();
  for (const RunRecord& record : records) {
    if (record.spec.baseline) {
      BaselineCell& cell = baseline_for(agg.baselines, record.spec.server,
                                        record.spec.policy_label);
      ++cell.runs;
      if (record.outcome == "baseline-ok") ++cell.ok;
      continue;
    }
    MatrixCell& cell =
        cell_for(agg.cells, record.spec.server, record.spec.policy_label,
                 std::string(fault_type_name(record.spec.fault)));
    ++cell.injected;
    if (record.triggered) ++cell.triggered;
    if (record.crashed) ++cell.crashed;
    if (record.recovered) ++cell.recovered;
    if (record.fatal) ++cell.fatal;
    if (record.double_fault) ++cell.double_faults;
    if (record.outcome == "worker-died" || record.outcome == "lost-record") {
      ++cell.worker_deaths;
    }
    cell.diversions += record.diversions;
    cell.retries += record.retries;
  }
  return agg;
}

std::string render_table4(const Aggregate& agg) {
  TextTable table;
  table.set_header({"Server", "Policy", "Injected", "Triggered", "Crashed",
                    "Recovered", "Fatal", "Survivability"});
  for (const MatrixCell& row : agg.fail_stop_rows()) {
    table.add_row({std::string(apps::paper_server_name(row.server)),
                   row.policy, std::to_string(row.injected),
                   std::to_string(row.triggered), std::to_string(row.crashed),
                   std::to_string(row.recovered), std::to_string(row.fatal),
                   format_percent(row.survivability())});
  }
  return table.render();
}

std::string render_matrices(const Aggregate& agg) {
  std::ostringstream os;
  os << "Per-fault matrix (server x policy x fault)\n";
  TextTable matrix;
  matrix.set_header({"Server", "Policy", "Fault", "Inj", "Trig", "Crash",
                     "Recov", "Fatal", "DblF", "Divert", "Retry", "Surv"});
  for (const MatrixCell& cell : agg.cells) {
    matrix.add_row(
        {cell.server, cell.policy, cell.fault, std::to_string(cell.injected),
         std::to_string(cell.triggered), std::to_string(cell.crashed),
         std::to_string(cell.recovered), std::to_string(cell.fatal),
         std::to_string(cell.double_faults), std::to_string(cell.diversions),
         std::to_string(cell.retries), format_percent(cell.survivability())});
  }
  os << matrix.render();
  if (!agg.baselines.empty()) {
    os << "\nBaselines (fault-free harness validation)\n";
    TextTable base;
    base.set_header({"Server", "Policy", "Runs", "OK"});
    for (const BaselineCell& cell : agg.baselines) {
      base.add_row({cell.server, cell.policy, std::to_string(cell.runs),
                    std::to_string(cell.ok)});
    }
    os << base.render();
  }
  return os.str();
}

std::string matrix_json(const Aggregate& agg) {
  std::ostringstream os;
  os << "{\"runs\":" << agg.runs << ",\"cells\":[";
  bool first = true;
  for (const MatrixCell& cell : agg.cells) {
    if (!first) os << ',';
    first = false;
    cell_json(cell, os);
  }
  os << "],\"fail_stop\":[";
  first = true;
  for (const MatrixCell& row : agg.fail_stop_rows()) {
    if (!first) os << ',';
    first = false;
    cell_json(row, os);
  }
  os << "],\"baselines\":[";
  first = true;
  for (const BaselineCell& cell : agg.baselines) {
    if (!first) os << ',';
    first = false;
    os << "{\"server\":\"" << obs::json_escape(cell.server)
       << "\",\"policy\":\"" << obs::json_escape(cell.policy)
       << "\",\"runs\":" << cell.runs << ",\"ok\":" << cell.ok << '}';
  }
  os << "]}";
  return os.str();
}

bool campaign_passed(const Aggregate& agg, double min_survivability,
                     std::string* why) {
  bool passed = true;
  auto fail = [&](const std::string& message) {
    passed = false;
    if (why != nullptr) {
      if (!why->empty()) *why += "; ";
      *why += message;
    }
  };
  for (const BaselineCell& cell : agg.baselines) {
    if (cell.ok != cell.runs) {
      fail(cell.server + "/" + cell.policy + ": " +
           std::to_string(cell.runs - cell.ok) + " baseline run(s) failed");
    }
  }
  for (const MatrixCell& cell : agg.cells) {
    if (cell.worker_deaths > 0) {
      fail(cell.server + "/" + cell.policy + "/" + cell.fault + ": " +
           std::to_string(cell.worker_deaths) + " worker death(s)");
    }
  }
  if (min_survivability > 0) {
    for (const MatrixCell& row : agg.fail_stop_rows()) {
      if (row.crashed == 0) {
        fail(row.server + "/" + row.policy +
             ": no fail-stop fault ever crashed (nothing measured)");
      } else if (row.survivability() < min_survivability) {
        fail(row.server + "/" + row.policy + ": survivability " +
             format_percent(row.survivability()) + " below gate " +
             format_percent(min_survivability));
      }
    }
  }
  return passed;
}

}  // namespace fir::campaign
