#include "campaign/orchestrator.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "apps/registry.h"
#include "core/crash.h"
#include "workload/campaign.h"

namespace fir::campaign {

namespace {

namespace fs = std::filesystem;

std::string slot_path(const std::string& slot_dir, std::uint64_t run) {
  return slot_dir + "/run_" + std::to_string(run) + ".json";
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

}  // namespace

RunRecord death_record(const RunSpec& spec, int wait_status) {
  RunRecord record;
  record.spec = spec;
  if (WIFEXITED(wait_status) &&
      WEXITSTATUS(wait_status) == kDoubleFaultExitCode) {
    record.outcome = "double-fault";
    record.triggered = true;
    record.crashed = true;
    record.double_fault = true;
    record.death_reason = "worker _exit(70): fault during recovery";
  } else {
    record.outcome = "worker-died";
    std::ostringstream os;
    if (WIFSIGNALED(wait_status)) {
      os << "worker killed by signal " << WTERMSIG(wait_status);
    } else if (WIFEXITED(wait_status)) {
      os << "worker exited " << WEXITSTATUS(wait_status);
    } else {
      os << "worker wait status " << wait_status;
    }
    record.death_reason = os.str();
  }
  return record;
}

namespace {

/// Reads one slot file back; falls back to lost-record on any failure.
RunRecord read_slot(const std::string& slot_dir, const RunSpec& spec) {
  std::ifstream in(slot_path(slot_dir, spec.run));
  std::string line;
  if (in && std::getline(in, line) && !line.empty()) {
    std::string parse_error;
    const Json json = Json::parse(line, &parse_error);
    RunRecord record;
    std::string record_error;
    if (parse_error.empty() &&
        record_from_json(json, &record, &record_error)) {
      // Trust the plan for identity fields; the slot file only reports.
      record.spec = spec;
      return record;
    }
  }
  RunRecord record;
  record.spec = spec;
  record.outcome = "lost-record";
  record.death_reason = "worker exited 0 but its record is missing/corrupt";
  return record;
}

void run_forked(const std::vector<RunSpec>& plan, int workers,
                const std::string& slot_dir, bool verbose,
                std::vector<RunRecord>* records) {
  std::size_t next = 0;
  std::map<pid_t, std::size_t> live;  // pid -> plan index
  const auto spawn = [&]() -> bool {
    if (next >= plan.size()) return false;
    const std::size_t index = next++;
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Fork pressure: degrade to running this one in-process.
      (*records)[index] = execute_run(plan[index]);
      return true;
    }
    if (pid == 0) {
      const RunRecord record = execute_run(plan[index]);
      write_file(slot_path(slot_dir, plan[index].run), record_jsonl(record));
      ::_exit(0);
    }
    live.emplace(pid, index);
    return true;
  };
  for (int i = 0; i < workers && spawn(); ++i) {
  }
  while (!live.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) break;
    const auto it = live.find(pid);
    if (it == live.end()) continue;
    const std::size_t index = it->second;
    live.erase(it);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      (*records)[index] = read_slot(slot_dir, plan[index]);
    } else {
      (*records)[index] = death_record(plan[index], status);
    }
    if (verbose) {
      std::fprintf(stderr, "[campaign] run %zu/%zu %s\n", index + 1,
                   plan.size(), (*records)[index].outcome.c_str());
    }
    spawn();
  }
}

}  // namespace

std::vector<Marker> profile_target(const TargetSpec& target,
                                   const PolicySpec& policy) {
  // Profiling ignores the policy's env knobs: the marker set a workload
  // executes is a property of the server + suite, not of the recovery
  // configuration, and keeping it env-free keeps the plan deterministic.
  const TxManagerConfig config = apps::named_policy_config(policy.name);
  return profile_markers(
      [&] { return apps::make_started_server(target.server, config); },
      target.suite_iterations, target.sites);
}

CampaignOutcome run_campaign_spec(const CampaignSpec& spec,
                                  const OrchestratorOptions& options,
                                  bool verbose) {
  CampaignSpec effective = spec;
  if (options.seed != 0) effective.seed = options.seed;
  if (options.workers > 0) effective.workers = options.workers;

  // Profile ONCE in the parent, before any fork: every worker count sees
  // the identical plan, which is what makes --workers 1 == --workers 8.
  const std::vector<RunSpec> plan =
      expand_plan(effective, profile_target);
  if (verbose) {
    std::fprintf(stderr, "[campaign] %s: %zu runs, %d workers\n",
                 effective.name.c_str(), plan.size(), effective.workers);
  }

  const bool persist = !options.out_dir.empty();
  std::string slot_dir;
  if (persist) {
    slot_dir = options.out_dir + "/runs";
    fs::create_directories(slot_dir);
    std::ostringstream plan_text;
    for (const RunSpec& run : plan) plan_text << run_spec_jsonl(run) << '\n';
    write_file(options.out_dir + "/plan.jsonl", plan_text.str());
  } else if (!options.in_process) {
    // Forked workers need slot files even for in-memory campaigns.
    char tmpl[] = "/tmp/fir_campaign_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    slot_dir = dir != nullptr ? dir : ".";
  }

  CampaignOutcome outcome;
  outcome.records.resize(plan.size());
  if (options.in_process || effective.workers <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (options.in_process) {
        outcome.records[i] = execute_run(plan[i]);
      } else {
        // Single worker still forks: a double fault must not kill the
        // campaign even at --workers 1.
        std::vector<RunSpec> one(plan.begin() + static_cast<long>(i),
                                 plan.begin() + static_cast<long>(i) + 1);
        std::vector<RunRecord> slot(1);
        run_forked(one, 1, slot_dir, false, &slot);
        outcome.records[i] = std::move(slot[0]);
      }
      if (verbose) {
        std::fprintf(stderr, "[campaign] run %zu/%zu %s\n", i + 1,
                     plan.size(), outcome.records[i].outcome.c_str());
      }
    }
  } else {
    run_forked(plan, effective.workers, slot_dir, verbose, &outcome.records);
  }
  if (!persist && !slot_dir.empty() && slot_dir != ".") {
    std::error_code ec;
    fs::remove_all(slot_dir, ec);
  }

  outcome.aggregate = aggregate_records(outcome.records);
  outcome.passed =
      campaign_passed(outcome.aggregate,
                      effective.min_fail_stop_survivability,
                      &outcome.failure);

  if (persist) {
    std::ostringstream results;
    for (const RunRecord& record : outcome.records) {
      results << record_jsonl(record) << '\n';
    }
    write_file(options.out_dir + "/results.jsonl", results.str());
    write_file(options.out_dir + "/matrix.json",
               matrix_json(outcome.aggregate) + "\n");
    std::ostringstream report;
    report << "# Campaign report: " << effective.name << "\n\n"
           << "- runs: " << outcome.records.size()
           << "\n- seed: " << effective.seed
           << "\n- workers: " << effective.workers
           << "\n- result: " << (outcome.passed ? "PASS" : "FAIL");
    if (!outcome.passed) report << " (" << outcome.failure << ")";
    report << "\n\n## Table IV (fail-stop survivability)\n\n```\n"
           << render_table4(outcome.aggregate) << "```\n\n## Matrices\n\n```\n"
           << render_matrices(outcome.aggregate) << "```\n";
    write_file(options.out_dir + "/report.md", report.str());
  }
  return outcome;
}

bool load_results_jsonl(const std::string& text,
                        std::vector<RunRecord>* out, std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string parse_error;
    const Json json = Json::parse(line, &parse_error);
    if (!parse_error.empty()) {
      if (error != nullptr) {
        *error = "results line " + std::to_string(line_number) + ": " +
                 parse_error;
      }
      return false;
    }
    RunRecord record;
    std::string record_error;
    if (!record_from_json(json, &record, &record_error)) {
      if (error != nullptr) {
        *error = "results line " + std::to_string(line_number) + ": " +
                 record_error;
      }
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

}  // namespace fir::campaign
