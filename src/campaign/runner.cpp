#include "campaign/runner.h"

#include <cstdlib>
#include <optional>
#include <sstream>

#include "apps/registry.h"
#include "obs/export.h"
#include "workload/campaign.h"
#include "workload/drivers.h"

namespace fir::campaign {

namespace {

/// setenv with restore: policy env knobs apply to exactly one run even in
/// in-process mode (forked workers would not need the restore, but tests
/// and --run-index share this path).
class ScopedEnv {
 public:
  explicit ScopedEnv(const std::map<std::string, std::string>& vars) {
    for (const auto& [key, value] : vars) {
      const char* old = std::getenv(key.c_str());
      saved_.emplace_back(key, old != nullptr
                                   ? std::optional<std::string>(old)
                                   : std::nullopt);
      ::setenv(key.c_str(), value.c_str(), /*overwrite=*/1);
    }
  }
  ~ScopedEnv() {
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
      if (it->second.has_value()) {
        ::setenv(it->first.c_str(), it->second->c_str(), 1);
      } else {
        ::unsetenv(it->first.c_str());
      }
    }
  }

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

TxManagerConfig run_config(const RunSpec& spec) {
  TxManagerConfig config = apps::named_policy_config(spec.policy.name);
  if (spec.policy.abort_threshold > 0) {
    config.policy.abort_threshold = spec.policy.abort_threshold;
  }
  if (spec.policy.sample_size > 0) {
    config.policy.sample_size = spec.policy.sample_size;
  }
  if (spec.policy.max_crash_retries >= 0) {
    config.max_crash_retries = spec.policy.max_crash_retries;
  }
  return config;
}

RunRecord execute_baseline(const RunSpec& spec) {
  RunRecord record;
  record.spec = spec;
  std::unique_ptr<Server> server =
      apps::make_started_server(spec.server, run_config(spec));
  if (server == nullptr) {
    record.outcome = "baseline-failed";
    record.death_reason = "server construction failed";
    record.fatal = true;
    return record;
  }
  const WorkloadResult wl = run_suite_for(*server, spec.suite_iterations);
  record.responses_2xx = wl.responses_2xx;
  record.responses_5xx = wl.responses_5xx;
  record.fatal = wl.server_died;
  record.death_reason = wl.death_reason;
  // A healthy baseline serves successes with ZERO recovery activity: any
  // crash here is harness breakage, not an experiment result.
  const std::uint64_t baseline_crashes =
      server->fx().mgr().metrics().counter("recovery.crashes").value();
  record.crashed = baseline_crashes > 0;
  record.metrics_json =
      obs::metrics_json_object(server->fx().mgr().metrics(), "recovery.");
  const bool ok =
      !wl.server_died && wl.responses_2xx > 0 && baseline_crashes == 0;
  record.outcome = ok ? "baseline-ok" : "baseline-failed";
  server->stop();
  return record;
}

}  // namespace

RunRecord execute_run(const RunSpec& spec) {
  ScopedEnv env(spec.policy.env);
  if (spec.baseline) return execute_baseline(spec);

  Marker target;
  target.name = spec.marker_name;
  target.location = spec.marker_location;
  const TxManagerConfig config = run_config(spec);
  const ExperimentRecord experiment = run_experiment(
      [&] { return apps::make_started_server(spec.server, config); }, target,
      spec.fault, spec.suite_iterations, spec.seed);

  RunRecord record;
  record.spec = spec;
  record.triggered = experiment.triggered;
  record.crashed = experiment.crashed;
  record.recovered = experiment.recovered;
  record.fatal = experiment.fatal;
  record.diversions = experiment.diversions;
  record.retries = experiment.retries;
  record.responses_2xx = experiment.responses_2xx;
  record.responses_5xx = experiment.responses_5xx;
  record.death_reason = experiment.death_reason;
  if (!experiment.recovery_metrics_json.empty()) {
    record.metrics_json = experiment.recovery_metrics_json;
  }
  if (experiment.fatal) {
    record.outcome = "fatal";
  } else if (experiment.recovered) {
    record.outcome = "recovered";
  } else if (experiment.crashed) {
    record.outcome = "not-recovered";
  } else if (experiment.triggered) {
    record.outcome = "no-crash";
  } else {
    record.outcome = "not-triggered";
  }
  return record;
}

std::string record_jsonl(const RunRecord& record) {
  std::ostringstream os;
  // Prefix: the run's plan line minus its closing brace, so plan.jsonl and
  // results.jsonl agree field-for-field on what was injected where.
  const std::string spec_json = run_spec_jsonl(record.spec);
  os << spec_json.substr(0, spec_json.size() - 1);
  os << ",\"outcome\":\"" << obs::json_escape(record.outcome) << '"'
     << ",\"triggered\":" << (record.triggered ? "true" : "false")
     << ",\"crashed\":" << (record.crashed ? "true" : "false")
     << ",\"recovered\":" << (record.recovered ? "true" : "false")
     << ",\"fatal\":" << (record.fatal ? "true" : "false")
     << ",\"double_fault\":" << (record.double_fault ? "true" : "false")
     << ",\"diversions\":" << record.diversions
     << ",\"retries\":" << record.retries
     << ",\"responses_2xx\":" << record.responses_2xx
     << ",\"responses_5xx\":" << record.responses_5xx;
  if (!record.death_reason.empty()) {
    os << ",\"death_reason\":\"" << obs::json_escape(record.death_reason)
       << '"';
  }
  os << ",\"metrics\":" << record.metrics_json << '}';
  return os.str();
}

bool record_from_json(const Json& json, RunRecord* out, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!json.is_object()) return fail("record must be an object");
  const Json* run = json.find("run");
  const Json* kind = json.find("kind");
  const Json* server = json.find("server");
  const Json* outcome = json.find("outcome");
  if (run == nullptr || !run->is_number()) return fail("missing run index");
  if (kind == nullptr || !kind->is_string()) return fail("missing kind");
  if (server == nullptr || !server->is_string()) {
    return fail("missing server");
  }
  if (outcome == nullptr || !outcome->is_string()) {
    return fail("missing outcome");
  }
  RunRecord record;
  record.spec.run = run->uint_value();
  record.spec.baseline = kind->string_value() == "baseline";
  record.spec.server = server->string_value();
  if (const Json* v = json.find("policy")) {
    record.spec.policy_label = v->string_value();
  }
  if (const Json* v = json.find("fault")) {
    if (!fault_type_from_name(v->string_value(), &record.spec.fault)) {
      return fail("unknown fault \"" + v->string_value() + "\"");
    }
  }
  if (const Json* v = json.find("marker")) {
    record.spec.marker_name = v->string_value();
  }
  if (const Json* v = json.find("location")) {
    record.spec.marker_location = v->string_value();
  }
  if (const Json* v = json.find("suite_iterations")) {
    record.spec.suite_iterations = static_cast<int>(v->number_value());
  }
  if (const Json* v = json.find("seed")) record.spec.seed = v->uint_value();
  record.outcome = outcome->string_value();
  auto read_flag = [&](const char* key, bool* flag) {
    if (const Json* v = json.find(key); v != nullptr && v->is_bool()) {
      *flag = v->bool_value();
    }
  };
  read_flag("triggered", &record.triggered);
  read_flag("crashed", &record.crashed);
  read_flag("recovered", &record.recovered);
  read_flag("fatal", &record.fatal);
  read_flag("double_fault", &record.double_fault);
  auto read_count = [&](const char* key, std::uint64_t* count) {
    if (const Json* v = json.find(key); v != nullptr && v->is_number()) {
      *count = v->uint_value();
    }
  };
  read_count("diversions", &record.diversions);
  read_count("retries", &record.retries);
  read_count("responses_2xx", &record.responses_2xx);
  read_count("responses_5xx", &record.responses_5xx);
  if (const Json* v = json.find("death_reason")) {
    record.death_reason = v->string_value();
  }
  if (const Json* v = json.find("metrics"); v != nullptr && v->is_object()) {
    record.metrics_json = v->dump();
  }
  *out = std::move(record);
  return true;
}

}  // namespace fir::campaign
