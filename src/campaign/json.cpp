#include "campaign/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/export.h"

namespace fir::campaign {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  Json run() {
    Json value = parse_value();
    if (failed_) return Json();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
      return Json();
    }
    return value;
  }

 private:
  Json parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return Json();
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
      case 'f': return parse_literal();
      case 'n': expect_word("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (!failed_) {
      skip_ws();
      if (peek() != '"') {
        fail("expected object key string");
        break;
      }
      std::string key = parse_string();
      if (failed_) break;
      if (out.find(key) != nullptr) {
        fail("duplicate key \"" + key + "\"");
        break;
      }
      skip_ws();
      if (!consume(':')) break;
      Json value = parse_value();
      if (failed_) break;
      out.object_items().emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume('}');
      break;
    }
    return out;
  }

  Json parse_array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (!failed_) {
      Json value = parse_value();
      if (failed_) break;
      out.array_items().push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume(']');
      break;
    }
    return out;
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') break;  // unterminated on this line
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape digit");
              return out;
            }
          }
          // UTF-8 encode the BMP code point (configs are ASCII in
          // practice; surrogate pairs are out of scope and kept verbatim).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape"); return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
      fail("malformed number '" + token + "'");
      return Json();
    }
    return Json::number(value);
  }

  Json parse_literal() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json::boolean(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json::boolean(false);
    }
    fail("unknown literal");
    return Json();
  }

  void expect_word(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return;
    }
    fail("unknown literal");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
        continue;
      }
      // // and /* */ comments: campaign configs are hand-edited; the FIJ
      // exemplar's config.json uses comments too.
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = pos_ + 2 <= text_.size() ? pos_ + 2 : text_.size();
        continue;
      }
      break;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char expected) {
    if (peek() == expected) {
      ++pos_;
      return true;
    }
    fail(std::string("expected '") + expected + "'");
    return false;
  }

  void fail(const std::string& message) {
    if (failed_) return;
    failed_ = true;
    if (error_ != nullptr) {
      *error_ = "line " + std::to_string(line_) + ": " + message;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool failed_ = false;
};

void dump_to(const Json& v, std::ostringstream& os) {
  switch (v.type()) {
    case Json::Type::kNull: os << "null"; break;
    case Json::Type::kBool: os << (v.bool_value() ? "true" : "false"); break;
    case Json::Type::kNumber: {
      const double d = v.number_value();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        os << static_cast<std::int64_t>(d);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        os << buf;
      }
      break;
    }
    case Json::Type::kString:
      os << '"' << obs::json_escape(v.string_value()) << '"';
      break;
    case Json::Type::kArray: {
      os << '[';
      bool first = true;
      for (const Json& item : v.array_items()) {
        if (!first) os << ',';
        first = false;
        dump_to(item, os);
      }
      os << ']';
      break;
    }
    case Json::Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : v.object_items()) {
        if (!first) os << ',';
        first = false;
        os << '"' << obs::json_escape(key) << "\":";
        dump_to(value, os);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::dump() const {
  std::ostringstream os;
  dump_to(*this, os);
  return os.str();
}

}  // namespace fir::campaign
