#include "campaign/spec.h"

#include <sstream>

#include "apps/registry.h"
#include "campaign/json.h"
#include "common/rng.h"
#include "obs/export.h"

namespace fir::campaign {

namespace {

/// Collects the first schema error; later checks are skipped.
struct Errors {
  std::string* out;
  bool failed = false;

  void fail(const std::string& where, const std::string& message) {
    if (failed) return;
    failed = true;
    if (out != nullptr) *out = where + ": " + message;
  }
};

bool known_keys(const Json& object, std::initializer_list<const char*> keys,
                const std::string& where, Errors& err) {
  for (const auto& [key, value] : object.object_items()) {
    (void)value;
    bool known = false;
    for (const char* k : keys) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      err.fail(where, "unknown key \"" + key + "\"");
      return false;
    }
  }
  return true;
}

bool read_string(const Json& parent, const char* key, std::string* out,
                 const std::string& where, Errors& err) {
  const Json* v = parent.find(key);
  if (v == nullptr) return false;
  if (!v->is_string()) {
    err.fail(where, std::string(key) + " must be a string");
    return false;
  }
  *out = v->string_value();
  return true;
}

bool read_int(const Json& parent, const char* key, int min_value, int* out,
              const std::string& where, Errors& err) {
  const Json* v = parent.find(key);
  if (v == nullptr) return false;
  if (!v->is_number() || v->number_value() < min_value) {
    err.fail(where, std::string(key) + " must be a number >= " +
                        std::to_string(min_value));
    return false;
  }
  *out = static_cast<int>(v->number_value());
  return true;
}

bool read_u64(const Json& parent, const char* key, std::uint64_t* out,
              const std::string& where, Errors& err) {
  const Json* v = parent.find(key);
  if (v == nullptr) return false;
  if (!v->is_number() || v->number_value() < 0) {
    err.fail(where, std::string(key) + " must be a non-negative number");
    return false;
  }
  *out = v->uint_value();
  return true;
}

bool read_bool(const Json& parent, const char* key, bool* out,
               const std::string& where, Errors& err) {
  const Json* v = parent.find(key);
  if (v == nullptr) return false;
  if (!v->is_bool()) {
    err.fail(where, std::string(key) + " must be true or false");
    return false;
  }
  *out = v->bool_value();
  return true;
}

bool read_string_list(const Json& parent, const char* key,
                      std::vector<std::string>* out, const std::string& where,
                      Errors& err) {
  const Json* v = parent.find(key);
  if (v == nullptr) return false;
  if (!v->is_array()) {
    err.fail(where, std::string(key) + " must be an array of strings");
    return false;
  }
  out->clear();
  for (const Json& item : v->array_items()) {
    if (!item.is_string()) {
      err.fail(where, std::string(key) + " must be an array of strings");
      return false;
    }
    out->push_back(item.string_value());
  }
  return true;
}

void parse_faults(const Json& parent, std::vector<FaultType>* out,
                  const std::string& where, Errors& err) {
  std::vector<std::string> names;
  if (!read_string_list(parent, "faults", &names, where, err)) return;
  out->clear();
  for (const std::string& name : names) {
    FaultType type;
    if (!fault_type_from_name(name, &type)) {
      err.fail(where, "unknown fault type \"" + name + "\" (expected one of "
                      "persistent-crash, transient-crash, latent-corruption, "
                      "real-crash)");
      return;
    }
    out->push_back(type);
  }
  if (out->empty()) err.fail(where, "faults must not be empty");
}

void parse_sites(const Json& parent, TargetSelection* out,
                 const std::string& where, Errors& err) {
  const Json* v = parent.find("sites");
  if (v == nullptr) return;
  if (!v->is_object()) {
    err.fail(where, "sites must be an object");
    return;
  }
  const std::string w = where + ".sites";
  if (!known_keys(*v,
                  {"non_critical_only", "exclude_error_handlers", "include",
                   "exclude", "max_sites", "sample_seed"},
                  w, err)) {
    return;
  }
  read_bool(*v, "non_critical_only", &out->non_critical_only, w, err);
  read_bool(*v, "exclude_error_handlers", &out->exclude_error_handlers, w,
            err);
  read_string_list(*v, "include", &out->include, w, err);
  read_string_list(*v, "exclude", &out->exclude, w, err);
  std::uint64_t max_sites = 0;
  if (read_u64(*v, "max_sites", &max_sites, w, err)) {
    out->max_sites = static_cast<std::size_t>(max_sites);
  }
  read_u64(*v, "sample_seed", &out->sample_seed, w, err);
}

void parse_policy(const Json& v, PolicySpec* out, const std::string& where,
                  Errors& err) {
  if (v.is_string()) {
    out->name = v.string_value();
  } else if (v.is_object()) {
    if (!known_keys(v,
                    {"name", "abort_threshold", "sample_size",
                     "max_crash_retries", "env"},
                    where, err)) {
      return;
    }
    read_string(v, "name", &out->name, where, err);
    if (const Json* t = v.find("abort_threshold")) {
      if (!t->is_number() || t->number_value() <= 0) {
        err.fail(where, "abort_threshold must be a positive number");
        return;
      }
      out->abort_threshold = t->number_value();
    }
    int sample = 0;
    if (read_int(v, "sample_size", 1, &sample, where, err)) {
      out->sample_size = static_cast<std::uint32_t>(sample);
    }
    read_int(v, "max_crash_retries", 0, &out->max_crash_retries, where, err);
    if (const Json* env = v.find("env")) {
      if (!env->is_object()) {
        err.fail(where, "env must be an object of string values");
        return;
      }
      for (const auto& [key, value] : env->object_items()) {
        if (!value.is_string()) {
          err.fail(where, "env." + key + " must be a string");
          return;
        }
        out->env[key] = value.string_value();
      }
    }
  } else {
    err.fail(where, "policy entries must be names or objects");
    return;
  }
  bool known = false;
  apps::named_policy_config(out->name, &known);
  if (!known) {
    err.fail(where, "unknown policy \"" + out->name + "\"");
  }
}

void parse_policies(const Json& parent, std::vector<PolicySpec>* out,
                    const std::string& where, Errors& err) {
  const Json* v = parent.find("policies");
  if (v == nullptr) return;
  if (!v->is_array() || v->array_items().empty()) {
    err.fail(where, "policies must be a non-empty array");
    return;
  }
  out->clear();
  for (std::size_t i = 0; i < v->array_items().size(); ++i) {
    PolicySpec policy;
    parse_policy(v->array_items()[i],  &policy,
                 where + ".policies[" + std::to_string(i) + "]", err);
    if (err.failed) return;
    out->push_back(std::move(policy));
  }
}

/// Reads the per-target axes shared between `defaults` and target entries
/// into `out` (which already carries the values being overridden).
void parse_target_axes(const Json& object, TargetSpec* out,
                       const std::string& where, Errors& err) {
  parse_faults(object, &out->faults, where, err);
  parse_policies(object, &out->policies, where, err);
  read_int(object, "suite_iterations", 1, &out->suite_iterations, where, err);
  read_int(object, "repeats", 1, &out->repeats, where, err);
  read_int(object, "baseline_runs", 0, &out->baseline_runs, where, err);
  parse_sites(object, &out->sites, where, err);
}

constexpr std::initializer_list<const char*> kTargetKeys = {
    "server",  "faults",        "policies", "suite_iterations",
    "repeats", "baseline_runs", "sites"};

}  // namespace

std::string PolicySpec::label() const {
  std::ostringstream os;
  os << name;
  if (abort_threshold > 0) os << "@t=" << abort_threshold;
  if (sample_size > 0) os << "@s=" << sample_size;
  if (max_crash_retries >= 0) os << "@r=" << max_crash_retries;
  for (const auto& [key, value] : env) os << '@' << key << '=' << value;
  return os.str();
}

bool parse_campaign_spec(const std::string& text, CampaignSpec* out,
                         std::string* error) {
  Errors err{error};
  std::string parse_error;
  const Json doc = Json::parse(text, &parse_error);
  if (!parse_error.empty()) {
    err.fail("spec", parse_error);
    return false;
  }
  if (!doc.is_object()) {
    err.fail("spec", "top level must be an object");
    return false;
  }
  if (!known_keys(doc,
                  {"name", "seed", "workers", "min_fail_stop_survivability",
                   "defaults", "targets"},
                  "spec", err)) {
    return false;
  }

  CampaignSpec spec;
  read_string(doc, "name", &spec.name, "spec", err);
  read_u64(doc, "seed", &spec.seed, "spec", err);
  read_int(doc, "workers", 1, &spec.workers, "spec", err);
  if (const Json* v = doc.find("min_fail_stop_survivability")) {
    if (!v->is_number() || v->number_value() < 0 || v->number_value() > 1) {
      err.fail("spec", "min_fail_stop_survivability must be in [0, 1]");
      return false;
    }
    spec.min_fail_stop_survivability = v->number_value();
  }

  // The schema defaults, overridden by the spec's `defaults` block,
  // overridden per target.
  TargetSpec defaults;
  defaults.faults = {FaultType::kPersistentCrash};
  defaults.policies = {PolicySpec{}};
  if (const Json* d = doc.find("defaults")) {
    if (!d->is_object()) {
      err.fail("spec", "defaults must be an object");
      return false;
    }
    if (!known_keys(*d, kTargetKeys, "defaults", err)) return false;
    if (d->find("server") != nullptr) {
      err.fail("defaults", "server belongs in targets, not defaults");
      return false;
    }
    parse_target_axes(*d, &defaults, "defaults", err);
  }

  const Json* targets = doc.find("targets");
  if (targets == nullptr || !targets->is_array() ||
      targets->array_items().empty()) {
    err.fail("spec", "targets must be a non-empty array");
    return false;
  }
  for (std::size_t i = 0; i < targets->array_items().size(); ++i) {
    const Json& t = targets->array_items()[i];
    const std::string where = "targets[" + std::to_string(i) + "]";
    TargetSpec target = defaults;  // merge: defaults first, overrides after
    if (t.is_string()) {
      target.server = t.string_value();
    } else if (t.is_object()) {
      if (!known_keys(t, kTargetKeys, where, err)) return false;
      if (!read_string(t, "server", &target.server, where, err)) {
        err.fail(where, "server is required");
        return false;
      }
      parse_target_axes(t, &target, where, err);
    } else {
      err.fail(where, "targets entries must be names or objects");
      return false;
    }
    if (!apps::is_server_name(target.server)) {
      err.fail(where, "unknown server \"" + target.server + "\"");
      return false;
    }
    if (err.failed) return false;
    spec.targets.push_back(std::move(target));
  }
  if (err.failed) return false;
  *out = std::move(spec);
  return true;
}

std::vector<RunSpec> expand_plan(const CampaignSpec& spec,
                                 const ProfileFn& profile) {
  std::vector<RunSpec> plan;
  auto next_run = [&](const TargetSpec& target, const PolicySpec& policy) {
    RunSpec run;
    run.run = plan.size();
    run.server = target.server;
    run.policy_label = policy.label();
    run.policy = policy;
    run.suite_iterations = target.suite_iterations;
    run.seed = split_seed(spec.seed, run.run);
    return run;
  };
  for (const TargetSpec& target : spec.targets) {
    for (const PolicySpec& policy : target.policies) {
      for (int b = 0; b < target.baseline_runs; ++b) {
        RunSpec run = next_run(target, policy);
        run.baseline = true;
        plan.push_back(std::move(run));
      }
      const std::vector<Marker> markers = profile(target, policy);
      for (const FaultType fault : target.faults) {
        for (const Marker& marker : markers) {
          for (int r = 0; r < target.repeats; ++r) {
            RunSpec run = next_run(target, policy);
            run.fault = fault;
            run.marker_name = marker.name;
            run.marker_location = marker.location;
            plan.push_back(std::move(run));
          }
        }
      }
    }
  }
  return plan;
}

std::string run_spec_jsonl(const RunSpec& spec) {
  std::ostringstream os;
  os << "{\"run\":" << spec.run << ",\"kind\":\""
     << (spec.baseline ? "baseline" : "experiment") << "\",\"server\":\""
     << obs::json_escape(spec.server) << "\",\"policy\":\""
     << obs::json_escape(spec.policy_label) << '"';
  if (!spec.baseline) {
    os << ",\"fault\":\"" << fault_type_name(spec.fault) << "\",\"marker\":\""
       << obs::json_escape(spec.marker_name) << "\",\"location\":\""
       << obs::json_escape(spec.marker_location) << '"';
  }
  os << ",\"suite_iterations\":" << spec.suite_iterations
     << ",\"seed\":" << spec.seed << '}';
  return os.str();
}

}  // namespace fir::campaign
