// Minimal JSON document model for the campaign engine.
//
// The repo's obs layer WRITES JSON (exporters); campaign configs and the
// aggregation of per-run JSONL records additionally need to READ it. This
// is a small recursive-descent parser over an ordered value tree — no
// external dependency, keys keep file order (campaign plans are rendered
// back deterministically), duplicate keys are a parse error (config typos
// must not silently lose a knob).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fir::campaign {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Array = std::vector<Json>;
  /// Insertion-ordered; lookup is linear (configs are tens of keys).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Parses one JSON document (trailing garbage is an error). On failure
  /// returns a kNull value and sets `error` to "line L: message".
  static Json parse(std::string_view text, std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  std::int64_t int_value() const { return static_cast<std::int64_t>(number_); }
  std::uint64_t uint_value() const {
    return static_cast<std::uint64_t>(number_);
  }
  const std::string& string_value() const { return string_; }
  const Array& array_items() const { return array_; }
  Array& array_items() { return array_; }
  const Object& object_items() const { return object_; }
  Object& object_items() { return object_; }

  /// Object member lookup; null when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Compact single-line rendering (stable: preserves object key order,
  /// integral numbers print without a decimal point).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace fir::campaign
