// Compensation-action library (§V-A): the one-time wrappers that revert the
// effects of standard library calls so a fault can be injected afterwards.
//
// Each builder returns a Compensation whose fn reverts one call class. The
// `rv` parameter every fn receives is the call's original return value at
// the time the transaction began (e.g. the fd that socket() produced).
#pragma once

#include "core/tx_manager.h"

namespace fir::comp {

/// No compensation required (idempotent class, or irrecoverable where no
/// compensation is possible).
inline Compensation none() { return Compensation{}; }

/// Reverts fd-producing calls (socket, open, accept, epoll_create1, dup):
/// closes the descriptor the call returned.
Compensation close_returned_fd();

/// Reverts bind(): clears the port binding on the socket. `fd` is the bound
/// socket.
Compensation unbind(int fd);

/// Reverts listen(): tears the listener down (closing pending connections),
/// returning the descriptor to an unbound socket. `fd` is the listener.
Compensation unlisten(int fd);

/// Reverts malloc/calloc: frees the block the call returned.
Compensation free_returned_block();

/// Reverts read/recv-style calls: pushes the consumed bytes back onto the
/// stream (socket unread) and restores the destination buffer's previous
/// contents, stashed before the call. `data_off/len` locate the stash.
/// (`buf` is a raw pointer, deliberately: it addresses the caller's
/// destination buffer inside the snapshot-restored stack region — the
/// rollback restores those frames before any compensation runs — or heap
/// memory the undo log restored. Raw captures of caller *storage* are safe;
/// raw captures of caller-owned *strings* are not, which is why rename/
/// unlink stash copies instead.)
Compensation restore_recv(int fd, void* buf, std::uint32_t data_off,
                          std::uint32_t data_len);

/// Reverts pread: restores the destination buffer only (offset-based reads
/// consume no stream state).
Compensation restore_buffer(void* buf, std::uint32_t data_off,
                            std::uint32_t data_len);

/// Reverts lseek: seeks back to the previous offset.
Compensation restore_offset(int fd, std::int64_t old_offset);

/// Reverts rename(from, to): renames back. Reads both names from the
/// transaction's comp-data stash laid out as "from\0to\0" at `data_off`
/// (`to_off` = offset of "to" within the stash); the wrapper copies the
/// caller's strings there before the call so the compensation never touches
/// caller-owned pointers.
Compensation rename_back(std::uint32_t data_off, std::uint32_t data_len,
                         std::uint32_t to_off);

/// Reverts ftruncate: restores the previous length and the truncated-away
/// tail bytes (stashed before the call when shrinking).
Compensation restore_truncate(int fd, std::int64_t old_size,
                              std::uint32_t data_off,
                              std::uint32_t data_len);

/// Reverts a write/pwrite whose byte range lay entirely in unsynced
/// (page-cache-only) territory: truncates the file back to its pre-call
/// length, rewrites any unsynced-but-existing bytes the call overwrote
/// (stashed before the call as [i64 start][i64 old_offset][overlap bytes]),
/// and — when old_offset >= 0 (the write() form) — restores the file
/// offset. Writes that touched durable media get comp::none() instead and
/// stay irrecoverable (docs/DURABILITY.md).
Compensation restore_file_write(int fd, std::int64_t old_size,
                                std::uint32_t data_off,
                                std::uint32_t data_len);

/// Reverts posix_memalign(): frees the block stored through the caller's
/// out-pointer and nulls it (the call wrote it before the transaction
/// began, so the rollback's stack/heap restore re-exposes the same slot —
/// the raw pointer is safe for the same reason as restore_recv's).
Compensation free_memalign(void** out_slot);

/// Reverts pipe()/socketpair(): closes both descriptors the call stored in
/// the caller's two-element array (which the call wrote before the
/// transaction began, so rollback leaves it intact — safe raw capture, see
/// restore_recv).
Compensation close_fd_pair(const int* pair);

// --- deferred effects ("operation deferrable" class) -----------------------

/// close(fd), performed at commit.
DeferredOp deferred_close(int fd);
/// mem_free(ptr), performed at commit.
DeferredOp deferred_free(void* ptr);
/// unlink(path), performed at commit. The op owns a copy of the name: the
/// caller's buffer may be reused or freed long before the transaction
/// commits.
DeferredOp deferred_unlink(const char* path);
/// shutdown_wr(fd), performed at commit.
DeferredOp deferred_shutdown(int fd);

}  // namespace fir::comp
