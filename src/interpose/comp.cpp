#include "interpose/comp.h"

#include <cstring>

namespace fir::comp {
namespace {

void fn_close_rv(Env& env, std::intptr_t, std::intptr_t, std::intptr_t rv,
                 const std::uint8_t*, std::size_t) {
  if (rv >= 0) env.close(static_cast<int>(rv));
}

void fn_unbind(Env& env, std::intptr_t fd, std::intptr_t, std::intptr_t rv,
               const std::uint8_t*, std::size_t) {
  if (rv == 0) env.unbind(static_cast<int>(fd));
}

void fn_unlisten(Env& env, std::intptr_t fd, std::intptr_t, std::intptr_t rv,
                 const std::uint8_t*, std::size_t) {
  if (rv == 0) env.unlisten(static_cast<int>(fd));
}

void fn_free_rv(Env& env, std::intptr_t, std::intptr_t, std::intptr_t rv,
                const std::uint8_t*, std::size_t) {
  if (rv != 0) env.mem_free(reinterpret_cast<void*>(rv));
}

void fn_restore_recv(Env& env, std::intptr_t fd, std::intptr_t buf,
                     std::intptr_t rv, const std::uint8_t* data,
                     std::size_t len) {
  if (rv > 0) {
    // Un-consume the received bytes (still sitting in the destination
    // buffer) ...
    env.sock_unread(static_cast<int>(fd), reinterpret_cast<void*>(buf),
                    static_cast<std::size_t>(rv));
  }
  // ... then restore the buffer's pre-call contents.
  if (len > 0) std::memcpy(reinterpret_cast<void*>(buf), data, len);
}

void fn_restore_buffer(Env&, std::intptr_t buf, std::intptr_t,
                       std::intptr_t, const std::uint8_t* data,
                       std::size_t len) {
  if (len > 0) std::memcpy(reinterpret_cast<void*>(buf), data, len);
}

void fn_restore_offset(Env& env, std::intptr_t fd, std::intptr_t old_offset,
                       std::intptr_t, const std::uint8_t*, std::size_t) {
  env.lseek(static_cast<int>(fd), old_offset, kSeekSet);
}

void fn_rename_back(Env& env, std::intptr_t to_off, std::intptr_t,
                    std::intptr_t rv, const std::uint8_t* data,
                    std::size_t) {
  if (rv == 0) {
    // The stash holds "from\0to\0": both names were copied into the
    // transaction arena before the call, so the compensation never
    // dereferences caller storage (which may have been freed, or be
    // mid-restoration stack bytes).
    const char* from = reinterpret_cast<const char*>(data);
    const char* to = from + to_off;
    env.rename(to, from);
  }
}

void fn_restore_truncate(Env& env, std::intptr_t fd, std::intptr_t old_size,
                         std::intptr_t rv, const std::uint8_t* data,
                         std::size_t len) {
  if (rv != 0) return;
  env.ftruncate(static_cast<int>(fd), static_cast<std::size_t>(old_size));
  if (len > 0) {
    // Rewrite the tail bytes the shrink destroyed.
    env.pwrite(static_cast<int>(fd), data, len,
               old_size - static_cast<std::int64_t>(len));
  }
}

void fn_restore_file_write(Env& env, std::intptr_t fd, std::intptr_t old_size,
                           std::intptr_t rv, const std::uint8_t* data,
                           std::size_t len) {
  if (rv < 0) return;  // the call itself failed: nothing to revert
  std::int64_t start = 0;
  std::int64_t old_offset = -1;
  std::memcpy(&start, data, sizeof start);
  std::memcpy(&old_offset, data + sizeof start, sizeof old_offset);
  // Shrink away anything the call appended past the old length, then
  // rewrite the unsynced bytes it overwrote in place.
  env.ftruncate(static_cast<int>(fd), static_cast<std::size_t>(old_size));
  const std::size_t overlap = len - 2 * sizeof(std::int64_t);
  if (overlap > 0)
    env.pwrite(static_cast<int>(fd), data + 2 * sizeof(std::int64_t), overlap,
               start);
  if (old_offset >= 0)
    env.set_file_offset(static_cast<int>(fd), old_offset);
}

void fn_free_memalign(Env& env, std::intptr_t slot_ptr, std::intptr_t,
                      std::intptr_t rv, const std::uint8_t*, std::size_t) {
  if (rv != 0) return;  // the call itself failed: nothing was allocated
  void** slot = reinterpret_cast<void**>(slot_ptr);
  env.mem_free(*slot);
  *slot = nullptr;
}

void fn_close_pair(Env& env, std::intptr_t pair_ptr, std::intptr_t,
                   std::intptr_t rv, const std::uint8_t*, std::size_t) {
  if (rv != 0) return;
  const int* pair = reinterpret_cast<const int*>(pair_ptr);
  env.close(pair[0]);
  env.close(pair[1]);
}

void fn_deferred_close(Env& env, const DeferredOp& op) {
  env.close(static_cast<int>(op.a));
}

void fn_deferred_free(Env& env, const DeferredOp& op) {
  env.mem_free(reinterpret_cast<void*>(op.a));
}

void fn_deferred_unlink(Env& env, const DeferredOp& op) {
  env.unlink(op.path.c_str());
}

void fn_deferred_shutdown(Env& env, const DeferredOp& op) {
  env.shutdown_wr(static_cast<int>(op.a));
}

}  // namespace

Compensation close_returned_fd() {
  Compensation c;
  c.fn = &fn_close_rv;
  return c;
}

Compensation unbind(int fd) {
  Compensation c;
  c.fn = &fn_unbind;
  c.a = fd;
  return c;
}

Compensation unlisten(int fd) {
  Compensation c;
  c.fn = &fn_unlisten;
  c.a = fd;
  return c;
}

Compensation free_returned_block() {
  Compensation c;
  c.fn = &fn_free_rv;
  return c;
}

Compensation restore_recv(int fd, void* buf, std::uint32_t data_off,
                          std::uint32_t data_len) {
  Compensation c;
  c.fn = &fn_restore_recv;
  c.a = fd;
  c.b = reinterpret_cast<std::intptr_t>(buf);
  c.data_off = data_off;
  c.data_len = data_len;
  return c;
}

Compensation restore_buffer(void* buf, std::uint32_t data_off,
                            std::uint32_t data_len) {
  Compensation c;
  c.fn = &fn_restore_buffer;
  c.a = reinterpret_cast<std::intptr_t>(buf);
  c.data_off = data_off;
  c.data_len = data_len;
  return c;
}

Compensation restore_offset(int fd, std::int64_t old_offset) {
  Compensation c;
  c.fn = &fn_restore_offset;
  c.a = fd;
  c.b = static_cast<std::intptr_t>(old_offset);
  return c;
}

Compensation rename_back(std::uint32_t data_off, std::uint32_t data_len,
                         std::uint32_t to_off) {
  Compensation c;
  c.fn = &fn_rename_back;
  c.a = static_cast<std::intptr_t>(to_off);
  c.data_off = data_off;
  c.data_len = data_len;
  return c;
}

Compensation restore_truncate(int fd, std::int64_t old_size,
                              std::uint32_t data_off,
                              std::uint32_t data_len) {
  Compensation c;
  c.fn = &fn_restore_truncate;
  c.a = fd;
  c.b = static_cast<std::intptr_t>(old_size);
  c.data_off = data_off;
  c.data_len = data_len;
  return c;
}

Compensation restore_file_write(int fd, std::int64_t old_size,
                                std::uint32_t data_off,
                                std::uint32_t data_len) {
  Compensation c;
  c.fn = &fn_restore_file_write;
  c.a = fd;
  c.b = static_cast<std::intptr_t>(old_size);
  c.data_off = data_off;
  c.data_len = data_len;
  return c;
}

Compensation free_memalign(void** out_slot) {
  Compensation c;
  c.fn = &fn_free_memalign;
  c.a = reinterpret_cast<std::intptr_t>(out_slot);
  return c;
}

Compensation close_fd_pair(const int* pair) {
  Compensation c;
  c.fn = &fn_close_pair;
  c.a = reinterpret_cast<std::intptr_t>(pair);
  return c;
}

DeferredOp deferred_close(int fd) {
  DeferredOp op;
  op.fn = &fn_deferred_close;
  op.a = fd;
  return op;
}

DeferredOp deferred_free(void* ptr) {
  DeferredOp op;
  op.fn = &fn_deferred_free;
  op.a = reinterpret_cast<std::intptr_t>(ptr);
  return op;
}

DeferredOp deferred_unlink(const char* path) {
  DeferredOp op;
  op.fn = &fn_deferred_unlink;
  // Own the name: commit can run long after the caller's buffer was reused,
  // freed, or clobbered by a rollback's stack restore.
  op.path.assign(path);
  return op;
}

DeferredOp deferred_shutdown(int fd) {
  DeferredOp op;
  op.fn = &fn_deferred_shutdown;
  op.a = fd;
  return op;
}

}  // namespace fir::comp
