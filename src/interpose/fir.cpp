#include "interpose/fir.h"

#include <vector>

namespace fir::detail {

Compensation prepare_truncate(Fx& fx, int fd, std::size_t new_len) {
  std::size_t old_size = 0;
  if (fx.env().fstat_size(fd, &old_size) != 0) {
    return comp::none();  // the call itself will fail with EBADF
  }
  const auto old_signed = static_cast<std::int64_t>(old_size);
  if (new_len >= old_size) {
    // Growing: compensation only needs to shrink back.
    return comp::restore_truncate(fd, old_signed, 0, 0);
  }
  // Shrinking: stash the tail the truncate will destroy.
  const std::size_t tail = old_size - new_len;
  std::vector<std::uint8_t> bytes(tail);
  fx.env().pread(fd, bytes.data(), tail, static_cast<std::int64_t>(new_len));
  const std::uint32_t off = fx.mgr().stash_comp_data(bytes.data(), tail);
  return comp::restore_truncate(fd, old_signed, off,
                                static_cast<std::uint32_t>(tail));
}

}  // namespace fir::detail
