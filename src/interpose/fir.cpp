#include "interpose/fir.h"

#include <algorithm>
#include <vector>

namespace fir::detail {

Compensation prepare_truncate(Fx& fx, int fd, std::size_t new_len) {
  std::size_t old_size = 0;
  if (fx.env().fstat_size(fd, &old_size) != 0) {
    return comp::none();  // the call itself will fail with EBADF
  }
  const auto old_signed = static_cast<std::int64_t>(old_size);
  if (new_len >= old_size) {
    // Growing: compensation only needs to shrink back.
    return comp::restore_truncate(fd, old_signed, 0, 0);
  }
  // Shrinking: stash the tail the truncate will destroy.
  const std::size_t tail = old_size - new_len;
  std::vector<std::uint8_t> bytes(tail);
  fx.env().pread(fd, bytes.data(), tail, static_cast<std::int64_t>(new_len));
  const std::uint32_t off = fx.mgr().stash_comp_data(bytes.data(), tail);
  return comp::restore_truncate(fd, old_signed, off,
                                static_cast<std::uint32_t>(tail));
}

namespace {

// Shared tail of prepare_file_write/prepare_file_pwrite: the region
// [start, start+n) is entirely at-or-past the durable boundary, so the
// write only touches page cache. Build the compensation that reverts it.
Compensation prepare_write_comp(Fx& fx, int fd, std::size_t n,
                                std::int64_t start, std::int64_t old_offset) {
  const std::int64_t old_size = fx.env().file_size(fd);
  std::int64_t header[2] = {start, old_offset};
  const std::uint32_t off =
      fx.mgr().stash_comp_data(header, sizeof header);
  std::uint32_t stash_len = sizeof header;
  if (start < old_size) {
    // Overwriting unsynced-but-existing bytes: stash them for the revert.
    const auto overlap = static_cast<std::size_t>(
        std::min<std::int64_t>(old_size - start, static_cast<std::int64_t>(n)));
    std::vector<std::uint8_t> bytes(overlap);
    fx.env().pread(fd, bytes.data(), overlap, start);
    fx.mgr().stash_comp_data(bytes.data(), overlap);
    stash_len += static_cast<std::uint32_t>(overlap);
  }
  return comp::restore_file_write(fd, old_size, off, stash_len);
}

}  // namespace

Compensation prepare_file_write(Fx& fx, int fd, std::size_t n) {
  Env& env = fx.env();
  if (n == 0 || !env.fd_is_file(fd)) return comp::none();  // sockets etc.
  const int flags = env.file_flags(fd);
  const std::int64_t size = env.file_size(fd);
  const std::int64_t start =
      (flags & kAppend) ? size : env.file_offset(fd);
  // Compensable only when the whole region sits past the durable boundary:
  // reverting bytes that reached stable media is impossible ("wrote to page
  // cache" vs "hit durable media").
  if (start < env.file_durable_size(fd)) return comp::none();
  return prepare_write_comp(fx, fd, n, start, env.file_offset(fd));
}

Compensation prepare_file_pwrite(Fx& fx, int fd, std::size_t n,
                                 std::int64_t offset) {
  Env& env = fx.env();
  if (n == 0 || offset < 0 || !env.fd_is_file(fd)) return comp::none();
  if (offset < env.file_durable_size(fd)) return comp::none();
  return prepare_write_comp(fx, fd, n, offset, /*old_offset=*/-1);
}

}  // namespace fir::detail
