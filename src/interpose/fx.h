// Fx: the protected-process context handed to every application.
//
// Bundles the virtual OS (Env) and the recovery runtime (TxManager). The
// wrapper macros in interpose/fir.h operate on an Fx; an application written
// against them is, structurally, what FIRestarter's compiler passes produce
// from unmodified source.
#pragma once

#include <memory>

#include "core/tx_manager.h"
#include "env/env.h"
#include "hsfi/hsfi.h"

namespace fir {

class Fx {
 public:
  explicit Fx(TxManagerConfig config = {})
      : env_(std::make_unique<Env>()),
        mgr_(std::make_unique<TxManager>(*env_, config)),
        hsfi_(std::make_unique<Hsfi>()) {}

  Env& env() { return *env_; }
  TxManager& mgr() { return *mgr_; }
  const TxManager& mgr() const { return *mgr_; }
  Hsfi& hsfi() { return *hsfi_; }

  /// Virtual errno of the protected process.
  int err() const { return env_->last_errno(); }

 private:
  std::unique_ptr<Env> env_;
  std::unique_ptr<TxManager> mgr_;
  std::unique_ptr<Hsfi> hsfi_;
};

}  // namespace fir
