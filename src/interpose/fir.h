// FIRestarter interposition wrappers.
//
// Applications call the environment exclusively through these FIR_* macros;
// each expansion is a "library call site" in the paper's sense. A gated
// macro performs, inline at the call site, exactly what FIRestarter's
// compiled instrumentation does around a library call (Fig. 2):
//
//   1. commit the transaction that has been running since the previous
//      library call (pre_call);
//   2. perform the environment operation;
//   3. open a new crash transaction at this site: setjmp (register
//      checkpoint), stack snapshot, HTM/STM store tracking, and register the
//      call's compensation action;
//   4. if the transaction later rolls back, control re-enters the gate via
//      longjmp and the macro yields either the original return value (retry)
//      or the injected error (diversion into the caller's error handler).
//
// Non-divertible library calls get EMBED macros instead: they run inside the
// current transaction and register a revert / deferred effect, mirroring the
// Adaptive Transaction Shaper's extension of transactions (§V-A).
//
// Implementation notes: the macros are GNU statement expressions because
// setjmp must execute in the application's own frame; `fir_rv` is volatile
// because it is written between setjmp and longjmp; each statement
// expression ends in a plain variable so discarding the result stays quiet.
#pragma once

#include <atomic>
#include <cerrno>
#include <csetjmp>
#include <cstdint>
#include <cstring>

#include "common/source_location.h"
#include "interpose/comp.h"
#include "interpose/fx.h"

namespace fir::detail {

/// Per-expansion SiteId cache, invalidated when a new TxManager generation
/// takes over (experiments create one manager per run). The function-local
/// static behind each gate is shared by every thread expanding that gate,
/// so the fields are atomics: sid is published before gen (release), and a
/// reader that observes the current generation (acquire) therefore reads
/// the matching sid. Racing first-callers both intern — the registry
/// dedupes — and store the same id.
struct SiteCache {
  std::atomic<std::uint64_t> gen{0};
  std::atomic<SiteId> sid{kInvalidSite};
};

inline SiteId site(SiteCache& cache, TxManager& mgr, const char* function,
                   const char* location) {
  if (cache.gen.load(std::memory_order_acquire) != mgr.generation()) {
    cache.sid.store(mgr.register_site(function, location),
                    std::memory_order_relaxed);
    cache.gen.store(mgr.generation(), std::memory_order_release);
  }
  return cache.sid.load(std::memory_order_relaxed);
}

/// ftruncate bookkeeping: stashes the tail bytes a shrink would destroy and
/// builds the compensation. Returns the compensation to pass to begin().
Compensation prepare_truncate(Fx& fx, int fd, std::size_t new_len);

/// write/pwrite bookkeeping: when the write's byte range lies entirely past
/// the fd's durable boundary (an append-shaped write into unsynced page
/// cache), builds a compensation that truncates back to the pre-call length
/// and restores any overwritten unsynced bytes — the write becomes a
/// divertible transaction opener. A write touching durable media returns
/// comp::none() and stays irrecoverable; fsync remains a gate boundary.
Compensation prepare_file_write(Fx& fx, int fd, std::size_t n);
Compensation prepare_file_pwrite(Fx& fx, int fd, std::size_t n,
                                 std::int64_t offset);

}  // namespace fir::detail

#define FIR_DETAIL_SITE(mgr, fname)                                   \
  ([&](::fir::TxManager& fir_m_) -> ::fir::SiteId {                   \
    static ::fir::detail::SiteCache fir_cache_;                       \
    return ::fir::detail::site(fir_cache_, fir_m_, fname, FIR_HERE);  \
  }(fir_m))

/// Core gate skeleton: see file comment. CALL_EXPR runs at most once;
/// COMP_EXPR builds the opening call's compensation.
#define FIR_DETAIL_GATED(fx, fname, CALL_EXPR, COMP_EXPR)             \
  ({                                                                  \
    ::fir::TxManager& fir_m = (fx).mgr();                             \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, fname);      \
    fir_m.pre_call(fir_sid);                                          \
    volatile std::intptr_t fir_rv = 0;                                \
    if (setjmp(*fir_m.gate_buf()) == 0) {                             \
      fir_rv = static_cast<std::intptr_t>(CALL_EXPR);                 \
      fir_m.begin(fir_sid, fir_rv, (COMP_EXPR));                      \
    } else {                                                          \
      fir_rv = fir_m.resume();                                        \
    }                                                                 \
    const std::intptr_t fir_out = fir_rv;                             \
    fir_out;                                                          \
  })

// --- anchoring ------------------------------------------------------------

/// Marks the current frame as the protected event loop: stack snapshots
/// cover [library call, top of this frame]. Place at the top of the loop
/// function, before any gated call.
#define FIR_ANCHOR(fx) (fx).mgr().set_anchor(__builtin_frame_address(0))

/// Commits any open transaction (shutdown / experiment boundaries).
#define FIR_QUIESCE(fx) (fx).mgr().quiesce()

// --- sockets ----------------------------------------------------------------

#define FIR_SOCKET(fx)                                          \
  FIR_DETAIL_GATED(fx, "socket", (fx).env().socket(),           \
                   ::fir::comp::close_returned_fd())

#define FIR_BIND(fx, fd, port)                                  \
  FIR_DETAIL_GATED(fx, "bind", (fx).env().bind((fd), (port)),   \
                   ::fir::comp::unbind((fd)))

#define FIR_LISTEN(fx, fd, backlog)                                     \
  FIR_DETAIL_GATED(fx, "listen", (fx).env().listen((fd), (backlog)),    \
                   ::fir::comp::unlisten((fd)))

#define FIR_SETSOCKOPT(fx, fd, opt)                                      \
  FIR_DETAIL_GATED(fx, "setsockopt", (fx).env().setsockopt((fd), (opt)), \
                   ::fir::comp::none())

#define FIR_ACCEPT(fx, fd)                                      \
  FIR_DETAIL_GATED(fx, "accept", (fx).env().accept((fd)),       \
                   ::fir::comp::close_returned_fd())

#define FIR_FCNTL_NONBLOCK(fx, fd, nb)                                       \
  FIR_DETAIL_GATED(fx, "fcntl", (fx).env().fcntl_set_nonblock((fd), (nb)),   \
                   ::fir::comp::none())

#define FIR_SEND(fx, fd, buf, n)                                        \
  FIR_DETAIL_GATED(fx, "send", (fx).env().send((fd), (buf), (n)),       \
                   ::fir::comp::none())

#define FIR_WRITE(fx, fd, buf, n)                                         \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "write");        \
    fir_m.pre_call(fir_sid);                                              \
    const ::fir::Compensation fir_comp =                                  \
        ::fir::detail::prepare_file_write((fx), (fd), (n));               \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().write((fd), (buf), (n));                        \
      fir_m.begin(fir_sid, fir_rv, fir_comp);                             \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

/// recv: "state restoration needed" — the destination buffer is stashed
/// before the call; the compensation un-consumes the stream bytes and
/// restores the buffer.
#define FIR_RECV(fx, fd, buf, n)                                          \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "recv");         \
    fir_m.pre_call(fir_sid);                                              \
    const std::uint32_t fir_off = fir_m.stash_comp_data((buf), (n));      \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().recv((fd), (buf), (n));                         \
      fir_m.begin(fir_sid, fir_rv,                                        \
                  ::fir::comp::restore_recv(                              \
                      (fd), (buf), fir_off,                               \
                      static_cast<std::uint32_t>(n)));                    \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_READ(fx, fd, buf, n)                                          \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "read");         \
    fir_m.pre_call(fir_sid);                                              \
    const std::uint32_t fir_off = fir_m.stash_comp_data((buf), (n));      \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().read((fd), (buf), (n));                         \
      fir_m.begin(fir_sid, fir_rv,                                        \
                  ::fir::comp::restore_recv(                              \
                      (fd), (buf), fir_off,                               \
                      static_cast<std::uint32_t>(n)));                    \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

/// close: "operation deferrable" — reports success immediately, the real
/// close happens when this transaction commits.
#define FIR_CLOSE(fx, fd)                                                 \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "close");        \
    fir_m.pre_call(fir_sid);                                              \
    const int fir_fd = (fd);                                              \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      if ((fx).env().fd_valid(fir_fd)) {                                  \
        fir_rv = 0;                                                       \
        fir_m.begin(fir_sid, 0, ::fir::comp::none());                     \
        fir_m.set_opening_deferred(::fir::comp::deferred_close(fir_fd));  \
      } else {                                                            \
        (fx).env().set_errno(EBADF);                                      \
        fir_rv = -1;                                                      \
        fir_m.begin(fir_sid, -1, ::fir::comp::none());                    \
      }                                                                   \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_SHUTDOWN(fx, fd)                                              \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "shutdown");     \
    fir_m.pre_call(fir_sid);                                              \
    const int fir_fd = (fd);                                              \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      if ((fx).env().fd_valid(fir_fd)) {                                  \
        fir_rv = 0;                                                       \
        fir_m.begin(fir_sid, 0, ::fir::comp::none());                     \
        fir_m.set_opening_deferred(                                       \
            ::fir::comp::deferred_shutdown(fir_fd));                      \
      } else {                                                            \
        (fx).env().set_errno(ENOTCONN);                                   \
        fir_rv = -1;                                                      \
        fir_m.begin(fir_sid, -1, ::fir::comp::none());                    \
      }                                                                   \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

// --- epoll ------------------------------------------------------------------

#define FIR_EPOLL_CREATE1(fx)                                             \
  FIR_DETAIL_GATED(fx, "epoll_create1", (fx).env().epoll_create1(),       \
                   ::fir::comp::close_returned_fd())

#define FIR_EPOLL_CTL(fx, epfd, op, fd, events)                           \
  FIR_DETAIL_GATED(fx, "epoll_ctl",                                       \
                   (fx).env().epoll_ctl((epfd), (op), (fd), (events)),    \
                   ::fir::comp::none())

#define FIR_EPOLL_WAIT(fx, epfd, events, max)                             \
  FIR_DETAIL_GATED(fx, "epoll_wait",                                      \
                   (fx).env().epoll_wait((epfd), (events), (max)),        \
                   ::fir::comp::none())

// Blocking variant (same catalog entry): worker-pool event loops pass a
// real timeout so idle workers park in the env instead of spin-yielding.
#define FIR_EPOLL_WAIT_TIMED(fx, epfd, events, max, timeout_ms)           \
  FIR_DETAIL_GATED(                                                       \
      fx, "epoll_wait",                                                   \
      (fx).env().epoll_wait((epfd), (events), (max), (timeout_ms)),       \
      ::fir::comp::none())

// --- files ------------------------------------------------------------------

#define FIR_OPEN(fx, path, flags)                                       \
  FIR_DETAIL_GATED(fx, "open", (fx).env().open((path), (flags)),        \
                   ::fir::comp::close_returned_fd())

#define FIR_OPEN64(fx, path, flags)                                     \
  FIR_DETAIL_GATED(fx, "open64", (fx).env().open((path), (flags)),      \
                   ::fir::comp::close_returned_fd())

#define FIR_PREAD(fx, fd, buf, n, off)                                    \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "pread");        \
    fir_m.pre_call(fir_sid);                                              \
    const std::uint32_t fir_off = fir_m.stash_comp_data((buf), (n));      \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().pread((fd), (buf), (n), (off));                 \
      fir_m.begin(fir_sid, fir_rv,                                        \
                  ::fir::comp::restore_buffer(                            \
                      (buf), fir_off, static_cast<std::uint32_t>(n)));    \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_LSEEK(fx, fd, off, whence)                                    \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "lseek");        \
    fir_m.pre_call(fir_sid);                                              \
    const std::int64_t fir_old = (fx).env().file_offset((fd));            \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().lseek((fd), (off), (whence));                   \
      fir_m.begin(fir_sid, fir_rv,                                        \
                  ::fir::comp::restore_offset((fd), fir_old));            \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_STAT_SIZE(fx, path, size_out)                                 \
  FIR_DETAIL_GATED(fx, "stat", (fx).env().stat_size((path), (size_out)), \
                   ::fir::comp::none())

#define FIR_FSTAT_SIZE(fx, fd, size_out)                                   \
  FIR_DETAIL_GATED(fx, "fstat", (fx).env().fstat_size((fd), (size_out)),   \
                   ::fir::comp::none())

#define FIR_ACCESS(fx, path)                                              \
  FIR_DETAIL_GATED(fx, "access", (fx).env().stat_size((path), nullptr),   \
                   ::fir::comp::none())

/// unlink: deferrable — the name disappears when the transaction commits.
/// The DeferredOp owns a copy of the path, so any caller buffer works.
#define FIR_UNLINK(fx, path)                                              \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "unlink");       \
    fir_m.pre_call(fir_sid);                                              \
    const char* fir_path = (path);                                        \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      if ((fx).env().vfs().exists(fir_path)) {                            \
        fir_rv = 0;                                                       \
        fir_m.begin(fir_sid, 0, ::fir::comp::none());                     \
        fir_m.set_opening_deferred(                                       \
            ::fir::comp::deferred_unlink(fir_path));                      \
      } else {                                                            \
        (fx).env().set_errno(ENOENT);                                     \
        fir_rv = -1;                                                      \
        fir_m.begin(fir_sid, -1, ::fir::comp::none());                    \
      }                                                                   \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

/// rename: both path strings are stashed in the transaction arena before
/// the call ("from\0to\0"), so the rename-back compensation never touches
/// the caller's (possibly freed or rolled-back) buffers.
#define FIR_RENAME(fx, from, to)                                          \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "rename");       \
    fir_m.pre_call(fir_sid);                                              \
    const char* fir_from = (from);                                        \
    const char* fir_to = (to);                                            \
    const std::uint32_t fir_from_n =                                      \
        static_cast<std::uint32_t>(::std::strlen(fir_from)) + 1;          \
    const std::uint32_t fir_to_n =                                        \
        static_cast<std::uint32_t>(::std::strlen(fir_to)) + 1;            \
    const std::uint32_t fir_off =                                         \
        fir_m.stash_comp_data(fir_from, fir_from_n);                      \
    fir_m.stash_comp_data(fir_to, fir_to_n);                              \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().rename(fir_from, fir_to);                       \
      fir_m.begin(fir_sid, fir_rv,                                        \
                  ::fir::comp::rename_back(                               \
                      fir_off, fir_from_n + fir_to_n, fir_from_n));       \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_FTRUNCATE(fx, fd, len)                                        \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "ftruncate");    \
    fir_m.pre_call(fir_sid);                                              \
    const ::fir::Compensation fir_comp =                                  \
        ::fir::detail::prepare_truncate((fx), (fd), (len));               \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().ftruncate((fd), (len));                         \
      fir_m.begin(fir_sid, fir_rv, fir_comp);                             \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_PWRITE(fx, fd, buf, n, off)                                   \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "pwrite");       \
    fir_m.pre_call(fir_sid);                                              \
    const ::fir::Compensation fir_comp =                                  \
        ::fir::detail::prepare_file_pwrite((fx), (fd), (n), (off));       \
    volatile std::intptr_t fir_rv = 0;                                    \
    if (setjmp(*fir_m.gate_buf()) == 0) {                                 \
      fir_rv = (fx).env().pwrite((fd), (buf), (n), (off));                \
      fir_m.begin(fir_sid, fir_rv, fir_comp);                             \
    } else {                                                              \
      fir_rv = fir_m.resume();                                            \
    }                                                                     \
    const std::intptr_t fir_out = fir_rv;                                 \
    fir_out;                                                              \
  })

#define FIR_FSYNC(fx, fd)                                              \
  FIR_DETAIL_GATED(fx, "fsync", (fx).env().fsync((fd)),                \
                   ::fir::comp::none())

#define FIR_FDATASYNC(fx, fd)                                          \
  FIR_DETAIL_GATED(fx, "fdatasync", (fx).env().fdatasync((fd)),        \
                   ::fir::comp::none())

// Directory barrier. Registers under the "fsync" catalog entry: it IS an
// fsync (of the directory), and the catalog's 101 modeled functions stay
// pinned to the paper's Table II.
#define FIR_FSYNC_DIR(fx, dir)                                         \
  FIR_DETAIL_GATED(fx, "fsync", (fx).env().fsync_dir((dir)),           \
                   ::fir::comp::none())

// --- descriptor & vector ops --------------------------------------------------

#define FIR_DUP(fx, fd)                                                   \
  FIR_DETAIL_GATED(fx, "dup", (fx).env().dup((fd)),                       \
                   ::fir::comp::close_returned_fd())

/// pipe/socketpair: `out2` (int[2]) must be written before the transaction
/// begins, so the wrapper performs the call first; the compensation closes
/// both ends.
#define FIR_PIPE(fx, out2)                                                \
  FIR_DETAIL_GATED(fx, "pipe", (fx).env().pipe((out2)),                   \
                   ::fir::comp::close_fd_pair((out2)))

#define FIR_SOCKETPAIR(fx, out2)                                          \
  FIR_DETAIL_GATED(fx, "socketpair", (fx).env().socketpair((out2)),       \
                   ::fir::comp::close_fd_pair((out2)))

#define FIR_SENDFILE(fx, out_sock, in_fd, off, n)                         \
  FIR_DETAIL_GATED(fx, "sendfile",                                        \
                   (fx).env().sendfile((out_sock), (in_fd), (off), (n)),  \
                   ::fir::comp::none())

#define FIR_WRITEV(fx, fd, slices, n)                                     \
  FIR_DETAIL_GATED(fx, "writev",                                          \
                   (fx).env().writev((fd), (slices), (n)),                \
                   ::fir::comp::none())

// --- memory -----------------------------------------------------------------

#define FIR_MALLOC(fx, n)                                                 \
  reinterpret_cast<void*>(FIR_DETAIL_GATED(                               \
      fx, "malloc",                                                       \
      reinterpret_cast<std::intptr_t>((fx).env().mem_alloc((n))),         \
      ::fir::comp::free_returned_block()))

#define FIR_CALLOC(fx, n)                                                 \
  reinterpret_cast<void*>(FIR_DETAIL_GATED(                               \
      fx, "calloc",                                                       \
      reinterpret_cast<std::intptr_t>((fx).env().mem_alloc_zero((n))),    \
      ::fir::comp::free_returned_block()))

#define FIR_POSIX_MEMALIGN(fx, out_ptr, n)                                \
  FIR_DETAIL_GATED(                                                       \
      fx, "posix_memalign",                                               \
      ((*(out_ptr) = (fx).env().mem_alloc((n))) != nullptr ? 0 : ENOMEM), \
      ::fir::comp::free_memalign((out_ptr)))

/// free: non-divertible deferrable — embedded in the current transaction,
/// released at commit, dropped (and re-issued by re-execution) on rollback.
#define FIR_FREE(fx, ptr)                                                 \
  do {                                                                    \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, "free");         \
    fir_m.defer_embedded(fir_sid, ::fir::comp::deferred_free((ptr)));     \
  } while (0)

// --- observability ----------------------------------------------------------

/// The runtime's metrics registry: every FIR_* gate publishes its counters
/// here ("gate.calls", "tx.htm", "recovery.retries", ...). Metric names and
/// the export formats are documented in docs/OBSERVABILITY.md.
#define FIR_METRICS(fx) (fx).mgr().metrics()

/// The recovery-event trace rendered as JSONL (one JSON object per event),
/// with site ids symbolized against the manager's registry. Same format as
/// the FIR_TRACE_OUT shutdown dump.
#define FIR_TRACE_JSONL(fx)                                \
  ::fir::obs::trace_jsonl((fx).mgr().obs().trace(),        \
                          (fx).mgr().trace_symbolizer())

// --- embedded pure calls ------------------------------------------------------

/// Non-divertible, no-reversion-needed calls (getpid, strlen, ...): counted
/// as embedded library calls, executed inside the open transaction.
#define FIR_EMBED_PURE(fx, fname, CALL_EXPR)                              \
  ({                                                                      \
    ::fir::TxManager& fir_m = (fx).mgr();                                 \
    const ::fir::SiteId fir_sid = FIR_DETAIL_SITE(fir_m, fname);          \
    fir_m.embed_idempotent(fir_sid);                                      \
    const auto fir_pure_out = (CALL_EXPR);                                \
    fir_pure_out;                                                         \
  })

#define FIR_GETPID(fx) FIR_EMBED_PURE(fx, "getpid", (fx).env().getpid())
#define FIR_TIME_NS(fx) \
  FIR_EMBED_PURE(fx, "time", (fx).env().clock().now_ns())
#define FIR_STRLEN(fx, s) FIR_EMBED_PURE(fx, "strlen", ::std::strlen((s)))
#define FIR_MEMCMP(fx, a, b, n) \
  FIR_EMBED_PURE(fx, "memcmp", ::std::memcmp((a), (b), (n)))
