// Simulated hardware transactional memory modeled on Intel TSX (RTM).
//
// Substitution note (DESIGN.md §2): real TSX is unavailable here, so this
// module models the properties FIRestarter's evaluation depends on:
//   * the write-set is tracked at cache-line granularity and bounded by the
//     L1D geometry (total lines AND per-set associativity) — transactions
//     touching large memory regions abort with CAPACITY, exactly the
//     behaviour the paper observes after malloc()/posix_memalign();
//   * asynchronous events (interrupts, cache-line conflicts) abort
//     transactions probabilistically, so even small transactions abort
//     occasionally — the reason a permanent-switch-on-first-abort policy is
//     a bad idea (§IV-C);
//   * aborts discard all transactional stores (simulated by restoring the
//     saved old contents of each dirtied line);
//   * per-store cost is much lower than STM undo logging: only the FIRST
//     store to each cache line pays for bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "common/rng.h"
#include "mem/store_gate.h"
#include "mem/write_filter.h"
#include "obs/metrics.h"

namespace fir {

/// Why a simulated hardware transaction aborted (mirrors TSX abort status).
enum class HtmAbortCode : std::uint8_t {
  kNone = 0,
  kCapacity,   // write-set exceeded L1 geometry
  kConflict,   // another core touched one of our lines
  kInterrupt,  // timer interrupt / page fault / other async event
  kExplicit,   // XABORT — FIRestarter uses this to signal a crash inside HTM
};

const char* htm_abort_code_name(HtmAbortCode code);

/// Tuning knobs for the TSX model.
struct HtmConfig {
  /// Total distinct cache lines a transaction may dirty. L1D holds 512
  /// lines, but measured TSX write capacity is far lower — hyperthread
  /// sharing, victim evictions and prefetch pollution abort transactions
  /// well before the nominal limit. 128 lines (8 KiB) matches published
  /// RTM capacity measurements and reproduces the paper's observation that
  /// transactions following malloc()/posix_memalign() (large memory
  /// initializations) abort persistently.
  std::size_t max_write_lines = 128;
  /// Lines per L1 set before a simulated associativity eviction aborts.
  std::size_t max_lines_per_set = kL1Associativity;
  /// Probability that any given store is hit by an asynchronous abort
  /// (interrupt / page fault). Per-store, so longer transactions are
  /// proportionally more exposed — matching reality.
  double interrupt_abort_per_store = 1e-6;
  /// Probability of a coherence conflict per store.
  double conflict_abort_per_store = 0.0;
  /// RNG seed for the probabilistic events.
  std::uint64_t seed = 1;
};

/// Cumulative statistics across all transactions run on one HtmContext.
struct HtmStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_capacity = 0;
  std::uint64_t aborted_conflict = 0;
  std::uint64_t aborted_interrupt = 0;
  std::uint64_t aborted_explicit = 0;
  std::uint64_t stores = 0;
  std::uint64_t lines_dirtied = 0;

  std::uint64_t aborted_total() const {
    return aborted_capacity + aborted_conflict + aborted_interrupt +
           aborted_explicit;
  }
};

/// One simulated hardware-transaction engine (per protected process).
///
/// Usage protocol (driven by the transaction entry gate):
///   begin(); ... stores flow in via record_store() ... commit() or abort(c).
/// record_store() returning false means the transaction must abort; the
/// caller (StoreGate) fires the abort hook, and the gate then calls abort()
/// to roll the write-set back before longjmp-resuming.
class HtmContext final : public StoreRecorder {
 public:
  explicit HtmContext(HtmConfig config = {});

  /// Starts a transaction. Precondition: none active.
  void begin();

  /// Commits: write-set becomes permanent (it already is, in memory), the
  /// saved old lines are discarded. Precondition: transaction active.
  void commit();

  /// Aborts: every dirtied line is restored to its pre-transaction contents
  /// (simulating the cache discard), newest first. Records `code`.
  void abort(HtmAbortCode code);

  /// StoreRecorder: returns false when the store pushes the write-set past
  /// capacity or a simulated async abort fires. The pending abort code is
  /// then available via pending_abort().
  ///
  /// Cost model: real TSX tracks stores for free in the cache, so the
  /// simulation's common case must be near-free too. A store that stays
  /// within the line touched by the previous store returns immediately
  /// (one compare; StoreGate::record inlines the same check ahead of the
  /// virtual dispatch); only new-line touches pay for the filter probe, the
  /// line image save, and the async-abort sampling.
  bool record_store(void* addr, std::size_t size) override {
    ++stats_.stores;
    const std::uintptr_t line =
        line_base(reinterpret_cast<std::uintptr_t>(addr));
    if (line == last_line_ &&
        line_base(reinterpret_cast<std::uintptr_t>(addr) +
                  (size > 0 ? size - 1 : 0)) == line) {
      return true;
    }
    return record_store_slow(addr, size);
  }

  /// Enables the devirtualized StoreGate fast path for this engine.
  void bind_gate();

  bool active() const { return active_; }
  /// Abort reason set by a failed record_store(), consumed by abort().
  HtmAbortCode pending_abort() const { return pending_abort_; }
  /// Distinct lines dirtied by the current transaction.
  std::size_t write_set_lines() const { return dirty_count_; }

  /// Bytes currently reserved by the write-set bookkeeping (line filter,
  /// saved line images, per-set occupancy) — Fig. 9 input.
  std::size_t footprint_bytes() const;

  const HtmStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HtmStats{}; }

  /// Publishes this engine's statistics into `registry` as "htm.*" gauges
  /// via a snapshot-time collector: the record_store() fast path stays
  /// untouched. `registry` must outlive this context or never snapshot
  /// after its destruction.
  void register_metrics(obs::MetricsRegistry& registry);

 private:
  struct SavedLine {
    std::uintptr_t base;
    std::uint8_t data[kCacheLineBytes];
  };

  /// Adds the line containing `addr` to the write-set if new.
  /// Returns false on capacity overflow.
  bool touch_line(std::uintptr_t line);
  bool record_store_slow(void* addr, std::size_t size);

  HtmConfig config_;
  Rng rng_;
  bool active_ = false;
  HtmAbortCode pending_abort_ = HtmAbortCode::kNone;

  // Write-set membership: the shared line-granular WriteFilter with
  // mask=kFullLineMask (epoch-stamped slots, O(1) reset per transaction) —
  // mirroring the zero-cost tracking real TSX gets from the cache itself.
  WriteFilter line_set_;
  std::size_t dirty_count_ = 0;
  std::uintptr_t last_line_ = 0;  // fast-path cache: previously touched line
  std::vector<SavedLine> saved_lines_;
  std::vector<std::uint8_t> set_occupancy_;  // per-L1-set line counts
  std::uint64_t occupancy_epoch_ = 0;
  std::vector<std::uint64_t> occupancy_stamp_;  // per-set epoch stamps

  HtmStats stats_;
};

}  // namespace fir
