#include "htm/htm.h"

#include <cassert>
#include <cstring>

namespace fir {

const char* htm_abort_code_name(HtmAbortCode code) {
  switch (code) {
    case HtmAbortCode::kNone: return "NONE";
    case HtmAbortCode::kCapacity: return "CAPACITY";
    case HtmAbortCode::kConflict: return "CONFLICT";
    case HtmAbortCode::kInterrupt: return "INTERRUPT";
    case HtmAbortCode::kExplicit: return "EXPLICIT";
  }
  return "?";
}

namespace {
/// Hash-set capacity: power of two comfortably above the largest write-set
/// so probe chains stay short.
std::size_t line_set_capacity(std::size_t max_lines) {
  std::size_t cap = 64;
  while (cap < max_lines * 2) cap *= 2;
  return cap;
}
}  // namespace

HtmContext::HtmContext(HtmConfig config)
    : config_(config),
      rng_(config.seed),
      line_set_(line_set_capacity(config.max_write_lines)),
      set_occupancy_(kL1Sets, 0),
      occupancy_stamp_(kL1Sets, 0) {
  saved_lines_.reserve(config_.max_write_lines);
}

void HtmContext::begin() {
  assert(!active_ && "nested hardware transactions are not modeled");
  active_ = true;
  pending_abort_ = HtmAbortCode::kNone;
  ++epoch_;
  ++occupancy_epoch_;
  dirty_count_ = 0;
  last_line_ = 0;
  saved_lines_.clear();
  ++stats_.begun;
}

void HtmContext::commit() {
  assert(active_);
  active_ = false;
  ++stats_.committed;
  stats_.lines_dirtied += dirty_count_;
  dirty_count_ = 0;
  saved_lines_.clear();
}

void HtmContext::abort(HtmAbortCode code) {
  assert(active_);
  // Cache discard: restore every dirtied line, newest first.
  for (auto it = saved_lines_.rbegin(); it != saved_lines_.rend(); ++it)
    std::memcpy(reinterpret_cast<void*>(it->base), it->data, kCacheLineBytes);
  active_ = false;
  pending_abort_ = HtmAbortCode::kNone;
  dirty_count_ = 0;
  saved_lines_.clear();
  switch (code) {
    case HtmAbortCode::kCapacity: ++stats_.aborted_capacity; break;
    case HtmAbortCode::kConflict: ++stats_.aborted_conflict; break;
    case HtmAbortCode::kInterrupt: ++stats_.aborted_interrupt; break;
    case HtmAbortCode::kExplicit: ++stats_.aborted_explicit; break;
    case HtmAbortCode::kNone: break;
  }
}

bool HtmContext::touch_line(std::uintptr_t line) {
  const std::size_t mask = line_set_.size() - 1;
  // Multiplicative hash of the line base.
  std::size_t idx =
      (static_cast<std::size_t>(line) * 0x9E3779B97F4A7C15ull) & mask;
  for (;;) {
    LineSlot& slot = line_set_[idx];
    if (slot.epoch == epoch_ && slot.line == line) return true;  // hit
    if (slot.epoch != epoch_) {
      // Free slot this epoch: the line is new.
      if (dirty_count_ >= config_.max_write_lines) return false;
      const std::size_t set = line_set_index(line);
      if (occupancy_stamp_[set] != occupancy_epoch_) {
        occupancy_stamp_[set] = occupancy_epoch_;
        set_occupancy_[set] = 0;
      }
      if (set_occupancy_[set] >= config_.max_lines_per_set) return false;
      ++set_occupancy_[set];
      slot.epoch = epoch_;
      slot.line = line;
      ++dirty_count_;
      SavedLine saved;
      saved.base = line;
      std::memcpy(saved.data, reinterpret_cast<const void*>(line),
                  kCacheLineBytes);
      saved_lines_.push_back(saved);
      return true;
    }
    idx = (idx + 1) & mask;
  }
}

bool HtmContext::record_store_slow(void* addr, std::size_t size) {
  assert(active_);
  const std::uintptr_t start =
      line_base(reinterpret_cast<std::uintptr_t>(addr));
  const std::uintptr_t end = line_base(
      reinterpret_cast<std::uintptr_t>(addr) + (size > 0 ? size - 1 : 0));
  for (std::uintptr_t line = start; line <= end; line += kCacheLineBytes) {
    if (!touch_line(line)) {
      pending_abort_ = HtmAbortCode::kCapacity;
      return false;
    }
  }
  last_line_ = end;

  if (config_.interrupt_abort_per_store > 0 &&
      rng_.chance(config_.interrupt_abort_per_store)) {
    pending_abort_ = HtmAbortCode::kInterrupt;
    return false;
  }
  if (config_.conflict_abort_per_store > 0 &&
      rng_.chance(config_.conflict_abort_per_store)) {
    pending_abort_ = HtmAbortCode::kConflict;
    return false;
  }
  return true;
}

void HtmContext::register_metrics(obs::MetricsRegistry& registry) {
  registry.add_collector([this](obs::MetricsRegistry& reg) {
    reg.gauge("htm.begun").set(static_cast<double>(stats_.begun));
    reg.gauge("htm.committed").set(static_cast<double>(stats_.committed));
    reg.gauge("htm.aborts.capacity")
        .set(static_cast<double>(stats_.aborted_capacity));
    reg.gauge("htm.aborts.conflict")
        .set(static_cast<double>(stats_.aborted_conflict));
    reg.gauge("htm.aborts.interrupt")
        .set(static_cast<double>(stats_.aborted_interrupt));
    reg.gauge("htm.aborts.explicit")
        .set(static_cast<double>(stats_.aborted_explicit));
    reg.gauge("htm.stores").set(static_cast<double>(stats_.stores));
    reg.gauge("htm.lines_dirtied")
        .set(static_cast<double>(stats_.lines_dirtied));
  });
}

}  // namespace fir
