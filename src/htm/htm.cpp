#include "htm/htm.h"

#include <cassert>
#include <cstring>

namespace fir {

const char* htm_abort_code_name(HtmAbortCode code) {
  switch (code) {
    case HtmAbortCode::kNone: return "NONE";
    case HtmAbortCode::kCapacity: return "CAPACITY";
    case HtmAbortCode::kConflict: return "CONFLICT";
    case HtmAbortCode::kInterrupt: return "INTERRUPT";
    case HtmAbortCode::kExplicit: return "EXPLICIT";
  }
  return "?";
}

HtmContext::HtmContext(HtmConfig config)
    : config_(config),
      rng_(config.seed),
      line_set_(config.max_write_lines),
      set_occupancy_(kL1Sets, 0),
      occupancy_stamp_(kL1Sets, 0) {
  saved_lines_.reserve(config_.max_write_lines);
}

void HtmContext::begin() {
  assert(!active_ && "nested hardware transactions are not modeled");
  active_ = true;
  pending_abort_ = HtmAbortCode::kNone;
  line_set_.reset();
  ++occupancy_epoch_;
  dirty_count_ = 0;
  last_line_ = 0;
  saved_lines_.clear();
  ++stats_.begun;
}

void HtmContext::commit() {
  assert(active_);
  active_ = false;
  ++stats_.committed;
  stats_.lines_dirtied += dirty_count_;
  dirty_count_ = 0;
  saved_lines_.clear();
}

void HtmContext::abort(HtmAbortCode code) {
  assert(active_);
  // Cache discard: restore every dirtied line, newest first.
  for (auto it = saved_lines_.rbegin(); it != saved_lines_.rend(); ++it)
    std::memcpy(reinterpret_cast<void*>(it->base), it->data, kCacheLineBytes);
  active_ = false;
  pending_abort_ = HtmAbortCode::kNone;
  dirty_count_ = 0;
  saved_lines_.clear();
  switch (code) {
    case HtmAbortCode::kCapacity: ++stats_.aborted_capacity; break;
    case HtmAbortCode::kConflict: ++stats_.aborted_conflict; break;
    case HtmAbortCode::kInterrupt: ++stats_.aborted_interrupt; break;
    case HtmAbortCode::kExplicit: ++stats_.aborted_explicit; break;
    case HtmAbortCode::kNone: break;
  }
}

void HtmContext::bind_gate() {
  StoreGate::bind_htm(&last_line_, &stats_.stores, this);
}

bool HtmContext::touch_line(std::uintptr_t line) {
  if (line_set_.contains(line)) return true;  // already in the write-set
  if (dirty_count_ >= config_.max_write_lines) return false;
  const std::size_t set = line_set_index(line);
  if (occupancy_stamp_[set] != occupancy_epoch_) {
    occupancy_stamp_[set] = occupancy_epoch_;
    set_occupancy_[set] = 0;
  }
  if (set_occupancy_[set] >= config_.max_lines_per_set) return false;
  ++set_occupancy_[set];
  line_set_.cover(line, WriteFilter::kFullLineMask);
  ++dirty_count_;
  SavedLine saved;
  saved.base = line;
  std::memcpy(saved.data, reinterpret_cast<const void*>(line),
              kCacheLineBytes);
  saved_lines_.push_back(saved);
  return true;
}

bool HtmContext::record_store_slow(void* addr, std::size_t size) {
  assert(active_);
  const std::uintptr_t start =
      line_base(reinterpret_cast<std::uintptr_t>(addr));
  const std::uintptr_t end = line_base(
      reinterpret_cast<std::uintptr_t>(addr) + (size > 0 ? size - 1 : 0));
  for (std::uintptr_t line = start; line <= end; line += kCacheLineBytes) {
    if (!touch_line(line)) {
      pending_abort_ = HtmAbortCode::kCapacity;
      return false;
    }
  }
  last_line_ = end;

  if (config_.interrupt_abort_per_store > 0 &&
      rng_.chance(config_.interrupt_abort_per_store)) {
    pending_abort_ = HtmAbortCode::kInterrupt;
    return false;
  }
  if (config_.conflict_abort_per_store > 0 &&
      rng_.chance(config_.conflict_abort_per_store)) {
    pending_abort_ = HtmAbortCode::kConflict;
    return false;
  }
  return true;
}

std::size_t HtmContext::footprint_bytes() const {
  return line_set_.footprint_bytes() +
         saved_lines_.capacity() * sizeof(SavedLine) +
         set_occupancy_.capacity() * sizeof(set_occupancy_[0]) +
         occupancy_stamp_.capacity() * sizeof(occupancy_stamp_[0]);
}

void HtmContext::register_metrics(obs::MetricsRegistry& registry) {
  registry.add_collector([this](obs::MetricsRegistry& reg) {
    reg.gauge("htm.begun").set(static_cast<double>(stats_.begun));
    reg.gauge("htm.committed").set(static_cast<double>(stats_.committed));
    reg.gauge("htm.aborts.capacity")
        .set(static_cast<double>(stats_.aborted_capacity));
    reg.gauge("htm.aborts.conflict")
        .set(static_cast<double>(stats_.aborted_conflict));
    reg.gauge("htm.aborts.interrupt")
        .set(static_cast<double>(stats_.aborted_interrupt));
    reg.gauge("htm.aborts.explicit")
        .set(static_cast<double>(stats_.aborted_explicit));
    reg.gauge("htm.stores").set(static_cast<double>(stats_.stores));
    reg.gauge("htm.lines_dirtied")
        .set(static_cast<double>(stats_.lines_dirtied));
  });
}

}  // namespace fir
