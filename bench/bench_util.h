// Shared utilities for the per-table / per-figure experiment binaries.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "common/log.h"
#include "common/table.h"
#include "workload/campaign.h"
#include "workload/drivers.h"

namespace fir::bench {

/// The evaluated server fleet, paper order (apps::server_names).
inline const std::vector<std::string>& server_names() {
  return apps::server_names();
}

inline const std::vector<std::string>& web_server_names() {
  static const std::vector<std::string> names = {"miniginx", "apachette",
                                                 "littlehttpd"};
  return names;
}

/// Paper-name for each mini server (table headers).
inline std::string paper_name(const std::string& server) {
  return apps::paper_server_name(server);
}

/// Builds a started server by name.
inline std::unique_ptr<Server> make_server(const std::string& name,
                                           const TxManagerConfig& config) {
  return apps::make_started_server(name, config);
}

inline ServerFactory factory_for(const std::string& name,
                                 const TxManagerConfig& config) {
  return [name, config] { return make_server(name, config); };
}

/// Named policy configurations of the evaluation (apps registry; campaign
/// configs address the same presets by the same names).
inline TxManagerConfig vanilla_config() {
  return apps::named_policy_config("vanilla");
}
inline TxManagerConfig htm_only_config() {
  return apps::named_policy_config("htm-only");
}
inline TxManagerConfig stm_only_config() {
  return apps::named_policy_config("stm-only");
}
inline TxManagerConfig naive_htm_config() {
  return apps::named_policy_config("naive-htm");
}
inline TxManagerConfig manual_config() {
  return apps::named_policy_config("manual");
}
inline TxManagerConfig firestarter_config(double threshold = 0.01,
                                          std::uint32_t sample = 4) {
  TxManagerConfig c = apps::named_policy_config("firestarter");
  c.policy.abort_threshold = threshold;
  c.policy.sample_size = sample;
  return c;
}

/// Measured throughput of `server` under its saturation load.
inline double measure_throughput(Server& server, int total_ops,
                                 int concurrency, std::uint64_t seed) {
  Rng rng(seed);
  const WorkloadResult result =
      run_load_for(server, total_ops, concurrency, rng);
  if (result.server_died) {
    std::fprintf(stderr, "bench: %s died during load: %s\n", server.name(),
                 result.death_reason.c_str());
    return 0.0;
  }
  return result.throughput_rps();
}

/// Repeats a throughput measurement and returns the best-of-N (standard
/// practice to suppress scheduler noise on shared machines). One warm-up
/// round is discarded.
inline double best_throughput(const std::string& name,
                              const TxManagerConfig& config, int total_ops,
                              int concurrency, int repeats = 5) {
  double best = 0.0;
  for (int r = 0; r <= repeats; ++r) {
    auto server = make_server(name, config);
    if (server == nullptr) return 0.0;
    const double rps =
        measure_throughput(*server, total_ops, concurrency, 42 + r);
    if (r > 0 && rps > best) best = rps;  // round 0 is warm-up
    server->stop();
  }
  return best;
}

/// Measures several configurations with interleaved rounds so slow phases
/// of a shared machine hit all variants equally. Returns best-of-rounds
/// per configuration (round 0 per config is warm-up).
inline std::vector<double> interleaved_throughput(
    const std::string& name, const std::vector<TxManagerConfig>& configs,
    int total_ops, int concurrency, int rounds = 7) {
  std::vector<double> best(configs.size(), 0.0);
  for (int r = 0; r <= rounds; ++r) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      auto server = make_server(name, configs[c]);
      if (server == nullptr) return best;
      const double rps =
          measure_throughput(*server, total_ops, concurrency, 42 + r);
      if (r > 0 && rps > best[c]) best[c] = rps;
      server->stop();
    }
  }
  return best;
}

/// Paired-ratio overhead measurement, robust against the frequency drift
/// of shared machines: each round measures the vanilla baseline and the
/// variant back-to-back (alternating order to cancel slow trends) and
/// contributes one ratio; the result is the MEDIAN ratio minus one.
/// Also returns the median vanilla throughput via `base_out` if non-null.
inline double median_overhead(const std::string& name,
                              const TxManagerConfig& config, int total_ops,
                              int concurrency, int rounds = 7,
                              double* base_out = nullptr) {
  std::vector<double> ratios;
  std::vector<double> bases;
  auto run_one = [&](const TxManagerConfig& cfg, int round) {
    auto server = make_server(name, cfg);
    if (server == nullptr) return 0.0;
    const double rps =
        measure_throughput(*server, total_ops, concurrency, 42 + round);
    server->stop();
    return rps;
  };
  // Warm-up pair (discarded).
  run_one(vanilla_config(), 0);
  run_one(config, 0);
  for (int r = 1; r <= rounds; ++r) {
    double base, variant;
    if (r % 2 == 0) {
      base = run_one(vanilla_config(), r);
      variant = run_one(config, r);
    } else {
      variant = run_one(config, r);
      base = run_one(vanilla_config(), r);
    }
    if (base <= 0.0 || variant <= 0.0) continue;
    ratios.push_back(base / variant);
    bases.push_back(base);
  }
  if (ratios.empty()) return 0.0;
  std::sort(ratios.begin(), ratios.end());
  std::sort(bases.begin(), bases.end());
  if (base_out != nullptr) *base_out = bases[bases.size() / 2];
  return ratios[ratios.size() / 2] - 1.0;
}

/// Fractional overhead of `rps` versus baseline `base` (0.17 = 17% slower).
inline double overhead(double base, double rps) {
  return (rps <= 0.0 || base <= 0.0) ? 0.0 : base / rps - 1.0;
}

inline void quiet_logs() { Logger::instance().set_level(LogLevel::kOff); }

/// Load size per server: the line-protocol servers handle an order of
/// magnitude more ops/s than the web servers, so they need proportionally
/// longer runs for stable timing.
inline int scaled_ops(const std::string& name, int web_ops) {
  return (name == "minikv" || name == "minipg") ? web_ops * 10 : web_ops;
}

}  // namespace fir::bench
