// Figure 3: impact of adaptive transaction policies on HTM abort percentage
// and throughput degradation (Nginx / miniginx).
//
// Policies, as in the paper:
//   * naive      — always attempt HTM first (paper: 20% aborts, 69% degr.)
//   * manual     — hand-marked abort-prone sites go straight to STM
//                  (paper: ~0% aborts, 18% degradation)
//   * FIRestarter — dynamic adaptation, threshold 1%, sample size 128
//                  (paper: 21% degradation)
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {
constexpr int kRequests = 10000;
constexpr int kConcurrency = 8;

struct PolicyRun {
  const char* label;
  TxManagerConfig config;
  const char* paper;
};

struct Measurement {
  double abort_pct = 0.0;
  double degradation = 0.0;
  std::string hot_sites;
};

Measurement measure(const TxManagerConfig& config) {
  Measurement m;
  m.degradation =
      100.0 * median_overhead("miniginx", config, kRequests, kConcurrency);
  // Abort accounting from a dedicated run (deterministic given the seed).
  auto server = make_server("miniginx", config);
  if (server == nullptr) return m;
  measure_throughput(*server, kRequests, kConcurrency, 42);
  const HtmStats& htm = server->fx().mgr().htm_stats();
  m.abort_pct = htm.begun == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(htm.aborted_total()) /
                          static_cast<double>(htm.begun);
  // Per-site abort rates (the paper quotes malloc 82%, posix_memalign 47%,
  // fcntl64 15% under the naive policy).
  for (const Site& site : server->fx().mgr().sites().all()) {
    if (site.gate.executions < 16 || site.gate.htm_aborts == 0) continue;
    const double rate = 100.0 * static_cast<double>(site.gate.htm_aborts) /
                        static_cast<double>(site.gate.executions);
    if (rate > 1.0) {
      m.hot_sites += site.function + "(" + site.location + ") " +
                     format_double(rate, 0) + "%  ";
    }
  }
  server->stop();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 3: adaptive transaction policies on miniginx — HTM abort %%\n"
      "and throughput degradation vs vanilla.\n\n");

  const PolicyRun runs[] = {
      {"naive (always-HTM)", naive_htm_config(),
       "20% aborts, 69% degradation"},
      {"manual marking", manual_config(), "~0% aborts, 18% degradation"},
      {"FIRestarter (thr=1%, N=128)", firestarter_config(0.01, 128),
       "21% degradation"},
  };

  TextTable table;
  table.set_header({"Policy", "HTM aborts", "Throughput degradation",
                    "paper"});
  double naive_aborts = 0.0, naive_degr = 0.0;
  double adaptive_aborts = 0.0, adaptive_degr = 0.0;
  for (const PolicyRun& run : runs) {
    const Measurement m = measure(run.config);
    table.add_row({run.label, format_double(m.abort_pct, 2) + "%",
                   format_double(m.degradation, 1) + "%", run.paper});
    if (std::string_view(run.label).starts_with("naive")) {
      naive_aborts = m.abort_pct;
      naive_degr = m.degradation;
      if (!m.hot_sites.empty()) {
        std::printf("abort-prone sites under naive policy: %s\n\n",
                    m.hot_sites.c_str());
      }
    }
    if (std::string_view(run.label).starts_with("FIRestarter")) {
      adaptive_aborts = m.abort_pct;
      adaptive_degr = m.degradation;
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Primary claim: adaptation eliminates the aborts. Secondary: it does
  // not cost throughput versus naive — checked within the +/-4-point
  // paired-median noise floor of this host (the abort-rate effect itself
  // is sub-point at this workload's 0.4% abort share; see EXPERIMENTS.md).
  const bool pass =
      adaptive_aborts < naive_aborts && adaptive_degr <= naive_degr + 4.0;
  std::printf("Shape check (adaptation cuts aborts and does not degrade\n"
              "throughput vs naive): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
