// Table III: runtime recoverable surface of the web servers under their
// standard test-suite workloads.
#include <cstdio>

#include "bench_util.h"
#include "core/analyzer.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Table III: runtime recoverable surface w.r.t. standard test-suite\n"
      "workloads (paper: Nginx 78 tx / 84.6%%, Apache 75 / 77.3%%,\n"
      "Lighttpd 136 / 77.9%%).\n\n");

  TextTable table;
  table.set_header({"", "miniginx", "apachette", "littlehttpd"});
  std::vector<SurfaceReport> reports;
  std::vector<std::uint64_t> embedded_dynamic;
  for (const std::string& name : web_server_names()) {
    auto server = make_server(name, firestarter_config());
    if (server == nullptr) return 1;
    run_suite_for(*server, 3);
    reports.push_back(analyze_surface(server->fx().mgr().sites()));
    std::uint64_t embedded = 0;
    for (const Site& site : server->fx().mgr().sites().all())
      embedded += site.stats.embedded_calls;
    embedded_dynamic.push_back(embedded);
    server->stop();
  }

  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& report : reports) cells.push_back(getter(report));
    table.add_row(cells);
  };
  row("# unique transactions", [](const SurfaceReport& r) {
    return std::to_string(r.unique_transactions);
  });
  row("# libcall sites embedded within", [](const SurfaceReport& r) {
    return std::to_string(r.embedded_libcall_sites);
  });
  row("# unique irrecoverable transactions", [](const SurfaceReport& r) {
    return std::to_string(r.irrecoverable_transactions);
  });
  row("Unique recoverable transactions", [](const SurfaceReport& r) {
    return format_percent(r.recoverable_fraction(), 1);
  });
  std::vector<std::string> dynamic_cells = {"(dynamic embedded libcalls)"};
  for (const std::uint64_t n : embedded_dynamic)
    dynamic_cells.push_back(std::to_string(n));
  table.add_row(dynamic_cells);
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper row (unique recoverable): 84.6%% / 77.3%% / 77.9%%\n");
  bool pass = true;
  for (const auto& report : reports)
    pass &= report.recoverable_fraction() > 0.70;
  std::printf("Shape check (all servers > 70%% recoverable): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
