// End-to-end serving throughput: miniginx worker pool under the timed
// wrk-shaped load generator (workload/concurrent.h).
//
// One arm per (policy x serving-knob) combination the evaluation compares:
// the recovery-mode arms (unprotected / htm-only / stm-only / adaptive,
// plus adaptive with checkpoint coalescing off) quantify gated-call
// overhead at saturation on the full network path, and the
// close-per-request arm quantifies what the keepalive + pipelining +
// vectored-write fast path buys. Emits a JSON report consumed by
// tools/check_bench_regression.py --serving (baseline: BENCH_serving.json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/miniginx.h"
#include "apps/registry.h"
#include "workload/concurrent.h"

namespace fir {
namespace {

struct Options {
  double warmup_seconds = 0.2;
  double duration_seconds = 1.0;
  int threads = 2;
  int workers = 2;
  int depth = 8;  // client pipeline depth (server default FIR_PIPELINE_MAX=8)
  std::string target = "/index.html";
  std::string out = "BENCH_serving_results.json";
  /// Offered rates (requests/s per client thread) for the open-loop
  /// latency-vs-rate sweep; empty disables the sweep (--sweep=none).
  std::vector<unsigned> sweep_rates = {500, 1000, 2000, 4000, 8000};
};

struct EnvOverride {
  const char* name;
  const char* value;  // nullptr: unset
};

struct ArmSpec {
  const char* name;
  const char* policy;  // apps::named_policy_config name
  bool client_keep_alive;
  std::vector<EnvOverride> env;
};

struct ArmResult {
  std::string name;
  TimedLoadResult load;
};

/// One point of the open-loop latency-vs-offered-rate sweep: requests are
/// paced at `rate_per_thread` instead of closed-loop saturation, tracing
/// the latency trajectory as offered load climbs toward the knee.
struct SweepPoint {
  unsigned rate_per_thread;
  TimedLoadResult load;
};

ArmResult run_arm(const Options& opt, const ArmSpec& arm) {
  for (const EnvOverride& e : arm.env) {
    if (e.value != nullptr) {
      ::setenv(e.name, e.value, 1);
    } else {
      ::unsetenv(e.name);
    }
  }
  ArmResult result;
  result.name = arm.name;
  {
    Miniginx server(apps::named_policy_config(arm.policy));
    if (!server.start(Miniginx::kDefaultPort).is_ok() ||
        !server.start_workers(opt.workers).is_ok()) {
      std::fprintf(stderr, "serving_throughput: failed to start arm %s\n",
                   arm.name);
      std::exit(1);
    }
    TimedLoadSpec spec;
    for (int i = 0; i < server.worker_count(); ++i)
      spec.ports.push_back(server.worker_port(i));
    spec.target = opt.target;
    spec.threads = opt.threads;
    spec.pipeline_depth = opt.depth;
    spec.keep_alive = arm.client_keep_alive;
    spec.warmup_seconds = opt.warmup_seconds;
    spec.duration_seconds = opt.duration_seconds;
    result.load = run_timed_http_load(server, spec);
    server.stop();
  }
  // Leave no knob behind for the next arm.
  for (const EnvOverride& e : arm.env) ::unsetenv(e.name);
  return result;
}

std::vector<SweepPoint> run_open_loop_sweep(const Options& opt) {
  std::vector<SweepPoint> points;
  Miniginx server(apps::named_policy_config("firestarter"));
  if (!server.start(Miniginx::kDefaultPort).is_ok() ||
      !server.start_workers(opt.workers).is_ok()) {
    std::fprintf(stderr, "serving_throughput: failed to start sweep server\n");
    std::exit(1);
  }
  for (const unsigned rate : opt.sweep_rates) {
    TimedLoadSpec spec;
    for (int i = 0; i < server.worker_count(); ++i)
      spec.ports.push_back(server.worker_port(i));
    spec.target = opt.target;
    spec.threads = opt.threads;
    spec.pipeline_depth = opt.depth;
    spec.warmup_seconds = opt.warmup_seconds;
    spec.duration_seconds = opt.duration_seconds;
    spec.open_loop_rate_per_thread = rate;
    points.push_back({rate, run_timed_http_load(server, spec)});
  }
  server.stop();
  return points;
}

double parse_double_arg(const char* arg, const char* prefix, double fallback) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return fallback;
  return std::atof(arg + n);
}

int main_impl(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--warmup=", 9) == 0) {
      opt.warmup_seconds = parse_double_arg(a, "--warmup=", opt.warmup_seconds);
    } else if (std::strncmp(a, "--duration=", 11) == 0) {
      opt.duration_seconds =
          parse_double_arg(a, "--duration=", opt.duration_seconds);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      opt.threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      opt.workers = std::atoi(a + 10);
    } else if (std::strncmp(a, "--depth=", 8) == 0) {
      opt.depth = std::atoi(a + 8);
    } else if (std::strncmp(a, "--target=", 9) == 0) {
      opt.target = a + 9;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      opt.out = a + 6;
    } else if (std::strncmp(a, "--sweep=", 8) == 0) {
      // Comma-separated per-thread rates, or "none" to skip the sweep.
      opt.sweep_rates.clear();
      for (const char* p = a + 8; *p != '\0' && std::strcmp(p, "none") != 0;) {
        opt.sweep_rates.push_back(
            static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: serving_throughput [--warmup=S] [--duration=S] "
                   "[--threads=N] [--workers=N] [--depth=N] [--target=PATH] "
                   "[--sweep=R1,R2,...|none] [--out=FILE]\n");
      return 2;
    }
  }

  // The knob arms rely on the defaults being in force unless overridden.
  for (const char* knob :
       {"FIR_KEEPALIVE", "FIR_PIPELINE_MAX", "FIR_WRITEV", "FIR_COALESCE"})
    ::unsetenv(knob);

  const std::vector<ArmSpec> arms = {
      // The fast-path ablation arm: no keepalive, so no pipelining and no
      // batched writes either — the seed's close-per-request behaviour.
      {"close-per-request", "vanilla", false,
       {{"FIR_KEEPALIVE", "0"}}},
      {"unprotected", "vanilla", true, {}},
      {"unprotected-no-writev", "vanilla", true, {{"FIR_WRITEV", "0"}}},
      {"htm-only", "htm-only", true, {}},
      {"stm-only", "stm-only", true, {}},
      {"adaptive", "firestarter", true, {}},
      {"adaptive-no-coalesce", "firestarter", true,
       {{"FIR_COALESCE", "0"}}},
  };

  std::vector<ArmResult> results;
  std::printf("%-22s %12s %9s %9s %9s %9s %6s\n", "arm", "req/s", "p50_us",
              "p90_us", "p99_us", "p999_us", "xfail");
  for (const ArmSpec& arm : arms) {
    ArmResult r = run_arm(opt, arm);
    std::printf("%-22s %12.0f %9llu %9llu %9llu %9llu %6llu\n",
                r.name.c_str(), r.load.requests_per_second,
                static_cast<unsigned long long>(r.load.p50_us()),
                static_cast<unsigned long long>(r.load.p90_us()),
                static_cast<unsigned long long>(r.load.p99_us()),
                static_cast<unsigned long long>(r.load.p999_us()),
                static_cast<unsigned long long>(r.load.transport_failures));
    std::fflush(stdout);
    results.push_back(std::move(r));
  }

  // Open-loop sweep: offered rate vs latency on the adaptive policy.
  // Reported, not gated — the trajectory is machine-dependent; the gated
  // numbers above are the ratios.
  std::vector<SweepPoint> sweep;
  if (!opt.sweep_rates.empty()) {
    sweep = run_open_loop_sweep(opt);
    std::printf("\n%-22s %12s %12s %9s %9s\n", "open-loop rate/thread",
                "offered", "achieved", "p50_us", "p99_us");
    for (const SweepPoint& p : sweep) {
      std::printf("%-22u %12u %12.0f %9llu %9llu\n", p.rate_per_thread,
                  p.rate_per_thread * static_cast<unsigned>(opt.threads),
                  p.load.requests_per_second,
                  static_cast<unsigned long long>(p.load.p50_us()),
                  static_cast<unsigned long long>(p.load.p99_us()));
    }
    std::fflush(stdout);
  }

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serving_throughput: cannot write %s\n",
                 opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"warmup_seconds\": %g, \"duration_seconds\": "
               "%g, \"threads\": %d, \"workers\": %d, \"pipeline_depth\": %d, "
               "\"target\": \"%s\"},\n",
               opt.warmup_seconds, opt.duration_seconds, opt.threads,
               opt.workers, opt.depth, opt.target.c_str());
  std::fprintf(f, "  \"arms\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::fprintf(
        f,
        "    \"%s\": {\"requests_per_second\": %.1f, \"completed\": %llu, "
        "\"responses_2xx\": %llu, \"responses_5xx\": %llu, "
        "\"transport_failures\": %llu, \"p50_us\": %llu, \"p90_us\": %llu, "
        "\"p99_us\": %llu, \"p999_us\": %llu}%s\n",
        r.name.c_str(), r.load.requests_per_second,
        static_cast<unsigned long long>(r.load.completed),
        static_cast<unsigned long long>(r.load.responses_2xx),
        static_cast<unsigned long long>(r.load.responses_5xx),
        static_cast<unsigned long long>(r.load.transport_failures),
        static_cast<unsigned long long>(r.load.p50_us()),
        static_cast<unsigned long long>(r.load.p90_us()),
        static_cast<unsigned long long>(r.load.p99_us()),
        static_cast<unsigned long long>(r.load.p999_us()),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }%s\n", sweep.empty() ? "" : ",");
  if (!sweep.empty()) {
    std::fprintf(f, "  \"open_loop_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      std::fprintf(
          f,
          "    {\"rate_per_thread\": %u, \"offered_rps\": %u, "
          "\"achieved_rps\": %.1f, \"completed\": %llu, "
          "\"transport_failures\": %llu, \"p50_us\": %llu, \"p99_us\": "
          "%llu}%s\n",
          p.rate_per_thread,
          p.rate_per_thread * static_cast<unsigned>(opt.threads),
          p.load.requests_per_second,
          static_cast<unsigned long long>(p.load.completed),
          static_cast<unsigned long long>(p.load.transport_failures),
          static_cast<unsigned long long>(p.load.p50_us()),
          static_cast<unsigned long long>(p.load.p99_us()),
          i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", opt.out.c_str());
  return 0;
}

}  // namespace
}  // namespace fir

int main(int argc, char** argv) { return fir::main_impl(argc, argv); }
