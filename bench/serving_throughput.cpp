// End-to-end serving throughput: miniginx worker pool under the timed
// wrk-shaped load generator (workload/concurrent.h).
//
// One arm per (policy x serving-knob) combination the evaluation compares:
// the recovery-mode arms (unprotected / htm-only / stm-only / adaptive,
// plus adaptive with checkpoint coalescing off) quantify gated-call
// overhead at saturation on the full network path, and the
// close-per-request arm quantifies what the keepalive + pipelining +
// vectored-write fast path buys. Emits a JSON report consumed by
// tools/check_bench_regression.py --serving (baseline: BENCH_serving.json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/miniginx.h"
#include "apps/registry.h"
#include "workload/concurrent.h"

namespace fir {
namespace {

struct Options {
  double warmup_seconds = 0.2;
  double duration_seconds = 1.0;
  int threads = 2;
  int workers = 2;
  int depth = 8;  // client pipeline depth (server default FIR_PIPELINE_MAX=8)
  std::string target = "/index.html";
  std::string out = "BENCH_serving_results.json";
};

struct EnvOverride {
  const char* name;
  const char* value;  // nullptr: unset
};

struct ArmSpec {
  const char* name;
  const char* policy;  // apps::named_policy_config name
  bool client_keep_alive;
  std::vector<EnvOverride> env;
};

struct ArmResult {
  std::string name;
  TimedLoadResult load;
};

ArmResult run_arm(const Options& opt, const ArmSpec& arm) {
  for (const EnvOverride& e : arm.env) {
    if (e.value != nullptr) {
      ::setenv(e.name, e.value, 1);
    } else {
      ::unsetenv(e.name);
    }
  }
  ArmResult result;
  result.name = arm.name;
  {
    Miniginx server(apps::named_policy_config(arm.policy));
    if (!server.start(Miniginx::kDefaultPort).is_ok() ||
        !server.start_workers(opt.workers).is_ok()) {
      std::fprintf(stderr, "serving_throughput: failed to start arm %s\n",
                   arm.name);
      std::exit(1);
    }
    TimedLoadSpec spec;
    for (int i = 0; i < server.worker_count(); ++i)
      spec.ports.push_back(server.worker_port(i));
    spec.target = opt.target;
    spec.threads = opt.threads;
    spec.pipeline_depth = opt.depth;
    spec.keep_alive = arm.client_keep_alive;
    spec.warmup_seconds = opt.warmup_seconds;
    spec.duration_seconds = opt.duration_seconds;
    result.load = run_timed_http_load(server, spec);
    server.stop();
  }
  // Leave no knob behind for the next arm.
  for (const EnvOverride& e : arm.env) ::unsetenv(e.name);
  return result;
}

double parse_double_arg(const char* arg, const char* prefix, double fallback) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return fallback;
  return std::atof(arg + n);
}

int main_impl(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--warmup=", 9) == 0) {
      opt.warmup_seconds = parse_double_arg(a, "--warmup=", opt.warmup_seconds);
    } else if (std::strncmp(a, "--duration=", 11) == 0) {
      opt.duration_seconds =
          parse_double_arg(a, "--duration=", opt.duration_seconds);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      opt.threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      opt.workers = std::atoi(a + 10);
    } else if (std::strncmp(a, "--depth=", 8) == 0) {
      opt.depth = std::atoi(a + 8);
    } else if (std::strncmp(a, "--target=", 9) == 0) {
      opt.target = a + 9;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      opt.out = a + 6;
    } else {
      std::fprintf(stderr,
                   "usage: serving_throughput [--warmup=S] [--duration=S] "
                   "[--threads=N] [--workers=N] [--depth=N] [--target=PATH] "
                   "[--out=FILE]\n");
      return 2;
    }
  }

  // The knob arms rely on the defaults being in force unless overridden.
  for (const char* knob :
       {"FIR_KEEPALIVE", "FIR_PIPELINE_MAX", "FIR_WRITEV", "FIR_COALESCE"})
    ::unsetenv(knob);

  const std::vector<ArmSpec> arms = {
      // The fast-path ablation arm: no keepalive, so no pipelining and no
      // batched writes either — the seed's close-per-request behaviour.
      {"close-per-request", "vanilla", false,
       {{"FIR_KEEPALIVE", "0"}}},
      {"unprotected", "vanilla", true, {}},
      {"unprotected-no-writev", "vanilla", true, {{"FIR_WRITEV", "0"}}},
      {"htm-only", "htm-only", true, {}},
      {"stm-only", "stm-only", true, {}},
      {"adaptive", "firestarter", true, {}},
      {"adaptive-no-coalesce", "firestarter", true,
       {{"FIR_COALESCE", "0"}}},
  };

  std::vector<ArmResult> results;
  std::printf("%-22s %12s %9s %9s %9s %9s %6s\n", "arm", "req/s", "p50_us",
              "p90_us", "p99_us", "p999_us", "xfail");
  for (const ArmSpec& arm : arms) {
    ArmResult r = run_arm(opt, arm);
    std::printf("%-22s %12.0f %9llu %9llu %9llu %9llu %6llu\n",
                r.name.c_str(), r.load.requests_per_second,
                static_cast<unsigned long long>(r.load.p50_us()),
                static_cast<unsigned long long>(r.load.p90_us()),
                static_cast<unsigned long long>(r.load.p99_us()),
                static_cast<unsigned long long>(r.load.p999_us()),
                static_cast<unsigned long long>(r.load.transport_failures));
    std::fflush(stdout);
    results.push_back(std::move(r));
  }

  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serving_throughput: cannot write %s\n",
                 opt.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"warmup_seconds\": %g, \"duration_seconds\": "
               "%g, \"threads\": %d, \"workers\": %d, \"pipeline_depth\": %d, "
               "\"target\": \"%s\"},\n",
               opt.warmup_seconds, opt.duration_seconds, opt.threads,
               opt.workers, opt.depth, opt.target.c_str());
  std::fprintf(f, "  \"arms\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::fprintf(
        f,
        "    \"%s\": {\"requests_per_second\": %.1f, \"completed\": %llu, "
        "\"responses_2xx\": %llu, \"responses_5xx\": %llu, "
        "\"transport_failures\": %llu, \"p50_us\": %llu, \"p90_us\": %llu, "
        "\"p99_us\": %llu, \"p999_us\": %llu}%s\n",
        r.name.c_str(), r.load.requests_per_second,
        static_cast<unsigned long long>(r.load.completed),
        static_cast<unsigned long long>(r.load.responses_2xx),
        static_cast<unsigned long long>(r.load.responses_5xx),
        static_cast<unsigned long long>(r.load.transport_failures),
        static_cast<unsigned long long>(r.load.p50_us()),
        static_cast<unsigned long long>(r.load.p90_us()),
        static_cast<unsigned long long>(r.load.p99_us()),
        static_cast<unsigned long long>(r.load.p999_us()),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", opt.out.c_str());
  return 0;
}

}  // namespace
}  // namespace fir

int main(int argc, char** argv) { return fir::main_impl(argc, argv); }
