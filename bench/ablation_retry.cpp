// Ablation: the transient-retry budget (max_crash_retries).
//
// The paper's design retries once before declaring a fault persistent
// (SIII). This ablation quantifies the trade-off: a budget of 0 diverts
// transients needlessly (masking them as errors); larger budgets delay
// persistent-fault diversion (more wasted re-executions per recovery).
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {

struct Outcome {
  int transient_masked = 0;   // transient faults that became injected errors
  int transient_clean = 0;    // transient faults absorbed invisibly
  double persistent_work = 0; // mean re-executions per persistent recovery
};

Outcome measure(int retries) {
  Outcome outcome;
  // STM-only isolates the retry budget: under the hybrid policy the HTM
  // abort -> STM re-execution path absorbs a transient fault even with a
  // budget of zero (a free retry the hardware layer provides) — itself a
  // noteworthy property of the design.
  TxManagerConfig config = stm_only_config();
  config.max_crash_retries = retries;
  const ServerFactory factory = factory_for("miniginx", config);

  // Transient campaign: a fault that fires once must be invisible when the
  // budget allows at least one retry.
  const CampaignResult transient =
      run_campaign(factory, FaultType::kTransientCrash);
  for (const ExperimentRecord& e : transient.experiments) {
    if (!e.triggered) continue;
    if (e.diversions > 0) {
      ++outcome.transient_masked;
    } else {
      ++outcome.transient_clean;
    }
  }

  // Persistent campaign: count rollback work per diversion.
  const CampaignResult persistent =
      run_campaign(factory, FaultType::kPersistentCrash);
  std::uint64_t total_retries = 0, diversions = 0;
  for (const ExperimentRecord& e : persistent.experiments) {
    total_retries += e.retries;
    diversions += e.diversions;
  }
  outcome.persistent_work =
      diversions == 0 ? 0.0
                      : static_cast<double>(total_retries) /
                            static_cast<double>(diversions);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Ablation: transient-retry budget on miniginx campaigns.\n"
      "budget=0 mis-diverts transient faults; larger budgets waste\n"
      "re-executions on persistent faults (the paper picks 1).\n\n");

  TextTable table;
  table.set_header({"retry budget", "transients masked as errors",
                    "transients invisible", "re-execs per divert"});
  bool pass = true;
  Outcome base;
  for (const int budget : {0, 1, 2, 4}) {
    const Outcome outcome = measure(budget);
    if (budget == 0) base = outcome;
    table.add_row({std::to_string(budget),
                   std::to_string(outcome.transient_masked),
                   std::to_string(outcome.transient_clean),
                   format_double(outcome.persistent_work, 1)});
    if (budget == 0) {
      pass &= outcome.transient_masked > 0;  // no retry => visible damage
    } else {
      pass &= outcome.transient_masked == 0;  // any retry absorbs them
      pass &= outcome.persistent_work >= static_cast<double>(budget) - 0.1;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (budget 0 masks transients; budget >= 1 absorbs\n"
              "them at linear persistent-fault cost): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
