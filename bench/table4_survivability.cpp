// Table IV: crash-recovery effectiveness against injected faults.
//
// Thin consumer of the campaign engine: this binary runs the checked-in
// bench/campaigns/table4.json spec (embedded at build time — the same
// spec `fir_campaign --spec table4` runs) and prints the paper-shaped
// table. All sweep mechanics — site profiling, per-run seeds, forked
// worker isolation, aggregation — live in src/campaign.
#include <cstdio>

#include "bench_util.h"
#include "campaign/builtin_specs.h"
#include "campaign/orchestrator.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Table IV: FIRestarter's crash recovery effectiveness against\n"
      "injected faults (paper fail-stop recovered: Nginx 10/10,\n"
      "Apache 4/4, Lighttpd 29/41, Redis 9/10, PostgreSQL 22/27;\n"
      "fail-silent: 79 injected, 2 crashes, both recovered).\n"
      "Spec: bench/campaigns/table4.json (fir_campaign --spec table4).\n\n");

  campaign::CampaignSpec spec;
  std::string error;
  if (!campaign::parse_campaign_spec(campaign::builtin_spec("table4"), &spec,
                                     &error)) {
    std::fprintf(stderr, "table4 spec invalid: %s\n", error.c_str());
    return 1;
  }

  campaign::OrchestratorOptions options;  // in-memory, forked workers
  const campaign::CampaignOutcome outcome =
      campaign::run_campaign_spec(spec, options);

  TextTable table;
  table.set_header({"Server", "FS inj", "FS recovered", "FS rate",
                    "FSil inj", "FSil crashes", "FSil recovered"});
  std::uint64_t silent_crashes_total = 0;
  for (const std::string& name : server_names()) {
    const campaign::MatrixCell* fail_stop = nullptr;
    const campaign::MatrixCell* fail_silent = nullptr;
    for (const campaign::MatrixCell& cell : outcome.aggregate.cells) {
      if (cell.server != name) continue;
      if (cell.fault == "persistent-crash") fail_stop = &cell;
      if (cell.fault == "latent-corruption") fail_silent = &cell;
    }
    if (fail_stop == nullptr || fail_silent == nullptr) {
      std::fprintf(stderr, "table4: no campaign cells for %s\n",
                   name.c_str());
      return 1;
    }
    silent_crashes_total += fail_silent->crashed;
    table.add_row(
        {paper_name(name), std::to_string(fail_stop->injected),
         std::to_string(fail_stop->recovered),
         format_percent(fail_stop->survivability(), 0),
         std::to_string(fail_silent->injected),
         std::to_string(fail_silent->crashed),
         fail_silent->crashed > 0 ? std::to_string(fail_silent->recovered)
                                  : std::string("-")});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Fail-silent crashes across all servers: %llu "
              "(paper: 2 of 79 — rare)\n",
              static_cast<unsigned long long>(silent_crashes_total));
  std::printf("Shape check (fail-stop recovery >= 70%% per server): %s\n",
              outcome.passed ? "PASS" : "FAIL");
  if (!outcome.passed) {
    std::printf("  %s\n", outcome.failure.c_str());
  }
  return outcome.passed ? 0 : 1;
}
