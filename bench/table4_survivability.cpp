// Table IV: crash-recovery effectiveness against injected faults.
//
// Fail-stop campaign: one persistent fatal fault per experiment, one
// experiment per workload-executed non-critical feature block (§VI-B).
// Fail-silent campaign: latent faults (bit flips / corrupted bytes), one
// per experiment, observing whether they ever crash and whether crashes
// are recovered.
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Table IV: FIRestarter's crash recovery effectiveness against\n"
      "injected faults (paper fail-stop recovered: Nginx 10/10,\n"
      "Apache 4/4, Lighttpd 29/41, Redis 9/10, PostgreSQL 22/27;\n"
      "fail-silent: 79 injected, 2 crashes, both recovered).\n\n");

  TextTable table;
  table.set_header({"Server", "FS inj", "FS recovered", "FS rate",
                    "FSil inj", "FSil crashes", "FSil recovered"});
  bool pass = true;
  int silent_crashes_total = 0;
  for (const std::string& name : server_names()) {
    const ServerFactory factory = factory_for(name, firestarter_config());
    const CampaignResult fail_stop =
        run_campaign(factory, FaultType::kPersistentCrash);
    const CampaignResult fail_silent =
        run_campaign(factory, FaultType::kLatentCorruption);

    int silent_crashes = 0, silent_recovered = 0;
    for (const ExperimentRecord& e : fail_silent.experiments) {
      if (e.crashed) {
        ++silent_crashes;
        if (e.recovered) ++silent_recovered;
      }
    }
    silent_crashes_total += silent_crashes;

    const double rate =
        fail_stop.crashes() > 0
            ? static_cast<double>(fail_stop.recovered()) /
                  static_cast<double>(fail_stop.crashes())
            : 0.0;
    table.add_row({paper_name(name), std::to_string(fail_stop.injected()),
                   std::to_string(fail_stop.recovered()),
                   format_percent(rate, 0),
                   std::to_string(fail_silent.injected()),
                   std::to_string(silent_crashes),
                   silent_crashes > 0 ? std::to_string(silent_recovered)
                                      : std::string("-")});
    // Shape: recovery rate at least 70% everywhere (paper: 70-100%).
    pass &= rate >= 0.70;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Fail-silent crashes across all servers: %d "
              "(paper: 2 of 79 — rare)\n",
              silent_crashes_total);
  std::printf("Shape check (fail-stop recovery >= 70%% per server): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
