// Figure 8: HTM failures observed for HTM-only vs FIRestarter.
//
// Paper: FIRestarter's adaptation drastically reduces HTM aborts on every
// application; PostgreSQL shows the smallest reduction (it switches to STM
// more often), matching its limited performance gain in Fig. 7.
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {
constexpr int kRequests = 4000;
constexpr int kConcurrency = 8;

double abort_percent(const std::string& name, const TxManagerConfig& config) {
  auto server = make_server(name, config);
  if (server == nullptr) return -1.0;
  measure_throughput(*server, kRequests, kConcurrency, 42);
  const HtmStats& htm = server->fx().mgr().htm_stats();
  const double pct =
      htm.begun == 0 ? 0.0
                     : 100.0 * static_cast<double>(htm.aborted_total()) /
                           static_cast<double>(htm.begun);
  server->stop();
  return pct;
}

}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 8: HTM failure percentage, HTM-only vs FIRestarter.\n"
      "Paper: drastic reduction everywhere; smallest on PostgreSQL.\n\n");

  TextTable table;
  table.set_header({"Server", "HTM-only aborts", "FIRestarter aborts",
                    "reduction"});
  bool pass = true;
  for (const std::string& name : server_names()) {
    const double htm_only = abort_percent(name, htm_only_config());
    const double firestarter = abort_percent(name, firestarter_config());
    if (htm_only < 0.0 || firestarter < 0.0) return 1;
    const double reduction =
        htm_only > 0.0 ? 100.0 * (1.0 - firestarter / htm_only) : 0.0;
    table.add_row({paper_name(name), format_double(htm_only, 3) + "%",
                   format_double(firestarter, 3) + "%",
                   format_double(reduction, 1) + "%"});
    pass &= firestarter <= htm_only + 1e-9;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (FIRestarter aborts <= HTM-only on every\n"
              "server): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
