// Figure 6: dynamic transaction adaptation on the web servers for HTM
// failure thresholds 1%-64% and accounting sample sizes 2-128.
//
// Paper finding: performance is not sensitive to either parameter, lower
// thresholds perform slightly better; threshold 1% with sample size 4 is
// chosen as the default.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {
constexpr int kRequests = 2500;
constexpr int kConcurrency = 8;
const double kThresholds[] = {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64};
const std::uint32_t kSamples[] = {2, 4, 16, 64, 128};
}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 6: throughput degradation (%% vs vanilla) across HTM abort\n"
      "thresholds and accounting sample sizes. Paper: insensitive to both;\n"
      "threshold 1%% / sample 4 best.\n");

  bool pass = true;
  for (const std::string& name : web_server_names()) {
    std::printf("\n%s:\n", paper_name(name).c_str());
    TextTable table;
    std::vector<std::string> header = {"threshold \\ sample"};
    for (const std::uint32_t sample : kSamples)
      header.push_back(std::to_string(sample));
    table.set_header(header);

    std::vector<double> grid;
    for (const double threshold : kThresholds) {
      std::vector<std::string> row = {
          format_double(threshold * 100.0, 0) + "%"};
      for (const std::uint32_t sample : kSamples) {
        const double degr =
            100.0 * median_overhead(name,
                                    firestarter_config(threshold, sample),
                                    kRequests, kConcurrency, 5);
        grid.push_back(degr);
        row.push_back(format_double(degr, 1));
      }
      table.add_row(row);
    }
    std::printf("%s", table.render().c_str());
    double mean = 0.0;
    for (const double d : grid) mean += d;
    mean /= static_cast<double>(grid.size());
    double var = 0.0;
    for (const double d : grid) var += (d - mean) * (d - mean);
    const double stddev = std::sqrt(var / static_cast<double>(grid.size()));
    std::printf("grid mean %.1f%%, stddev %.1f points\n", mean, stddev);
    // Insensitivity: the grid varies within the measurement noise floor —
    // paired-median overheads on this class of shared host jitter by
    // +/-8-10 points run-to-run, so a stddev under ~12 means no parameter
    // choice shifts performance by a regime (the paper's conclusion).
    pass &= stddev < 12.0;
  }
  std::printf("\nShape check (performance insensitive to threshold and\n"
              "sample size): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
