// Figure 7: normalized runtime performance overhead of HTM-only, STM-only
// and FIRestarter on all five servers.
//
// Paper: STM-only is much slower; FIRestarter lands at 17% (Nginx,
// Lighttpd), 14% (Apache), <12% (Redis); HTM-only is cheapest but offers
// no recovery guarantee.
#include <cstdio>

#include "bench_util.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

namespace {
constexpr int kRequests = 10000;
constexpr int kConcurrency = 8;
}  // namespace

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();
  std::printf(
      "Figure 7: normalized runtime overhead vs vanilla (lower is better).\n"
      "Paper: FIRestarter 17%% Nginx/Lighttpd, 14%% Apache, <12%% Redis;\n"
      "STM-only substantially worse; HTM-only cheapest (no guarantees).\n\n");

  TextTable table;
  table.set_header({"Server", "HTM-only", "STM-only", "FIR no-coalesce",
                    "FIRestarter", "baseline req/s"});
  // Checkpoint fast path ablation: the same adaptive policy with the run
  // budget forced to 1 pays one full checkpoint per gated call (the
  // pre-coalescing behaviour); the default amortizes it over quiescent runs.
  TxManagerConfig no_coalesce = firestarter_config();
  no_coalesce.coalesce_max = 1;
  bool pass = true;
  for (const std::string& name : server_names()) {
    const int ops = scaled_ops(name, kRequests);
    double base = 0.0;
    const double htm_ov =
        median_overhead(name, htm_only_config(), ops, kConcurrency);
    const double stm_ov =
        median_overhead(name, stm_only_config(), ops, kConcurrency);
    const double fir1_ov =
        median_overhead(name, no_coalesce, ops, kConcurrency);
    const double fir_ov = median_overhead(name, firestarter_config(), ops,
                                          kConcurrency, 7, &base);
    table.add_row({paper_name(name), format_percent(htm_ov, 1),
                   format_percent(stm_ov, 1), format_percent(fir1_ov, 1),
                   format_percent(fir_ov, 1), format_double(base, 0)});
    // Shape: FIRestarter beats STM-only (or ties within noise) and is
    // within a practical bound.
    pass &= fir_ov <= stm_ov + 0.03;
    pass &= fir_ov < 0.60;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape check (FIRestarter <= STM-only and < 60%% overhead\n"
              "on every server): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
