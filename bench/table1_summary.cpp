// Table I: comparison of software crash recovery techniques.
//
// The related-work rows are the paper's (literature values); the
// FIRestarter row is MEASURED on this reproduction: recovery surface from
// the Table III analysis, recovery latency from the Fig. 5 campaigns,
// performance overhead from the Fig. 7 protocol.
#include <cstdio>

#include "bench_util.h"
#include "common/histogram.h"
#include "core/analyzer.h"
#include "obs/cli.h"

using namespace fir;
using namespace fir::bench;

int main(int argc, char** argv) {
  fir::obs::apply_cli_flags(&argc, argv);
  quiet_logs();

  // Measured recovery surface: worst case across the web servers.
  double min_surface = 1.0;
  for (const std::string& name : web_server_names()) {
    auto server = make_server(name, firestarter_config());
    if (server == nullptr) return 1;
    run_suite_for(*server, 3);
    const SurfaceReport report = analyze_surface(server->fx().mgr().sites());
    min_surface = std::min(min_surface, report.recoverable_fraction());
    server->stop();
  }

  // Measured recovery latency: pooled over miniginx fail-stop experiments.
  Histogram latency;
  {
    const ServerFactory factory = factory_for("miniginx",
                                              firestarter_config());
    for (const Marker& target : profile_markers(factory)) {
      auto server = factory();
      if (server == nullptr) continue;
      run_suite_for(*server, 1);
      MarkerId id = kInvalidMarker;
      for (const Marker& m : server->fx().hsfi().markers())
        if (m.name == target.name && m.location == target.location)
          id = m.id;
      if (id != kInvalidMarker) {
        server->fx().mgr().reset_stats();
        server->fx().hsfi().arm(
            FaultPlan{id, FaultType::kPersistentCrash, CrashKind::kSegv, 1});
        run_suite_for(*server, 1);
        latency.merge(server->fx().mgr().recovery_latency());
      }
      server->stop();
    }
  }

  // Measured performance overhead: worst across servers (Fig. 7 protocol,
  // fewer rounds — this is a summary row).
  double max_overhead = 0.0;
  for (const std::string& name : server_names()) {
    const double ov = median_overhead(name, firestarter_config(),
                                      scaled_ops(name, 6000), 8, 5);
    max_overhead = std::max(max_overhead, ov);
  }

  std::printf("Table I: comparison of software crash recovery techniques\n"
              "(related-work rows from the paper; FIRestarter row measured\n"
              "on this reproduction).\n\n");
  TextTable table;
  table.set_header({"Technique", "Persistent faults?", "No annotation?",
                    "Recovery surface", "Latency", "Overhead"});
  table.add_row({"Nooks", "no", "yes", "Kernel extns.", "-", "<60%"});
  table.add_row({"Microreboot", "no", "yes", "Managed code", "<1s", ">2%"});
  table.add_row({"Shadow drivers", "no", "yes", "Drivers", "-", "<3%"});
  table.add_row({"Recovery Domains", "no", "yes", "Kernel:34-97%", "-",
                 "8-560%"});
  table.add_row({"Rx", "yes", "no", "ENV influenced", "~0.5s", "<5%"});
  table.add_row({"ASSURE", "yes", "no", "Rescue-pointed", "~0.1s", "<7.6%"});
  table.add_row({"REASSURE", "yes", "no", "Rescue-pointed", "<1s", "<115%"});
  table.add_row({"HAFT", "no", "yes", "90.2%", "<1s", "200%"});
  table.add_row({"OSIRIS", "yes", "yes", "OS units: ~60%", "<1s", "~5%"});
  table.add_separator();
  char surface[32], lat[32], ov[32];
  std::snprintf(surface, sizeof(surface), ">%0.f%%",
                min_surface * 100.0 - 1.0);
  std::snprintf(lat, sizeof(lat), "%.0fus p95",
                latency.empty() ? 0.0 : latency.percentile(95) * 1e6);
  std::snprintf(ov, sizeof(ov), "<%.0f%%", max_overhead * 100.0 + 1.0);
  table.add_row({"FIRestarter (measured)", "yes", "yes", surface, lat, ov});
  table.add_row({"FIRestarter (paper)", "yes", "yes", ">77%", "~0.1s",
                 "<17%"});
  std::printf("%s\n", table.render().c_str());

  const bool pass = min_surface > 0.77 && !latency.empty() &&
                    latency.max() < 1.0;
  std::printf("Shape check (surface > 77%%, every recovery < 1 s): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
